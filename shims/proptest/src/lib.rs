//! Minimal `proptest` shim (see shims/README.md).
//!
//! Random property testing with the proptest 1.x authoring surface this
//! workspace uses — `proptest!`, `prop_assert*`, `Strategy`/`prop_map`,
//! `any::<T>()`, range and tuple strategies, `collection::{vec,
//! btree_set}` — but **no shrinking**: a failing case panics with the
//! generated inputs' `Debug` rendering. Each test's RNG is seeded from the
//! test's name, so runs are deterministic and reproducible.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration (subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim runs fewer because it
            // cannot shrink (long failure traces) and CI budgets are tight.
            Config { cases: 64 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A test-case failure (subset of proptest's `TestCaseError`): the
    /// `proptest!` body runs in a `Result<(), TestCaseError>` context so
    /// `.map_err(TestCaseError::fail)?` chains work.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(reason: impl std::fmt::Display) -> Self {
            TestCaseError(reason.to_string())
        }

        pub fn reject(reason: impl std::fmt::Display) -> Self {
            TestCaseError(format!("rejected: {reason}"))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// Deterministic per-test RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name: same test, same stream, every run.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 in [0, span) — span must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            self.next_u64() % span
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size specifications for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`; retries duplicates a bounded number of times, so the
    /// produced set can be smaller than the target when the element
    /// domain is nearly exhausted (upstream behaves the same way).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Map, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `prop_oneof![s1, s2, …]`: picks one of the alternative strategies
/// uniformly per generated value. All alternatives must produce the same
/// value type (no weights, matching the shim's no-shrinking contract).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::boxed($s)),+])
    };
}

/// `proptest! { ... }`: runs each embedded test `cases` times with inputs
/// drawn from the given strategies. No shrinking; failures report the
/// case's generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let debug_inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!("  ", stringify!($arg), " = "));
                            s.push_str(&format!("{:?}\n", &$arg));
                        )+
                        s
                    };
                    let inputs = debug_inputs();
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        },
                    ));
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            panic!(
                                "proptest case {}/{} of `{}` failed: {}\ninputs:\n{}",
                                case + 1, config.cases, stringify!($name), e, inputs
                            );
                        }
                        Err(payload) => {
                            eprintln!(
                                "proptest case {}/{} of `{}` failed with inputs:\n{}",
                                case + 1, config.cases, stringify!($name), inputs
                            );
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Assertion macros: the upstream versions return `Err` to drive
/// shrinking; without shrinking a panic is equivalent.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(-8i32..=8), &mut rng);
            assert!((-8..=8).contains(&w));
            let f = Strategy::generate(&(0.25f64..4.0), &mut rng);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::TestRng::from_name("coll");
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(0u64..50, 1..10), &mut rng);
            assert!((1..10).contains(&v.len()));
            let s = Strategy::generate(&crate::collection::btree_set(0u128..1000, 3..=6), &mut rng);
            assert!(s.len() <= 6 && s.len() >= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_works(
            xs in crate::collection::vec((0u32..100, 0u32..100), 1..20),
            flag in any::<bool>(),
            scaled in (0u32..50).prop_map(|v| v * 2),
        ) {
            prop_assert!(xs.len() < 20);
            for (a, b) in xs {
                prop_assert!(a < 100 && b < 100);
            }
            prop_assert_eq!(scaled % 2, 0);
            let _ = flag;
        }
    }
}
