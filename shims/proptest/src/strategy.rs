//! Value-generation strategies: ranges, tuples, `any::<T>()`, `Just`, and
//! `prop_map` composition.

use crate::test_runner::TestRng;

/// A recipe for generating random values (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// References to strategies are strategies (lets helpers hand out `&S`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued alternative strategies — the
/// engine behind the shim's `prop_oneof!` (no weights, no shrinking).
pub struct Union<T> {
    alts: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `alts`; panics on an empty list.
    pub fn new(alts: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alts }
    }

    /// Erase a concrete strategy for [`Union::new`] (lets `prop_oneof!`
    /// unify alternatives of different concrete types).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.alts.len() as u64) as usize;
        self.alts[i].generate(rng)
    }
}

// ---- Range strategies -----------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (self.start as i128 + (wide % span) as i128) as $ty
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as i128 + (wide % span) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// u128 spans do not fit the i128 arithmetic above; handle separately.
impl Strategy for core::ops::Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

impl Strategy for core::ops::RangeInclusive<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        if lo == 0 && hi == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        let span = hi - lo + 1;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        lo + wide % span
    }
}

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $ty) * (self.end - self.start)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $ty) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- Tuple strategies -----------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident.$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_arbitrary {
    ($($S:ident),+) => {
        impl<$($S: Arbitrary),+> Arbitrary for ($($S,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($S::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A);
tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<fn() -> T>,
}

/// Full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
