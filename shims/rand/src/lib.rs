//! Minimal `rand` 0.8 shim (see shims/README.md).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64: deterministic per
//! seed, excellent statistical quality, but a different stream than
//! upstream's ChaCha12-based `StdRng` — callers in this workspace only
//! assert structural properties of the samples, never exact values.

/// Low-level uniform bit source. Blanket-implemented for `&mut R` so
/// generic `&mut impl Rng` call chains pass references through naturally.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The user-facing sampling trait (subset of rand 0.8's `Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `gen()` can produce (rand's `Standard` distribution, flattened).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Ranges that `gen_range` accepts (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng) as $ty) * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                lo + (unit_f64(rng) as $ty) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Seedable construction (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5..=2.5f64);
            assert!((0.5..=2.5).contains(&f));
            let n: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "p=0.3 gave {hits}/100000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is identity");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let v = [7, 8, 9];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
