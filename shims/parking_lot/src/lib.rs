//! Minimal `parking_lot` shim backed by `std::sync` (see shims/README.md).
//!
//! Matches the parking_lot 0.12 surface this workspace uses: `lock()`
//! returns the guard directly (no `Result`); a poisoned std mutex is
//! recovered transparently, mirroring parking_lot's no-poisoning design.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
