//! Minimal `criterion` shim (see shims/README.md): same bench-authoring
//! surface, but measurement is a plain calibrated wall-clock mean — no
//! statistics engine, no HTML reports. Honors `--bench` being passed by
//! `cargo bench` and a substring filter argument like real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (stable-compatible best effort).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    filter: Option<String>,
    /// Target measurement time per benchmark.
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, target: Duration::from_millis(500) }
    }
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        // cargo bench passes `--bench`; any other free argument is a filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && a != "--bench");
        self.filter = filter;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, group: name.to_string() }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(flt) = &self.filter {
            if !id.contains(flt.as_str()) {
                return;
            }
        }
        let mut b = Bencher { target: self.target, mean_ns: 0.0, iters: 0 };
        f(&mut b);
        println!("{id:<50} {:>14}/iter ({} iters)", fmt_ns(b.mean_ns), b.iters);
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; the shim only tracks time, so this is a no-op
    /// kept for source compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.target = t;
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.group, id);
        self.c.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id);
        self.c.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

pub struct Bencher {
    target: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: run once, estimate per-iter cost, then time a batch
        // sized to fill the target measurement window.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None, target: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("zzz".into()), target: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("decompose", 50).to_string(), "decompose/50");
    }
}
