//! Quickstart: build a PEB-tree over a handful of users, define privacy
//! policies, and run a privacy-aware range query and kNN query.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use peb_repro::bx::TimePartitioning;
use peb_repro::common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_repro::pebtree::{PebTree, PrivacyContext};
use peb_repro::policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
use peb_repro::storage::BufferPool;

fn main() {
    let space = SpaceConfig::default(); // 1000 x 1000, one-day time domain

    // 1. Users define location-privacy policies: <role, locr, tint>.
    //    Alice (u1) lets Bob (u0) see her anywhere, any time; Carol (u2)
    //    only downtown during business hours; Dave (u3) grants nothing.
    let mut store = PolicyStore::new();
    let anywhere = Rect::new(0.0, 1000.0, 0.0, 1000.0);
    let downtown = Rect::new(400.0, 600.0, 400.0, 600.0);
    let always = TimeInterval::new(0.0, 1440.0);
    let business_hours = TimeInterval::new(480.0, 1020.0); // 8am - 5pm

    store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, anywhere, always));
    store.add(UserId(0), Policy::new(UserId(2), RoleId::COLLEAGUE, downtown, business_hours));

    // 2. The offline policy encoding: compatibility scores -> sequence
    //    values -> SV-sorted friend lists.
    let ctx = Arc::new(PrivacyContext::build(store, space, 4, SvAssignmentParams::default()));
    for u in 0..4u64 {
        println!("SV(u{u}) = {:.2}", ctx.seqvals.value(UserId(u)));
    }

    // 3. Build the index and insert moving users (position, velocity,
    //    update time). Phones report in every few minutes, so updates
    //    arrive shortly before queries.
    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(50)),
        space,
        TimePartitioning::default(),
        3.0,
        Arc::clone(&ctx),
    );
    let morning_update = 595.0; // 9:55am, in minutes since midnight
    tree.upsert(MovingPoint::new(
        UserId(1),
        Point::new(480.0, 520.0),
        Vec2::new(1.0, 0.0),
        morning_update,
    ));
    tree.upsert(MovingPoint::new(
        UserId(2),
        Point::new(510.0, 490.0),
        Vec2::new(0.0, 1.0),
        morning_update,
    ));
    tree.upsert(MovingPoint::new(UserId(3), Point::new(505.0, 505.0), Vec2::ZERO, morning_update));

    // 4. Privacy-aware range query: who can Bob see downtown at 10am?
    let tq = 600.0; // 10am
    let found = tree.prq(UserId(0), &downtown, tq);
    println!("\nPRQ (downtown, 10am): Bob sees {:?}", ids(&found));

    // 5. Privacy-aware kNN: Bob's 2 nearest visible users at 10am.
    let knn = tree.pknn(UserId(0), Point::new(500.0, 500.0), 2, tq);
    println!("PkNN (k=2, 10am):");
    for (m, dist) in &knn {
        println!("  {} at distance {:.1}", m.uid, dist);
    }

    // 6. In the evening everyone reports in again; Carol's business-hours
    //    policy no longer applies, so only Alice stays visible.
    let evening_update = 1255.0; // 8:55pm
    tree.upsert(MovingPoint::new(UserId(1), Point::new(500.0, 510.0), Vec2::ZERO, evening_update));
    tree.upsert(MovingPoint::new(UserId(2), Point::new(520.0, 480.0), Vec2::ZERO, evening_update));
    let found_night = tree.prq(UserId(0), &downtown, 1260.0); // 9pm
    println!("PRQ (downtown, 9pm): Bob sees {:?}", ids(&found_night));

    // I/O accounting is built in:
    let io = tree.pool().stats();
    println!(
        "\nindex I/O so far: {} physical reads, {} writes, {:.0}% buffer hits",
        io.physical_reads,
        io.physical_writes,
        io.hit_ratio() * 100.0
    );
}

fn ids(ms: &[MovingPoint]) -> Vec<String> {
    ms.iter().map(|m| m.uid.to_string()).collect()
}
