//! Cost model in action (Sec 6): calibrate Eq. 7 from two measurements,
//! then predict PEB-tree range-query I/O across a θ sweep and compare with
//! reality — a miniature version of the paper's Fig 19.
//!
//! ```bash
//! cargo run --release --example cost_model
//! ```

use std::sync::Arc;

use peb_repro::bx::TimePartitioning;
use peb_repro::common::SpaceConfig;
use peb_repro::costmodel::{calibrate, cost, CostInputs};
use peb_repro::pebtree::{PebTree, PrivacyContext};
use peb_repro::policy::SvAssignmentParams;
use peb_repro::storage::BufferPool;
use peb_repro::workload::{DatasetBuilder, QueryGenerator};

use rand::rngs::StdRng;
use rand::SeedableRng;

const NP: usize = 20;
const QUERIES: usize = 60;

fn measure(n: usize, theta: f64) -> (CostInputs, f64) {
    let ds = DatasetBuilder::default()
        .num_users(n)
        .policies_per_user(NP)
        .grouping_factor(theta)
        .seed(11)
        .build();
    let mut store2 = peb_repro::policy::PolicyStore::new();
    for (_, viewer, p) in ds.store.iter() {
        store2.add(viewer, p.clone());
    }
    let ctx = Arc::new(PrivacyContext::build(store2, ds.space, n, SvAssignmentParams::default()));
    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(50)),
        ds.space,
        TimePartitioning::default(),
        ds.max_speed,
        ctx,
    );
    for m in &ds.users {
        tree.upsert(*m);
    }

    let gen = QueryGenerator::new(ds.space, n);
    let mut rng = StdRng::seed_from_u64(5);
    let queries = gen.range_batch(&mut rng, QUERIES, 200.0, 30.0);
    let pool = Arc::clone(tree.pool());
    pool.flush_all();
    pool.clear();
    pool.reset_stats();
    for q in &queries {
        let _ = tree.prq(q.issuer, &q.window, q.tq);
    }
    let io = pool.stats().total_io() as f64 / QUERIES as f64;

    let inputs = CostInputs {
        num_users: n,
        policies_per_user: NP,
        theta,
        leaf_pages: tree.leaf_page_count(),
        side: SpaceConfig::default().side,
    };
    (inputs, io)
}

fn main() {
    println!("calibrating a1/a2 from two user counts (theta = 0.7)…");
    let s1 = measure(5_000, 0.7);
    let s2 = measure(20_000, 0.7);
    let params = calibrate((&s1.0, s1.1), (&s2.0, s2.1)).expect("calibration");
    println!("calibrated: a1 = {:.3}, a2 = {:.3}\n", params.a1, params.a2);

    println!("theta\testimated_io\tactual_io");
    for theta in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let (inputs, actual) = measure(12_000, theta);
        let est = cost(&inputs, &params);
        println!("{theta:.1}\t{est:.2}\t{actual:.2}");
    }
    println!("\nThe estimate should track the downward trend in θ (Fig 19(c)).");
}
