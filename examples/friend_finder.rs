//! Friend finder: the paper's running example (Fig 3) at city scale.
//!
//! u1 wants their nearest friend. Thousands of strangers and several
//! friends surround them, but only some friends' policies disclose their
//! location right now. The example shows both engines returning the same
//! answer while doing very different amounts of I/O — the paper's core
//! claim.
//!
//! ```bash
//! cargo run --release --example friend_finder
//! ```

use std::sync::Arc;

use peb_repro::bx::{BxTree, TimePartitioning};
use peb_repro::common::{SpaceConfig, UserId};
use peb_repro::pebtree::{PebTree, PrivacyContext, SpatialBaseline};
use peb_repro::policy::SvAssignmentParams;
use peb_repro::storage::BufferPool;
use peb_repro::workload::{DatasetBuilder, Distribution};

fn main() {
    // A 20K-user city with 30 policies per user, grouped communities.
    let dataset = DatasetBuilder::default()
        .num_users(20_000)
        .policies_per_user(30)
        .grouping_factor(0.7)
        .distribution(Distribution::Uniform)
        .seed(2011)
        .build();
    let space: SpaceConfig = dataset.space;

    println!("generated {} users, {} policies", dataset.users.len(), dataset.store.len());

    // Offline policy encoding.
    let t0 = std::time::Instant::now();
    let ctx = Arc::new(PrivacyContext::build(
        rebuild_store(&dataset.store),
        space,
        dataset.users.len(),
        SvAssignmentParams::default(),
    ));
    println!("policy encoding took {:.2}s", t0.elapsed().as_secs_f64());

    // Build both indexes.
    let part = TimePartitioning::default();
    let mut peb = PebTree::new(Arc::new(BufferPool::new(50)), space, part, 3.0, Arc::clone(&ctx));
    let mut spatial =
        SpatialBaseline::new(BxTree::new(Arc::new(BufferPool::new(50)), space, part, 3.0));
    for m in &dataset.users {
        peb.upsert(*m);
        spatial.upsert(*m);
    }

    // u1 asks: who are my 3 nearest visible friends?
    let issuer = UserId(1);
    let my_pos = dataset.users[1].pos;
    let tq = 30.0;
    println!(
        "\nissuer u1 at ({:.0}, {:.0}) with {} users who have policies toward them",
        my_pos.x,
        my_pos.y,
        ctx.friends.friends(issuer).len()
    );

    let peb_answer = measured(&peb, |t| t.pknn(issuer, my_pos, 3, tq));
    let spatial_answer = measured_baseline(&spatial, |b| b.pknn(&ctx.store, issuer, my_pos, 3, tq));

    println!("\nPEB-tree answer   ({} page I/Os):", peb_answer.1);
    for (m, d) in &peb_answer.0 {
        println!("  {} at distance {:.1}", m.uid, d);
    }
    println!("spatial baseline  ({} page I/Os):", spatial_answer.1);
    for (m, d) in &spatial_answer.0 {
        println!("  {} at distance {:.1}", m.uid, d);
    }

    let same = peb_answer.0.iter().map(|(m, _)| m.uid).collect::<Vec<_>>()
        == spatial_answer.0.iter().map(|(m, _)| m.uid).collect::<Vec<_>>();
    println!("\nanswers identical: {same}");
    if spatial_answer.1 > 0 {
        println!(
            "PEB-tree I/O advantage: {:.1}x fewer pages",
            spatial_answer.1 as f64 / peb_answer.1.max(1) as f64
        );
    }
}

fn measured<R>(peb: &PebTree, f: impl FnOnce(&PebTree) -> R) -> (R, u64) {
    let pool = Arc::clone(peb.pool());
    pool.flush_all();
    pool.clear();
    pool.reset_stats();
    let r = f(peb);
    (r, pool.stats().total_io())
}

fn measured_baseline<R>(b: &SpatialBaseline, f: impl FnOnce(&SpatialBaseline) -> R) -> (R, u64) {
    let pool = Arc::clone(b.pool());
    pool.flush_all();
    pool.clear();
    pool.reset_stats();
    let r = f(b);
    (r, pool.stats().total_io())
}

fn rebuild_store(store: &peb_repro::policy::PolicyStore) -> peb_repro::policy::PolicyStore {
    let mut out = peb_repro::policy::PolicyStore::new();
    for (_, viewer, p) in store.iter() {
        out.add(viewer, p.clone());
    }
    out
}
