//! Network city: users move on a road network between destination hubs
//! (the paper's network-based workload, Sec 7.7) while the system serves
//! privacy-aware range queries and absorbs location updates.
//!
//! Demonstrates the full update loop: simulate traffic → push updates into
//! the index → query → repeat, comparing I/O of the PEB-tree and the
//! spatial baseline as the city evolves.
//!
//! ```bash
//! cargo run --release --example network_city
//! ```

use std::sync::Arc;

use peb_repro::bx::{BxTree, TimePartitioning};
use peb_repro::common::{Rect, UserId};
use peb_repro::pebtree::{PebTree, PrivacyContext, SpatialBaseline};
use peb_repro::policy::SvAssignmentParams;
use peb_repro::storage::BufferPool;
use peb_repro::workload::{DatasetBuilder, Distribution, QueryGenerator};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 10K travelers on a sparse network of 50 destinations: positions are
    // heavily skewed along the roads.
    let mut dataset = DatasetBuilder::default()
        .num_users(10_000)
        .policies_per_user(20)
        .grouping_factor(0.8)
        .distribution(Distribution::Network { hubs: 50 })
        .seed(7)
        .build();
    let space = dataset.space;
    println!(
        "network city: {} travelers, {} destinations, {} policies",
        dataset.users.len(),
        dataset.network.as_ref().unwrap().network.num_hubs(),
        dataset.store.len()
    );

    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        space,
        dataset.users.len(),
        SvAssignmentParams::default(),
    ));
    let part = TimePartitioning::default();
    let mut peb = PebTree::new(Arc::new(BufferPool::new(50)), space, part, 3.0, Arc::clone(&ctx));
    let mut spatial =
        SpatialBaseline::new(BxTree::new(Arc::new(BufferPool::new(50)), space, part, 3.0));
    for m in &dataset.users {
        peb.upsert(*m);
        spatial.upsert(*m);
    }

    let gen = QueryGenerator::new(space, dataset.users.len());
    let mut rng = StdRng::seed_from_u64(99);

    println!("\ntick\ttime\tpeb_prq_io\tspatial_prq_io\tresults_equal");
    let mut sim = dataset.network.take().unwrap();
    for tick in 0..6 {
        // Traffic moves for 15 time units, then everyone reports in.
        sim.step(&mut rng, 15.0);
        for m in sim.snapshot_all() {
            peb.upsert(m);
            spatial.upsert(m);
        }
        let tq = sim.time() + 5.0;

        // Measure a small batch of range queries on both engines.
        let queries = gen.range_batch(&mut rng, 25, 200.0, tq);
        let (peb_io, spatial_io, mut all_equal) = (reset(&peb), reset_b(&spatial), true);
        let mut peb_total = 0u64;
        let mut spatial_total = 0u64;
        for q in &queries {
            let a: Vec<UserId> = peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
            let b: Vec<UserId> =
                spatial.prq(&ctx.store, q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
            all_equal &= a == b;
        }
        peb_total += peb.pool().stats().total_io() - peb_io;
        spatial_total += spatial.pool().stats().total_io() - spatial_io;
        println!(
            "{tick}\t{:.0}\t{:.1}\t{:.1}\t{all_equal}",
            sim.time(),
            peb_total as f64 / queries.len() as f64,
            spatial_total as f64 / queries.len() as f64,
        );
    }

    // Spot check one named query against the policy store.
    let issuer = UserId(17);
    let window = Rect::new(300.0, 700.0, 300.0, 700.0);
    let visible = peb.prq(issuer, &window, sim.time() + 5.0);
    println!(
        "\nu17 sees {} user(s) in the central district; {} users have policies toward u17",
        visible.len(),
        ctx.friends.friends(issuer).len()
    );
}

fn reset(p: &PebTree) -> u64 {
    p.pool().stats().total_io()
}

fn reset_b(b: &SpatialBaseline) -> u64 {
    b.pool().stats().total_io()
}

fn clone_store(store: &peb_repro::policy::PolicyStore) -> peb_repro::policy::PolicyStore {
    let mut out = peb_repro::policy::PolicyStore::new();
    for (_, viewer, p) in store.iter() {
        out.add(viewer, p.clone());
    }
    out
}
