//! Policy lab: explore the policy-encoding pipeline itself — α scores,
//! compatibility degrees, sequence values, and how the grouping factor
//! shapes the key space.
//!
//! ```bash
//! cargo run --example policy_lab
//! ```

use peb_repro::common::{Rect, SpaceConfig, TimeInterval, UserId};
use peb_repro::policy::{
    alpha, compatibility, Policy, PolicyStore, RoleId, SequenceValues, SvAssignmentParams,
};
use peb_repro::workload::{DatasetBuilder, PolicyGenConfig};

fn main() {
    let space = SpaceConfig::default();

    println!("== pairwise compatibility (Eq. 4) ==");
    let mut store = PolicyStore::new();
    let downtown = Rect::new(400.0, 600.0, 400.0, 600.0);
    let suburb = Rect::new(0.0, 300.0, 0.0, 300.0);
    let work = TimeInterval::new(480.0, 1020.0);
    let evening = TimeInterval::new(1020.0, 1440.0);

    // Mutual pair: overlapping region and time.
    store.add(UserId(1), Policy::new(UserId(0), RoleId::COLLEAGUE, downtown, work));
    store.add(UserId(0), Policy::new(UserId(1), RoleId::COLLEAGUE, downtown, work));
    // Non-mutual pair: disjoint times.
    store.add(UserId(2), Policy::new(UserId(0), RoleId::FRIEND, downtown, work));
    store.add(UserId(0), Policy::new(UserId(2), RoleId::FRIEND, suburb, evening));

    for (a, b) in [(0u64, 1u64), (0, 2), (1, 2)] {
        let p_ab = store.policy(UserId(a), UserId(b));
        let p_ba = store.policy(UserId(b), UserId(a));
        println!(
            "u{a} vs u{b}: alpha = {:.4}, C = {:.4}",
            alpha(p_ab, p_ba, &space),
            compatibility(&store, &space, UserId(a), UserId(b))
        );
    }

    println!("\n== the paper's sequence-value example (Sec 5.1) ==");
    let mut graph: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 7];
    let edge = |g: &mut Vec<Vec<(usize, f64)>>, a: usize, b: usize, c: f64| {
        g[a].push((b, c));
        g[b].push((a, c));
    };
    edge(&mut graph, 2, 1, 0.4);
    edge(&mut graph, 4, 1, 0.9);
    edge(&mut graph, 4, 3, 0.8);
    edge(&mut graph, 5, 3, 0.2);
    edge(&mut graph, 6, 3, 0.6);
    let sv = SequenceValues::assign_from_graph(&graph, SvAssignmentParams::default());
    for u in 1..=6u64 {
        println!("SV(u{u}) = {:.1}", sv.value(UserId(u)));
    }

    println!("\n== how θ shapes SV clustering ==");
    for theta in [0.0, 0.5, 1.0] {
        let ds = DatasetBuilder::default()
            .num_users(2_000)
            .policies_per_user(10)
            .grouping_factor(theta)
            .seed(5)
            .build();
        let sv = SequenceValues::assign(&ds.store, &space, 2_000, SvAssignmentParams::default());
        // Average SV distance between policy-connected users: smaller means
        // better clustering in the PEB key space.
        let mut total = 0.0;
        let mut count = 0usize;
        for (o, v, _) in ds.store.iter() {
            total += (sv.value(o) - sv.value(v)).abs();
            count += 1;
        }
        println!(
            "theta = {theta:.1}: avg |SV(owner) − SV(viewer)| = {:.2} over {count} policies",
            total / count as f64
        );
    }

    println!("\n== generator knobs ==");
    let cfg = PolicyGenConfig::default();
    println!(
        "defaults: Np = {}, θ = {}, group size = {}, region sides {:?}, interval {:?} min",
        cfg.policies_per_user,
        cfg.grouping_factor,
        cfg.group_size,
        cfg.region_side,
        cfg.interval_len
    );
}
