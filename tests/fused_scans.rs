//! Migration consistency of the fused multi-interval scan path.
//!
//! `scan_keys_multi` shares `scan_keys`'s contract: a multi-shard scan
//! racing a cross-partition migration must never observe a moving object
//! twice (old and new entry) or not at all. These tests race fused scans
//! — whole-range and genuinely multi-interval sets — against migrating
//! batch traffic, in the style of `tests/snapshot_scans.rs`, and also
//! pin the quiesced equivalence between the fused and per-interval
//! paths.
//!
//! Run in `--release` by CI as well — interleavings shift under the
//! optimizer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use peb_repro::bx::{BxTree, TimePartitioning};
use peb_repro::common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_repro::storage::BufferPool;

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

fn space() -> SpaceConfig {
    SpaceConfig::new(1000.0, 10, 1440.0)
}

/// A grid population updated at `t`.
fn population(n: u64, t: f64) -> Vec<MovingPoint> {
    (0..n)
        .map(|i| still(i, (i % 40) as f64 * 24.0 + 3.0, (i / 40) as f64 * 90.0 + 3.0, t))
        .collect()
}

/// An interval set covering every key of every partition in several
/// overlapping pieces — a genuinely multi-interval, multi-shard fused
/// scan whose union is the whole key space.
fn full_cover_intervals(tree: &BxTree) -> Vec<(u128, u128)> {
    let mut out = Vec::new();
    for tid in 0..tree.index().num_shards() as u8 {
        let (lo, hi) = {
            use peb_repro::index::KeyLayout;
            tree.index().layout().partition_range(tid)
        };
        let mid = lo + (hi - lo) / 2;
        // Overlapping halves plus a redundant whole, shuffled.
        out.push((mid, hi));
        out.push((lo, mid + 1));
        out.push((lo, hi));
    }
    out.push((0, u128::MAX));
    out
}

/// One fused scan over `intervals`: every live uid must appear exactly
/// once.
fn assert_fused_scan_consistent(tree: &BxTree, intervals: &[(u128, u128)], n: u64) {
    let mut seen = vec![0u32; n as usize];
    tree.index().scan_keys_multi(intervals, |_, rec| {
        seen[rec.uid as usize] += 1;
        true
    });
    for (uid, count) in seen.iter().enumerate() {
        assert_eq!(
            *count, 1,
            "uid {uid} observed {count} times by a fused scan racing migrations \
             (0 = dropped, 2 = duplicated)"
        );
    }
}

#[test]
fn fused_scans_racing_migrating_batches_never_drop_or_duplicate() {
    let n = 600u64;
    let part = TimePartitioning::new(120.0, 2);
    let tree = Arc::new(BxTree::bulk_load(
        Arc::new(BufferPool::sharded(4_096)),
        space(),
        part,
        3.0,
        &population(n, 10.0),
        1.0,
    ));
    let stop = AtomicBool::new(false);
    let scans_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Migrator: batches bounce every object between the label-120 and
        // label-240 partitions — each round is one big cross-shard
        // migration span.
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                let mut phase = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = if phase.is_multiple_of(2) { 70.0 } else { 10.0 };
                    tree.upsert_batch(&population(n, t));
                    phase += 1;
                }
            });
        }
        // Fused scanners: the multi-interval cover must always see each
        // uid exactly once, like a plain full-range scan would.
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let (stop, scans_done) = (&stop, &scans_done);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let intervals = full_cover_intervals(&tree);
                    assert_fused_scan_consistent(&tree, &intervals, n);
                    scans_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(700));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(scans_done.load(Ordering::Relaxed) > 0, "no fused scan completed during the race");
    assert!(tree.index().migration_epoch() > 0, "the migrator never migrated");
    // Quiesced: still exactly one entry per object, and the fused path
    // agrees entry-for-entry with the per-interval path.
    let intervals = full_cover_intervals(&tree);
    assert_fused_scan_consistent(&tree, &intervals, n);
    let mut per = Vec::new();
    tree.index().scan_keys(0, u128::MAX, |k, rec| {
        per.push((k, rec.uid));
        true
    });
    let mut fused = Vec::new();
    tree.index().scan_keys_multi(&intervals, |k, rec| {
        fused.push((k, rec.uid));
        true
    });
    assert_eq!(per, fused, "quiesced fused scan must equal the per-interval scan");
    assert_eq!(tree.len(), n as usize);
}

#[test]
fn fused_single_shard_scans_race_single_object_migrations() {
    // Single-shard fused sets stream under one read lock (the hot query
    // path); race them against slow-path single-object migrations.
    let n = 400u64;
    let part = TimePartitioning::new(120.0, 2);
    let tree = Arc::new(BxTree::bulk_load(
        Arc::new(BufferPool::sharded(2_048)),
        space(),
        part,
        3.0,
        &population(n, 10.0),
        1.0,
    ));
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                let mut phase = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = if phase.is_multiple_of(2) { 70.0 } else { 10.0 };
                    for uid in (0..n).step_by(7) {
                        tree.index().upsert(still(uid, 500.0, 500.0, t));
                    }
                    phase += 1;
                }
            });
        }
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                use peb_repro::index::KeyLayout;
                while !stop.load(Ordering::Relaxed) {
                    // Per partition: an overlapping in-shard interval set.
                    // Never-migrating uids (not divisible by 7) must each
                    // appear exactly once across the partitions.
                    let mut seen = vec![0u32; n as usize];
                    for tid in 0..tree.index().num_shards() as u8 {
                        let (lo, hi) = tree.index().layout().partition_range(tid);
                        let third = (hi - lo) / 3;
                        let set =
                            [(lo + third, hi), (lo, lo + 2 * third), (lo + third, lo + 2 * third)];
                        tree.index().scan_keys_multi(&set, |_, rec| {
                            seen[rec.uid as usize] += 1;
                            true
                        });
                    }
                    for (uid, count) in seen.iter().enumerate() {
                        if uid % 7 != 0 {
                            assert_eq!(*count, 1, "stationary uid {uid} observed {count} times");
                        }
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
    });
    let intervals = full_cover_intervals(&tree);
    assert_fused_scan_consistent(&tree, &intervals, n);
}
