//! Concurrent read queries: the buffer pool is the only shared mutable
//! state (interior mutability behind a mutex), so `&PebTree` queries must
//! be safe and correct from many threads at once — the deployment shape of
//! a location-based service serving many issuers.

use std::sync::Arc;

use peb_repro::bx::TimePartitioning;
use peb_repro::common::{Point, Rect, UserId};
use peb_repro::pebtree::oracle::oracle_prq;
use peb_repro::pebtree::{PebTree, PrivacyContext};
use peb_repro::policy::{PolicyStore, SvAssignmentParams};
use peb_repro::storage::BufferPool;
use peb_repro::workload::{DatasetBuilder, QueryGenerator};

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn parallel_queries_match_oracle() {
    let ds = DatasetBuilder::default()
        .num_users(3_000)
        .policies_per_user(12)
        .grouping_factor(0.7)
        .seed(321)
        .build();
    let n = ds.users.len();
    let mut store2 = PolicyStore::new();
    for (_, viewer, p) in ds.store.iter() {
        store2.add(viewer, p.clone());
    }
    let ctx = Arc::new(PrivacyContext::build(store2, ds.space, n, SvAssignmentParams::default()));
    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(50)),
        ds.space,
        TimePartitioning::default(),
        ds.max_speed,
        Arc::clone(&ctx),
    );
    for m in &ds.users {
        tree.upsert(*m);
    }
    let tree = Arc::new(tree);
    let users = Arc::new(ds.users);

    let gen = QueryGenerator::new(ds.space, n);
    let mut rng = StdRng::seed_from_u64(77);
    let queries = Arc::new(gen.range_batch(&mut rng, 64, 300.0, 30.0));
    let knn_queries = Arc::new(gen.knn_batch(&mut rng, 32, 4, 30.0));

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let users = Arc::clone(&users);
            let queries = Arc::clone(&queries);
            let knn_queries = Arc::clone(&knn_queries);
            std::thread::spawn(move || {
                // Each thread walks the query list from a different offset.
                for (i, q) in queries.iter().enumerate().skip(t * 16).take(32) {
                    let got: Vec<UserId> =
                        tree.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
                    let want = oracle_prq(&users, &tree.context().store, q.issuer, &q.window, q.tq);
                    assert_eq!(got, want, "thread {t} query {i}");
                }
                for q in knn_queries.iter().skip(t * 8).take(16) {
                    let got = tree.pknn(q.issuer, q.q, q.k, q.tq);
                    assert!(got.len() <= q.k);
                    assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("query thread panicked");
    }

    // The pool stayed consistent: a final sanity query still works.
    let got = tree.prq(UserId(0), &Rect::new(0.0, 1000.0, 0.0, 1000.0), 30.0);
    let want = oracle_prq(
        &users,
        &tree.context().store,
        UserId(0),
        &Rect::new(0.0, 1000.0, 0.0, 1000.0),
        30.0,
    );
    assert_eq!(got.iter().map(|m| m.uid).collect::<Vec<_>>(), want);
    let _ = tree.pwd(UserId(0), Point::new(500.0, 500.0), 100.0, 30.0);
}
