//! End-to-end integration: generated workloads flow through the full
//! pipeline (dataset → policy encoding → both indexes → queries → updates),
//! and every engine agrees with the brute-force oracle.

use std::sync::Arc;

use peb_repro::bx::{BxTree, TimePartitioning};
use peb_repro::common::{Point, Rect, UserId};
use peb_repro::pebtree::oracle::{oracle_pknn, oracle_prq};
use peb_repro::pebtree::{PebTree, PrivacyContext, SpatialBaseline};
use peb_repro::policy::{PolicyStore, SvAssignmentParams};
use peb_repro::storage::BufferPool;
use peb_repro::workload::{DatasetBuilder, Distribution, QueryGenerator, UpdateStream};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn clone_store(store: &PolicyStore) -> PolicyStore {
    let mut out = PolicyStore::new();
    for (_, viewer, p) in store.iter() {
        out.add(viewer, p.clone());
    }
    out
}

struct Rig {
    users: Vec<peb_repro::common::MovingPoint>,
    ctx: Arc<PrivacyContext>,
    peb: PebTree,
    baseline: SpatialBaseline,
}

fn rig(n: usize, np: usize, theta: f64, dist: Distribution, seed: u64) -> Rig {
    let ds = DatasetBuilder::default()
        .num_users(n)
        .policies_per_user(np)
        .grouping_factor(theta)
        .distribution(dist)
        .seed(seed)
        .build();
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&ds.store),
        ds.space,
        n,
        SvAssignmentParams::default(),
    ));
    let part = TimePartitioning::default();
    let mut peb =
        PebTree::new(Arc::new(BufferPool::new(50)), ds.space, part, ds.max_speed, Arc::clone(&ctx));
    let mut baseline = SpatialBaseline::new(BxTree::new(
        Arc::new(BufferPool::new(50)),
        ds.space,
        part,
        ds.max_speed,
    ));
    for m in &ds.users {
        peb.upsert(*m);
        baseline.upsert(*m);
    }
    Rig { users: ds.users, ctx, peb, baseline }
}

fn check_queries(rig: &Rig, seed: u64, tq: f64, label: &str) {
    let gen = QueryGenerator::new(*rig.peb.space(), rig.users.len());
    let mut rng = StdRng::seed_from_u64(seed);
    for q in gen.range_batch(&mut rng, 30, 250.0, tq) {
        let want = oracle_prq(&rig.users, &rig.ctx.store, q.issuer, &q.window, q.tq);
        let got: Vec<UserId> =
            rig.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        let base: Vec<UserId> = rig
            .baseline
            .prq(&rig.ctx.store, q.issuer, &q.window, q.tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        assert_eq!(got, want, "{label}: PEB PRQ mismatch for issuer {}", q.issuer);
        assert_eq!(base, want, "{label}: baseline PRQ mismatch for issuer {}", q.issuer);
    }
    for q in gen.knn_batch(&mut rng, 30, 5, tq) {
        let want = oracle_pknn(&rig.users, &rig.ctx.store, q.issuer, q.q, q.k, q.tq);
        let got: Vec<UserId> =
            rig.peb.pknn(q.issuer, q.q, q.k, q.tq).iter().map(|(m, _)| m.uid).collect();
        let base: Vec<UserId> = rig
            .baseline
            .pknn(&rig.ctx.store, q.issuer, q.q, q.k, q.tq)
            .iter()
            .map(|(m, _)| m.uid)
            .collect();
        assert_eq!(got, want, "{label}: PEB PkNN mismatch for issuer {}", q.issuer);
        assert_eq!(base, want, "{label}: baseline PkNN mismatch for issuer {}", q.issuer);
    }
}

#[test]
fn uniform_workload_all_engines_agree() {
    let rig = rig(2_000, 15, 0.7, Distribution::Uniform, 101);
    check_queries(&rig, 11, 30.0, "uniform");
}

#[test]
fn network_workload_all_engines_agree() {
    let rig = rig(1_500, 10, 0.8, Distribution::Network { hubs: 30 }, 102);
    check_queries(&rig, 12, 30.0, "network");
}

#[test]
fn extreme_grouping_factors_agree() {
    for theta in [0.0, 1.0] {
        let rig = rig(1_000, 10, theta, Distribution::Uniform, 103);
        check_queries(&rig, 13, 30.0, &format!("theta={theta}"));
    }
}

#[test]
fn agreement_survives_update_churn() {
    let mut r = rig(1_200, 10, 0.7, Distribution::Uniform, 104);
    let mut stream = UpdateStream::new(*r.peb.space(), 3.0, r.users.clone(), 20.0);
    let mut rng = StdRng::seed_from_u64(9);
    for round in 0..6 {
        for m in stream.next_round(&mut rng, 0.25) {
            r.peb.upsert(m);
            r.baseline.upsert(m);
        }
        r.users = stream.users().to_vec();
        check_queries(&r, 50 + round, stream.time() + 5.0, &format!("churn round {round}"));
    }
}

#[test]
fn peb_tree_beats_spatial_baseline_on_io() {
    // The paper's headline: with policy-sparse friend sets, the PEB-tree
    // answers privacy-aware queries with far fewer page I/Os. This is the
    // directional claim only (exact ratios belong to the bench harness).
    let rig = rig(12_000, 20, 0.8, Distribution::Uniform, 105);
    let gen = QueryGenerator::new(*rig.peb.space(), rig.users.len());
    let mut rng = StdRng::seed_from_u64(21);
    let queries = gen.range_batch(&mut rng, 40, 400.0, 30.0);

    let measure = |pool: &Arc<BufferPool>, run: &mut dyn FnMut()| {
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        run();
        pool.stats().total_io()
    };

    let peb_io = measure(&Arc::clone(rig.peb.pool()), &mut || {
        for q in &queries {
            let _ = rig.peb.prq(q.issuer, &q.window, q.tq);
        }
    });
    let base_io = measure(&Arc::clone(rig.baseline.pool()), &mut || {
        for q in &queries {
            let _ = rig.baseline.prq(&rig.ctx.store, q.issuer, &q.window, q.tq);
        }
    });
    assert!(
        peb_io < base_io,
        "PEB-tree should do less I/O than the spatial baseline: {peb_io} vs {base_io}"
    );
}

#[test]
fn issuer_without_policies_costs_nothing_on_peb() {
    // A fresh user with no friends: the PEB-tree short-circuits, the
    // baseline still pays for the spatial scan.
    let rig = rig(3_000, 10, 0.7, Distribution::Uniform, 106);
    // User ids are 0..n; policies target existing users, so invent an
    // issuer by using one with no granters if present, else skip.
    let issuer = (0..3_000u64).map(UserId).find(|u| rig.ctx.friends.friends(*u).is_empty());
    let Some(issuer) = issuer else {
        return; // dense policy graph: nothing to assert
    };
    let pool = Arc::clone(rig.peb.pool());
    pool.flush_all();
    pool.clear();
    pool.reset_stats();
    let got = rig.peb.prq(issuer, &Rect::new(0.0, 1000.0, 0.0, 1000.0), 30.0);
    assert!(got.is_empty());
    assert_eq!(pool.stats().physical_reads, 0);
    let knn = rig.peb.pknn(issuer, Point::new(500.0, 500.0), 5, 30.0);
    assert!(knn.is_empty());
}
