//! Buffered-writes equivalence: a tree ingesting through the
//! B-epsilon-style message buffers must be observationally identical to a
//! twin running the direct delete+insert path — under random interleavings
//! of upserts, deletes, re-keys and queries, on both engines — while
//! writing **at most** as many leaf pages. Queries are compared both
//! mid-stream (messages in flight, so reads must merge the buffer
//! overlay) and after the final downward flush.

use std::sync::Arc;

use proptest::prelude::*;

use peb_repro::bx::BxTree;
use peb_repro::common::{MovingPoint, Point, Rect, SpaceConfig, UserId, Vec2};
use peb_repro::pebtree::{PebTree, PrivacyContext};
use peb_repro::policy::{PolicyStore, SvAssignmentParams};
use peb_repro::storage::BufferPool;
use peb_repro::workload::DatasetBuilder;

fn space() -> SpaceConfig {
    SpaceConfig::new(1000.0, 10, 1440.0)
}

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

/// An op drawn by the strategies: `kind` selects upsert / delete / re-key /
/// query, the payload words parameterize it.
type Op = (u8, u64, u64, u64);

fn ops_strategy(uids: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..10, 0u64..uids, 0u64..1000, 0u64..1000), 4..len)
}

/// The policy store has no `Clone`; rebuild pair-by-pair (a second context
/// needs its own ownership).
fn clone_store(store: &PolicyStore) -> PolicyStore {
    let mut out = PolicyStore::new();
    for (_, viewer, policy) in store.iter() {
        out.add(viewer, policy.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bx-tree twins: random upsert / delete / re-key / range-query
    /// interleavings. The re-key op goes through
    /// [`peb_repro::index::ShardedMovingIndex::rekey_where`] — a message
    /// pair on the buffered twin, delete+insert on the direct one.
    #[test]
    fn bx_buffered_twin_matches_direct_twin(ops in ops_strategy(400, 60)) {
        let users: Vec<MovingPoint> = (0..300)
            .map(|i| still(i, (i % 64) as f64 * 15.0 + 3.0, (i / 64) as f64 * 47.0 + 3.0, 10.0))
            .collect();
        let build = || {
            BxTree::bulk_load(
                Arc::new(BufferPool::new(4096)),
                space(),
                Default::default(),
                3.0,
                &users,
                1.0,
            )
        };
        let mut direct = build();
        let mut buffered = build();
        buffered.set_buffered_writes(true);
        direct.reset_write_stats();
        buffered.reset_write_stats();

        for (i, (kind, uid, a, b)) in ops.iter().copied().enumerate() {
            let t = 11.0 + i as f64;
            match kind {
                0..=5 => {
                    let m = still(uid, a as f64, b as f64, t);
                    direct.upsert(m);
                    buffered.upsert(m);
                }
                6 | 7 => {
                    let d = direct.remove(UserId(uid));
                    let bf = buffered.remove(UserId(uid));
                    prop_assert_eq!(d, bf, "remove({}) outcome diverged", uid);
                }
                8 => {
                    // Flip one ZV bit for a uid class: stays in-partition,
                    // and both twins move the same keys.
                    let f = |u: UserId, old: u128| {
                        (u.0 % 3 == a % 3).then_some(old ^ (1u128 << 40))
                    };
                    let d = direct.index().rekey_where(f);
                    let bf = buffered.index().rekey_where(f);
                    prop_assert_eq!(d, bf, "re-key moved a different number of keys");
                }
                _ => {
                    let (x0, y0) = (a as f64, b as f64);
                    let w = Rect::new(x0, (x0 + 320.0).min(1000.0), y0, (y0 + 320.0).min(1000.0));
                    let tq = t + (a % 50) as f64;
                    let mut d: Vec<u64> =
                        direct.range_query(&w, tq).iter().map(|m| m.uid.0).collect();
                    let mut bf: Vec<u64> =
                        buffered.range_query(&w, tq).iter().map(|m| m.uid.0).collect();
                    d.sort_unstable();
                    bf.sort_unstable();
                    prop_assert_eq!(d, bf, "range query diverged with messages in flight");
                }
            }
        }

        // In-flight equivalence of every point lookup and the full scan.
        prop_assert_eq!(direct.len(), buffered.len());
        for uid in 0..400 {
            prop_assert_eq!(direct.get(UserId(uid)), buffered.get(UserId(uid)), "get({uid})");
        }
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let tq = 11.0 + ops.len() as f64 + 30.0;
        let full = |t: &BxTree| -> Vec<u64> {
            let mut v: Vec<u64> = t.range_query(&whole, tq).iter().map(|m| m.uid.0).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(full(&direct), full(&buffered));

        // The point of buffering: never more leaf-page writes than direct.
        let (dw, bw) = (direct.write_stats(), buffered.write_stats());
        prop_assert!(
            bw.leaf_pages_written <= dw.leaf_pages_written,
            "buffered wrote {} leaf pages, direct only {}",
            bw.leaf_pages_written,
            dw.leaf_pages_written
        );
        prop_assert_eq!(dw.messages_buffered, 0);

        // And after draining the buffers everything still matches.
        buffered.set_buffered_writes(false);
        prop_assert_eq!(buffered.index().pending_messages(), 0);
        prop_assert_eq!(full(&direct), full(&buffered));
        prop_assert_eq!(direct.len(), buffered.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PEB-tree twins: the same game over the privacy-aware engine, with
    /// PRQs as the mid-stream probes and a sequence-value refresh (the
    /// re-key pass riding the message buffers) thrown into the mix.
    #[test]
    fn peb_buffered_twin_matches_direct_twin(ops in ops_strategy(200, 40)) {
        let dataset = DatasetBuilder::default()
            .num_users(200)
            .policies_per_user(6)
            .grouping_factor(0.7)
            .seed(0xBEEF)
            .build();
        let store2 = clone_store(&dataset.store);
        let n = dataset.users.len();
        let ctx = Arc::new(PrivacyContext::build(
            dataset.store,
            dataset.space,
            n,
            SvAssignmentParams::default(),
        ));
        // A second encoding with a different anchor spacing: refreshing to
        // it re-keys every user whose sequence value moved.
        let ctx2 = Arc::new(PrivacyContext::build(
            store2,
            dataset.space,
            n,
            SvAssignmentParams { delta: 3.0, ..Default::default() },
        ));
        let build = || {
            PebTree::bulk_load(
                Arc::new(BufferPool::new(4096)),
                dataset.space,
                Default::default(),
                3.0,
                Arc::clone(&ctx),
                &dataset.users,
                1.0,
            )
        };
        let mut direct = build();
        let mut buffered = build();
        buffered.set_buffered_writes(true);
        direct.reset_write_stats();
        buffered.reset_write_stats();

        let mut refreshed = false;
        for (i, (kind, uid, a, b)) in ops.iter().copied().enumerate() {
            let t = 1.0 + i as f64;
            match kind {
                0..=5 => {
                    let m = still(uid, a as f64, b as f64, t);
                    direct.upsert(m);
                    buffered.upsert(m);
                }
                6 => {
                    let d = direct.remove(UserId(uid));
                    let bf = buffered.remove(UserId(uid));
                    prop_assert_eq!(d, bf, "remove({}) outcome diverged", uid);
                }
                7 => {
                    // Alternate between the two encodings so later flips
                    // keep re-keying (same target on both twins).
                    let target = if refreshed { &ctx } else { &ctx2 };
                    refreshed = !refreshed;
                    let d = direct.refresh_sequence_values(Arc::clone(target));
                    let bf = buffered.refresh_sequence_values(Arc::clone(target));
                    prop_assert_eq!(d, bf, "SV refresh moved a different number of keys");
                }
                _ => {
                    let (x0, y0) = (a as f64, b as f64);
                    let w = Rect::new(x0, (x0 + 400.0).min(1000.0), y0, (y0 + 400.0).min(1000.0));
                    let tq = t + (b % 40) as f64;
                    let d: Vec<u64> =
                        direct.prq(UserId(uid), &w, tq).iter().map(|m| m.uid.0).collect();
                    let bf: Vec<u64> =
                        buffered.prq(UserId(uid), &w, tq).iter().map(|m| m.uid.0).collect();
                    prop_assert_eq!(d, bf, "PRQ diverged with messages in flight");
                }
            }
        }

        prop_assert_eq!(direct.len(), buffered.len());
        for uid in 0..200 {
            prop_assert_eq!(direct.get(UserId(uid)), buffered.get(UserId(uid)), "get({uid})");
        }
        let (dw, bw) = (direct.write_stats(), buffered.write_stats());
        prop_assert!(
            bw.leaf_pages_written <= dw.leaf_pages_written,
            "buffered wrote {} leaf pages, direct only {}",
            bw.leaf_pages_written,
            dw.leaf_pages_written
        );

        buffered.set_buffered_writes(false);
        prop_assert_eq!(direct.len(), buffered.len());
        for uid in 0..200 {
            prop_assert_eq!(direct.get(UserId(uid)), buffered.get(UserId(uid)));
        }
    }
}
