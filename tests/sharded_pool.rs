//! The sharded buffer pool against a single-mutex reference.
//!
//! Three angles, matching the pool's contract (`peb_storage::pool` docs):
//!
//! 1. **Exact-IoStats equivalence.** The 1-shard configuration is claimed
//!    to be byte-identical to the original single-mutex pool. A
//!    hand-rolled model of that pool (global LRU map + tick clock — the
//!    seed implementation, transcribed) replays a pseudorandom trace and
//!    must agree with the real pool counter-for-counter at every step.
//! 2. **Concurrent readers + writer.** Page operations are atomic under
//!    the shard locks, so per-page monotonic writes must never appear
//!    out of order to readers, evictions must never lose data, and the
//!    final disk+buffer state must equal a serial replay.
//! 3. **Ledger exactness under concurrency.** Every logical read lands in
//!    exactly one shard counter, so the summed ledger matches the op
//!    count exactly even after racy interleavings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use peb_repro::storage::{BufferPool, IoStats, PageId};

/// The seed's single-mutex pool, transcribed as a counter model: one
/// global LRU domain, one tick clock, eviction = min `last_used`. It
/// tracks residency and dirtiness only — enough to predict `IoStats`
/// exactly (the real pool also moves page bytes; the model doesn't need
/// them).
struct ReferencePool {
    frames: HashMap<u32, (bool, u64)>, // pid -> (dirty, last_used)
    capacity: usize,
    tick: u64,
    next_pid: u32,
    stats: IoStats,
}

impl ReferencePool {
    fn new(capacity: usize) -> Self {
        ReferencePool {
            frames: HashMap::new(),
            capacity,
            tick: 0,
            next_pid: 0,
            stats: IoStats::default(),
        }
    }

    fn evict_lru(&mut self) {
        let victim =
            *self.frames.iter().min_by_key(|(_, (_, used))| *used).map(|(pid, _)| pid).unwrap();
        let (dirty, _) = self.frames.remove(&victim).unwrap();
        if dirty {
            self.stats.physical_writes += 1;
        }
    }

    fn allocate(&mut self) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        if self.frames.len() >= self.capacity {
            self.evict_lru();
        }
        self.tick += 1;
        self.frames.insert(pid, (true, self.tick));
        pid
    }

    fn touch(&mut self, pid: u32, write: bool) {
        self.tick += 1;
        self.stats.logical_reads += 1;
        if !self.frames.contains_key(&pid) {
            if self.frames.len() >= self.capacity {
                self.evict_lru();
            }
            self.stats.physical_reads += 1;
            self.frames.insert(pid, (false, 0));
        }
        let tick = self.tick;
        let f = self.frames.get_mut(&pid).unwrap();
        f.1 = tick;
        if write {
            f.0 = true;
        }
    }

    fn clear(&mut self) {
        for (_, (dirty, _)) in std::mem::take(&mut self.frames) {
            if dirty {
                self.stats.physical_writes += 1;
            }
        }
    }
}

/// Deterministic trace driver (SplitMix64) shared by the equivalence test.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn single_shard_pool_matches_single_mutex_reference_exactly() {
    // Skewed pseudorandom trace over 3x the pool capacity, checked
    // counter-for-counter at every step: any divergence in eviction
    // policy, dirty accounting, or clock handling shows up immediately.
    let capacity = 16;
    let pool = BufferPool::new(capacity);
    let mut model = ReferencePool::new(capacity);
    let mut rng = 0xBEEFu64;

    let pids: Vec<PageId> = (0..capacity as u32 * 3).map(|_| pool.allocate()).collect();
    for _ in 0..pids.len() {
        model.allocate();
    }
    assert_eq!(pool.stats(), model.stats, "allocation phase diverged");

    for step in 0..4_000 {
        let r = splitmix(&mut rng);
        // Skew toward low pids so the trace mixes hot hits and cold misses.
        let i = ((r >> 8) % pids.len() as u64) as usize;
        let i = if r & 1 == 0 { i / 3 } else { i };
        let write = r & 2 == 0;
        if write {
            pool.write(pids[i], |p| p.put_u64(0, r));
        } else {
            pool.read(pids[i], |_| ());
        }
        model.touch(pids[i].0, write);
        assert_eq!(pool.stats(), model.stats, "diverged at step {step}");
        if r.is_multiple_of(257) {
            pool.clear();
            model.clear();
            assert_eq!(pool.stats(), model.stats, "clear diverged at step {step}");
        }
    }
    assert!(pool.stats().physical_reads > 0 && pool.stats().physical_writes > 0);
}

#[test]
fn concurrent_readers_and_writer_linearize_per_page() {
    // One writer bumps per-page version counters (always increasing);
    // readers must only ever observe versions going forward on every
    // page, across hits, misses, and evictions. Afterwards the surviving
    // state must equal a serial replay on a single-mutex (1-shard) pool.
    const PAGES: usize = 64;
    const ROUNDS: u64 = 120;
    let pool = Arc::new(BufferPool::with_shards(16, 4));
    let pids: Arc<Vec<PageId>> = Arc::new((0..PAGES).map(|_| pool.allocate()).collect());
    for pid in pids.iter() {
        pool.write(*pid, |p| p.put_u64(0, 0));
    }
    let done = Arc::new(AtomicU64::new(0));

    let writer = {
        let (pool, pids, done) = (Arc::clone(&pool), Arc::clone(&pids), Arc::clone(&done));
        std::thread::spawn(move || {
            for round in 1..=ROUNDS {
                for pid in pids.iter() {
                    pool.write(*pid, |p| p.put_u64(0, round));
                }
            }
            done.store(1, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let (pool, pids, done) = (Arc::clone(&pool), Arc::clone(&pids), Arc::clone(&done));
            std::thread::spawn(move || {
                let mut last_seen = vec![0u64; PAGES];
                let mut i = t * 11;
                while done.load(Ordering::Acquire) == 0 {
                    i = (i + 7) % PAGES;
                    let v = pool.read(pids[i], |p| p.get_u64(0));
                    assert!(
                        v >= last_seen[i],
                        "page {i} went backwards: {v} after {}",
                        last_seen[i]
                    );
                    assert!(v <= ROUNDS, "page {i} holds a value never written: {v}");
                    last_seen[i] = v;
                }
            })
        })
        .collect();
    writer.join().expect("writer panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Serial replay on the paper-exact pool: final contents must agree.
    let reference = BufferPool::new(16);
    let ref_pids: Vec<PageId> = (0..PAGES).map(|_| reference.allocate()).collect();
    for round in 0..=ROUNDS {
        for pid in &ref_pids {
            reference.write(*pid, |p| p.put_u64(0, round));
        }
    }
    for (pid, ref_pid) in pids.iter().zip(&ref_pids) {
        assert_eq!(
            pool.read(*pid, |p| p.get_u64(0)),
            reference.read(*ref_pid, |p| p.get_u64(0)),
            "converged state differs from the serial single-mutex replay"
        );
    }
}

#[test]
fn summed_ledger_is_exact_under_concurrent_traffic() {
    // Counters are bumped under the owning shard's lock, so even racy
    // interleavings must account for every single logical read.
    let pool = Arc::new(BufferPool::with_shards(32, 8));
    let pids: Arc<Vec<PageId>> = Arc::new((0..128).map(|_| pool.allocate()).collect());
    pool.clear();
    pool.reset_stats();

    const THREADS: usize = 4;
    const OPS: usize = 2_500;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (pool, pids) = (Arc::clone(&pool), Arc::clone(&pids));
            std::thread::spawn(move || {
                let mut rng = 0xACE0u64.wrapping_add(t as u64);
                for _ in 0..OPS {
                    let r = splitmix(&mut rng);
                    let pid = pids[(r % pids.len() as u64) as usize];
                    if r & 4 == 0 {
                        pool.write(pid, |p| p.put_u64(8, r));
                    } else {
                        pool.read(pid, |_| ());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("traffic thread panicked");
    }

    let total = pool.stats();
    assert_eq!(total.logical_reads, (THREADS * OPS) as u64, "ledger lost or double-counted");
    let summed = pool.shard_stats().iter().fold(IoStats::default(), |acc, s| acc.merged(s));
    assert_eq!(total, summed);
    assert!(pool.resident_pages() <= pool.capacity());
}
