//! Parallel batched updates through the sharded index: batches bound for
//! distinct time partitions (or disjoint objects in the same partition)
//! applied from multiple threads must land the index in exactly the state
//! the sequential single-object path produces — same keys, same records,
//! same partitions, and the same physical I/O (the paper's metric).

use std::sync::Arc;

use peb_repro::bx::{BxKeyLayout, BxTree, TimePartitioning};
use peb_repro::common::{MovingPoint, Point, Rect, SpaceConfig, UserId, Vec2};
use peb_repro::index::ShardedMovingIndex;
use peb_repro::storage::BufferPool;

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

fn space() -> SpaceConfig {
    SpaceConfig::new(1000.0, 10, 1440.0)
}

/// A grid population updated at `t`.
fn population(n: u64, t: f64) -> Vec<MovingPoint> {
    (0..n)
        .map(|i| still(i, (i % 64) as f64 * 15.0 + 3.0, (i / 64) as f64 * 47.0 + 3.0, t))
        .collect()
}

#[test]
fn parallel_cross_partition_batches_match_sequential() {
    let n = 1_200u64;
    let users = population(n, 10.0); // all in the label-120 partition
    let part = TimePartitioning::new(120.0, 2);
    // Ample buffer capacity so physical I/O is deterministic.
    let build =
        || BxTree::bulk_load(Arc::new(BufferPool::new(4096)), space(), part, 3.0, &users, 1.0);

    // Two batches with disjoint uids bound for two *different* partitions.
    let batch_a: Vec<MovingPoint> =
        (0..n / 2).map(|i| still(i, (i % 50) as f64 * 19.0 + 1.0, 400.0, 70.0)).collect();
    let batch_b: Vec<MovingPoint> =
        (n / 2..n).map(|i| still(i, (i % 45) as f64 * 21.0 + 2.0, 600.0, 130.0)).collect();
    assert_ne!(
        part.partition_of_update(70.0),
        part.partition_of_update(130.0),
        "the two batches must target distinct partitions"
    );

    // Parallel batched application.
    let parallel = Arc::new(build());
    parallel.pool().reset_stats();
    let threads: Vec<_> = [batch_a.clone(), batch_b.clone()]
        .into_iter()
        .map(|batch| {
            let tree = Arc::clone(&parallel);
            std::thread::spawn(move || tree.upsert_batch(&batch))
        })
        .collect();
    let applied: usize =
        threads.into_iter().map(|t| t.join().expect("batch thread panicked")).sum();
    assert_eq!(applied, n as usize);

    // Sequential single-object reference.
    let mut sequential = build();
    sequential.pool().reset_stats();
    for m in batch_a.iter().chain(batch_b.iter()) {
        sequential.upsert(*m);
    }

    // Final index state matches exactly.
    assert_eq!(parallel.len(), sequential.len());
    assert_eq!(parallel.live_partitions(), sequential.live_partitions());
    for i in 0..n {
        assert_eq!(
            parallel.index().current_key_of(UserId(i)),
            sequential.index().current_key_of(UserId(i)),
            "key of user {i}"
        );
        assert_eq!(parallel.get(UserId(i)), sequential.get(UserId(i)), "record of user {i}");
    }

    // And so do the physical I/O counters — the paper's metric. (Logical
    // page accesses legitimately differ: touching fewer pages is the whole
    // point of the batched path.) With an ample buffer neither path needs
    // a single physical read.
    let (p, s) = (parallel.pool().stats(), sequential.pool().stats());
    assert_eq!(p.physical_reads, s.physical_reads, "physical reads must match");
    assert_eq!(p.physical_reads, 0, "warm pools: no physical I/O at all");
    assert_eq!(p.physical_writes, s.physical_writes, "physical writes must match");

    // Queries agree on the merged result across all partitions.
    let window = Rect::new(0.0, 1000.0, 0.0, 1000.0);
    let mut got: Vec<u64> = parallel.range_query(&window, 140.0).iter().map(|m| m.uid.0).collect();
    let mut want: Vec<u64> =
        sequential.range_query(&window, 140.0).iter().map(|m| m.uid.0).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want);
    assert_eq!(got.len(), n as usize);
}

#[test]
fn parallel_same_partition_batches_with_disjoint_uids_match_sequential() {
    // Four threads hammer the *same* target partition with disjoint uid
    // ranges: the per-shard lock serializes the merges, and the result
    // must still equal the sequential single-object path.
    let n = 1_000u64;
    let users = population(n, 10.0);
    let sp = space();
    let part = TimePartitioning::new(120.0, 2);
    let layout = BxKeyLayout::new(sp.grid_bits);
    let build = || {
        ShardedMovingIndex::bulk_load(
            Arc::new(BufferPool::new(4096)),
            layout,
            sp,
            part,
            3.0,
            &users,
            1.0,
        )
    };

    // All updates land at t = 70 -> one target partition for every thread.
    let batches: Vec<Vec<MovingPoint>> = (0..4)
        .map(|t| {
            (t * 250..(t + 1) * 250)
                .map(|i| still(i, (i % 61) as f64 * 16.0 + 1.0, 800.0, 70.0))
                .collect()
        })
        .collect();

    let parallel = Arc::new(build());
    let threads: Vec<_> = batches
        .iter()
        .cloned()
        .map(|batch| {
            let idx = Arc::clone(&parallel);
            std::thread::spawn(move || idx.upsert_batch(&batch))
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().expect("batch thread panicked"), 250);
    }

    let sequential = build();
    for m in batches.iter().flatten() {
        sequential.upsert(*m);
    }

    assert_eq!(parallel.len(), sequential.len());
    assert_eq!(parallel.live_partitions(), sequential.live_partitions());
    for i in 0..n {
        assert_eq!(parallel.current_key_of(UserId(i)), sequential.current_key_of(UserId(i)));
        assert_eq!(parallel.get(UserId(i)), sequential.get(UserId(i)));
    }
}

#[test]
fn queries_run_concurrently_with_batched_updates() {
    // Readers scan while writers merge batches into distinct partitions:
    // no deadlock, no panic, and the final state is the fully-updated one.
    let n = 800u64;
    let users = population(n, 10.0);
    let part = TimePartitioning::new(120.0, 2);
    let tree = Arc::new(BxTree::bulk_load(
        Arc::new(BufferPool::new(256)),
        space(),
        part,
        3.0,
        &users,
        1.0,
    ));

    let writer_batches: Vec<Vec<MovingPoint>> = vec![
        (0..n / 2).map(|i| still(i, (i % 40) as f64 * 24.0 + 1.0, 300.0, 70.0)).collect(),
        (n / 2..n).map(|i| still(i, (i % 40) as f64 * 24.0 + 1.0, 700.0, 130.0)).collect(),
    ];
    let writers: Vec<_> = writer_batches
        .into_iter()
        .map(|batch| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                // Split each batch in chunks so readers interleave.
                for chunk in batch.chunks(100) {
                    tree.upsert_batch(chunk);
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let window = Rect::new(0.0, 1000.0, 0.0, 1000.0);
                let mut last = 0usize;
                for i in 0..30 {
                    let tq = 60.0 + ((r * 30 + i) % 90) as f64;
                    // Shards are scanned one lock at a time (read-committed,
                    // not a snapshot): a concurrent cross-partition migration
                    // may transiently be seen twice or not at all, so no
                    // count bound holds mid-flight — only that the scan
                    // completes without panicking or deadlocking.
                    last = tree.range_query(&window, tq).len();
                }
                last
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer panicked");
    }
    for r in readers {
        r.join().expect("reader panicked");
    }

    assert_eq!(tree.len(), n as usize);
    let found = tree.range_query(&Rect::new(0.0, 1000.0, 0.0, 1000.0), 140.0).len();
    assert_eq!(found, n as usize, "every object visible after the dust settles");
}
