//! Snapshot semantics of multi-shard scans under racing migrations.
//!
//! PR 2/PR 3 documented a read-committed anomaly: a scan locking shards
//! one at a time could observe an object **twice** (old and new entry) or
//! **not at all** while a cross-partition migration moved it between
//! shards. The per-index migration epoch closes it: scans revalidate the
//! epoch around a buffered pass and retry (or take all intersecting shard
//! locks) when a migration overlapped. These tests race scans against
//! migrating traffic and assert the anomaly is gone: every live object
//! appears exactly once in every scan.
//!
//! Run in `--release` by CI as well — interleavings shift under the
//! optimizer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use peb_repro::bx::{BxTree, TimePartitioning};
use peb_repro::common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_repro::storage::BufferPool;

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

fn space() -> SpaceConfig {
    SpaceConfig::new(1000.0, 10, 1440.0)
}

/// A grid population updated at `t`.
fn population(n: u64, t: f64) -> Vec<MovingPoint> {
    (0..n)
        .map(|i| still(i, (i % 40) as f64 * 24.0 + 3.0, (i / 40) as f64 * 90.0 + 3.0, t))
        .collect()
}

/// One full scan: every live uid must appear exactly once.
fn assert_scan_consistent(tree: &BxTree, n: u64) {
    let mut seen = vec![0u32; n as usize];
    tree.index().scan_keys(0, u128::MAX, |_, rec| {
        seen[rec.uid as usize] += 1;
        true
    });
    for (uid, count) in seen.iter().enumerate() {
        assert_eq!(
            *count, 1,
            "uid {uid} observed {count} times by a scan racing migrations \
             (0 = dropped, 2 = duplicated)"
        );
    }
}

#[test]
fn scans_racing_migrating_batches_never_drop_or_duplicate() {
    let n = 600u64;
    let part = TimePartitioning::new(120.0, 2);
    let tree = Arc::new(BxTree::bulk_load(
        Arc::new(BufferPool::sharded(4_096)),
        space(),
        part,
        3.0,
        &population(n, 10.0),
        1.0,
    ));
    let stop = AtomicBool::new(false);
    let scans_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Migrator: batches bounce every object between the label-120 and
        // label-240 partitions — each round is one big cross-shard
        // migration span.
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                let mut phase = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = if phase.is_multiple_of(2) { 70.0 } else { 10.0 };
                    tree.upsert_batch(&population(n, t));
                    phase += 1;
                }
            });
        }
        // Scanners: full-range scans must always see each uid once.
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let (stop, scans_done) = (&stop, &scans_done);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert_scan_consistent(&tree, n);
                    scans_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(700));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(scans_done.load(Ordering::Relaxed) > 0, "no scan completed during the race");
    assert!(tree.index().migration_epoch() > 0, "the migrator never migrated");
    // Quiesced: still exactly one entry per object.
    assert_scan_consistent(&tree, n);
    assert_eq!(tree.len(), n as usize);
}

#[test]
fn scans_racing_single_object_migrations_stay_consistent() {
    // The single-upsert slow path brackets its delete→insert span in the
    // same epoch; a scan interleaving with it must never see the moving
    // object in zero or two places.
    let n = 400u64;
    let part = TimePartitioning::new(120.0, 2);
    let tree = Arc::new(BxTree::bulk_load(
        Arc::new(BufferPool::sharded(2_048)),
        space(),
        part,
        3.0,
        &population(n, 10.0),
        1.0,
    ));
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                let mut phase = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let t = if phase.is_multiple_of(2) { 70.0 } else { 10.0 };
                    // Migrate one object at a time through the slow path.
                    for uid in (0..n).step_by(7) {
                        // Safety: upsert takes &self; concurrent scans are
                        // the documented-safe combination.
                        tree_upsert(&tree, still(uid, 500.0, 500.0, t));
                    }
                    phase += 1;
                }
            });
        }
        {
            let tree = Arc::clone(&tree);
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert_scan_consistent(&tree, n);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
        stop.store(true, Ordering::Relaxed);
    });
    assert_scan_consistent(&tree, n);
}

/// `BxTree::upsert` takes `&mut self` (its public API mirrors the paper's
/// exclusive-writer embedding); the sharded core underneath is the
/// `&self` concurrent path. Route through it directly.
fn tree_upsert(tree: &BxTree, m: MovingPoint) {
    tree.index().upsert(m);
}
