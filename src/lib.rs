//! Umbrella crate for the PEB-tree reproduction: re-exports the public API of
//! every workspace crate so examples and integration tests have one import
//! root.
pub use peb_btree as btree;
pub use peb_bx as bx;
pub use peb_common as common;
pub use peb_costmodel as costmodel;
pub use peb_index as index;
pub use peb_policy as policy;
pub use peb_storage as storage;
pub use peb_workload as workload;
pub use peb_zorder as zorder;
pub use pebtree;
