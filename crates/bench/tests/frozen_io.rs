//! Exact-IoStats equivalence on a frozen workload.
//!
//! The expected numbers below are the **fused-scan ledger**, re-measured
//! when `fused_scans` flipped default-on (the post-soak promotion) on the
//! same sharded pool in its 1-shard configuration — what every I/O
//! measurement runs on. Earlier trajectory entries (the seed single-mutex
//! pool, the pre-fusion default) are preserved in docs/BENCHMARKS.md;
//! this test pins the current default configuration to the last digit:
//! same eviction decisions, same dirty write-backs, same per-query
//! averages. The config thrashes the 50-frame buffer (the tree has ~82
//! leaf pages), so the numbers are sensitive to any change in eviction
//! policy or scan plan, not just to gross miscounting.

use peb_bench::harness::{run, RunConfig};
use peb_bench::updates::measure_updates_with;

#[test]
fn frozen_workload_io_is_byte_identical_to_the_seed_pool() {
    let cfg = RunConfig {
        num_users: 5_000,
        policies_per_user: 12,
        theta: 0.7,
        queries: 80,
        seed: 0xF02E,
        ..Default::default()
    };
    let m = run(&cfg);
    assert_eq!(m.peb_leaf_pages, 82);
    // Averages over 80 queries; exact equality is intended — the
    // underlying counters are integers divided by the query count.
    assert_eq!(m.peb_prq_io, 4.25, "PEB PRQ I/O drifted from the fused ledger");
    assert_eq!(m.base_prq_io, 7.8625, "baseline PRQ I/O drifted from the fused ledger");
    assert_eq!(m.peb_knn_io, 4.125, "PEB kNN I/O drifted from the fused ledger");
    assert_eq!(m.base_knn_io, 58.9375, "baseline kNN I/O drifted from the fused ledger");
}

#[test]
fn update_counters_are_reproducible_run_to_run() {
    // The batched update path deletes stale entries in sorted-uid order
    // precisely so that a fixed workload produces a fixed ledger; two
    // fresh runs must agree counter-for-counter.
    let cfg = RunConfig {
        num_users: 1_000,
        policies_per_user: 8,
        queries: 0,
        seed: 0xD17E,
        ..Default::default()
    };
    let a = measure_updates_with(&cfg, 2, 0.25);
    let b = measure_updates_with(&cfg, 2, 0.25);
    for (x, y, name) in [
        (a.seq, b.seq, "seq"),
        (a.batch, b.batch, "batch"),
        (a.unsharded, b.unsharded, "unsharded"),
    ] {
        assert_eq!(x.logical_io, y.logical_io, "{name} logical I/O not reproducible");
        assert_eq!(x.physical_io, y.physical_io, "{name} physical I/O not reproducible");
    }
}
