//! Overload experiment: goodput under saturation, with and without the
//! serving layer's defenses, on the frozen 8K-user shape.
//!
//! The model is a server that runs **scheduling rounds**: each round, a
//! burst of `multiplier × quantum` queries arrives, then the server
//! executes a `quantum`-query service slice ([`QueryServer::drain_n`]).
//! At 1× the server keeps up; at 2× and 4× it cannot, and the two
//! configurations part ways:
//!
//! * **Protected** — a bounded queue (`capacity = quantum`) with
//!   [`DropPolicy::ShedOldest`]: overflow sheds the stalest queued query
//!   as a typed [`Rejected::Shed`], so every slot the server actually
//!   spends goes to a query fresh enough to meet its deadline.
//! * **Unprotected** — the same server with an effectively unbounded
//!   queue: every arrival is admitted, the backlog grows by
//!   `(multiplier − 1) × quantum` per round, and queue wait silently eats
//!   the deadline budget stamped at admission. The deadline-checked
//!   engines still degrade cooperatively — stale queries return typed
//!   partial answers within a page visit or two — but a partial answer
//!   to a query whose client deadline passed is not goodput.
//!
//! **Goodput** here is therefore *complete* answers delivered within the
//! service horizon (`rounds` rounds; work still queued when the horizon
//! ends was never served). The deadline budget is calibrated from the
//! measured warm per-query cost — two rounds' worth of service — so the
//! numbers transfer across machines: everything asserted on is a
//! deterministic function of the virtual [`peb_common::TickClock`] the
//! buffer pool advances per page access.
//!
//! Also measured: p99 and max deadline overshoot across every served
//! answer (the cooperative-cancellation bound: a query stops within one
//! page-visit epsilon of expiry), and a byte-identity check of the event
//! ledgers across two from-scratch runs of the whole sweep (the
//! determinism contract of [`QueryServer::drain`]).
//!
//! [`Rejected::Shed`]: peb_serve::Rejected::Shed

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_index::TimePartitioning;
use peb_serve::{DropPolicy, Event, QueryServer, Request, ServeStats, ServerConfig};
use peb_storage::BufferPool;
use peb_workload::{DatasetBuilder, QueryGenerator};
use pebtree::{PebTree, PrivacyContext};

use crate::harness::{clone_store, RunConfig};

/// One page-visit epsilon: how far past its effective deadline a served
/// query may finish (the engines check the deadline at page and entry
/// boundaries, so expiry is detected within a visit or two).
pub const OVERSHOOT_EPSILON: u64 = 2;

/// One (configuration × saturation multiplier) measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverloadPoint {
    /// Offered load as a multiple of the per-round service quantum.
    pub multiplier: usize,
    /// Queries offered over the whole horizon.
    pub offered: u64,
    /// The server's outcome counters for this point.
    pub stats: ServeStats,
    /// p99 of `served_tick − max(deadline, start_tick)` over every served
    /// answer (0 when nothing overshot).
    pub p99_overshoot: u64,
    /// Worst single overshoot.
    pub max_overshoot: u64,
}

/// The whole experiment: both configurations over the multiplier sweep.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Users in the dataset (the frozen seed shape).
    pub users: usize,
    /// Scheduling rounds per point (the service horizon).
    pub rounds: usize,
    /// Service slots per round == the protected queue capacity.
    pub quantum: usize,
    /// Measured warm per-query cost, virtual ticks.
    pub calib_ticks_per_query: f64,
    /// Deadline budget stamped at admission (two rounds of service).
    pub deadline_budget: u64,
    /// Bounded-queue + shed-oldest points, one per multiplier.
    pub protected: Vec<OverloadPoint>,
    /// Unbounded-queue twin points, same multipliers.
    pub unprotected: Vec<OverloadPoint>,
    /// Whether two from-scratch runs of the sweep produced byte-identical
    /// event ledgers (must be true; asserted by callers).
    pub ledger_identical: bool,
}

impl OverloadReport {
    /// Peak goodput: complete answers of the protected 1× point.
    pub fn peak_goodput(&self) -> u64 {
        self.protected.first().map(|p| p.stats.served_complete).unwrap_or(0)
    }

    /// A point's complete answers as a fraction of peak goodput.
    pub fn retention(&self, p: &OverloadPoint) -> f64 {
        p.stats.served_complete as f64 / self.peak_goodput().max(1) as f64
    }

    /// Flat JSON trajectory entry (append-never-edit protocol, see
    /// docs/BENCHMARKS.md). All fields are deterministic virtual-clock
    /// counters — there is no wall-clock weather in this entry.
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let mut rows: Vec<(String, String)> = vec![
            ("users".into(), self.users.to_string()),
            ("rounds".into(), self.rounds.to_string()),
            ("quantum".into(), self.quantum.to_string()),
            ("calib_ticks_per_query".into(), f(self.calib_ticks_per_query)),
            ("deadline_budget".into(), self.deadline_budget.to_string()),
            ("overshoot_epsilon".into(), OVERSHOOT_EPSILON.to_string()),
            ("peak_goodput".into(), self.peak_goodput().to_string()),
            ("ledger_identical".into(), self.ledger_identical.to_string()),
        ];
        for (config, points) in [("prot", &self.protected), ("unprot", &self.unprotected)] {
            for p in points {
                let key = |name: &str| format!("{config}_x{}_{name}", p.multiplier);
                rows.push((key("offered"), p.offered.to_string()));
                rows.push((key("admitted"), p.stats.admitted.to_string()));
                rows.push((key("queue_full"), p.stats.queue_full.to_string()));
                rows.push((key("shed"), p.stats.shed.to_string()));
                rows.push((key("complete"), p.stats.served_complete.to_string()));
                rows.push((key("partial"), p.stats.served_partial.to_string()));
                rows.push((key("failed"), p.stats.failed.to_string()));
                rows.push((key("retention"), f(self.retention(p))));
                rows.push((key("p99_overshoot"), p.p99_overshoot.to_string()));
                rows.push((key("max_overshoot"), p.max_overshoot.to_string()));
            }
        }
        crate::report::json_object(&rows)
    }
}

/// The frozen overload configuration: the `BENCH_seed.json` dataset
/// shape over a resident pool (warm service cost is constant, so the
/// calibrated budget is exact).
pub fn overload_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 100, // unused: the sweep sizes its own batches
        seed: 0xBA5E,
        buffer_pages: 2_048,
        ..Default::default()
    }
}

/// Run the experiment on the frozen configuration: 16-slot rounds, an
/// 8-round horizon, saturation at 1×/2×/4×.
pub fn measure_overload() -> OverloadReport {
    measure_overload_with(&overload_config(), 16, 8, &[1, 2, 4])
}

/// Run the experiment on an arbitrary configuration. Builds the world,
/// calibrates the deadline budget from warm per-query cost, runs every
/// (configuration × multiplier) point — then does it all again from
/// scratch and byte-compares the two runs' event ledgers.
pub fn measure_overload_with(
    cfg: &RunConfig,
    quantum: usize,
    rounds: usize,
    multipliers: &[usize],
) -> OverloadReport {
    let (first, ledger_a) = sweep(cfg, quantum, rounds, multipliers);
    let (_, ledger_b) = sweep(cfg, quantum, rounds, multipliers);
    let (protected, unprotected, calib, budget) = first;
    OverloadReport {
        users: cfg.num_users,
        rounds,
        quantum,
        calib_ticks_per_query: calib,
        deadline_budget: budget,
        protected,
        unprotected,
        ledger_identical: ledger_a == ledger_b,
    }
}

type SweepOut = (Vec<OverloadPoint>, Vec<OverloadPoint>, f64, u64);

/// One from-scratch run of the whole sweep. Returns the points plus the
/// concatenated event ledgers of every point — the determinism witness.
fn sweep(
    cfg: &RunConfig,
    quantum: usize,
    rounds: usize,
    multipliers: &[usize],
) -> (SweepOut, String) {
    let dataset = DatasetBuilder::default()
        .num_users(cfg.num_users)
        .max_speed(cfg.max_speed)
        .distribution(cfg.distribution)
        .policies_per_user(cfg.policies_per_user)
        .grouping_factor(cfg.theta)
        .seed(cfg.seed)
        .build();
    let space = dataset.space;
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        space,
        dataset.users.len(),
        cfg.sv_params,
    ));
    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        space,
        TimePartitioning::default(),
        cfg.max_speed,
        Arc::clone(&ctx),
    );
    for m in &dataset.users {
        tree.upsert(*m);
    }
    let tree = Arc::new(tree);

    // One shared request tape, PRQ-heavy with a PkNN every third slot;
    // each point replays its prefix, so a point's workload is a function
    // of (shape, multiplier) only.
    let max_mult = multipliers.iter().copied().max().unwrap_or(1);
    let total = rounds * quantum * max_mult;
    let gen = QueryGenerator::new(space, dataset.users.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0CE4);
    let ranges = gen.range_batch(&mut rng, total, cfg.window_side, cfg.tq);
    let knns = gen.knn_batch(&mut rng, total, cfg.k, cfg.tq);
    let reqs: Vec<Request> = (0..total)
        .map(|i| {
            if i % 3 == 2 {
                let q = &knns[i];
                Request::Pknn { issuer: q.issuer, center: q.q, k: q.k, tq: q.tq }
            } else {
                let q = &ranges[i];
                Request::Prq { issuer: q.issuer, window: q.window, tq: q.tq }
            }
        })
        .collect();

    // Warm the pool over the whole tape (the resident pool keeps every
    // touched page, so service cost is constant afterwards), then price
    // one warm query and set the budget to two rounds of service.
    for r in &reqs {
        run_unbounded(&tree, r);
    }
    let clock = tree.pool().clock().clone();
    let t0 = clock.now();
    for r in reqs.iter().take(quantum) {
        run_unbounded(&tree, r);
    }
    let calib = (clock.now() - t0) as f64 / quantum.max(1) as f64;
    let budget = ((2 * quantum) as f64 * calib).ceil().max(1.0) as u64;

    let mut protected = Vec::new();
    let mut unprotected = Vec::new();
    let mut ledgers = String::new();
    for &mult in multipliers {
        for bounded in [true, false] {
            let server = QueryServer::new(
                Arc::clone(&tree),
                ServerConfig {
                    queue_capacity: if bounded { quantum } else { total + 1 },
                    drop_policy: if bounded {
                        DropPolicy::ShedOldest
                    } else {
                        DropPolicy::RejectNew
                    },
                    deadline_budget: budget,
                    breaker: None, // clean media; isolate admission + deadlines
                    ..ServerConfig::default()
                },
            );
            let arrivals = mult * quantum;
            for round in 0..rounds {
                for r in &reqs[round * arrivals..(round + 1) * arrivals] {
                    // ShedOldest and the oversized queue admit everything;
                    // rejections (none expected here) are typed and counted.
                    let _ = server.submit(*r);
                }
                server.drain_n(quantum);
            }
            let (p99, max) = overshoots(&server);
            let point = OverloadPoint {
                multiplier: mult,
                offered: (rounds * arrivals) as u64,
                stats: server.stats(),
                p99_overshoot: p99,
                max_overshoot: max,
            };
            ledgers.push_str(&format!(
                "== {} x{mult}\n",
                if bounded { "protected" } else { "unprotected" }
            ));
            ledgers.push_str(&server.ledger_text());
            if bounded {
                protected.push(point);
            } else {
                unprotected.push(point);
            }
        }
    }
    ((protected, unprotected, calib, budget), ledgers)
}

fn run_unbounded(tree: &PebTree, r: &Request) {
    match *r {
        Request::Prq { issuer, window, tq } => {
            let _ = tree.prq(issuer, &window, tq);
        }
        Request::Pknn { issuer, center, k, tq } => {
            let _ = tree.pknn(issuer, center, k, tq);
        }
    }
}

/// Replay a server's ledger into (p99, max) deadline overshoot over the
/// served answers: `served_tick − max(deadline_at, start_tick)`, clamped
/// at zero. The `start_tick` floor matters for backlogged queries that
/// never *started* before expiry — cooperative cancellation promises
/// they stop within a page visit of starting, not that they time-travel.
fn overshoots(server: &QueryServer) -> (u64, u64) {
    let mut deadline: HashMap<u64, u64> = HashMap::new();
    let mut floor: HashMap<u64, u64> = HashMap::new();
    let mut over: Vec<u64> = Vec::new();
    for e in server.ledger() {
        match e.event {
            Event::Admitted { ticket, deadline_at, .. } => {
                deadline.insert(ticket, deadline_at);
            }
            Event::Started { ticket } | Event::Retried { ticket, .. } => {
                floor.insert(ticket, e.tick);
            }
            Event::Served { ticket, .. } => {
                let d = *deadline.get(&ticket).expect("served ticket was admitted");
                let f = *floor.get(&ticket).expect("served ticket was started");
                over.push(e.tick.saturating_sub(d.max(f)));
            }
            _ => {}
        }
    }
    over.sort_unstable();
    let p99 =
        if over.is_empty() { 0 } else { over[((over.len() - 1) as f64 * 0.99).ceil() as usize] };
    (p99, over.last().copied().unwrap_or(0))
}

/// Figure-mode table.
pub fn print_table(r: &OverloadReport) {
    println!(
        "config\tmult\toffered\tcomplete\tpartial\tshed\tretention\tp99_over\t({} users, {} rounds x {} slots, budget {} ticks)",
        r.users, r.rounds, r.quantum, r.deadline_budget
    );
    for (name, points) in [("protected", &r.protected), ("unprotected", &r.unprotected)] {
        for p in points {
            println!(
                "{name}\tx{}\t{}\t{}\t{}\t{}\t{:.2}\t{}",
                p.multiplier,
                p.offered,
                p.stats.served_complete,
                p.stats.served_partial,
                p.stats.shed,
                r.retention(p),
                p.p99_overshoot,
            );
        }
    }
    println!("ledger_identical\t{}", r.ledger_identical);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shedding_preserves_goodput_where_the_unprotected_twin_collapses() {
        let cfg = RunConfig {
            num_users: 1_200,
            policies_per_user: 8,
            seed: 0x0BAD_10AD,
            buffer_pages: 1_024,
            ..Default::default()
        };
        let r = measure_overload_with(&cfg, 8, 6, &[1, 4]);

        assert!(r.ledger_identical, "two from-scratch sweeps produced different ledgers");
        assert!(r.calib_ticks_per_query > 0.0);
        assert!(r.peak_goodput() > 0, "the 1x point must serve complete answers");

        // At 1x both configurations keep up: everything offered is served
        // complete within its deadline.
        for p in [&r.protected[0], &r.unprotected[0]] {
            assert_eq!(p.stats.served_complete, p.offered, "1x must be all-complete");
        }

        // The acceptance bars: shedding retains >= 70% of peak goodput at
        // 4x; the unbounded-queue twin collapses below 50% because queue
        // wait eats the deadlines stamped at admission.
        let prot4 = r.protected.last().unwrap();
        let unprot4 = r.unprotected.last().unwrap();
        assert!(
            r.retention(prot4) >= 0.7,
            "protected 4x retention {:.2} below the bar",
            r.retention(prot4)
        );
        assert!(
            r.retention(unprot4) < 0.5,
            "unprotected 4x retention {:.2} did not collapse",
            r.retention(unprot4)
        );
        assert!(prot4.stats.shed > 0, "overload must shed typed victims");
        assert_eq!(unprot4.stats.shed + unprot4.stats.queue_full, 0, "twin must admit everything");

        // Cooperative cancellation: no served answer finished more than a
        // page-visit epsilon past its effective deadline.
        for p in r.protected.iter().chain(r.unprotected.iter()) {
            assert!(
                p.p99_overshoot <= OVERSHOOT_EPSILON,
                "x{} p99 overshoot {} ticks",
                p.multiplier,
                p.p99_overshoot
            );
            assert_eq!(p.stats.failed, 0, "clean media must not fail queries");
        }
    }

    #[test]
    fn json_entry_is_well_formed() {
        let point = |mult: usize, complete: u64| OverloadPoint {
            multiplier: mult,
            offered: 128,
            stats: ServeStats { served_complete: complete, ..Default::default() },
            p99_overshoot: 0,
            max_overshoot: 1,
        };
        let r = OverloadReport {
            users: 8_000,
            rounds: 8,
            quantum: 16,
            calib_ticks_per_query: 12.5,
            deadline_budget: 400,
            protected: vec![point(1, 128), point(4, 128)],
            unprotected: vec![point(1, 128), point(4, 40)],
            ledger_identical: true,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert!(j.contains("\"prot_x4_retention\": 1.00"));
        assert!(j.contains("\"unprot_x4_retention\": 0.31"));
        assert!(j.contains("\"peak_goodput\": 128"));
        assert!(j.contains("\"ledger_identical\": true"));
        // 8 header keys + 2 configs x 2 points x 10 fields.
        assert_eq!(j.matches(':').count(), 48, "one key per field");
    }
}
