//! Write-optimized ingestion experiment: the B-epsilon-style message
//! buffers vs the direct delete+insert write path, on both engines,
//! measured on the same frozen 8K-user configuration as `BENCH_seed.json`.
//!
//! Four variants apply the **identical** pre-generated update rounds
//! (same seed, same order) to identically bulk-loaded indexes:
//!
//! * `peb_direct`   — PEB-tree, direct write path (the frozen reference);
//! * `peb_buffered` — PEB-tree, [`pebtree::PebTree::set_buffered_writes`]
//!   on for the whole run, turned off at the end so the **final flush is
//!   inside the measurement window** (no deferred work escapes the
//!   ledger);
//! * `bx_direct` / `bx_buffered` — the same pair over the raw Bx-tree.
//!
//! Reported per variant: wall-clock upserts/second, the deterministic
//! buffer-pool counters, and the new [`peb_btree::WriteStats`] ledger —
//! in particular **leaf pages written per upsert**, the quantity the
//! message buffers exist to cut (a batched downward flush pays one
//! read-merge-write per touched leaf instead of one per message). The
//! tests assert on the deterministic counters; wall clock is reported for
//! the trajectory but is machine noise.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_bx::BxTree;
use peb_common::MovingPoint;
use peb_storage::BufferPool;
use peb_workload::{Dataset, DatasetBuilder, UpdateStream};
use pebtree::{PebTree, PrivacyContext};

use crate::harness::{clone_store, RunConfig};

/// One variant's measurement.
#[derive(Debug, Clone, Copy)]
pub struct IngestVariant {
    /// Wall-clock sustained upsert throughput.
    pub upserts_per_sec: f64,
    /// Buffer-pool page accesses during the run (hits included) —
    /// deterministic for a fixed seed.
    pub logical_io: u64,
    /// Physical page reads + writes during the run.
    pub physical_io: u64,
    /// Leaf pages written ([`peb_btree::WriteStats::leaf_pages_written`]),
    /// including any final flush.
    pub leaf_pages_written: u64,
    /// Messages that went through the buffers (0 on the direct path).
    pub messages_buffered: u64,
    /// Downward buffer flushes (0 on the direct path).
    pub buffer_flushes: u64,
}

impl IngestVariant {
    /// Leaf pages written per applied upsert.
    pub fn leaf_writes_per_upsert(&self, updates: usize) -> f64 {
        self.leaf_pages_written as f64 / updates.max(1) as f64
    }
}

/// The whole experiment: direct vs buffered ingestion over identical
/// update rounds, on both engines.
#[derive(Debug, Clone, Copy)]
pub struct IngestBenchReport {
    pub users: usize,
    pub rounds: usize,
    /// Fraction of the population updated per round.
    pub round_fraction: f64,
    /// Total updates applied per variant.
    pub updates_total: usize,
    pub peb_direct: IngestVariant,
    pub peb_buffered: IngestVariant,
    pub bx_direct: IngestVariant,
    pub bx_buffered: IngestVariant,
}

impl IngestBenchReport {
    /// Wall-clock speedup of buffered over direct ingestion (PEB-tree).
    pub fn peb_speedup(&self) -> f64 {
        self.peb_buffered.upserts_per_sec / self.peb_direct.upserts_per_sec.max(1e-9)
    }

    /// Wall-clock speedup of buffered over direct ingestion (Bx-tree).
    pub fn bx_speedup(&self) -> f64 {
        self.bx_buffered.upserts_per_sec / self.bx_direct.upserts_per_sec.max(1e-9)
    }

    /// Leaf-writes-per-upsert reduction factor, direct / buffered (PEB).
    pub fn peb_leaf_write_reduction(&self) -> f64 {
        self.peb_direct.leaf_pages_written as f64
            / self.peb_buffered.leaf_pages_written.max(1) as f64
    }

    /// Leaf-writes-per-upsert reduction factor, direct / buffered (Bx).
    pub fn bx_leaf_write_reduction(&self) -> f64 {
        self.bx_direct.leaf_pages_written as f64 / self.bx_buffered.leaf_pages_written.max(1) as f64
    }

    /// Flat JSON trajectory entry (same style as
    /// [`crate::updates::UpdateBenchReport::to_json`]).
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let n = self.updates_total;
        let variant = |name: &str, v: &IngestVariant| -> Vec<(String, String)> {
            vec![
                (format!("{name}_upserts_per_sec"), f(v.upserts_per_sec)),
                (format!("{name}_logical_io"), v.logical_io.to_string()),
                (format!("{name}_leaf_pages_written"), v.leaf_pages_written.to_string()),
                (format!("{name}_leaf_writes_per_upsert"), f(v.leaf_writes_per_upsert(n))),
            ]
        };
        let mut rows: Vec<(String, String)> = vec![
            ("users".to_string(), self.users.to_string()),
            ("rounds".to_string(), self.rounds.to_string()),
            ("round_fraction".to_string(), f(self.round_fraction)),
            ("updates_total".to_string(), n.to_string()),
        ];
        rows.extend(variant("peb_direct", &self.peb_direct));
        rows.extend(variant("peb_buffered", &self.peb_buffered));
        rows.extend(variant("bx_direct", &self.bx_direct));
        rows.extend(variant("bx_buffered", &self.bx_buffered));
        rows.extend([
            ("peb_buffered_messages".to_string(), self.peb_buffered.messages_buffered.to_string()),
            ("peb_buffered_flushes".to_string(), self.peb_buffered.buffer_flushes.to_string()),
            ("bx_buffered_messages".to_string(), self.bx_buffered.messages_buffered.to_string()),
            ("bx_buffered_flushes".to_string(), self.bx_buffered.buffer_flushes.to_string()),
            ("peb_ingest_speedup".to_string(), f(self.peb_speedup())),
            ("peb_leaf_write_reduction".to_string(), f(self.peb_leaf_write_reduction())),
            ("bx_ingest_speedup".to_string(), f(self.bx_speedup())),
            ("bx_leaf_write_reduction".to_string(), f(self.bx_leaf_write_reduction())),
        ]);
        let rows: Vec<(&str, String)> = rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        crate::report::json_object(&rows)
    }
}

/// Run the experiment on the frozen baseline configuration (8K users, the
/// `BENCH_seed.json` shape): four 25%-of-the-population update rounds.
pub fn measure_ingest() -> IngestBenchReport {
    measure_ingest_with(&crate::baseline::baseline_config(), 4, 0.25)
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one). All variants see identical rounds and start from identically
/// bulk-loaded indexes.
pub fn measure_ingest_with(cfg: &RunConfig, rounds: usize, fraction: f64) -> IngestBenchReport {
    let dataset = DatasetBuilder::default()
        .num_users(cfg.num_users)
        .max_speed(cfg.max_speed)
        .distribution(cfg.distribution)
        .policies_per_user(cfg.policies_per_user)
        .grouping_factor(cfg.theta)
        .seed(cfg.seed)
        .build();
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        dataset.space,
        dataset.users.len(),
        cfg.sv_params,
    ));

    // Pre-generate the rounds once so every variant applies the exact
    // same updates in the exact same order.
    let mut stream = UpdateStream::new(dataset.space, cfg.max_speed, dataset.users.clone(), 30.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x16E5);
    let all_rounds: Vec<Vec<MovingPoint>> =
        (0..rounds).map(|_| stream.next_round(&mut rng, fraction)).collect();
    let updates_total: usize = all_rounds.iter().map(|r| r.len()).sum();

    let peb_direct = run_peb(cfg, &dataset, &ctx, &all_rounds, updates_total, false);
    let peb_buffered = run_peb(cfg, &dataset, &ctx, &all_rounds, updates_total, true);
    let bx_direct = run_bx(cfg, &dataset, &all_rounds, updates_total, false);
    let bx_buffered = run_bx(cfg, &dataset, &all_rounds, updates_total, true);

    IngestBenchReport {
        users: dataset.users.len(),
        rounds,
        round_fraction: fraction,
        updates_total,
        peb_direct,
        peb_buffered,
        bx_direct,
        bx_buffered,
    }
}

fn run_peb(
    cfg: &RunConfig,
    dataset: &Dataset,
    ctx: &Arc<PrivacyContext>,
    all_rounds: &[Vec<MovingPoint>],
    updates_total: usize,
    buffered: bool,
) -> IngestVariant {
    let mut tree = PebTree::bulk_load(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        dataset.space,
        peb_index::TimePartitioning::default(),
        cfg.max_speed,
        Arc::clone(ctx),
        &dataset.users,
        1.0,
    );
    // The window measures sustained ingestion, not the bulk build.
    tree.reset_write_stats();
    let pool = Arc::clone(tree.pool());
    pool.reset_stats();
    tree.set_buffered_writes(buffered);
    let started = Instant::now();
    for round in all_rounds {
        for m in round {
            tree.upsert(*m);
        }
    }
    if buffered {
        // Final flush lands inside the window: buffering must pay for its
        // own deferred work to claim a throughput win.
        tree.set_buffered_writes(false);
    }
    variant(started, updates_total, &pool, tree.write_stats())
}

fn run_bx(
    cfg: &RunConfig,
    dataset: &Dataset,
    all_rounds: &[Vec<MovingPoint>],
    updates_total: usize,
    buffered: bool,
) -> IngestVariant {
    let mut tree = BxTree::bulk_load(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        dataset.space,
        peb_index::TimePartitioning::default(),
        cfg.max_speed,
        &dataset.users,
        1.0,
    );
    tree.reset_write_stats();
    let pool = Arc::clone(tree.pool());
    pool.reset_stats();
    tree.set_buffered_writes(buffered);
    let started = Instant::now();
    for round in all_rounds {
        for m in round {
            tree.upsert(*m);
        }
    }
    if buffered {
        tree.set_buffered_writes(false);
    }
    variant(started, updates_total, &pool, tree.write_stats())
}

fn variant(
    started: Instant,
    updates: usize,
    pool: &Arc<BufferPool>,
    w: peb_btree::WriteStats,
) -> IngestVariant {
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let s = pool.stats();
    IngestVariant {
        upserts_per_sec: updates as f64 / wall,
        logical_io: s.logical_reads,
        physical_io: s.total_io(),
        leaf_pages_written: w.leaf_pages_written,
        messages_buffered: w.messages_buffered,
        buffer_flushes: w.buffer_flushes,
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &IngestBenchReport) {
    println!(
        "variant\tupserts_per_sec\tlogical_page_accesses\tleaf_pages_written\tleaf_writes_per_upsert\t({} users, {} rounds x {:.0}%)",
        r.users,
        r.rounds,
        r.round_fraction * 100.0
    );
    for (name, v) in [
        ("peb_direct", &r.peb_direct),
        ("peb_buffered", &r.peb_buffered),
        ("bx_direct", &r.bx_direct),
        ("bx_buffered", &r.bx_buffered),
    ] {
        println!(
            "{name}\t{:.0}\t{}\t{}\t{:.3}",
            v.upserts_per_sec,
            v.logical_io,
            v.leaf_pages_written,
            v.leaf_writes_per_upsert(r.updates_total)
        );
    }
    println!(
        "peb: speedup {:.2}x, leaf-write reduction {:.2}x | bx: speedup {:.2}x, leaf-write reduction {:.2}x",
        r.peb_speedup(),
        r.peb_leaf_write_reduction(),
        r.bx_speedup(),
        r.bx_leaf_write_reduction()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_ingest_cuts_leaf_writes_on_both_engines() {
        // Wall clock is machine noise; the WriteStats ledger is
        // deterministic for a fixed seed — and leaf writes are what the
        // buffers exist to cut. The 2x bound is the acceptance gate the
        // full-size BENCH_ingest run must clear too.
        let cfg = RunConfig {
            num_users: 1_500,
            policies_per_user: 8,
            queries: 0,
            seed: 0x16E57,
            ..Default::default()
        };
        let r = measure_ingest_with(&cfg, 3, 0.25);
        assert_eq!(r.updates_total, 3 * 375);
        for (name, direct, buffered) in
            [("peb", &r.peb_direct, &r.peb_buffered), ("bx", &r.bx_direct, &r.bx_buffered)]
        {
            assert!(
                buffered.leaf_pages_written * 2 <= direct.leaf_pages_written,
                "{name}: buffered {} vs direct {} leaf writes — batching must at least halve them",
                buffered.leaf_pages_written,
                direct.leaf_pages_written
            );
            assert_eq!(
                buffered.messages_buffered as usize,
                2 * r.updates_total,
                "{name}: every upsert is one tombstone + one put message"
            );
            assert!(buffered.buffer_flushes > 0, "{name}: the run must actually flush");
            assert_eq!(direct.messages_buffered, 0);
            assert!(direct.upserts_per_sec > 0.0 && buffered.upserts_per_sec > 0.0);
        }
    }

    #[test]
    fn json_entry_is_well_formed() {
        let v = IngestVariant {
            upserts_per_sec: 1000.0,
            logical_io: 10,
            physical_io: 2,
            leaf_pages_written: 100,
            messages_buffered: 0,
            buffer_flushes: 0,
        };
        let b = IngestVariant {
            upserts_per_sec: 2000.0,
            leaf_pages_written: 25,
            messages_buffered: 400,
            buffer_flushes: 3,
            ..v
        };
        let r = IngestBenchReport {
            users: 8000,
            rounds: 4,
            round_fraction: 0.25,
            updates_total: 8000,
            peb_direct: v,
            peb_buffered: b,
            bx_direct: v,
            bx_buffered: b,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert_eq!(j.matches(':').count(), 28, "one key per field");
        assert!(j.contains("\"peb_ingest_speedup\": 2.00"));
        assert!(j.contains("\"peb_leaf_write_reduction\": 4.00"));
    }
}
