//! Durability experiment: what the write-ahead log costs while running
//! and how fast a crash recovers, on the frozen 8K-user configuration.
//!
//! One durable PEB-tree ingests the whole population with logging on,
//! checkpoints once, then applies update rounds that stay **after** the
//! checkpoint — the log tail recovery has to replay. The run then
//! simulates a crash at its worst point (nothing flushed since the
//! checkpoint), harvests the two simulated platters, and times the full
//! recovery pipeline: log scan + undo/redo replay
//! ([`peb_storage::recover`]), log resumption ([`peb_storage::Wal::resume`]),
//! and index reattachment ([`pebtree::PebTree::recover`]).
//!
//! Reported: the deterministic log ledgers (records, bytes, log-page
//! writes), **log-write amplification** — log-page writes per data-page
//! write, the price of the log-before-page rule — and the replay counters,
//! plus wall-clock recovery time (reported for the trajectory but machine
//! noise; the tests assert only on the deterministic counters and on the
//! recovered index matching the crashed one object-for-object).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_common::MovingPoint;
use peb_index::TimePartitioning;
use peb_storage::BufferPool;
use peb_workload::{DatasetBuilder, UpdateStream};
use pebtree::{PebTree, PrivacyContext};

use crate::harness::{clone_store, RunConfig};

/// Everything the durable run and its recovery measured.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryBenchReport {
    pub users: usize,
    pub rounds: usize,
    /// Fraction of the population updated per round.
    pub round_fraction: f64,
    /// Updates applied after the checkpoint (the replay tail's work).
    pub updates_total: usize,
    /// Mutations the log proved committed at the crash.
    pub committed_ops: u64,
    /// Log records appended over the whole run.
    pub wal_records: u64,
    /// Log bytes appended over the whole run.
    pub wal_bytes: u64,
    /// Physical log-page writes (the durability overhead).
    pub wal_page_writes: u64,
    /// Physical data-page writes of the same run.
    pub data_page_writes: u64,
    /// Pages flushed by the mid-run checkpoint.
    pub checkpoint_pages: usize,
    /// Valid records the recovery scan walked.
    pub replay_scanned: u64,
    /// Redo records applied to the data disk.
    pub replay_records: u64,
    /// Undo pre-images applied to the data disk.
    pub replay_preimages: u64,
    /// Objects in the recovered index (must equal `users`).
    pub recovered_objects: usize,
    /// Wall-clock seconds for scan + replay + resume + reattach.
    pub recovery_secs: f64,
}

impl RecoveryBenchReport {
    /// Log-page writes per data-page write — how much physical write
    /// traffic the log-before-page rule multiplies in.
    pub fn log_write_amplification(&self) -> f64 {
        self.wal_page_writes as f64 / self.data_page_writes.max(1) as f64
    }

    /// Log bytes appended per committed mutation.
    pub fn log_bytes_per_op(&self) -> f64 {
        self.wal_bytes as f64 / self.committed_ops.max(1) as f64
    }

    /// Flat JSON trajectory entry (same style as
    /// [`crate::ingest::IngestBenchReport::to_json`]).
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let rows: Vec<(&str, String)> = vec![
            ("users", self.users.to_string()),
            ("rounds", self.rounds.to_string()),
            ("round_fraction", f(self.round_fraction)),
            ("updates_total", self.updates_total.to_string()),
            ("committed_ops", self.committed_ops.to_string()),
            ("wal_records", self.wal_records.to_string()),
            ("wal_bytes", self.wal_bytes.to_string()),
            ("wal_page_writes", self.wal_page_writes.to_string()),
            ("data_page_writes", self.data_page_writes.to_string()),
            ("log_write_amplification", f(self.log_write_amplification())),
            ("log_bytes_per_op", f(self.log_bytes_per_op())),
            ("checkpoint_pages", self.checkpoint_pages.to_string()),
            ("replay_scanned", self.replay_scanned.to_string()),
            ("replay_records", self.replay_records.to_string()),
            ("replay_preimages", self.replay_preimages.to_string()),
            ("recovered_objects", self.recovered_objects.to_string()),
            ("recovery_secs", f(self.recovery_secs)),
        ];
        crate::report::json_object(&rows)
    }
}

/// Run the experiment on the frozen baseline configuration (8K users,
/// the `BENCH_seed.json` shape): one checkpoint after load, then two
/// 25%-of-the-population update rounds left unflushed for replay.
pub fn measure_recovery() -> RecoveryBenchReport {
    measure_recovery_with(&crate::baseline::baseline_config(), 2, 0.25)
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one). The crash is simulated at the run's worst point: every update
/// after the single checkpoint lives only in the log.
pub fn measure_recovery_with(cfg: &RunConfig, rounds: usize, fraction: f64) -> RecoveryBenchReport {
    let dataset = DatasetBuilder::default()
        .num_users(cfg.num_users)
        .max_speed(cfg.max_speed)
        .distribution(cfg.distribution)
        .policies_per_user(cfg.policies_per_user)
        .grouping_factor(cfg.theta)
        .seed(cfg.seed)
        .build();
    let space = dataset.space;
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        space,
        dataset.users.len(),
        cfg.sv_params,
    ));
    let part = TimePartitioning::default();

    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        space,
        part,
        cfg.max_speed,
        Arc::clone(&ctx),
    );
    tree.set_buffered_writes(cfg.buffered_writes);
    tree.set_durable(true);
    for m in &dataset.users {
        tree.upsert(*m);
    }
    let checkpoint_pages = tree.checkpoint();

    // Post-checkpoint tail: these updates exist only in the log when the
    // simulated crash hits.
    let mut stream = UpdateStream::new(space, cfg.max_speed, dataset.users.clone(), 30.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9EC0);
    let mut updates_total = 0usize;
    for _ in 0..rounds {
        let round: Vec<MovingPoint> = stream.next_round(&mut rng, fraction);
        updates_total += round.len();
        for m in &round {
            tree.upsert(*m);
        }
    }

    let wal = tree.pool().wal_stats();
    let io = tree.pool().stats();
    let committed_ops = tree.committed_ops();

    // Crash now: clone the platters as they stand (resident frames and
    // the unforced log tail are lost, exactly like a real power cut).
    let (mut data, log) = tree.pool().harvest_crash_state();
    let started = Instant::now();
    let rec = peb_storage::recover(&mut data, &log);
    let resumed = peb_storage::Wal::resume(log, &rec);
    let pool = Arc::new(BufferPool::from_recovered(cfg.buffer_pages, 1, data, resumed));
    let back = PebTree::recover(pool, &rec, space, part, cfg.max_speed, Arc::clone(&ctx));
    let recovery_secs = started.elapsed().as_secs_f64();

    RecoveryBenchReport {
        users: dataset.users.len(),
        rounds,
        round_fraction: fraction,
        updates_total,
        committed_ops,
        wal_records: wal.records,
        wal_bytes: wal.bytes,
        wal_page_writes: wal.page_writes,
        data_page_writes: io.physical_writes,
        checkpoint_pages,
        replay_scanned: rec.records_scanned,
        replay_records: rec.records_replayed,
        replay_preimages: rec.preimages_applied,
        recovered_objects: back.len(),
        recovery_secs,
    }
}

/// Figure-mode table (wall clock last — it is machine noise).
pub fn print_table(r: &RecoveryBenchReport) {
    println!(
        "metric\tvalue\t({} users, {} rounds x {:.0}% after one checkpoint)",
        r.users,
        r.rounds,
        r.round_fraction * 100.0
    );
    println!("committed_ops\t{}", r.committed_ops);
    println!("wal_records\t{}", r.wal_records);
    println!("wal_bytes\t{}", r.wal_bytes);
    println!("wal_page_writes\t{}", r.wal_page_writes);
    println!("data_page_writes\t{}", r.data_page_writes);
    println!("log_write_amplification\t{:.2}", r.log_write_amplification());
    println!("log_bytes_per_op\t{:.1}", r.log_bytes_per_op());
    println!("replay_records\t{}", r.replay_records);
    println!("replay_preimages\t{}", r.replay_preimages);
    println!("recovered_objects\t{}", r.recovered_objects);
    println!("recovery_secs\t{:.4}", r.recovery_secs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_restores_every_object_with_bounded_log_cost() {
        let cfg = RunConfig {
            num_users: 800,
            policies_per_user: 8,
            queries: 0,
            seed: 0x9EC07,
            ..Default::default()
        };
        let r = measure_recovery_with(&cfg, 2, 0.25);
        assert_eq!(r.recovered_objects, r.users, "recovery must restore every live object");
        assert_eq!(r.committed_ops, (r.users + r.updates_total) as u64);
        assert!(r.replay_records > 0, "the post-checkpoint tail must be replayed");
        assert!(r.wal_page_writes > 0 && r.data_page_writes > 0);
        assert!(r.log_write_amplification() > 0.0);
        assert!(r.replay_scanned >= r.replay_records);
    }

    #[test]
    fn json_entry_is_well_formed() {
        let r = RecoveryBenchReport {
            users: 800,
            rounds: 2,
            round_fraction: 0.25,
            updates_total: 400,
            committed_ops: 1200,
            wal_records: 5000,
            wal_bytes: 1 << 20,
            wal_page_writes: 300,
            data_page_writes: 100,
            checkpoint_pages: 40,
            replay_scanned: 5000,
            replay_records: 900,
            replay_preimages: 30,
            recovered_objects: 800,
            recovery_secs: 0.01,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        for key in ["log_write_amplification", "recovery_secs", "recovered_objects"] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(r.log_write_amplification(), 3.0);
    }
}
