//! Optimistic-read experiment: how much locking the read path avoids.
//!
//! This PR moved the whole B+-tree read path onto the pool's lock-free
//! versioned pages. The wall-clock benefit needs cores (the dev/CI box
//! has one), so — like `hot_lock_share` before it — this experiment
//! reports **deterministic counters**: for each engine and pool
//! configuration it runs the identical warm PRQ batch twice, once over a
//! pool with optimistic reads disabled (every page touch takes a shard
//! mutex — the PR 3 read path) and once with them enabled, and records
//! locks acquired per query plus the optimistic hit/retry/fallback
//! split. The pool is sized to keep the working set resident, so the
//! measurement isolates the buffer-hit fast path the mutexes used to
//! serialize.
//!
//! It also recomputes the hottest-lock concentration counting only
//! **acquired locks**: PR 3's `hot_lock_share` counted every page touch
//! against the lock that *would* serve it; with the read path lock-free
//! the honest metric is the share of the locks actually taken.
//!
//! Both pools of a pair return identical query results and identical I/O
//! counters — the experiment cross-checks this — so the entry isolates
//! locking, not workload drift.

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_storage::LockStats;
use peb_workload::queries::RangeQuerySpec;
use peb_workload::QueryGenerator;

use crate::harness::{RunConfig, World};
use crate::scans::SCAN_POOL_SHARDS;

/// One engine × pool-configuration measurement.
#[derive(Debug, Clone, Copy)]
pub struct OptReadPoint {
    /// Pool lock shards (1 = the paper-exact single-mutex layout).
    pub pool_shards: usize,
    /// Shard-mutex acquisitions per query with optimistic reads **off**.
    pub locked_locks_per_query: f64,
    /// Shard-mutex acquisitions per query with optimistic reads **on**.
    pub opt_locks_per_query: f64,
    /// The optimistic run's locking ledger over the whole batch.
    pub opt: LockStats,
    /// Fraction of *acquired* locks taken by the hottest shard in the
    /// optimistic run (1.0 for a single-shard pool by construction; with
    /// no locks acquired at all it reports 0.0 — nothing was hot).
    pub hot_lock_share_acquired: f64,
}

impl OptReadPoint {
    /// Fraction of locked-path lock acquisitions the optimistic path
    /// avoided (the acceptance metric: ≥ 0.5 on the frozen config).
    pub fn lock_reduction(&self) -> f64 {
        if self.locked_locks_per_query <= 0.0 {
            return 0.0;
        }
        1.0 - self.opt_locks_per_query / self.locked_locks_per_query
    }
}

/// The whole experiment: both engines over single-shard and sharded pools.
#[derive(Debug, Clone)]
pub struct OptReadReport {
    /// Users in the dataset (the frozen seed shape).
    pub users: usize,
    /// Queries in the PRQ batch.
    pub queries: usize,
    /// Total frame budget of each pool (working set stays resident).
    pub pool_pages: usize,
    /// PEB-tree points: `[single-shard pool, sharded pool]`.
    pub peb: Vec<OptReadPoint>,
    /// Bx-tree (spatial baseline) points, same order.
    pub bx: Vec<OptReadPoint>,
}

/// The frozen optimistic-read configuration: the `BENCH_scans.json`
/// dataset shape with the same warm 2048-page pool.
///
/// The plan is pinned to the legacy per-interval scans even though fused
/// scans are on by default now: this experiment's locked-vs-optimistic
/// cross-check requires a plan whose I/O ledger is independent of the
/// read path, and the fused descent cache validates through the
/// versioned-page mirror — on a locked pool it has no cache at all, so
/// the fused ledgers legitimately differ between the two pools.
pub fn optread_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 64,
        seed: 0xBA5E,
        buffer_pages: 2_048,
        fused_scans: false,
        ..Default::default()
    }
}

/// Run the experiment on the frozen configuration.
pub fn measure_optreads() -> OptReadReport {
    measure_optreads_with(&optread_config(), &[1, SCAN_POOL_SHARDS])
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one): for every shard count, build each engine over a locked-only pool
/// and an optimistic pool, warm both, cross-check results and I/O, then
/// measure the locking ledgers of one pass over the batch.
pub fn measure_optreads_with(cfg: &RunConfig, shard_counts: &[usize]) -> OptReadReport {
    // The harness always builds datasets over the default space, so the
    // query batch can be generated up front, shared by every pool pair.
    let gen = QueryGenerator::new(peb_common::SpaceConfig::default(), cfg.num_users);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0097);
    let ranges = gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);

    let mut peb = Vec::new();
    let mut bx = Vec::new();
    for &shards in shard_counts {
        let locked = World::build(&RunConfig {
            pool_shards: shards,
            optimistic_reads: false,
            ..cfg.clone()
        });
        let opt =
            World::build(&RunConfig { pool_shards: shards, optimistic_reads: true, ..cfg.clone() });

        // Warm both pools; the warm pass doubles as the result and
        // I/O cross-check between the two read paths.
        for (i, q) in ranges.iter().enumerate() {
            let a: Vec<_> =
                locked.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
            let b: Vec<_> = opt.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
            assert_eq!(a, b, "PEB query {i}: optimistic reads changed the result");
            let a: Vec<_> = locked
                .baseline
                .prq(&locked.ctx.store, q.issuer, &q.window, q.tq)
                .iter()
                .map(|m| m.uid)
                .collect();
            let b: Vec<_> = opt
                .baseline
                .prq(&opt.ctx.store, q.issuer, &q.window, q.tq)
                .iter()
                .map(|m| m.uid)
                .collect();
            assert_eq!(a, b, "Bx query {i}: optimistic reads changed the result");
        }

        peb.push(measure_pair(shards, &ranges, |w, q| {
            let _ = w.peb.prq(q.issuer, &q.window, q.tq);
        })(&locked, &opt));
        bx.push(measure_pair(shards, &ranges, |w, q| {
            let _ = w.baseline.prq(&w.ctx.store, q.issuer, &q.window, q.tq);
        })(&locked, &opt));
    }

    OptReadReport {
        users: cfg.num_users,
        queries: cfg.queries,
        pool_pages: cfg.buffer_pages,
        peb,
        bx,
    }
}

/// Measure one engine pair (locked-only world vs optimistic world) on the
/// warm batch and assemble the point.
fn measure_pair<'a>(
    shards: usize,
    ranges: &'a [RangeQuerySpec],
    run: impl Fn(&World, &RangeQuerySpec) + 'a,
) -> impl FnOnce(&World, &World) -> OptReadPoint + 'a {
    move |locked: &World, opt: &World| {
        let locked_pool = locked.peb.pool().num_shards(); // same for both engines
        debug_assert_eq!(locked_pool, opt.peb.pool().num_shards());

        let batch = |w: &World| {
            // Reset both engines' pools; only the engine under `run`
            // accumulates counters, the other stays at zero.
            w.peb.pool().reset_stats();
            w.baseline.pool().reset_stats();
            for q in ranges {
                run(w, q);
            }
            let l = w.peb.pool().lock_stats().merged(&w.baseline.pool().lock_stats());
            let io = w.peb.pool().stats().merged(&w.baseline.pool().stats());
            let per_shard =
                [w.peb.pool().shard_lock_stats(), w.baseline.pool().shard_lock_stats()].concat();
            (l, io, per_shard)
        };
        let (locked_stats, locked_io, _) = batch(locked);
        let (opt_stats, opt_io, opt_shards) = batch(opt);

        assert_eq!(locked_io, opt_io, "optimistic reads must leave the warm I/O ledger untouched");

        let acquired_total: u64 = opt_shards.iter().map(|s| s.lock_acquisitions).sum();
        let acquired_max: u64 = opt_shards.iter().map(|s| s.lock_acquisitions).max().unwrap_or(0);
        let n = ranges.len().max(1) as f64;
        OptReadPoint {
            pool_shards: shards,
            locked_locks_per_query: locked_stats.lock_acquisitions as f64 / n,
            opt_locks_per_query: opt_stats.lock_acquisitions as f64 / n,
            opt: opt_stats,
            hot_lock_share_acquired: if acquired_total == 0 {
                0.0
            } else {
                acquired_max as f64 / acquired_total as f64
            },
        }
    }
}

impl OptReadReport {
    /// Flat JSON trajectory entry (append-never-edit protocol, see
    /// docs/BENCHMARKS.md): per engine and pool layout, the locks
    /// acquired per query on each read path, the reduction, the
    /// optimistic hit/retry/fallback rates, and the acquired-lock hot
    /// share. All fields are deterministic counters.
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let mut rows: Vec<(String, String)> = vec![
            ("users".into(), self.users.to_string()),
            ("queries".into(), self.queries.to_string()),
            ("pool_pages".into(), self.pool_pages.to_string()),
        ];
        for (engine, points) in [("peb", &self.peb), ("bx", &self.bx)] {
            for p in points {
                let pool = if p.pool_shards == 1 { "single" } else { "sharded" };
                let key = |name: &str| format!("{engine}_{pool}_{name}");
                let attempts = p.opt.optimistic_attempts().max(1) as f64;
                rows.push((key("locked_locks_per_q"), f(p.locked_locks_per_query)));
                rows.push((key("opt_locks_per_q"), f(p.opt_locks_per_query)));
                rows.push((key("lock_reduction"), f(p.lock_reduction())));
                rows.push((key("opt_hit_rate"), f(p.opt.optimistic_hit_rate())));
                rows.push((key("opt_retry_rate"), f(p.opt.optimistic_retries as f64 / attempts)));
                rows.push((key("opt_fallback_rate"), f(p.opt.locked_fallbacks as f64 / attempts)));
                rows.push((key("hot_lock_share_acquired"), f(p.hot_lock_share_acquired)));
            }
        }
        crate::report::json_object(&rows)
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &OptReadReport) {
    println!(
        "engine\tpool_shards\tlocked_locks/q\topt_locks/q\treduction\thit_rate\t({} users, {}-page pool, warm)",
        r.users, r.pool_pages
    );
    for (engine, points) in [("peb", &r.peb), ("bx", &r.bx)] {
        for p in points {
            println!(
                "{engine}\t{}\t{:.2}\t{:.2}\t{:.0}%\t{:.3}",
                p.pool_shards,
                p.locked_locks_per_query,
                p.opt_locks_per_query,
                p.lock_reduction() * 100.0,
                p.opt.optimistic_hit_rate(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_scans_shed_at_least_half_the_locks() {
        // The acceptance bar of the optimistic-read PR, on a small shape:
        // both engines, both pool layouts, ≥ 50% fewer lock acquisitions
        // per warm query (deterministic counters, result-checked).
        let cfg = RunConfig {
            num_users: 1_000,
            policies_per_user: 8,
            queries: 12,
            seed: 0x0097,
            buffer_pages: 512,
            // Per-interval plan, as in `optread_config`: the fused descent
            // cache only exists on optimistic pools, so fused ledgers
            // differ between the locked and optimistic worlds by design.
            fused_scans: false,
            ..Default::default()
        };
        let r = measure_optreads_with(&cfg, &[1, 4]);
        assert_eq!(r.peb.len(), 2);
        assert_eq!(r.bx.len(), 2);
        for (engine, p) in r.peb.iter().map(|p| ("peb", p)).chain(r.bx.iter().map(|p| ("bx", p))) {
            assert!(p.locked_locks_per_query > 0.0, "{engine}: locked path must take locks");
            assert!(
                p.lock_reduction() >= 0.5,
                "{engine} shards={}: reduction {:.2} below the 50% bar \
                 (locked {:.1} vs optimistic {:.1} locks/query)",
                p.pool_shards,
                p.lock_reduction(),
                p.locked_locks_per_query,
                p.opt_locks_per_query,
            );
            assert!(p.opt.optimistic_hits > 0, "{engine}: no optimistic traffic measured");
            assert!(
                p.opt.optimistic_hit_rate() > 0.5,
                "{engine}: warm hit rate {:.2} suspiciously low",
                p.opt.optimistic_hit_rate()
            );
            // Fallback-rate non-regression: on a warm, quiesced pool every
            // resident page is published in the seqlock mirror, so no read
            // should fall back to the locked path. A nonzero rate here means
            // mirror slots are being lost (e.g. a cross-way eviction clearing
            // the wrong entry) rather than genuine cold misses.
            let attempts =
                p.opt.optimistic_hits + p.opt.optimistic_retries + p.opt.locked_fallbacks;
            assert_eq!(
                p.opt.locked_fallbacks, 0,
                "{engine} shards={}: {} of {attempts} warm reads fell back to locks",
                p.pool_shards, p.opt.locked_fallbacks,
            );
        }
    }

    #[test]
    fn json_entry_is_well_formed() {
        let point = |shards| OptReadPoint {
            pool_shards: shards,
            locked_locks_per_query: 40.0,
            opt_locks_per_query: 2.0,
            opt: LockStats {
                optimistic_hits: 950,
                optimistic_retries: 0,
                locked_fallbacks: 50,
                lock_acquisitions: 50,
                latch_acquisitions: 0,
                latch_waits: 0,
            },
            hot_lock_share_acquired: 0.5,
        };
        let r = OptReadReport {
            users: 8_000,
            queries: 64,
            pool_pages: 2_048,
            peb: vec![point(1), point(8)],
            bx: vec![point(1), point(8)],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        // 3 config keys + 2 engines x 2 points x 7 fields.
        assert_eq!(j.matches(':').count(), 31, "one key per field");
        assert!(j.contains("\"peb_single_lock_reduction\": 0.95"));
        assert!(j.contains("\"bx_sharded_opt_hit_rate\": 0.95"));
    }
}
