//! Fused-scan query-I/O experiment: how many pages a query touches.
//!
//! The previous trajectory entries attacked lock traffic
//! (`BENCH_scans.json`, `BENCH_optreads.json`); this one is the first to
//! shrink the *logical* page accesses a query performs. PRQ and PkNN
//! decompose into many key intervals (partition × SV group × Z-range),
//! and the per-interval plan pays one root-to-leaf descent per interval;
//! the fused plan (`RunConfig.fused_scans`) builds the whole interval set
//! up front and executes it as coalesced multi-interval scans — one
//! descent plus a leaf-chain walk per partition, upper-level pages served
//! from a version-validated descent cache.
//!
//! For each engine the same warm query batches run once over a
//! per-interval world and once over a fused world, recording **logical
//! page accesses per query** and **descents per query** — both exact,
//! machine-independent counters (`IoStats::logical_reads`,
//! `peb_btree::ScanStats`). The experiment cross-checks that both plans
//! return identical results, so the entry isolates plan quality, not
//! workload drift. The pool is sized to keep the working set resident;
//! committed `BENCH_seed/updates/scans/optreads` files are untouched per
//! docs/BENCHMARKS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_workload::QueryGenerator;

use crate::harness::{RunConfig, World};

/// One (engine × query kind × plan) measurement.
#[derive(Debug, Clone, Copy)]
pub struct QueryIoPoint {
    /// Logical page accesses per query (warm pool: hits, not faults).
    pub logical_per_q: f64,
    /// Root-to-leaf descents per query.
    pub descents_per_q: f64,
}

/// Both plans of one engine × query kind.
#[derive(Debug, Clone, Copy)]
pub struct PlanPair {
    /// The per-interval reference plan (one descent per interval).
    pub per_interval: QueryIoPoint,
    /// The fused multi-interval plan.
    pub fused: QueryIoPoint,
}

impl PlanPair {
    /// Fraction of logical page accesses the fused plan sheds
    /// (the acceptance metric: ≥ 0.25 for PRQ on the frozen config).
    pub fn logical_reduction(&self) -> f64 {
        if self.per_interval.logical_per_q <= 0.0 {
            return 0.0;
        }
        1.0 - self.fused.logical_per_q / self.per_interval.logical_per_q
    }

    /// How many times fewer descents the fused plan performs
    /// (the acceptance metric: ≥ 2.0 for PRQ on the frozen config).
    pub fn descent_factor(&self) -> f64 {
        if self.fused.descents_per_q <= 0.0 {
            return f64::INFINITY;
        }
        self.per_interval.descents_per_q / self.fused.descents_per_q
    }
}

/// One engine's PRQ and PkNN plan pairs.
#[derive(Debug, Clone, Copy)]
pub struct EngineQueryIo {
    /// Privacy-aware range query.
    pub prq: PlanPair,
    /// Privacy-aware kNN query.
    pub knn: PlanPair,
}

/// The whole experiment: both engines on the frozen dataset shape.
#[derive(Debug, Clone)]
pub struct QueryIoReport {
    /// Users in the dataset (the frozen seed shape).
    pub users: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Total frame budget of each pool (working set stays resident).
    pub pool_pages: usize,
    /// PEB-tree measurements.
    pub peb: EngineQueryIo,
    /// Bx-tree (spatial baseline) measurements.
    pub bx: EngineQueryIo,
}

/// The frozen query-I/O configuration: the `BENCH_optreads.json` dataset
/// shape with the same warm 2048-page pool.
pub fn queryio_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 64,
        seed: 0xBA5E,
        buffer_pages: 2_048,
        ..Default::default()
    }
}

/// Run the experiment on the frozen configuration.
pub fn measure_queryio() -> QueryIoReport {
    measure_queryio_with(&queryio_config())
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one): build a per-interval world and a fused world per engine, warm
/// both, cross-check results, then measure one warm pass of each batch.
pub fn measure_queryio_with(cfg: &RunConfig) -> QueryIoReport {
    let gen = QueryGenerator::new(peb_common::SpaceConfig::default(), cfg.num_users);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF0_5E);
    let ranges = gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);
    let knns = gen.knn_batch(&mut rng, cfg.queries, cfg.k, cfg.tq);

    let perint = World::build(&RunConfig { fused_scans: false, ..cfg.clone() });
    let fused = World::build(&RunConfig { fused_scans: true, ..cfg.clone() });

    // Warm both worlds; the warm pass doubles as the result cross-check
    // between the two plans.
    for (i, q) in ranges.iter().enumerate() {
        let a: Vec<_> = perint.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        let b: Vec<_> = fused.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        assert_eq!(a, b, "PEB PRQ {i}: the fused plan changed the result");
        let a: Vec<_> = perint
            .baseline
            .prq(&perint.ctx.store, q.issuer, &q.window, q.tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        let b: Vec<_> = fused
            .baseline
            .prq(&fused.ctx.store, q.issuer, &q.window, q.tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        assert_eq!(a, b, "Bx PRQ {i}: the fused plan changed the result");
    }
    for (i, q) in knns.iter().enumerate() {
        let a: Vec<_> =
            perint.peb.pknn(q.issuer, q.q, q.k, q.tq).iter().map(|(m, _)| m.uid).collect();
        let b: Vec<_> =
            fused.peb.pknn(q.issuer, q.q, q.k, q.tq).iter().map(|(m, _)| m.uid).collect();
        assert_eq!(a, b, "PEB PkNN {i}: the fused plan changed the result");
        let a: Vec<_> = perint
            .baseline
            .pknn(&perint.ctx.store, q.issuer, q.q, q.k, q.tq)
            .iter()
            .map(|(m, _)| m.uid)
            .collect();
        let b: Vec<_> = fused
            .baseline
            .pknn(&fused.ctx.store, q.issuer, q.q, q.k, q.tq)
            .iter()
            .map(|(m, _)| m.uid)
            .collect();
        assert_eq!(a, b, "Bx PkNN {i}: the fused plan changed the result");
    }

    let n = cfg.queries.max(1) as f64;
    // One warm measured pass: reset counters, run the batch, divide.
    let measure = |w: &World, peb_side: bool, prq: bool| -> QueryIoPoint {
        let pool = if peb_side {
            w.peb.reset_scan_stats();
            std::sync::Arc::clone(w.peb.pool())
        } else {
            w.baseline.reset_scan_stats();
            std::sync::Arc::clone(w.baseline.pool())
        };
        pool.reset_stats();
        match (peb_side, prq) {
            (true, true) => {
                for q in &ranges {
                    let _ = w.peb.prq(q.issuer, &q.window, q.tq);
                }
            }
            (true, false) => {
                for q in &knns {
                    let _ = w.peb.pknn(q.issuer, q.q, q.k, q.tq);
                }
            }
            (false, true) => {
                for q in &ranges {
                    let _ = w.baseline.prq(&w.ctx.store, q.issuer, &q.window, q.tq);
                }
            }
            (false, false) => {
                for q in &knns {
                    let _ = w.baseline.pknn(&w.ctx.store, q.issuer, q.q, q.k, q.tq);
                }
            }
        }
        let scans = if peb_side { w.peb.scan_stats() } else { w.baseline.scan_stats() };
        QueryIoPoint {
            logical_per_q: pool.stats().logical_reads as f64 / n,
            descents_per_q: scans.descents as f64 / n,
        }
    };
    let pair = |peb_side: bool, prq: bool| PlanPair {
        per_interval: measure(&perint, peb_side, prq),
        fused: measure(&fused, peb_side, prq),
    };

    QueryIoReport {
        users: cfg.num_users,
        queries: cfg.queries,
        pool_pages: cfg.buffer_pages,
        peb: EngineQueryIo { prq: pair(true, true), knn: pair(true, false) },
        bx: EngineQueryIo { prq: pair(false, true), knn: pair(false, false) },
    }
}

impl QueryIoReport {
    /// Flat JSON trajectory entry (append-never-edit protocol, see
    /// docs/BENCHMARKS.md): per engine and query kind, logical page
    /// accesses and descents per query on each plan, plus the derived
    /// reduction/factor fields. All fields are deterministic counters.
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let mut rows: Vec<(String, String)> = vec![
            ("users".into(), self.users.to_string()),
            ("queries".into(), self.queries.to_string()),
            ("pool_pages".into(), self.pool_pages.to_string()),
        ];
        for (engine, e) in [("peb", &self.peb), ("bx", &self.bx)] {
            for (kind, p) in [("prq", &e.prq), ("knn", &e.knn)] {
                let key = |name: &str| format!("{engine}_{kind}_{name}");
                rows.push((key("perint_logical_per_q"), f(p.per_interval.logical_per_q)));
                rows.push((key("perint_descents_per_q"), f(p.per_interval.descents_per_q)));
                rows.push((key("fused_logical_per_q"), f(p.fused.logical_per_q)));
                rows.push((key("fused_descents_per_q"), f(p.fused.descents_per_q)));
                rows.push((key("logical_reduction"), f(p.logical_reduction())));
                rows.push((key("descent_factor"), f(p.descent_factor())));
            }
        }
        crate::report::json_object(&rows)
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &QueryIoReport) {
    println!(
        "engine\tquery\tperint_logical/q\tfused_logical/q\treduction\tperint_descents/q\tfused_descents/q\tfactor\t({} users, {}-page pool, warm)",
        r.users, r.pool_pages
    );
    for (engine, e) in [("peb", &r.peb), ("bx", &r.bx)] {
        for (kind, p) in [("prq", &e.prq), ("knn", &e.knn)] {
            println!(
                "{engine}\t{kind}\t{:.2}\t{:.2}\t{:.0}%\t{:.2}\t{:.2}\t{:.1}x",
                p.per_interval.logical_per_q,
                p.fused.logical_per_q,
                p.logical_reduction() * 100.0,
                p.per_interval.descents_per_q,
                p.fused.descents_per_q,
                p.descent_factor(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_prq_sheds_a_quarter_of_the_page_accesses() {
        // The acceptance bar at a small shape: >= 25% fewer logical page
        // accesses per PRQ and >= 2x fewer descents, both engines,
        // results cross-checked inside measure_queryio_with.
        let cfg = RunConfig {
            num_users: 1_200,
            policies_per_user: 10,
            queries: 12,
            seed: 0xF05E,
            buffer_pages: 1_024,
            ..Default::default()
        };
        let r = measure_queryio_with(&cfg);
        for (engine, e) in [("peb", &r.peb), ("bx", &r.bx)] {
            assert!(
                e.prq.logical_reduction() >= 0.25,
                "{engine} PRQ reduction {:.2} below the 25% bar ({:.1} -> {:.1} logical/q)",
                e.prq.logical_reduction(),
                e.prq.per_interval.logical_per_q,
                e.prq.fused.logical_per_q,
            );
            assert!(
                e.prq.descent_factor() >= 2.0,
                "{engine} PRQ descent factor {:.2} below 2x",
                e.prq.descent_factor()
            );
            // PkNN's incremental cells bound its factor; it must still
            // never regress.
            assert!(
                e.knn.fused.logical_per_q <= e.knn.per_interval.logical_per_q,
                "{engine} PkNN fused plan regressed logical I/O"
            );
        }
    }

    #[test]
    fn json_entry_is_well_formed() {
        let point = |l, d| QueryIoPoint { logical_per_q: l, descents_per_q: d };
        let pair = PlanPair { per_interval: point(100.0, 40.0), fused: point(50.0, 4.0) };
        let engine = EngineQueryIo { prq: pair, knn: pair };
        let r =
            QueryIoReport { users: 8_000, queries: 64, pool_pages: 2_048, peb: engine, bx: engine };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        // 3 config keys + 2 engines x 2 kinds x 6 fields.
        assert_eq!(j.matches(':').count(), 27, "one key per field");
        assert!(j.contains("\"peb_prq_logical_reduction\": 0.50"));
        assert!(j.contains("\"bx_knn_descent_factor\": 10.00"));
    }
}
