//! Parameter sweeps, one per figure of Sec 7.

use peb_costmodel::{calibrate, cost, CostInputs};
use peb_workload::{Distribution, UpdateStream};

use crate::harness::{run, scaled, Measured, RunConfig, World};

/// One measured point of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The varied parameter's value.
    pub x: f64,
    pub m: Measured,
}

/// Fig 11(a): preprocessing time vs number of users (10K..100K).
pub fn fig11a_users() -> Vec<SweepPoint> {
    paper_user_counts()
        .into_iter()
        .map(|n| {
            let cfg = RunConfig { num_users: n, queries: 0, ..Default::default() };
            let world = World::build(&cfg);
            SweepPoint {
                x: n as f64,
                m: Measured { encode_secs: world.encode_secs, ..Default::default() },
            }
        })
        .collect()
}

/// Fig 11(b): preprocessing time vs policies per user (10..100) at 60K users.
pub fn fig11b_policies() -> Vec<SweepPoint> {
    paper_policy_counts()
        .into_iter()
        .map(|np| {
            let cfg = RunConfig { policies_per_user: np, queries: 0, ..Default::default() };
            let world = World::build(&cfg);
            SweepPoint {
                x: np as f64,
                m: Measured { encode_secs: world.encode_secs, ..Default::default() },
            }
        })
        .collect()
}

/// Fig 12: query I/O vs total number of users.
pub fn fig12_users() -> Vec<SweepPoint> {
    paper_user_counts()
        .into_iter()
        .map(|n| {
            let cfg = RunConfig { num_users: n, ..Default::default() };
            SweepPoint { x: n as f64, m: run(&cfg) }
        })
        .collect()
}

/// Fig 13: query I/O vs policies per user.
pub fn fig13_policies() -> Vec<SweepPoint> {
    paper_policy_counts()
        .into_iter()
        .map(|np| {
            let cfg = RunConfig { policies_per_user: np, ..Default::default() };
            SweepPoint { x: np as f64, m: run(&cfg) }
        })
        .collect()
}

/// Fig 14: query I/O vs grouping factor θ ∈ {0, 0.1, …, 1.0}.
pub fn fig14_theta() -> Vec<SweepPoint> {
    [0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 1.0]
        .into_iter()
        .map(|theta| {
            let cfg = RunConfig { theta, ..Default::default() };
            SweepPoint { x: theta, m: run(&cfg) }
        })
        .collect()
}

/// Fig 15(a): PRQ I/O vs query-window side (100..1000).
pub fn fig15a_window() -> Vec<SweepPoint> {
    (1..=10)
        .map(|i| {
            let side = 100.0 * i as f64;
            let cfg = RunConfig { window_side: side, ..Default::default() };
            SweepPoint { x: side, m: run(&cfg) }
        })
        .collect()
}

/// Fig 15(b): PkNN I/O vs k (1..10).
pub fn fig15b_k() -> Vec<SweepPoint> {
    (1..=10)
        .map(|k| {
            let cfg = RunConfig { k, ..Default::default() };
            SweepPoint { x: k as f64, m: run(&cfg) }
        })
        .collect()
}

/// Fig 16: query I/O vs number of destinations on network data (25..500).
pub fn fig16_destinations() -> Vec<SweepPoint> {
    [25usize, 50, 100, 200, 300, 400, 500]
        .into_iter()
        .map(|hubs| {
            let cfg =
                RunConfig { distribution: Distribution::Network { hubs }, ..Default::default() };
            SweepPoint { x: hubs as f64, m: run(&cfg) }
        })
        .collect()
}

/// Fig 17: query I/O vs maximum object speed (1..6).
pub fn fig17_speed() -> Vec<SweepPoint> {
    (1..=6)
        .map(|s| {
            let cfg = RunConfig { max_speed: s as f64, ..Default::default() };
            SweepPoint { x: s as f64, m: run(&cfg) }
        })
        .collect()
}

/// Fig 18: query I/O after each 25%-of-the-dataset update round, until the
/// dataset has been fully updated twice (8 rounds).
pub fn fig18_updates() -> Vec<SweepPoint> {
    let cfg = RunConfig::default();
    let mut world = World::build(&cfg);
    let mut stream =
        UpdateStream::new(world.dataset.space, cfg.max_speed, world.dataset.users.clone(), 15.0);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xBEEF)
    };

    let mut out = Vec::new();
    for round in 1..=8 {
        for m in stream.next_round(&mut rng, 0.25) {
            world.peb.upsert(m);
            world.baseline.upsert(m);
        }
        world.dataset.users = stream.users().to_vec();
        let cfg_t = RunConfig { tq: stream.time() + 5.0, ..cfg.clone() };
        out.push(SweepPoint { x: round as f64 * 25.0, m: world.measure(&cfg_t) });
    }
    out
}

/// Fig 19: cost-model estimate vs actual PEB PRQ I/O, varying N, Np and θ.
/// Returns `(label, x, estimated, actual)` rows.
pub fn fig19_cost_model() -> Vec<(String, f64, f64, f64)> {
    // Actual measurements for the three sweeps.
    let users = fig19_sweep_users();
    let policies = fig19_sweep_policies();
    let thetas = fig19_sweep_theta();

    // Calibrate a1/a2 from the first and last points of the user sweep.
    let (first, last) = (&users[0], &users[users.len() - 1]);
    let params = calibrate(
        (&cost_inputs(&first.0, &first.1), first.2),
        (&cost_inputs(&last.0, &last.1), last.2),
    )
    .unwrap_or_default();

    let mut rows = Vec::new();
    for (cfg, m, actual) in &users {
        let est = cost(&cost_inputs(cfg, m), &params);
        rows.push(("users".to_string(), cfg.num_users as f64, est, *actual));
    }
    for (cfg, m, actual) in &policies {
        let est = cost(&cost_inputs(cfg, m), &params);
        rows.push(("policies".to_string(), cfg.policies_per_user as f64, est, *actual));
    }
    for (cfg, m, actual) in &thetas {
        let est = cost(&cost_inputs(cfg, m), &params);
        rows.push(("theta".to_string(), cfg.theta, est, *actual));
    }
    rows
}

fn cost_inputs(cfg: &RunConfig, m: &Measured) -> CostInputs {
    CostInputs {
        num_users: cfg.num_users,
        policies_per_user: cfg.policies_per_user,
        theta: cfg.theta,
        leaf_pages: m.peb_leaf_pages,
        side: 1000.0,
    }
}

type Fig19Sample = (RunConfig, Measured, f64);

fn fig19_sweep_users() -> Vec<Fig19Sample> {
    [20_000usize, 40_000, 60_000, 80_000, 100_000]
        .into_iter()
        .map(|n| {
            let cfg = RunConfig { num_users: scaled_abs(n), ..Default::default() };
            let m = run(&cfg);
            (cfg, m, m.peb_prq_io)
        })
        .collect()
}

fn fig19_sweep_policies() -> Vec<Fig19Sample> {
    [10usize, 30, 50, 70, 90]
        .into_iter()
        .map(|np| {
            let cfg = RunConfig { policies_per_user: np, ..Default::default() };
            let m = run(&cfg);
            (cfg, m, m.peb_prq_io)
        })
        .collect()
}

fn fig19_sweep_theta() -> Vec<Fig19Sample> {
    [0.0, 0.3, 0.5, 0.7, 1.0]
        .into_iter()
        .map(|theta| {
            let cfg = RunConfig { theta, ..Default::default() };
            let m = run(&cfg);
            (cfg, m, m.peb_prq_io)
        })
        .collect()
}

/// The paper's x-axis for user-count sweeps: 10K..100K (scaled).
pub fn paper_user_counts() -> Vec<usize> {
    (1..=10).map(|i| scaled(i * 10_000)).collect()
}

/// The paper's x-axis for policies-per-user sweeps: 10..100.
pub fn paper_policy_counts() -> Vec<usize> {
    (1..=10).map(|i| i * 10).collect()
}

fn scaled_abs(n: usize) -> usize {
    scaled(n)
}

/// Also export the cost-model default params type for bins.
pub use peb_costmodel::CostModelParams as ExportedCostParams;

#[cfg(test)]
mod tests {
    use super::*;

    /// A smoke test of the full fig18 machinery at miniature scale (other
    /// sweeps share all their code paths with `run`, covered in harness
    /// tests). Sets env-independent sizes explicitly.
    #[test]
    fn update_rounds_produce_eight_points() {
        let cfg =
            RunConfig { num_users: 400, policies_per_user: 5, queries: 5, ..Default::default() };
        let mut world = World::build(&cfg);
        let mut stream = UpdateStream::new(
            world.dataset.space,
            cfg.max_speed,
            world.dataset.users.clone(),
            15.0,
        );
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for round in 1..=8 {
            for m in stream.next_round(&mut rng, 0.25) {
                world.peb.upsert(m);
                world.baseline.upsert(m);
            }
            assert_eq!(world.peb.len(), 400, "round {round}: updates must not change population");
        }
    }

    #[test]
    fn sweep_axes_match_paper() {
        std::env::remove_var("PEB_SCALE");
        assert_eq!(paper_user_counts().len(), 10);
        assert_eq!(paper_policy_counts(), vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
    }
}
