//! Index construction and I/O measurement shared by all experiments.

use std::sync::Arc;
use std::time::Instant;

use peb_bx::{BxTree, TimePartitioning};
use peb_policy::SvAssignmentParams;
use peb_storage::BufferPool;
use peb_workload::{Dataset, DatasetBuilder, Distribution, QueryGenerator};
use pebtree::{PebTree, PrivacyContext, SpatialBaseline};

/// One experiment configuration (Table 1 defaults unless overridden).
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub num_users: usize,
    pub policies_per_user: usize,
    pub theta: f64,
    pub max_speed: f64,
    pub distribution: Distribution,
    pub window_side: f64,
    pub k: usize,
    pub queries: usize,
    pub buffer_pages: usize,
    /// Buffer-pool lock shards. The default of 1 is the paper-exact
    /// single-LRU configuration every I/O measurement uses (per-shard LRU
    /// domains change eviction, so I/O counts are only comparable at a
    /// fixed shard count); the concurrent-scan bench raises it.
    pub pool_shards: usize,
    /// Whether the pool's lock-free versioned read path is active
    /// (default `true` — the production configuration; I/O counters are
    /// identical either way). The optimistic-reads experiment builds a
    /// `false` world as its locked-path comparison point.
    pub optimistic_reads: bool,
    /// Whether queries run through the fused multi-interval scan
    /// pipeline. The default of `true` is the production configuration
    /// since the post-soak promotion; the frozen I/O measurements pin the
    /// fused ledger (fusing changes which pages a query touches, so
    /// ledgers are only comparable at a fixed plan). The query-I/O
    /// experiment builds a `false` world as its legacy per-interval
    /// comparison point.
    pub fused_scans: bool,
    /// Whether updates run through the B-epsilon-style message buffers.
    /// The default of `false` is the paper-exact direct write path every
    /// frozen I/O measurement uses (buffering changes which pages an
    /// update touches, so ledgers are only comparable at a fixed write
    /// path); the ingestion experiment builds a `true` world as its
    /// buffered comparison point.
    pub buffered_writes: bool,
    /// Whether updates run through the optimistic-lock-coupling write
    /// path (per-page latches under the shard read lock) instead of
    /// whole-shard exclusion. The default of `false` is the paper-exact
    /// exclusive write path every frozen I/O measurement uses (the OLC
    /// path publishes structural modifications from finished images, so
    /// write ledgers are only comparable at a fixed protocol); the
    /// write-concurrency experiment builds a `true` world as its
    /// latched comparison point. Mutually exclusive with
    /// `buffered_writes`.
    pub olc_writes: bool,
    /// Whether the write-ahead-log durability protocol is on for both
    /// engines. The default of `false` is the paper-exact configuration
    /// every frozen I/O measurement uses (logging adds log-page writes to
    /// the physical ledger, so I/O counts are only comparable with it
    /// off); the recovery experiment builds a `true` world to measure
    /// log-write amplification and replay time.
    pub durable: bool,
    pub seed: u64,
    /// Query time (users are inserted with `t_update = 0`).
    pub tq: f64,
    /// Sequence-value assignment tunables (ablations override these).
    pub sv_params: SvAssignmentParams,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            num_users: scaled(60_000),
            policies_per_user: 50,
            theta: 0.7,
            max_speed: 3.0,
            distribution: Distribution::Uniform,
            window_side: 200.0,
            k: 5,
            queries: queries_env(),
            buffer_pages: 50,
            pool_shards: 1,
            optimistic_reads: true,
            fused_scans: true,
            buffered_writes: false,
            olc_writes: false,
            durable: false,
            seed: 0xC0FFEE,
            tq: 30.0,
            sv_params: SvAssignmentParams::default(),
        }
    }
}

/// Apply `PEB_SCALE` to a user count.
pub fn scaled(n: usize) -> usize {
    let f = std::env::var("PEB_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).unwrap_or(1.0);
    ((n as f64 * f).round() as usize).max(100)
}

fn queries_env() -> usize {
    std::env::var("PEB_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(200)
}

/// Everything measured for one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measured {
    /// Offline policy-encoding time (Fig 11), seconds.
    pub encode_secs: f64,
    /// Average physical page I/Os per query.
    pub peb_prq_io: f64,
    pub base_prq_io: f64,
    pub peb_knn_io: f64,
    pub base_knn_io: f64,
    /// Leaf pages of the PEB-tree (`Nl` for the cost model).
    pub peb_leaf_pages: usize,
}

/// The two indexes built over one dataset, ready for measurement.
pub struct World {
    pub dataset: Dataset,
    pub ctx: Arc<PrivacyContext>,
    pub peb: PebTree,
    pub baseline: SpatialBaseline,
    pub encode_secs: f64,
}

impl World {
    /// Generate the dataset, run the offline policy encoding (timed), and
    /// bulk-load both indexes.
    pub fn build(cfg: &RunConfig) -> World {
        let dataset = DatasetBuilder::default()
            .num_users(cfg.num_users)
            .max_speed(cfg.max_speed)
            .distribution(cfg.distribution)
            .policies_per_user(cfg.policies_per_user)
            .grouping_factor(cfg.theta)
            .seed(cfg.seed)
            .build();
        Self::from_dataset(dataset, cfg)
    }

    /// Build the indexes over an already-generated dataset.
    pub fn from_dataset(dataset: Dataset, cfg: &RunConfig) -> World {
        let space = dataset.space;
        let started = Instant::now();
        // PrivacyContext::build consumes the store; rebuild one for the
        // baseline's filtering (shared policies, separate ownership).
        let ctx = Arc::new(PrivacyContext::build(
            clone_store(&dataset.store),
            space,
            dataset.users.len(),
            cfg.sv_params,
        ));
        let encode_secs = started.elapsed().as_secs_f64();

        let part = TimePartitioning::default();
        let pool = |cfg: &RunConfig| {
            Arc::new(
                BufferPool::with_shards(cfg.buffer_pages, cfg.pool_shards)
                    .optimistic(cfg.optimistic_reads),
            )
        };
        let mut peb = PebTree::new(pool(cfg), space, part, cfg.max_speed, Arc::clone(&ctx));
        let mut baseline = SpatialBaseline::new(BxTree::new(pool(cfg), space, part, cfg.max_speed));
        peb.set_fused_scans(cfg.fused_scans);
        baseline.set_fused_scans(cfg.fused_scans);
        peb.set_buffered_writes(cfg.buffered_writes);
        baseline.set_buffered_writes(cfg.buffered_writes);
        peb.set_olc_writes(cfg.olc_writes);
        baseline.set_olc_writes(cfg.olc_writes);
        if cfg.durable {
            // Before the ingest loop, so the whole load is logged and a
            // crash at any later point recovers every inserted object.
            peb.set_durable(true);
            baseline.set_durable(true);
        }
        for m in &dataset.users {
            peb.upsert(*m);
            baseline.upsert(*m);
        }
        World { dataset, ctx, peb, baseline, encode_secs }
    }

    /// Measure the average per-query physical I/O of all four query kinds.
    pub fn measure(&self, cfg: &RunConfig) -> Measured {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let gen = QueryGenerator::new(self.dataset.space, self.dataset.users.len());
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x51EA);
        let ranges = gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);
        let knns = gen.knn_batch(&mut rng, cfg.queries, cfg.k, cfg.tq);

        let peb_prq_io = avg_io(self.peb.pool(), cfg.queries, |i| {
            let q = &ranges[i];
            let _ = self.peb.prq(q.issuer, &q.window, q.tq);
        });
        let base_prq_io = avg_io(self.baseline.pool(), cfg.queries, |i| {
            let q = &ranges[i];
            let _ = self.baseline.prq(&self.ctx.store, q.issuer, &q.window, q.tq);
        });
        let peb_knn_io = avg_io(self.peb.pool(), cfg.queries, |i| {
            let q = &knns[i];
            let _ = self.peb.pknn(q.issuer, q.q, q.k, q.tq);
        });
        let base_knn_io = avg_io(self.baseline.pool(), cfg.queries, |i| {
            let q = &knns[i];
            let _ = self.baseline.pknn(&self.ctx.store, q.issuer, q.q, q.k, q.tq);
        });

        Measured {
            encode_secs: self.encode_secs,
            peb_prq_io,
            base_prq_io,
            peb_knn_io,
            base_knn_io,
            peb_leaf_pages: self.peb.leaf_page_count(),
        }
    }
}

/// Cold-start the buffer, run `count` operations, return average physical
/// I/O per operation.
pub fn avg_io(pool: &Arc<BufferPool>, count: usize, mut op: impl FnMut(usize)) -> f64 {
    pool.flush_all();
    pool.clear();
    pool.reset_stats();
    for i in 0..count {
        op(i);
    }
    pool.stats().total_io() as f64 / count.max(1) as f64
}

/// Convenience: build a world and measure it in one call.
pub fn run(cfg: &RunConfig) -> Measured {
    World::build(cfg).measure(cfg)
}

/// The policy store has no `Clone` (it owns indexes); experiments need two
/// logical copies (PEB context + baseline filter), so rebuild pair-by-pair.
pub fn clone_store(store: &peb_policy::PolicyStore) -> peb_policy::PolicyStore {
    let mut out = peb_policy::PolicyStore::new();
    for (_, viewer, policy) in store.iter() {
        out.add(viewer, policy.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            num_users: 800,
            policies_per_user: 10,
            queries: 20,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn world_builds_and_measures() {
        let cfg = tiny_cfg();
        let m = run(&cfg);
        assert!(m.encode_secs >= 0.0);
        assert!(m.peb_prq_io >= 0.0 && m.base_prq_io > 0.0);
        assert!(m.peb_knn_io >= 0.0 && m.base_knn_io > 0.0);
        assert!(m.peb_leaf_pages > 0);
    }

    #[test]
    fn results_agree_between_engines_on_sampled_queries() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = tiny_cfg();
        let world = World::build(&cfg);
        let gen = QueryGenerator::new(world.dataset.space, cfg.num_users);
        let mut rng = StdRng::seed_from_u64(7);
        for q in gen.range_batch(&mut rng, 10, 300.0, cfg.tq) {
            let a: Vec<_> =
                world.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
            let b: Vec<_> = world
                .baseline
                .prq(&world.ctx.store, q.issuer, &q.window, q.tq)
                .iter()
                .map(|m| m.uid)
                .collect();
            assert_eq!(a, b, "engines disagree on a harness-generated query");
        }
        for q in gen.knn_batch(&mut rng, 10, 5, cfg.tq) {
            let a: Vec<_> =
                world.peb.pknn(q.issuer, q.q, q.k, q.tq).iter().map(|(m, _)| m.uid).collect();
            let b: Vec<_> = world
                .baseline
                .pknn(&world.ctx.store, q.issuer, q.q, q.k, q.tq)
                .iter()
                .map(|(m, _)| m.uid)
                .collect();
            assert_eq!(a, b, "engines disagree on a harness-generated kNN query");
        }
    }

    #[test]
    fn clone_store_is_faithful() {
        let cfg = tiny_cfg();
        let ds = DatasetBuilder::default()
            .num_users(cfg.num_users)
            .policies_per_user(cfg.policies_per_user)
            .seed(cfg.seed)
            .build();
        let copy = clone_store(&ds.store);
        assert_eq!(copy.len(), ds.store.len());
    }
}
