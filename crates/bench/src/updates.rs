//! Update-throughput experiment: the sharded index's batched update path
//! vs the sequential single-object path, plus the unsharded single-tree
//! core as a reference — the workload behind the paper's Fig 18-style
//! update rounds, measured on the same frozen 8K-user configuration as
//! `BENCH_seed.json`.
//!
//! Three variants apply the **identical** pre-generated update rounds
//! (same seed, same order) to identically bulk-loaded PEB indexes:
//!
//! * `seq`       — sharded index, one `upsert` per object;
//! * `batch`     — sharded index, one `upsert_batch` per round;
//! * `unsharded` — the single-tree [`peb_index::MovingIndex`], one
//!   `upsert` per object (the pre-sharding core, for the trajectory).
//!
//! Reported per variant: wall-clock upserts/second and the deterministic
//! buffer-pool counters (logical page accesses + physical I/O), which is
//! what the tests assert on — wall clock is machine noise, page touches
//! are not.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_common::MovingPoint;
use peb_index::MovingIndex;
use peb_storage::BufferPool;
use peb_workload::{Dataset, DatasetBuilder, UpdateStream};
use pebtree::{PebIndexLayout, PebKeyLayout, PebTree, PrivacyContext};

use crate::harness::{clone_store, RunConfig};

/// One variant's measurement.
#[derive(Debug, Clone, Copy)]
pub struct UpdateVariant {
    /// Wall-clock update throughput.
    pub upserts_per_sec: f64,
    /// Buffer-pool page accesses during the updates (hits included) —
    /// deterministic for a fixed seed.
    pub logical_io: u64,
    /// Physical page reads + writes during the updates.
    pub physical_io: u64,
}

/// The whole experiment: three variants over identical update rounds.
#[derive(Debug, Clone, Copy)]
pub struct UpdateBenchReport {
    pub users: usize,
    pub rounds: usize,
    /// Fraction of the population updated per round.
    pub round_fraction: f64,
    /// Total updates applied per variant.
    pub updates_total: usize,
    pub seq: UpdateVariant,
    pub batch: UpdateVariant,
    pub unsharded: UpdateVariant,
}

impl UpdateBenchReport {
    /// Wall-clock speedup of the batched path over the sequential path.
    pub fn batch_speedup(&self) -> f64 {
        self.batch.upserts_per_sec / self.seq.upserts_per_sec.max(1e-9)
    }

    /// Flat JSON trajectory entry (same style as
    /// [`crate::baseline::BaselineReport::to_json`], assembled by
    /// [`crate::report::json_object`]).
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let rows: Vec<(&str, String)> = vec![
            ("users", self.users.to_string()),
            ("rounds", self.rounds.to_string()),
            ("round_fraction", f(self.round_fraction)),
            ("updates_total", self.updates_total.to_string()),
            ("seq_upserts_per_sec", f(self.seq.upserts_per_sec)),
            ("seq_logical_io", self.seq.logical_io.to_string()),
            ("seq_physical_io", self.seq.physical_io.to_string()),
            ("batch_upserts_per_sec", f(self.batch.upserts_per_sec)),
            ("batch_logical_io", self.batch.logical_io.to_string()),
            ("batch_physical_io", self.batch.physical_io.to_string()),
            ("unsharded_upserts_per_sec", f(self.unsharded.upserts_per_sec)),
            ("unsharded_logical_io", self.unsharded.logical_io.to_string()),
            ("unsharded_physical_io", self.unsharded.physical_io.to_string()),
            ("batch_speedup_over_seq", f(self.batch_speedup())),
        ];
        crate::report::json_object(&rows)
    }
}

/// Run the experiment on the frozen baseline configuration (8K users, the
/// `BENCH_seed.json` shape): four 25%-of-the-population update rounds.
pub fn measure_updates() -> UpdateBenchReport {
    measure_updates_with(&crate::baseline::baseline_config(), 4, 0.25)
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one). All variants see identical rounds and start from identically
/// bulk-loaded indexes.
pub fn measure_updates_with(cfg: &RunConfig, rounds: usize, fraction: f64) -> UpdateBenchReport {
    let dataset = DatasetBuilder::default()
        .num_users(cfg.num_users)
        .max_speed(cfg.max_speed)
        .distribution(cfg.distribution)
        .policies_per_user(cfg.policies_per_user)
        .grouping_factor(cfg.theta)
        .seed(cfg.seed)
        .build();
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        dataset.space,
        dataset.users.len(),
        cfg.sv_params,
    ));

    // Pre-generate the rounds once so every variant applies the exact
    // same updates in the exact same order.
    let mut stream = UpdateStream::new(dataset.space, cfg.max_speed, dataset.users.clone(), 30.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0BA7);
    let all_rounds: Vec<Vec<MovingPoint>> =
        (0..rounds).map(|_| stream.next_round(&mut rng, fraction)).collect();
    let updates_total: usize = all_rounds.iter().map(|r| r.len()).sum();

    // Sharded index, sequential single-object path.
    let seq = {
        let tree = build_peb(cfg, &dataset, &ctx);
        let pool = Arc::clone(tree.pool());
        pool.reset_stats();
        let started = Instant::now();
        let mut tree = tree;
        for round in &all_rounds {
            for m in round {
                tree.upsert(*m);
            }
        }
        variant(started, updates_total, &pool)
    };

    // Sharded index, batched path.
    let batch = {
        let tree = build_peb(cfg, &dataset, &ctx);
        let pool = Arc::clone(tree.pool());
        pool.reset_stats();
        let started = Instant::now();
        for round in &all_rounds {
            tree.upsert_batch(round);
        }
        variant(started, updates_total, &pool)
    };

    // Unsharded single-tree core, sequential path.
    let unsharded = {
        let pool = Arc::new(BufferPool::new(cfg.buffer_pages));
        let layout = PebIndexLayout {
            keys: PebKeyLayout::new(dataset.space.grid_bits),
            ctx: Arc::clone(&ctx),
        };
        let mut tree = MovingIndex::bulk_load(
            Arc::clone(&pool),
            layout,
            dataset.space,
            peb_index::TimePartitioning::default(),
            cfg.max_speed,
            &dataset.users,
            1.0,
        );
        pool.reset_stats();
        let started = Instant::now();
        for round in &all_rounds {
            for m in round {
                tree.upsert(*m);
            }
        }
        variant(started, updates_total, &pool)
    };

    UpdateBenchReport {
        users: dataset.users.len(),
        rounds,
        round_fraction: fraction,
        updates_total,
        seq,
        batch,
        unsharded,
    }
}

fn build_peb(cfg: &RunConfig, dataset: &Dataset, ctx: &Arc<PrivacyContext>) -> PebTree {
    PebTree::bulk_load(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        dataset.space,
        peb_index::TimePartitioning::default(),
        cfg.max_speed,
        Arc::clone(ctx),
        &dataset.users,
        1.0,
    )
}

fn variant(started: Instant, updates: usize, pool: &Arc<BufferPool>) -> UpdateVariant {
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let s = pool.stats();
    UpdateVariant {
        upserts_per_sec: updates as f64 / wall,
        logical_io: s.logical_reads,
        physical_io: s.total_io(),
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &UpdateBenchReport) {
    println!(
        "variant\tupserts_per_sec\tlogical_page_accesses\tphysical_io\t({} users, {} rounds x {:.0}%)",
        r.users,
        r.rounds,
        r.round_fraction * 100.0
    );
    for (name, v) in [("seq", &r.seq), ("batch", &r.batch), ("unsharded", &r.unsharded)] {
        println!("{name}\t{:.0}\t{}\t{}", v.upserts_per_sec, v.logical_io, v.physical_io);
    }
    println!("batch_speedup_over_seq\t{:.2}x", r.batch_speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_path_touches_fewer_pages_than_sequential() {
        // Wall clock is machine noise; page accesses are deterministic for
        // a fixed seed — and they are what the batched path exists to cut.
        let cfg = RunConfig {
            num_users: 1_200,
            policies_per_user: 8,
            queries: 0,
            seed: 0xBA7C4,
            ..Default::default()
        };
        let r = measure_updates_with(&cfg, 3, 0.25);
        assert_eq!(r.updates_total, 3 * 300);
        assert!(
            r.batch.logical_io < r.seq.logical_io,
            "batch {} vs seq {}: batched merges must touch fewer pages",
            r.batch.logical_io,
            r.seq.logical_io
        );
        assert!(r.seq.upserts_per_sec > 0.0 && r.batch.upserts_per_sec > 0.0);
        assert!(r.unsharded.logical_io > 0);
    }

    #[test]
    fn json_entry_is_well_formed() {
        let v = UpdateVariant { upserts_per_sec: 1000.0, logical_io: 10, physical_io: 2 };
        let r = UpdateBenchReport {
            users: 8000,
            rounds: 4,
            round_fraction: 0.25,
            updates_total: 8000,
            seq: v,
            batch: UpdateVariant { upserts_per_sec: 2000.0, ..v },
            unsharded: v,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert_eq!(j.matches(':').count(), 14, "one key per field");
        assert!(j.contains("\"batch_speedup_over_seq\": 2.00"));
    }
}
