//! Perf-trajectory baseline: one small, fixed configuration measured for
//! update throughput, query throughput and per-query I/O, serialized to
//! `BENCH_seed.json` so successive PRs can be compared against the seed.
//!
//! The configuration is intentionally smaller than the paper's Table 1
//! defaults (it must finish in CI seconds, not minutes); what matters for
//! the trajectory is that it stays **identical across PRs**.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_workload::{QueryGenerator, UpdateStream};

use crate::harness::{avg_io, RunConfig, World};

/// Everything the baseline records. Field names are the JSON keys.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    pub users: usize,
    pub policies_per_user: usize,
    pub theta: f64,
    pub queries: usize,
    pub encode_secs: f64,
    pub peb_leaf_pages: usize,
    /// Average physical page I/Os per query (the paper's metric).
    pub peb_prq_io: f64,
    pub base_prq_io: f64,
    pub peb_knn_io: f64,
    pub base_knn_io: f64,
    /// Wall-clock query throughput, queries per second.
    pub peb_prq_qps: f64,
    pub base_prq_qps: f64,
    pub peb_knn_qps: f64,
    pub base_knn_qps: f64,
    /// Wall-clock update throughput, upserts per second.
    pub peb_upsert_per_sec: f64,
    pub base_upsert_per_sec: f64,
}

/// The fixed baseline configuration (do not change across PRs; add a new
/// entry to the JSON instead if a different shape is ever needed).
pub fn baseline_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 100,
        seed: 0xBA5E,
        ..Default::default()
    }
}

/// Build the two engines once and measure the full baseline.
pub fn measure() -> BaselineReport {
    let cfg = baseline_config();
    let mut world = World::build(&cfg);
    let m = world.measure(&cfg);

    let gen = QueryGenerator::new(world.dataset.space, cfg.num_users);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7157);
    let ranges = gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);
    let knns = gen.knn_batch(&mut rng, cfg.queries, cfg.k, cfg.tq);

    let timed = |pool: &std::sync::Arc<peb_storage::BufferPool>, op: &mut dyn FnMut(usize)| {
        let started = Instant::now();
        avg_io(pool, cfg.queries, op);
        cfg.queries as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };

    let peb_prq_qps = timed(&std::sync::Arc::clone(world.peb.pool()), &mut |i| {
        let q = &ranges[i];
        let _ = world.peb.prq(q.issuer, &q.window, q.tq);
    });
    let base_prq_qps = timed(&std::sync::Arc::clone(world.baseline.pool()), &mut |i| {
        let q = &ranges[i];
        let _ = world.baseline.prq(&world.ctx.store, q.issuer, &q.window, q.tq);
    });
    let peb_knn_qps = timed(&std::sync::Arc::clone(world.peb.pool()), &mut |i| {
        let q = &knns[i];
        let _ = world.peb.pknn(q.issuer, q.q, q.k, q.tq);
    });
    let base_knn_qps = timed(&std::sync::Arc::clone(world.baseline.pool()), &mut |i| {
        let q = &knns[i];
        let _ = world.baseline.pknn(&world.ctx.store, q.issuer, q.q, q.k, q.tq);
    });

    // Update throughput: one round-robin pass refreshing 25% of the
    // population through each engine.
    let mut stream =
        UpdateStream::new(world.dataset.space, cfg.max_speed, world.dataset.users.clone(), 30.0);
    let mut urng = StdRng::seed_from_u64(cfg.seed ^ 0xD00D);
    let round = stream.next_round(&mut urng, 0.25);

    let started = Instant::now();
    for u in &round {
        world.peb.upsert(*u);
    }
    let peb_upsert_per_sec = round.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);

    let started = Instant::now();
    for u in &round {
        world.baseline.upsert(*u);
    }
    let base_upsert_per_sec = round.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);

    BaselineReport {
        users: cfg.num_users,
        policies_per_user: cfg.policies_per_user,
        theta: cfg.theta,
        queries: cfg.queries,
        encode_secs: m.encode_secs,
        peb_leaf_pages: m.peb_leaf_pages,
        peb_prq_io: m.peb_prq_io,
        base_prq_io: m.base_prq_io,
        peb_knn_io: m.peb_knn_io,
        base_knn_io: m.base_knn_io,
        peb_prq_qps,
        base_prq_qps,
        peb_knn_qps,
        base_knn_qps,
        peb_upsert_per_sec,
        base_upsert_per_sec,
    }
}

impl BaselineReport {
    /// Flat JSON trajectory entry with stable key order, assembled by
    /// [`crate::report::json_object`].
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let rows: Vec<(&str, String)> = vec![
            ("users", self.users.to_string()),
            ("policies_per_user", self.policies_per_user.to_string()),
            ("theta", f(self.theta)),
            ("queries", self.queries.to_string()),
            ("encode_secs", format!("{:.4}", self.encode_secs)),
            ("peb_leaf_pages", self.peb_leaf_pages.to_string()),
            ("peb_prq_io", f(self.peb_prq_io)),
            ("base_prq_io", f(self.base_prq_io)),
            ("peb_knn_io", f(self.peb_knn_io)),
            ("base_knn_io", f(self.base_knn_io)),
            ("peb_prq_qps", f(self.peb_prq_qps)),
            ("base_prq_qps", f(self.base_prq_qps)),
            ("peb_knn_qps", f(self.peb_knn_qps)),
            ("base_knn_qps", f(self.base_knn_qps)),
            ("peb_upsert_per_sec", f(self.peb_upsert_per_sec)),
            ("base_upsert_per_sec", f(self.base_upsert_per_sec)),
        ];
        crate::report::json_object(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let r = BaselineReport {
            users: 8000,
            policies_per_user: 20,
            theta: 0.7,
            queries: 100,
            encode_secs: 1.25,
            peb_leaf_pages: 321,
            peb_prq_io: 3.5,
            base_prq_io: 30.25,
            peb_knn_io: 4.0,
            base_knn_io: 41.0,
            peb_prq_qps: 1000.0,
            base_prq_qps: 500.0,
            peb_knn_qps: 900.0,
            base_knn_qps: 450.0,
            peb_upsert_per_sec: 50_000.0,
            base_upsert_per_sec: 60_000.0,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        assert_eq!(j.matches(':').count(), 16, "one key per field");
        assert_eq!(j.matches(',').count(), 15, "no trailing comma");
        assert!(j.contains("\"peb_prq_io\": 3.50"));
        assert!(j.contains("\"users\": 8000"));
    }
}
