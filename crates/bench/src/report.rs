//! Table formatting for the fig* binaries: paper-style tab-separated
//! series with a short header, easy to diff into EXPERIMENTS.md.

use crate::experiments::SweepPoint;

/// Print a figure header with the varied parameter's name.
pub fn header(fig: &str, caption: &str) {
    println!("# {fig}: {caption}");
}

/// Print an I/O sweep with both engines and both query types.
pub fn io_table(x_name: &str, points: &[SweepPoint]) {
    println!("{x_name}\tpeb_prq_io\tspatial_prq_io\tpeb_knn_io\tspatial_knn_io");
    for p in points {
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            fmt_x(p.x),
            p.m.peb_prq_io,
            p.m.base_prq_io,
            p.m.peb_knn_io,
            p.m.base_knn_io
        );
    }
}

/// Print a preprocessing-time sweep.
pub fn time_table(x_name: &str, points: &[SweepPoint]) {
    println!("{x_name}\tpreprocessing_seconds");
    for p in points {
        println!("{}\t{:.3}", fmt_x(p.x), p.m.encode_secs);
    }
}

/// Print the cost-model validation rows.
pub fn cost_table(rows: &[(String, f64, f64, f64)]) {
    println!("sweep\tx\testimated_io\tactual_io");
    for (label, x, est, actual) in rows {
        println!("{label}\t{}\t{est:.2}\t{actual:.2}", fmt_x(*x));
    }
}

fn fmt_x(x: f64) -> String {
    if (x.fract()).abs() < 1e-9 && x.abs() >= 1.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// A float rendered for a trajectory entry: two decimals, or `null` when
/// not finite (the workspace has no serde; see docs/BENCHMARKS.md).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

/// Assemble a flat JSON object from pre-rendered `(key, value)` rows —
/// the one emitter behind every `BENCH_*.json` trajectory entry, so the
/// format (indentation, comma placement, trailing newline) cannot drift
/// between files.
pub fn json_object<K: AsRef<str>>(rows: &[(K, String)]) -> String {
    let mut s = String::from("{\n");
    for (i, (k, v)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {}{}\n",
            k.as_ref(),
            v,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_formatting() {
        assert_eq!(fmt_x(60_000.0), "60000");
        assert_eq!(fmt_x(0.7), "0.70");
        assert_eq!(fmt_x(5.0), "5");
    }
}
