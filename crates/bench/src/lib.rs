//! Experiment harness reproducing every figure of the paper's empirical
//! study (Sec 7). Each `fig*` binary in `src/bin/` prints the series of one
//! figure as a tab-separated table; this library holds the shared plumbing.
//!
//! Measurement protocol (matching Sec 7.1): 4 KB pages, a 50-page LRU
//! buffer, the average I/O of 200 queries per point. The buffer starts cold
//! for each measured batch and stays warm across the queries within it.
//!
//! Environment knobs for quick runs:
//! * `PEB_SCALE`   — multiplies every user count (default 1.0)
//! * `PEB_QUERIES` — queries per measurement (default 200)

pub mod baseline;
pub mod experiments;
pub mod faults;
pub mod harness;
pub mod ingest;
pub mod optreads;
pub mod overload;
pub mod queryio;
pub mod recovery;
pub mod report;
pub mod scans;
pub mod updates;
pub mod writeconc;

pub use harness::{Measured, RunConfig};
