//! Write-concurrency experiment: update throughput and reader overlap
//! with whole-shard exclusive writes vs the optimistic-lock-coupling
//! write path, on the PEB-tree.
//!
//! This is the workload the OLC write path exists for. Before it, every
//! upsert held its target shard's `RwLock` exclusively for the whole
//! descent-and-write, so a concurrent PRQ touching that shard waited out
//! the entire update even when the two touched disjoint pages. Under OLC
//! a same-shard refresh runs all of its page I/O beneath the shard
//! *read* lock — per-page latches are the only write-side exclusion —
//! and readers overlap writers unless they truly collide on a page.
//!
//! Two identically built PEB-trees (same frozen dataset and seed) apply
//! the **identical** pre-generated update rounds from
//! [`WRITECONC_WRITERS`] writer threads (updates partitioned by uid, so
//! the index's same-uid concurrency contract holds) while
//! [`WRITECONC_READERS`] reader threads loop the identical PRQ batch:
//! one tree with the exclusive write path, one with `olc_writes` on.
//! After both drives quiesce, the two worlds must answer every query in
//! the batch identically — the cross-check that the latched protocol
//! changed scheduling, not results.
//!
//! Reported per variant: wall-clock upserts/second and reader
//! queries/second (machine noise — the headline, but not what tests
//! assert), plus the deterministic-shape lock ledger: page-latch grants
//! and collisions ([`peb_storage::LockStats`]), reader stalls
//! (optimistic-read retries, i.e. a writer raced the copy), and the OLC
//! restart/escalation counters ([`peb_btree::OlcStats`]). The exclusive
//! variant latches nothing and never restarts — its zeros are asserted;
//! the OLC variant's latch grants are O(update-path), not
//! O(shard-page-count).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_common::MovingPoint;
use peb_workload::{QueryGenerator, UpdateStream};

use crate::harness::{RunConfig, World};

/// Writer threads driving the update rounds (frozen for the trajectory).
pub const WRITECONC_WRITERS: usize = 4;

/// Reader threads looping the PRQ batch alongside the writers.
pub const WRITECONC_READERS: usize = 2;

/// One write-path variant's measurement.
#[derive(Debug, Clone, Copy)]
pub struct WriteconcVariant {
    /// Wall-clock update throughput across all writer threads.
    pub upserts_per_sec: f64,
    /// Wall-clock reader queries/second sustained while the writers ran.
    pub reader_qps: f64,
    /// Page-latch grants during the drive — the writers' entire
    /// exclusion footprint under OLC, zero under shard exclusion.
    pub latch_acquisitions: u64,
    /// Latch requests that found the page held (writer collisions).
    pub latch_waits: u64,
    /// Reader-side stalls: optimistic page reads aborted because a
    /// writer raced the copy (each costs one locked retry).
    pub reader_opt_retries: u64,
    /// OLC write/scan restarts and gate escalations (all zero for the
    /// exclusive variant).
    pub olc: peb_btree::OlcStats,
}

/// The whole experiment: exclusive vs OLC over identical rounds.
#[derive(Debug, Clone, Copy)]
pub struct WriteconcReport {
    pub users: usize,
    pub rounds: usize,
    /// Fraction of the population updated per round.
    pub round_fraction: f64,
    /// Total updates applied per variant.
    pub updates_total: usize,
    /// Queries in the PRQ batch the readers loop.
    pub queries: usize,
    pub writer_threads: usize,
    pub reader_threads: usize,
    pub exclusive: WriteconcVariant,
    pub olc: WriteconcVariant,
}

impl WriteconcReport {
    /// Wall-clock update-throughput ratio of OLC over shard exclusion
    /// (under concurrent readers).
    pub fn olc_speedup(&self) -> f64 {
        self.olc.upserts_per_sec / self.exclusive.upserts_per_sec.max(1e-9)
    }

    /// Flat JSON trajectory entry (same style as
    /// [`crate::baseline::BaselineReport::to_json`], assembled by
    /// [`crate::report::json_object`]).
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let mut rows: Vec<(String, String)> = vec![
            ("users".into(), self.users.to_string()),
            ("rounds".into(), self.rounds.to_string()),
            ("round_fraction".into(), f(self.round_fraction)),
            ("updates_total".into(), self.updates_total.to_string()),
            ("queries".into(), self.queries.to_string()),
            ("writer_threads".into(), self.writer_threads.to_string()),
            ("reader_threads".into(), self.reader_threads.to_string()),
        ];
        for (prefix, v) in [("excl", &self.exclusive), ("olc", &self.olc)] {
            rows.push((format!("{prefix}_upserts_per_sec"), f(v.upserts_per_sec)));
            rows.push((format!("{prefix}_reader_qps"), f(v.reader_qps)));
            rows.push((format!("{prefix}_latch_acquisitions"), v.latch_acquisitions.to_string()));
            rows.push((format!("{prefix}_latch_waits"), v.latch_waits.to_string()));
            rows.push((format!("{prefix}_reader_opt_retries"), v.reader_opt_retries.to_string()));
            rows.push((format!("{prefix}_write_restarts"), v.olc.write_restarts.to_string()));
            rows.push((format!("{prefix}_write_escalations"), v.olc.write_escalations.to_string()));
            rows.push((format!("{prefix}_scan_restarts"), v.olc.scan_restarts.to_string()));
            rows.push((format!("{prefix}_scan_escalations"), v.olc.scan_escalations.to_string()));
        }
        rows.push(("olc_speedup_over_excl".into(), f(self.olc_speedup())));
        crate::report::json_object(&rows)
    }
}

/// The frozen write-concurrency configuration: the `BENCH_seed.json`
/// 8K-user dataset shape with the pool grown to keep the working set
/// resident (like the concurrent-scan bench, the measurement isolates
/// lock scheduling, not disk misses) and the pool's lock sharding on so
/// the pool mutex is not the bottleneck being measured.
pub fn writeconc_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 48,
        seed: 0xB1A5,
        buffer_pages: 2_048,
        pool_shards: 8,
        ..Default::default()
    }
}

/// Run the experiment on the frozen configuration: four full-population
/// update rounds under 4 writers + 2 readers. The rounds sit one
/// simulated time-unit apart, well inside one partition phase
/// (`∆tmu/n = 60`): the first round migrates every object into the next
/// phase's partition (the cross-shard slow path, still exclusive under
/// OLC), and the remaining rounds are same-partition refreshes — the
/// common steady-state case the latched fast path exists for.
pub fn measure_writeconc() -> WriteconcReport {
    measure_writeconc_with(&writeconc_config(), WRITECONC_WRITERS, WRITECONC_READERS, 4, 1.0)
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one). Both variants see identical update rounds and an identical
/// reader batch, and must agree on every query once quiesced.
pub fn measure_writeconc_with(
    cfg: &RunConfig,
    writer_threads: usize,
    reader_threads: usize,
    rounds: usize,
    fraction: f64,
) -> WriteconcReport {
    let exclusive = World::build(&RunConfig { olc_writes: false, ..cfg.clone() });
    let olc = World::build(&RunConfig { olc_writes: true, ..cfg.clone() });
    assert!(olc.peb.olc_writes(), "OLC world must run the latched write path");

    // Identical rounds for both variants: same stream, same seed. The
    // 1-unit tick keeps consecutive rounds inside one partition phase so
    // re-reports after the first are same-partition refreshes.
    let mut stream = UpdateStream::new(
        exclusive.dataset.space,
        cfg.max_speed,
        exclusive.dataset.users.clone(),
        1.0,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0C11);
    let all_rounds: Vec<Vec<MovingPoint>> =
        (0..rounds).map(|_| stream.next_round(&mut rng, fraction)).collect();
    let updates_total: usize = all_rounds.iter().map(|r| r.len()).sum();

    let gen = QueryGenerator::new(exclusive.dataset.space, cfg.num_users);
    let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0x51EA);
    let ranges = gen.range_batch(&mut qrng, cfg.queries, cfg.window_side, cfg.tq);

    let excl_v = drive(&exclusive, &all_rounds, &ranges, writer_threads, reader_threads);
    let olc_v = drive(&olc, &all_rounds, &ranges, writer_threads, reader_threads);

    // Quiesced cross-check: the write protocol must not change a single
    // result (same rounds applied, so both worlds hold the same state).
    for (i, q) in ranges.iter().enumerate() {
        let a: Vec<_> =
            exclusive.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        let b: Vec<_> = olc.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        assert_eq!(a, b, "query {i}: the OLC write path changed a result");
    }

    WriteconcReport {
        users: exclusive.dataset.users.len(),
        rounds,
        round_fraction: fraction,
        updates_total,
        queries: cfg.queries,
        writer_threads,
        reader_threads,
        exclusive: excl_v,
        olc: olc_v,
    }
}

/// Apply the rounds from `writer_threads` threads (updates partitioned
/// by uid — the index's same-uid concurrency contract) while
/// `reader_threads` loop the PRQ batch; return the variant's ledger.
fn drive(
    world: &World,
    all_rounds: &[Vec<MovingPoint>],
    ranges: &[peb_workload::queries::RangeQuerySpec],
    writer_threads: usize,
    reader_threads: usize,
) -> WriteconcVariant {
    let locks_before = world.peb.lock_stats();
    let olc_before = world.peb.olc_stats();
    let updates_total: usize = all_rounds.iter().map(|r| r.len()).sum();
    let done = AtomicBool::new(false);
    let started = Instant::now();

    let (reader_queries, reader_secs) = std::thread::scope(|s| {
        let writer_handles: Vec<_> = (0..writer_threads)
            .map(|w| {
                s.spawn(move || {
                    for round in all_rounds {
                        for m in round.iter().filter(|m| m.uid.0 as usize % writer_threads == w) {
                            world.peb.index().upsert(*m);
                        }
                    }
                })
            })
            .collect();
        let reader_handles: Vec<_> = (0..reader_threads)
            .map(|r| {
                let done = &done;
                s.spawn(move || {
                    let mut n = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let q = &ranges[(n as usize + r) % ranges.len()];
                        let _ = world.peb.prq(q.issuer, &q.window, q.tq);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for h in writer_handles {
            h.join().expect("writer thread");
        }
        let write_secs = started.elapsed().as_secs_f64();
        done.store(true, Ordering::Relaxed);
        let queries: u64 =
            reader_handles.into_iter().map(|h| h.join().expect("reader thread")).sum();
        (queries, write_secs)
    });

    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let locks = world.peb.lock_stats();
    let olc_after = world.peb.olc_stats();
    WriteconcVariant {
        upserts_per_sec: updates_total as f64 / wall,
        reader_qps: reader_queries as f64 / reader_secs.max(1e-9),
        latch_acquisitions: locks.latch_acquisitions - locks_before.latch_acquisitions,
        latch_waits: locks.latch_waits - locks_before.latch_waits,
        reader_opt_retries: locks.optimistic_retries - locks_before.optimistic_retries,
        olc: peb_btree::OlcStats {
            write_restarts: olc_after.write_restarts - olc_before.write_restarts,
            write_escalations: olc_after.write_escalations - olc_before.write_escalations,
            scan_restarts: olc_after.scan_restarts - olc_before.scan_restarts,
            scan_escalations: olc_after.scan_escalations - olc_before.scan_escalations,
        },
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &WriteconcReport) {
    println!(
        "variant\tupserts_per_sec\treader_qps\tlatch_grants\tlatch_waits\treader_retries\trestarts\tescalations\t({} users, {} rounds x {:.0}%, {}w+{}r)",
        r.users,
        r.rounds,
        r.round_fraction * 100.0,
        r.writer_threads,
        r.reader_threads
    );
    for (name, v) in [("exclusive", &r.exclusive), ("olc", &r.olc)] {
        println!(
            "{name}\t{:.0}\t{:.0}\t{}\t{}\t{}\t{}\t{}",
            v.upserts_per_sec,
            v.reader_qps,
            v.latch_acquisitions,
            v.latch_waits,
            v.reader_opt_retries,
            v.olc.write_restarts + v.olc.scan_restarts,
            v.olc.write_escalations + v.olc.scan_escalations,
        );
    }
    println!("olc_speedup_over_excl\t{:.2}x", r.olc_speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writeconc_runs_and_cross_checks_results() {
        let cfg = RunConfig {
            num_users: 1_000,
            policies_per_user: 8,
            queries: 8,
            seed: 0x0C11,
            buffer_pages: 1_024,
            pool_shards: 4,
            ..Default::default()
        };
        // The result-equality cross-check between the exclusive and OLC
        // worlds runs inside measure_writeconc_with.
        let r = measure_writeconc_with(&cfg, 2, 1, 2, 1.0);
        assert_eq!(r.writer_threads, 2);
        assert!(r.updates_total > 0);
        assert!(r.exclusive.upserts_per_sec > 0.0 && r.olc.upserts_per_sec > 0.0);
        // The exclusive write path never touches a latch and never
        // restarts — its entire exclusion is the shard lock.
        assert_eq!(r.exclusive.latch_acquisitions, 0);
        assert_eq!(r.exclusive.olc, peb_btree::OlcStats::default());
        // The OLC path's exclusion footprint is per-update page latches:
        // present, but bounded by the update count times a small path
        // scope — not the shard's page population per update.
        assert!(r.olc.latch_acquisitions > 0, "refreshes must latch their leaves");
        assert!(
            r.olc.latch_acquisitions <= (4 * r.updates_total) as u64,
            "latched scope stays O(path) per update: {} grants for {} updates",
            r.olc.latch_acquisitions,
            r.updates_total
        );
    }

    #[test]
    fn json_entry_is_well_formed() {
        let v = |latched: u64| WriteconcVariant {
            upserts_per_sec: 50_000.0,
            reader_qps: 900.0,
            latch_acquisitions: latched,
            latch_waits: latched / 100,
            reader_opt_retries: 3,
            olc: peb_btree::OlcStats {
                write_restarts: latched / 50,
                write_escalations: 1,
                scan_restarts: 2,
                scan_escalations: 0,
            },
        };
        let r = WriteconcReport {
            users: 8_000,
            rounds: 4,
            round_fraction: 0.25,
            updates_total: 8_000,
            queries: 48,
            writer_threads: 4,
            reader_threads: 2,
            exclusive: v(0),
            olc: v(9_000),
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        // 7 config keys + 2 variants x 9 + 1 speedup.
        assert_eq!(j.matches(':').count(), 26, "one key per field");
        assert!(j.contains("\"olc_latch_acquisitions\": 9000"));
        assert!(j.contains("\"excl_latch_acquisitions\": 0"));
        assert!(j.contains("\"olc_speedup_over_excl\":"));
    }
}
