//! Concurrent-scan experiment: read-query throughput at 1/2/4/8 threads
//! with the buffer pool's lock sharding on vs off, for both engines.
//!
//! This is the workload the sharded pool exists for. PR 2 removed the
//! per-index `&mut` bottleneck, leaving the pool's single mutex as the
//! last global lock: every page touch — even a buffer hit — serialized on
//! it, so adding reader threads bought nothing. With the pool sharded by
//! page id, a hit takes only the owning shard's lock and concurrent
//! readers mostly touch different shards.
//!
//! Two identically built copies of each index run the identical
//! pre-generated PRQ batch: one over a **single-shard** pool (the
//! paper-exact single-mutex configuration) and one over a pool with
//! [`SCAN_POOL_SHARDS`] lock shards. The pool is sized so the working set
//! stays resident after a warm-up pass — the measurement isolates lock
//! contention on the buffer-hit fast path, not disk-miss behavior (misses
//! serialize on the simulated disk in either configuration). The warm-up
//! pass doubles as a correctness cross-check: both pool configurations
//! must return identical result sets for every query.
//!
//! Reported per engine and thread count: wall-clock queries/second for
//! both pool configurations, plus the deterministic **hot-lock share** —
//! the fraction of the engine's page touches that funnel through its
//! hottest pool lock. The single-mutex pool is 1.0 by construction; the
//! sharded pool spreads touches toward `1 / shards`. Wall-clock scaling
//! additionally requires actual cores (on a single-core container every
//! thread count measures the same CPU, so the qps curve is flat there);
//! the hot-lock share is the machine-independent signal that the read
//! path no longer serializes, and it is what the tests assert on.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_workload::queries::RangeQuerySpec;
use peb_workload::QueryGenerator;

use crate::harness::{RunConfig, World};

/// Lock shards of the sharded pool variant. Frozen (not derived from the
/// running machine's parallelism) so the trajectory entry measures the
/// same configuration everywhere.
pub const SCAN_POOL_SHARDS: usize = 8;

/// Reader thread counts measured, in order.
pub const SCAN_THREADS: [usize; 4] = [1, 2, 4, 8];

/// One engine's throughput at one thread count, single-shard vs sharded
/// pool.
#[derive(Debug, Clone, Copy)]
pub struct ScanPoint {
    /// Concurrent reader threads issuing queries.
    pub threads: usize,
    /// Queries/second with the single-shard (single-mutex) pool.
    pub single_qps: f64,
    /// Queries/second with the [`SCAN_POOL_SHARDS`]-shard pool.
    pub sharded_qps: f64,
}

impl ScanPoint {
    /// Sharded-over-single throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.sharded_qps / self.single_qps.max(1e-9)
    }
}

/// The whole experiment: both engines over every thread count.
#[derive(Debug, Clone)]
pub struct ScanBenchReport {
    /// Users in the dataset (the frozen seed shape).
    pub users: usize,
    /// Queries in the shared PRQ batch each thread iterates.
    pub queries: usize,
    /// Passes each thread makes over the batch per measurement.
    pub reps: usize,
    /// Total frame budget of each pool.
    pub pool_pages: usize,
    /// Lock shards of the sharded variant.
    pub pool_shards: usize,
    /// PEB-tree scaling curve, one point per entry of [`SCAN_THREADS`].
    pub peb: Vec<ScanPoint>,
    /// Bx-tree (spatial baseline) scaling curve.
    pub bx: Vec<ScanPoint>,
    /// Hot-lock share of the PEB query batch: `(single pool, sharded
    /// pool)`. Deterministic for a fixed seed.
    pub peb_hot_lock_share: (f64, f64),
    /// Hot-lock share of the Bx query batch: `(single, sharded)`.
    pub bx_hot_lock_share: (f64, f64),
}

/// Run `work` with counters zeroed, then return the hottest pool shard's
/// fraction of the logical page touches — 1.0 means every touch took the
/// same lock (total serialization), `1 / num_shards` is a perfect spread.
fn hot_lock_share(pool: &std::sync::Arc<peb_storage::BufferPool>, work: impl FnOnce()) -> f64 {
    pool.reset_stats();
    work();
    let per_shard = pool.shard_stats();
    let total: u64 = per_shard.iter().map(|s| s.logical_reads).sum();
    let hottest: u64 = per_shard.iter().map(|s| s.logical_reads).max().unwrap_or(0);
    hottest as f64 / total.max(1) as f64
}

/// The frozen concurrent-scan configuration: the `BENCH_seed.json` 8K-user
/// dataset shape, with the pool grown to keep the working set resident
/// (the experiment measures the buffer-hit fast path).
pub fn scan_config() -> RunConfig {
    RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        theta: 0.7,
        queries: 64,
        seed: 0xBA5E,
        buffer_pages: 2_048,
        ..Default::default()
    }
}

/// Run the experiment on the frozen configuration.
pub fn measure_scans() -> ScanBenchReport {
    measure_scans_with(&scan_config(), SCAN_POOL_SHARDS, &SCAN_THREADS, 4)
}

/// Run the experiment on an arbitrary configuration (tests use a small
/// one). Builds each engine twice — over a 1-shard pool and over a
/// `pool_shards`-shard pool — warms both, cross-checks that the two pool
/// configurations return identical results for every query, then times
/// each thread count.
pub fn measure_scans_with(
    cfg: &RunConfig,
    pool_shards: usize,
    threads: &[usize],
    reps: usize,
) -> ScanBenchReport {
    let single = World::build(&RunConfig { pool_shards: 1, ..cfg.clone() });
    let sharded = World::build(&RunConfig { pool_shards, ..cfg.clone() });

    let gen = QueryGenerator::new(single.dataset.space, cfg.num_users);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5CA2);
    let ranges = gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);

    // Warm both pools and cross-check: pool sharding must not change any
    // result set.
    for (i, q) in ranges.iter().enumerate() {
        let a: Vec<_> = single.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        let b: Vec<_> = sharded.peb.prq(q.issuer, &q.window, q.tq).iter().map(|m| m.uid).collect();
        assert_eq!(a, b, "PEB query {i}: sharded pool changed the result");
        let a: Vec<_> = single
            .baseline
            .prq(&single.ctx.store, q.issuer, &q.window, q.tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        let b: Vec<_> = sharded
            .baseline
            .prq(&sharded.ctx.store, q.issuer, &q.window, q.tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        assert_eq!(a, b, "Bx query {i}: sharded pool changed the result");
    }

    // Deterministic decontention signal: how concentrated are the page
    // touches of one serial pass over the batch?
    let peb_hot_lock_share = (
        hot_lock_share(single.peb.pool(), || {
            ranges.iter().for_each(|q| {
                let _ = single.peb.prq(q.issuer, &q.window, q.tq);
            })
        }),
        hot_lock_share(sharded.peb.pool(), || {
            ranges.iter().for_each(|q| {
                let _ = sharded.peb.prq(q.issuer, &q.window, q.tq);
            })
        }),
    );
    let bx_hot_lock_share = (
        hot_lock_share(single.baseline.pool(), || {
            ranges.iter().for_each(|q| {
                let _ = single.baseline.prq(&single.ctx.store, q.issuer, &q.window, q.tq);
            })
        }),
        hot_lock_share(sharded.baseline.pool(), || {
            ranges.iter().for_each(|q| {
                let _ = sharded.baseline.prq(&sharded.ctx.store, q.issuer, &q.window, q.tq);
            })
        }),
    );

    let peb = threads
        .iter()
        .map(|&t| ScanPoint {
            threads: t,
            single_qps: timed(t, reps, &ranges, |q| {
                let _ = single.peb.prq(q.issuer, &q.window, q.tq);
            }),
            sharded_qps: timed(t, reps, &ranges, |q| {
                let _ = sharded.peb.prq(q.issuer, &q.window, q.tq);
            }),
        })
        .collect();
    let bx = threads
        .iter()
        .map(|&t| ScanPoint {
            threads: t,
            single_qps: timed(t, reps, &ranges, |q| {
                let _ = single.baseline.prq(&single.ctx.store, q.issuer, &q.window, q.tq);
            }),
            sharded_qps: timed(t, reps, &ranges, |q| {
                let _ = sharded.baseline.prq(&sharded.ctx.store, q.issuer, &q.window, q.tq);
            }),
        })
        .collect();

    ScanBenchReport {
        users: single.dataset.users.len(),
        queries: cfg.queries,
        reps,
        pool_pages: cfg.buffer_pages,
        pool_shards: sharded.peb.pool().num_shards(),
        peb,
        bx,
        peb_hot_lock_share,
        bx_hot_lock_share,
    }
}

/// Run `threads` readers, each making `reps` passes over `queries` from a
/// thread-specific offset (so concurrent readers are spread over the
/// batch, not in lockstep), and return aggregate queries/second.
fn timed(
    threads: usize,
    reps: usize,
    queries: &[RangeQuerySpec],
    op: impl Fn(&RangeQuerySpec) + Sync,
) -> f64 {
    let started = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let op = &op;
            s.spawn(move || {
                let offset = t * queries.len() / threads.max(1);
                for _ in 0..reps {
                    for j in 0..queries.len() {
                        op(&queries[(j + offset) % queries.len()]);
                    }
                }
            });
        }
    });
    let total = threads * reps * queries.len();
    total as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

impl ScanBenchReport {
    /// Flat JSON trajectory entry (same style as
    /// [`crate::baseline::BaselineReport::to_json`], assembled by
    /// [`crate::report::json_object`]): one
    /// `<engine>_<pool>_qps_t<threads>` key per measured point, plus the
    /// sharded-over-single speedup at the highest thread count.
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let mut rows: Vec<(String, String)> = vec![
            ("users".into(), self.users.to_string()),
            ("queries".into(), self.queries.to_string()),
            ("reps".into(), self.reps.to_string()),
            ("pool_pages".into(), self.pool_pages.to_string()),
            ("pool_shards".into(), self.pool_shards.to_string()),
        ];
        for (engine, points) in [("peb", &self.peb), ("bx", &self.bx)] {
            for p in points.iter() {
                rows.push((format!("{engine}_single_qps_t{}", p.threads), f(p.single_qps)));
                rows.push((format!("{engine}_sharded_qps_t{}", p.threads), f(p.sharded_qps)));
            }
            if let Some(last) = points.last() {
                rows.push((
                    format!("{engine}_sharded_speedup_t{}", last.threads),
                    f(last.speedup()),
                ));
            }
        }
        for (engine, (single, sharded)) in
            [("peb", self.peb_hot_lock_share), ("bx", self.bx_hot_lock_share)]
        {
            rows.push((format!("{engine}_single_hot_lock_share"), f(single)));
            rows.push((format!("{engine}_sharded_hot_lock_share"), f(sharded)));
        }
        crate::report::json_object(&rows)
    }
}

/// Print the experiment as a paper-style tab-separated table.
pub fn print_table(r: &ScanBenchReport) {
    println!(
        "engine\tthreads\tsingle_pool_qps\tsharded_pool_qps\tspeedup\t({} users, {}-page pool, {} shards)",
        r.users, r.pool_pages, r.pool_shards
    );
    for (engine, points) in [("peb", &r.peb), ("bx", &r.bx)] {
        for p in points {
            println!(
                "{engine}\t{}\t{:.0}\t{:.0}\t{:.2}x",
                p.threads,
                p.single_qps,
                p.sharded_qps,
                p.speedup()
            );
        }
    }
    println!(
        "hot_lock_share\tpeb {:.2} -> {:.2}\tbx {:.2} -> {:.2}\t(1.00 = every page touch takes the same lock)",
        r.peb_hot_lock_share.0, r.peb_hot_lock_share.1, r.bx_hot_lock_share.0, r.bx_hot_lock_share.1
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_bench_runs_and_cross_checks_results() {
        // The result-equality cross-check between the single-shard and
        // sharded pools runs inside measure_scans_with; this exercises it
        // on a small shape along with the report structure.
        let cfg = RunConfig {
            num_users: 1_000,
            policies_per_user: 8,
            queries: 12,
            seed: 0x5CA7,
            buffer_pages: 512,
            ..Default::default()
        };
        let r = measure_scans_with(&cfg, 4, &[1, 2], 1);
        assert_eq!(r.pool_shards, 4);
        assert_eq!(r.peb.len(), 2);
        assert_eq!(r.bx.len(), 2);
        for p in r.peb.iter().chain(r.bx.iter()) {
            assert!(p.single_qps > 0.0 && p.sharded_qps > 0.0);
        }
        // The decontention signal is deterministic: one lock takes every
        // touch on the single pool; sharding must spread them.
        for (single, sharded) in [r.peb_hot_lock_share, r.bx_hot_lock_share] {
            assert_eq!(single, 1.0, "single-shard pool serializes every touch");
            assert!(
                sharded < 0.75,
                "sharded pool must spread page touches off the hottest lock, got {sharded}"
            );
            assert!(sharded >= 1.0 / 4.0 - 1e-9, "share cannot beat a perfect spread");
        }
    }

    #[test]
    fn json_entry_is_well_formed() {
        let point = |t| ScanPoint { threads: t, single_qps: 1000.0, sharded_qps: 2000.0 };
        let r = ScanBenchReport {
            users: 8000,
            queries: 64,
            reps: 3,
            pool_pages: 2048,
            pool_shards: 8,
            peb: vec![point(1), point(8)],
            bx: vec![point(1), point(8)],
            peb_hot_lock_share: (1.0, 0.25),
            bx_hot_lock_share: (1.0, 0.3),
        };
        let j = r.to_json();
        assert!(j.starts_with("{\n") && j.ends_with("}\n"));
        // 5 config keys + 2 engines x (2 points x 2 + 1 speedup)
        // + 2 engines x 2 hot-lock shares.
        assert_eq!(j.matches(':').count(), 19, "one key per field");
        assert!(j.contains("\"peb_sharded_qps_t8\": 2000.00"));
        assert!(j.contains("\"bx_sharded_speedup_t8\": 2.00"));
        assert!(j.contains("\"peb_sharded_hot_lock_share\": 0.25"));
    }
}
