//! Faulty-media experiment: what surviving a bad disk costs, on the
//! frozen 8K-user configuration.
//!
//! One durable PEB-tree ingests the whole population, checkpoints, and
//! answers the same cold PRQ battery twice: once on clean media, once
//! with a seeded [`FaultKind`] mix (transient read errors, bit rot,
//! grown bad sectors) sprayed across the battery's device-read ordinals.
//! The faulted pass must produce **answers identical to the clean pass**
//! — every divergence is an undetected corruption and is reported (and
//! asserted zero in the tests).
//!
//! Reported: the deterministic fault ledger (faults fired by kind,
//! transient retries per 10K device reads, repair success rate,
//! quarantines, surfaced errors) and two wall-clock trajectory numbers —
//! the faulted battery's slowdown over the clean one, and a per-page
//! seal cost from which the checksum share of clean read time is
//! estimated (machine noise; tests assert only on the counters).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_common::MovingPoint;
use peb_index::{IndexError, TimePartitioning};
use peb_storage::{BufferPool, FaultKind, Page, PAGE_WORDS};
use peb_workload::queries::RangeQuerySpec;
use peb_workload::{DatasetBuilder, QueryGenerator};
use pebtree::{PebTree, PrivacyContext};

use crate::harness::{clone_store, RunConfig};

/// Everything the clean and faulted batteries measured.
#[derive(Debug, Clone, Copy)]
pub struct FaultBenchReport {
    pub users: usize,
    pub queries: usize,
    /// Armed points and ordinal window of the seeded schedule.
    pub armed_points: u64,
    pub window: u64,
    /// Physical data-page reads of the clean cold battery.
    pub cold_reads: u64,
    /// Physical data-page reads of the faulted battery (pool ledger —
    /// retry and repair traffic is *excluded* by contract).
    pub faulted_reads: u64,
    /// Faults that actually fired, total and by kind.
    pub faults_injected: u64,
    pub transient_faults: u64,
    pub bitflip_faults: u64,
    pub bad_sector_faults: u64,
    /// The absorption ledger ([`peb_storage::FaultStats`]).
    pub transient_retries: u64,
    pub checksum_mismatches: u64,
    pub repairs_attempted: u64,
    pub repairs_succeeded: u64,
    pub quarantines: u64,
    pub surfaced_errors: u64,
    pub repair_reads: u64,
    pub repair_writes: u64,
    /// Faulted-battery outcomes versus the clean pass.
    pub queries_ok: usize,
    pub queries_err: usize,
    /// Queries that returned `Ok` with a *different* answer than the
    /// clean pass — undetected corruption. Must be zero.
    pub answers_divergent: usize,
    /// Wall clock (trajectory only; machine noise).
    pub clean_ms: f64,
    pub faulted_ms: f64,
    pub seal_ns_per_page: f64,
}

impl FaultBenchReport {
    /// Transient retries per 10K physical reads of the faulted battery.
    pub fn retries_per_10k_reads(&self) -> f64 {
        self.transient_retries as f64 * 10_000.0 / self.faulted_reads.max(1) as f64
    }

    /// Fraction of attempted read-repairs whose rewrite re-verified.
    /// The remainder were quarantined — still served, from a pinned
    /// WAL-backed frame. 1.0 when nothing needed repair.
    pub fn repair_success_rate(&self) -> f64 {
        if self.repairs_attempted == 0 {
            1.0
        } else {
            self.repairs_succeeded as f64 / self.repairs_attempted as f64
        }
    }

    /// Wall-clock ratio of the faulted battery over the clean one.
    pub fn faulted_slowdown(&self) -> f64 {
        self.faulted_ms / self.clean_ms.max(1e-9)
    }

    /// Estimated share of clean-battery time spent sealing/verifying:
    /// one seal per physical read, priced by the microbenchmark.
    pub fn checksum_overhead_pct(&self) -> f64 {
        let seal_ms = self.cold_reads as f64 * self.seal_ns_per_page / 1e6;
        100.0 * seal_ms / self.clean_ms.max(1e-9)
    }

    /// Flat JSON trajectory entry (same style as
    /// [`crate::recovery::RecoveryBenchReport::to_json`]).
    pub fn to_json(&self) -> String {
        use crate::report::json_f64 as f;
        let rows: Vec<(&str, String)> = vec![
            ("users", self.users.to_string()),
            ("queries", self.queries.to_string()),
            ("armed_points", self.armed_points.to_string()),
            ("window", self.window.to_string()),
            ("cold_reads", self.cold_reads.to_string()),
            ("faulted_reads", self.faulted_reads.to_string()),
            ("faults_injected", self.faults_injected.to_string()),
            ("transient_faults", self.transient_faults.to_string()),
            ("bitflip_faults", self.bitflip_faults.to_string()),
            ("bad_sector_faults", self.bad_sector_faults.to_string()),
            ("transient_retries", self.transient_retries.to_string()),
            ("retries_per_10k_reads", f(self.retries_per_10k_reads())),
            ("checksum_mismatches", self.checksum_mismatches.to_string()),
            ("repairs_attempted", self.repairs_attempted.to_string()),
            ("repairs_succeeded", self.repairs_succeeded.to_string()),
            ("repair_success_rate", f(self.repair_success_rate())),
            ("quarantines", self.quarantines.to_string()),
            ("surfaced_errors", self.surfaced_errors.to_string()),
            ("repair_reads", self.repair_reads.to_string()),
            ("repair_writes", self.repair_writes.to_string()),
            ("queries_ok", self.queries_ok.to_string()),
            ("queries_err", self.queries_err.to_string()),
            ("answers_divergent", self.answers_divergent.to_string()),
            ("clean_ms", f(self.clean_ms)),
            ("faulted_ms", f(self.faulted_ms)),
            ("faulted_slowdown", f(self.faulted_slowdown())),
            ("seal_ns_per_page", f(self.seal_ns_per_page)),
            ("checksum_overhead_pct", f(self.checksum_overhead_pct())),
        ];
        crate::report::json_object(&rows)
    }
}

/// Run the experiment on the frozen baseline configuration (8K users,
/// the `BENCH_seed.json` shape): the seeded mix arms one point per
/// eight cold reads across the whole battery window.
pub fn measure_faults() -> FaultBenchReport {
    measure_faults_with(&crate::baseline::baseline_config(), 8)
}

/// Run the experiment on an arbitrary configuration. `read_density`
/// arms one fault point per that many clean cold reads (denser mixes
/// stress the retry/repair path harder).
pub fn measure_faults_with(cfg: &RunConfig, read_density: u64) -> FaultBenchReport {
    let dataset = DatasetBuilder::default()
        .num_users(cfg.num_users)
        .max_speed(cfg.max_speed)
        .distribution(cfg.distribution)
        .policies_per_user(cfg.policies_per_user)
        .grouping_factor(cfg.theta)
        .seed(cfg.seed)
        .build();
    let space = dataset.space;
    let ctx = Arc::new(PrivacyContext::build(
        clone_store(&dataset.store),
        space,
        dataset.users.len(),
        cfg.sv_params,
    ));

    let mut tree = PebTree::new(
        Arc::new(BufferPool::new(cfg.buffer_pages)),
        space,
        TimePartitioning::default(),
        cfg.max_speed,
        Arc::clone(&ctx),
    );
    tree.set_durable(true);
    for m in &dataset.users {
        tree.upsert(*m);
    }
    tree.checkpoint();

    let gen = QueryGenerator::new(space, dataset.users.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xFA17);
    let specs: Vec<RangeQuerySpec> =
        gen.range_batch(&mut rng, cfg.queries, cfg.window_side, cfg.tq);

    let battery = |tree: &PebTree| -> Vec<Result<Vec<MovingPoint>, IndexError>> {
        specs.iter().map(|q| tree.try_prq(q.issuer, &q.window, q.tq)).collect()
    };

    // Clean cold pass: the reference answers and the read footprint the
    // seeded schedule is sized against.
    tree.pool().flush_all();
    tree.pool().clear();
    tree.pool().reset_stats();
    let started = Instant::now();
    let clean = battery(&tree);
    let clean_ms = started.elapsed().as_secs_f64() * 1e3;
    let cold_reads = tree.pool().stats().physical_reads;

    // Faulted cold pass: same specs, same tree, media now lying.
    let armed_points = (cold_reads / read_density.max(1)).max(8);
    let window = cold_reads.max(1);
    tree.pool().clear();
    tree.pool().reset_stats();
    tree.pool().with_fault_injector(|f| {
        f.arm_seeded_read_schedule(cfg.seed ^ 0xFA17_5EED, armed_points, window)
    });
    let started = Instant::now();
    let faulted = battery(&tree);
    let faulted_ms = started.elapsed().as_secs_f64() * 1e3;
    let faulted_reads = tree.pool().stats().physical_reads;
    let stats = tree.pool().fault_stats();
    let trace = tree.pool().with_fault_injector(|f| f.trace().to_vec());
    let by_kind =
        |want: fn(&FaultKind) -> bool| trace.iter().filter(|e| want(&e.kind)).count() as u64;

    let mut queries_ok = 0usize;
    let mut queries_err = 0usize;
    let mut answers_divergent = 0usize;
    for (got, want) in faulted.iter().zip(clean.iter()) {
        match got {
            Err(_) => queries_err += 1,
            Ok(ans) => {
                queries_ok += 1;
                if Some(ans) != want.as_ref().ok() {
                    answers_divergent += 1;
                }
            }
        }
    }

    FaultBenchReport {
        users: dataset.users.len(),
        queries: specs.len(),
        armed_points,
        window,
        cold_reads,
        faulted_reads,
        faults_injected: trace.len() as u64,
        transient_faults: by_kind(|k| matches!(k, FaultKind::TransientRead)),
        bitflip_faults: by_kind(|k| matches!(k, FaultKind::BitFlip { .. })),
        bad_sector_faults: by_kind(|k| matches!(k, FaultKind::BadSector)),
        transient_retries: stats.transient_retries,
        checksum_mismatches: stats.checksum_mismatches,
        repairs_attempted: stats.repairs_attempted,
        repairs_succeeded: stats.repairs_succeeded,
        quarantines: stats.quarantines,
        surfaced_errors: stats.surfaced_errors,
        repair_reads: stats.repair_reads,
        repair_writes: stats.repair_writes,
        queries_ok,
        queries_err,
        answers_divergent,
        clean_ms,
        faulted_ms,
        seal_ns_per_page: seal_ns_per_page(),
    }
}

/// Price one seal: FNV-1a over a full page, averaged over enough
/// iterations to rise above timer resolution.
fn seal_ns_per_page() -> f64 {
    let mut page = Page::new();
    for i in 0..PAGE_WORDS {
        page.set_word(i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    const ITERS: u32 = 4096;
    let started = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        page.set_word(0, i as u64);
        acc ^= page.seal();
    }
    let ns = started.elapsed().as_nanos() as f64 / ITERS as f64;
    std::hint::black_box(acc);
    ns
}

/// Figure-mode table (wall clock last — it is machine noise).
pub fn print_table(r: &FaultBenchReport) {
    println!(
        "metric\tvalue\t({} users, {} PRQs, {} armed points over {} reads)",
        r.users, r.queries, r.armed_points, r.window
    );
    println!("cold_reads\t{}", r.cold_reads);
    println!("faults_injected\t{}", r.faults_injected);
    println!(
        "fired_by_kind\ttransient={} bitflip={} bad_sector={}",
        r.transient_faults, r.bitflip_faults, r.bad_sector_faults
    );
    println!("transient_retries\t{}", r.transient_retries);
    println!("retries_per_10k_reads\t{:.2}", r.retries_per_10k_reads());
    println!("repairs\t{}/{} attempted", r.repairs_succeeded, r.repairs_attempted);
    println!("repair_success_rate\t{:.3}", r.repair_success_rate());
    println!("quarantines\t{}", r.quarantines);
    println!("surfaced_errors\t{}", r.surfaced_errors);
    println!(
        "queries_ok/err/divergent\t{}/{}/{}",
        r.queries_ok, r.queries_err, r.answers_divergent
    );
    println!("clean_ms\t{:.2}", r.clean_ms);
    println!("faulted_ms\t{:.2}\t(x{:.2})", r.faulted_ms, r.faulted_slowdown());
    println!("seal_ns_per_page\t{:.0}", r.seal_ns_per_page);
    println!("checksum_overhead_pct\t{:.2}", r.checksum_overhead_pct());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_faulted_battery_answers_exactly_like_the_clean_one() {
        let cfg = RunConfig {
            num_users: 800,
            policies_per_user: 8,
            queries: 40,
            seed: 0x000F_A17B,
            ..Default::default()
        };
        // Dense mix: one armed point per four cold reads.
        let r = measure_faults_with(&cfg, 4);
        assert!(r.faults_injected >= 8, "schedule too sparse: {} fired", r.faults_injected);
        assert!(
            r.transient_faults > 0 && r.bitflip_faults > 0 && r.bad_sector_faults > 0,
            "all three read-fault kinds must fire"
        );
        assert_eq!(r.answers_divergent, 0, "an Ok answer diverged — undetected corruption");
        assert_eq!(r.queries_err, 0, "durable mode must absorb the whole mix");
        assert_eq!(r.queries_ok, r.queries);
        assert_eq!(r.surfaced_errors, 0);
        assert!(r.transient_retries > 0 && r.repairs_attempted > 0);
        assert_eq!(r.repairs_attempted, r.repairs_succeeded + r.quarantines);
        assert!(r.retries_per_10k_reads() > 0.0);
        assert!(r.repair_success_rate() > 0.0 && r.repair_success_rate() <= 1.0);
    }

    #[test]
    fn json_entry_is_well_formed() {
        let r = FaultBenchReport {
            users: 800,
            queries: 40,
            armed_points: 32,
            window: 256,
            cold_reads: 256,
            faulted_reads: 256,
            faults_injected: 30,
            transient_faults: 15,
            bitflip_faults: 8,
            bad_sector_faults: 7,
            transient_retries: 15,
            checksum_mismatches: 8,
            repairs_attempted: 15,
            repairs_succeeded: 8,
            quarantines: 7,
            surfaced_errors: 0,
            repair_reads: 22,
            repair_writes: 8,
            queries_ok: 40,
            queries_err: 0,
            answers_divergent: 0,
            clean_ms: 10.0,
            faulted_ms: 12.0,
            seal_ns_per_page: 400.0,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        for key in [
            "retries_per_10k_reads",
            "repair_success_rate",
            "answers_divergent",
            "checksum_overhead_pct",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!((r.retries_per_10k_reads() - 585.94).abs() < 0.01);
        assert!((r.repair_success_rate() - 8.0 / 15.0).abs() < 1e-12);
        assert!((r.faulted_slowdown() - 1.2).abs() < 1e-12);
    }
}
