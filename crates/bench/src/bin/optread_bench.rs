//! Run the optimistic-read locking experiment on the frozen configuration
//! and print the table; writes nothing (the trajectory entry is written by
//! `run_all --baseline-only`, see docs/BENCHMARKS.md).
use peb_bench::optreads;

fn main() {
    let r = optreads::measure_optreads();
    optreads::print_table(&r);
}
