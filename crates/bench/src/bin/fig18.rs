//! Fig 18: effect of updates (25% of the dataset per round, two full passes).
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 18", "query I/O after each 25% update round (200% total)");
    report::io_table("percent_updated", &experiments::fig18_updates());
}
