//! Fused-scan query I/O: logical page accesses and descents per query,
//! per-interval vs fused plans, both engines. See `peb_bench::queryio`
//! and docs/BENCHMARKS.md; `run_all --baseline-only` writes the same
//! measurement to `BENCH_queryio.json`.

fn main() {
    let report = peb_bench::queryio::measure_queryio();
    peb_bench::queryio::print_table(&report);
}
