//! Write-optimized ingestion: buffered vs direct update paths on both
//! engines, frozen 8K-user configuration.

use peb_bench::ingest;

fn main() {
    let r = ingest::measure_ingest();
    ingest::print_table(&r);
}
