//! Run every figure back to back (respects PEB_SCALE / PEB_QUERIES).
//!
//! Flags:
//! * `--baseline-only` — skip the figures; measure the fixed perf baseline
//!   and write it to `BENCH_seed.json` (what CI runs), plus the
//!   update-throughput trajectory entry to `BENCH_updates.json`, the
//!   concurrent-scan trajectory entry to `BENCH_scans.json`, the
//!   optimistic-read trajectory entry to `BENCH_optreads.json`, and the
//!   fused-scan query-I/O trajectory entry to `BENCH_queryio.json`, the
//!   buffered-ingestion trajectory entry to `BENCH_ingest.json`, the
//!   durability/recovery trajectory entry to `BENCH_recovery.json`, the
//!   write-concurrency trajectory entry to `BENCH_writeconc.json`, the
//!   faulty-media trajectory entry to `BENCH_faults.json`, and the
//!   overload/goodput trajectory entry to `BENCH_overload.json`.
//!   `BENCH_seed.json` keeps the seed configuration and is never edited —
//!   new measurement shapes get new files, so the trajectory extends
//!   instead of rewriting history (protocol: docs/BENCHMARKS.md). None of
//!   the files is written by casual figure runs.
//! * `PEB_BASELINE_OUT` / `PEB_UPDATES_OUT` / `PEB_SCANS_OUT` /
//!   `PEB_OPTREADS_OUT` / `PEB_QUERYIO_OUT` / `PEB_INGEST_OUT` /
//!   `PEB_RECOVERY_OUT` / `PEB_WRITECONC_OUT` / `PEB_FAULTS_OUT` /
//!   `PEB_OVERLOAD_OUT` — override the output paths.
use peb_bench::experiments;
use peb_bench::faults;
use peb_bench::ingest;
use peb_bench::optreads;
use peb_bench::overload;
use peb_bench::queryio;
use peb_bench::recovery;
use peb_bench::report;
use peb_bench::scans;
use peb_bench::updates;
use peb_bench::writeconc;

fn main() {
    if std::env::args().any(|a| a == "--baseline-only") {
        let out_path =
            std::env::var("PEB_BASELINE_OUT").unwrap_or_else(|_| "BENCH_seed.json".to_string());
        let baseline = peb_bench::baseline::measure();
        std::fs::write(&out_path, baseline.to_json())
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!("baseline written to {out_path}");

        let upd_path =
            std::env::var("PEB_UPDATES_OUT").unwrap_or_else(|_| "BENCH_updates.json".to_string());
        let upd = updates::measure_updates();
        std::fs::write(&upd_path, upd.to_json())
            .unwrap_or_else(|e| panic!("cannot write {upd_path}: {e}"));
        eprintln!("update-throughput trajectory written to {upd_path}");

        let scans_path =
            std::env::var("PEB_SCANS_OUT").unwrap_or_else(|_| "BENCH_scans.json".to_string());
        let scan = scans::measure_scans();
        std::fs::write(&scans_path, scan.to_json())
            .unwrap_or_else(|e| panic!("cannot write {scans_path}: {e}"));
        eprintln!("concurrent-scan trajectory written to {scans_path}");

        let opt_path =
            std::env::var("PEB_OPTREADS_OUT").unwrap_or_else(|_| "BENCH_optreads.json".to_string());
        let opt = optreads::measure_optreads();
        std::fs::write(&opt_path, opt.to_json())
            .unwrap_or_else(|e| panic!("cannot write {opt_path}: {e}"));
        eprintln!("optimistic-read trajectory written to {opt_path}");

        let qio_path =
            std::env::var("PEB_QUERYIO_OUT").unwrap_or_else(|_| "BENCH_queryio.json".to_string());
        let qio = queryio::measure_queryio();
        std::fs::write(&qio_path, qio.to_json())
            .unwrap_or_else(|e| panic!("cannot write {qio_path}: {e}"));
        eprintln!("fused-scan query-I/O trajectory written to {qio_path}");

        let ing_path =
            std::env::var("PEB_INGEST_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_string());
        let ing = ingest::measure_ingest();
        std::fs::write(&ing_path, ing.to_json())
            .unwrap_or_else(|e| panic!("cannot write {ing_path}: {e}"));
        eprintln!("buffered-ingestion trajectory written to {ing_path}");

        let rec_path =
            std::env::var("PEB_RECOVERY_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());
        let rec = recovery::measure_recovery();
        std::fs::write(&rec_path, rec.to_json())
            .unwrap_or_else(|e| panic!("cannot write {rec_path}: {e}"));
        eprintln!("durability/recovery trajectory written to {rec_path}");

        let wc_path = std::env::var("PEB_WRITECONC_OUT")
            .unwrap_or_else(|_| "BENCH_writeconc.json".to_string());
        let wc = writeconc::measure_writeconc();
        std::fs::write(&wc_path, wc.to_json())
            .unwrap_or_else(|e| panic!("cannot write {wc_path}: {e}"));
        eprintln!("write-concurrency trajectory written to {wc_path}");

        let flt_path =
            std::env::var("PEB_FAULTS_OUT").unwrap_or_else(|_| "BENCH_faults.json".to_string());
        let flt = faults::measure_faults();
        assert_eq!(flt.answers_divergent, 0, "faulted battery diverged from the clean answers");
        std::fs::write(&flt_path, flt.to_json())
            .unwrap_or_else(|e| panic!("cannot write {flt_path}: {e}"));
        eprintln!("faulty-media trajectory written to {flt_path}");

        let ov_path =
            std::env::var("PEB_OVERLOAD_OUT").unwrap_or_else(|_| "BENCH_overload.json".to_string());
        let ov = overload::measure_overload();
        assert!(ov.ledger_identical, "overload sweep ledgers diverged between runs");
        let prot4 = ov.protected.last().expect("sweep has points");
        let unprot4 = ov.unprotected.last().expect("sweep has points");
        assert!(
            ov.retention(prot4) >= 0.7,
            "protected 4x retention {:.2} below the 70% bar",
            ov.retention(prot4)
        );
        assert!(
            ov.retention(unprot4) < 0.5,
            "unprotected 4x retention {:.2} did not collapse",
            ov.retention(unprot4)
        );
        for p in ov.protected.iter().chain(ov.unprotected.iter()) {
            assert!(
                p.p99_overshoot <= overload::OVERSHOOT_EPSILON,
                "x{} p99 deadline overshoot {} ticks",
                p.multiplier,
                p.p99_overshoot
            );
        }
        std::fs::write(&ov_path, ov.to_json())
            .unwrap_or_else(|e| panic!("cannot write {ov_path}: {e}"));
        eprintln!("overload/goodput trajectory written to {ov_path}");
        return;
    }

    report::header("Fig 11(a)", "policy-encoding preprocessing time, varying number of users");
    report::time_table("users", &experiments::fig11a_users());
    println!();
    report::header("Fig 11(b)", "policy-encoding preprocessing time, varying policies per user");
    report::time_table("policies_per_user", &experiments::fig11b_policies());
    println!();
    report::header("Fig 12", "query I/O vs total number of users");
    report::io_table("users", &experiments::fig12_users());
    println!();
    report::header("Fig 13", "query I/O vs policies per user");
    report::io_table("policies_per_user", &experiments::fig13_policies());
    println!();
    report::header("Fig 14", "query I/O vs grouping factor");
    report::io_table("theta", &experiments::fig14_theta());
    println!();
    report::header("Fig 15(a)", "PRQ I/O vs query-window side length");
    report::io_table("window_side", &experiments::fig15a_window());
    println!();
    report::header("Fig 15(b)", "PkNN I/O vs k");
    report::io_table("k", &experiments::fig15b_k());
    println!();
    report::header("Fig 16", "query I/O vs number of destinations (network data)");
    report::io_table("destinations", &experiments::fig16_destinations());
    println!();
    report::header("Fig 17", "query I/O vs maximum object speed");
    report::io_table("max_speed", &experiments::fig17_speed());
    println!();
    report::header("Fig 18", "query I/O after each 25% update round");
    report::io_table("percent_updated", &experiments::fig18_updates());
    println!();
    report::header("Fig 19", "cost function estimate vs actual PEB-tree PRQ I/O");
    report::cost_table(&experiments::fig19_cost_model());
    println!();
    report::header(
        "Updates",
        "update throughput: sequential vs batched (sharded) vs unsharded single-tree",
    );
    updates::print_table(&updates::measure_updates());
    println!();
    report::header(
        "Scans",
        "concurrent read qps: single-shard vs sharded buffer pool, 1-8 threads",
    );
    scans::print_table(&scans::measure_scans());
    println!();
    report::header(
        "OptReads",
        "locks acquired per warm query: locked vs optimistic read path, both engines",
    );
    optreads::print_table(&optreads::measure_optreads());
    println!();
    report::header(
        "QueryIO",
        "logical page accesses and descents per warm query: per-interval vs fused plans",
    );
    queryio::print_table(&queryio::measure_queryio());
    println!();
    report::header(
        "Ingest",
        "sustained upserts and leaf pages written: direct vs buffered write path, both engines",
    );
    ingest::print_table(&ingest::measure_ingest());
    println!();
    report::header(
        "Recovery",
        "write-ahead-log cost and crash-recovery replay: one checkpoint, two unflushed rounds",
    );
    recovery::print_table(&recovery::measure_recovery());
    println!();
    report::header(
        "WriteConc",
        "update throughput and reader overlap: whole-shard exclusive vs OLC write path",
    );
    writeconc::print_table(&writeconc::measure_writeconc());
    println!();
    report::header(
        "Faults",
        "faulty-media battery: seeded read-fault mix absorbed by retry, read-repair, quarantine",
    );
    faults::print_table(&faults::measure_faults());
    println!();
    report::header(
        "Overload",
        "goodput under 1x/2x/4x saturation: bounded shedding queue vs unbounded twin",
    );
    overload::print_table(&overload::measure_overload());
}
