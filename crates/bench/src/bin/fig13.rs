//! Fig 13: effect of the number of policies per user on PRQ/PkNN I/O.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 13", "query I/O vs policies per user (PRQ and PkNN)");
    report::io_table("policies_per_user", &experiments::fig13_policies());
}
