//! Update-throughput experiment on the frozen 8K-user baseline shape:
//! sharded sequential vs sharded batched vs unsharded single-tree (see
//! `peb_bench::updates`).

use peb_bench::{report, updates};

fn main() {
    report::header(
        "Updates",
        "update throughput: sequential vs batched (sharded) vs unsharded single-tree",
    );
    updates::print_table(&updates::measure_updates());
}
