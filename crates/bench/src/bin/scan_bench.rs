//! Concurrent-scan throughput: read qps at 1/2/4/8 threads, single-shard
//! vs sharded buffer pool, both engines. See `peb_bench::scans` and
//! docs/BENCHMARKS.md; `run_all --baseline-only` writes the same
//! measurement to `BENCH_scans.json`.

fn main() {
    let report = peb_bench::scans::measure_scans();
    peb_bench::scans::print_table(&report);
}
