//! All paper figures behind one binary: `figures <id> [<id> ...]`.
//!
//! `<id>` is a figure number (`11`–`19`, with or without a `fig` prefix)
//! or `all`. Replaces the nine copy-pasted per-figure binaries; `run_all`
//! still prints every figure in sequence. Respects `PEB_SCALE` /
//! `PEB_QUERIES` like every experiment.
//!
//! ```text
//! cargo run --release --bin figures 12        # one figure
//! cargo run --release --bin figures 11 15     # several
//! cargo run --release --bin figures all       # the whole set
//! ```

use peb_bench::experiments;
use peb_bench::report;

/// Print one figure's table(s); returns `false` for an unknown id.
fn print_figure(id: u32) -> bool {
    match id {
        11 => {
            report::header(
                "Fig 11(a)",
                "policy-encoding preprocessing time, varying number of users",
            );
            report::time_table("users", &experiments::fig11a_users());
            println!();
            report::header(
                "Fig 11(b)",
                "policy-encoding preprocessing time, varying policies per user (60K users)",
            );
            report::time_table("policies_per_user", &experiments::fig11b_policies());
        }
        12 => {
            report::header("Fig 12", "query I/O vs total number of users (PRQ and PkNN)");
            report::io_table("users", &experiments::fig12_users());
        }
        13 => {
            report::header("Fig 13", "query I/O vs policies per user");
            report::io_table("policies_per_user", &experiments::fig13_policies());
        }
        14 => {
            report::header("Fig 14", "query I/O vs grouping factor");
            report::io_table("theta", &experiments::fig14_theta());
        }
        15 => {
            report::header("Fig 15(a)", "PRQ I/O vs query-window side length");
            report::io_table("window_side", &experiments::fig15a_window());
            println!();
            report::header("Fig 15(b)", "PkNN I/O vs k");
            report::io_table("k", &experiments::fig15b_k());
        }
        16 => {
            report::header("Fig 16", "query I/O vs number of destinations (network data)");
            report::io_table("destinations", &experiments::fig16_destinations());
        }
        17 => {
            report::header("Fig 17", "query I/O vs maximum object speed");
            report::io_table("max_speed", &experiments::fig17_speed());
        }
        18 => {
            report::header("Fig 18", "query I/O after each 25% update round");
            report::io_table("percent_updated", &experiments::fig18_updates());
        }
        19 => {
            report::header("Fig 19", "cost function estimate vs actual PEB-tree PRQ I/O");
            report::cost_table(&experiments::fig19_cost_model());
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: figures <11..19|all> [<id> ...]");
        std::process::exit(2);
    }
    let ids: Vec<u32> = if args.iter().any(|a| a == "all") {
        (11..=19).collect()
    } else {
        args.iter()
            .map(|a| {
                a.trim_start_matches("fig").parse::<u32>().unwrap_or_else(|_| {
                    eprintln!("unknown figure id {a:?} (expected 11..19 or all)");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!();
        }
        if !print_figure(*id) {
            eprintln!("unknown figure id {id} (expected 11..19 or all)");
            std::process::exit(2);
        }
    }
}
