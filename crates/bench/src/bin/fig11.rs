//! Fig 11: preprocessing time for policy encoding.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 11(a)", "policy-encoding preprocessing time, varying number of users");
    report::time_table("users", &experiments::fig11a_users());
    println!();
    report::header(
        "Fig 11(b)",
        "policy-encoding preprocessing time, varying policies per user (60K users)",
    );
    report::time_table("policies_per_user", &experiments::fig11b_policies());
}
