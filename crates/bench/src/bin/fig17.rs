//! Fig 17: effect of the maximum object speed.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 17", "query I/O vs maximum object speed");
    report::io_table("max_speed", &experiments::fig17_speed());
}
