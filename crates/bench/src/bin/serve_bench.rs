//! Overload experiment standalone: table on stdout, nothing written.
//! (`run_all --baseline-only` writes the `BENCH_overload.json` entry.)

use peb_bench::overload;

fn main() {
    let r = overload::measure_overload();
    overload::print_table(&r);
    assert!(r.ledger_identical, "overload sweep ledgers diverged between runs");
}
