//! Ablations of the PEB-tree's own design choices (not paper figures):
//!
//! * **δ (group spacing)** — Fig 5's inter-group gap. Too small and groups
//!   bleed into each other in key space; large values only stretch keys.
//! * **SV quantization (`frac_bits`)** — how many fixed-point bits of the
//!   sequence value survive in the PEB key. Coarse codes merge unrelated
//!   users into the same SV slot and enlarge scans.
//! * **Buffer size** — the LRU pool the paper fixes at 50 pages.
//!
//! Usage: `cargo run --release -p peb-bench --bin ablation` (respects
//! PEB_SCALE / PEB_QUERIES).

use peb_bench::harness::{run, RunConfig};
use peb_policy::SvAssignmentParams;

fn main() {
    println!("# Ablation A: sequence-value group spacing δ");
    println!("delta\tpeb_prq_io\tpeb_knn_io");
    for delta in [1.5, 2.0, 4.0, 8.0] {
        let cfg = RunConfig {
            sv_params: SvAssignmentParams { delta, ..Default::default() },
            ..Default::default()
        };
        let m = run(&cfg);
        println!("{delta}\t{:.2}\t{:.2}", m.peb_prq_io, m.peb_knn_io);
    }

    println!("\n# Ablation B: SV fixed-point resolution (frac_bits)");
    println!("frac_bits\tpeb_prq_io\tpeb_knn_io");
    for frac_bits in [2u32, 6, 10, 14] {
        let cfg = RunConfig {
            sv_params: SvAssignmentParams { frac_bits, ..Default::default() },
            ..Default::default()
        };
        let m = run(&cfg);
        println!("{frac_bits}\t{:.2}\t{:.2}", m.peb_prq_io, m.peb_knn_io);
    }

    println!("\n# Ablation C: LRU buffer size (pages)");
    println!("buffer_pages\tpeb_prq_io\tspatial_prq_io\tpeb_knn_io\tspatial_knn_io");
    for buffer_pages in [10usize, 25, 50, 100, 200] {
        let cfg = RunConfig { buffer_pages, ..Default::default() };
        let m = run(&cfg);
        println!(
            "{buffer_pages}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            m.peb_prq_io, m.base_prq_io, m.peb_knn_io, m.base_knn_io
        );
    }
}
