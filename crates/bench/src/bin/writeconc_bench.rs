//! Write-concurrency: update throughput and reader overlap with the
//! whole-shard exclusive vs the optimistic-lock-coupling write path. See
//! `peb_bench::writeconc` and docs/BENCHMARKS.md; `run_all
//! --baseline-only` writes the same measurement to
//! `BENCH_writeconc.json`.

fn main() {
    let report = peb_bench::writeconc::measure_writeconc();
    peb_bench::writeconc::print_table(&report);
    if std::env::args().any(|a| a == "--json") {
        print!("{}", report.to_json());
    }
}
