//! Fig 14: effect of the grouping factor θ on PRQ/PkNN I/O.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 14", "query I/O vs grouping factor (PRQ and PkNN)");
    report::io_table("theta", &experiments::fig14_theta());
}
