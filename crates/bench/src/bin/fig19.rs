//! Fig 19: cost-model validation — estimated vs actual PEB PRQ I/O.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 19", "cost function estimate vs actual PEB-tree PRQ I/O");
    report::cost_table(&experiments::fig19_cost_model());
}
