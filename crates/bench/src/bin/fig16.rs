//! Fig 16: effect of the spatial distribution (network data, varying hubs).
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 16", "query I/O vs number of destinations (network-based data)");
    report::io_table("destinations", &experiments::fig16_destinations());
}
