//! Fig 15: effect of the location-related query parameters.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 15(a)", "PRQ I/O vs query-window side length");
    report::io_table("window_side", &experiments::fig15a_window());
    println!();
    report::header("Fig 15(b)", "PkNN I/O vs k");
    report::io_table("k", &experiments::fig15b_k());
}
