//! Fig 12: effect of the total number of users on PRQ/PkNN I/O.
use peb_bench::experiments;
use peb_bench::report;

fn main() {
    report::header("Fig 12", "query I/O vs total number of users (PRQ and PkNN)");
    report::io_table("users", &experiments::fig12_users());
}
