//! Criterion micro-benchmarks: the building blocks (B+-tree, Z-order,
//! policy encoding) and small-scale end-to-end queries for both engines.
//! Figure-scale sweeps live in the `fig*` binaries, not here.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use peb_bench::harness::{RunConfig, World};
use peb_btree::BTree;
use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_policy::{SequenceValues, SvAssignmentParams};
use peb_storage::BufferPool;
use peb_workload::{DatasetBuilder, QueryGenerator};
use peb_zorder::{decompose, encode};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);
    g.bench_function("insert_10k_random", |b| {
        b.iter(|| {
            let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                t.insert(rng.gen::<u64>() as u128, 0);
            }
            black_box(t.len())
        })
    });
    let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
    for i in 0..100_000u128 {
        t.insert(i * 7, i as u64);
    }
    g.bench_function("get_hit", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(t.get(i * 7))
        })
    });
    g.bench_function("range_scan_1k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            t.range_scan(7_000, 14_000, |_, _| {
                n += 1;
                true
            });
            black_box(n)
        })
    });
    g.finish();
}

fn bench_zorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("zorder");
    g.bench_function("encode", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(2_654_435_761);
            black_box(encode(i & 0xFFFF, (i >> 16) & 0xFFFF))
        })
    });
    for side in [50u32, 200, 500] {
        g.bench_with_input(BenchmarkId::new("decompose_1024grid", side), &side, |b, &side| {
            b.iter(|| black_box(decompose(100, 100 + side, 200, 200 + side, 10)))
        });
    }
    g.finish();
}

fn bench_policy_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_encoding");
    g.sample_size(10);
    for n in [2_000usize, 8_000] {
        let ds = DatasetBuilder::default().num_users(n).policies_per_user(20).seed(3).build();
        g.bench_with_input(BenchmarkId::new("sequence_values", n), &n, |b, _| {
            b.iter(|| {
                black_box(SequenceValues::assign(
                    &ds.store,
                    &SpaceConfig::default(),
                    n,
                    SvAssignmentParams::default(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let cfg = RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        queries: 0,
        seed: 9,
        ..Default::default()
    };
    let world = World::build(&cfg);
    let gen = QueryGenerator::new(world.dataset.space, cfg.num_users);
    let mut rng = StdRng::seed_from_u64(17);
    let ranges = gen.range_batch(&mut rng, 64, 200.0, cfg.tq);
    let knns = gen.knn_batch(&mut rng, 64, 5, cfg.tq);

    let mut g = c.benchmark_group("queries_8k_users");
    g.sample_size(20);
    g.bench_function("peb_prq", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &ranges[i % ranges.len()];
            i += 1;
            black_box(world.peb.prq(q.issuer, &q.window, q.tq).len())
        })
    });
    g.bench_function("spatial_prq", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &ranges[i % ranges.len()];
            i += 1;
            black_box(world.baseline.prq(&world.ctx.store, q.issuer, &q.window, q.tq).len())
        })
    });
    g.bench_function("peb_pknn", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &knns[i % knns.len()];
            i += 1;
            black_box(world.peb.pknn(q.issuer, q.q, q.k, q.tq).len())
        })
    });
    g.bench_function("spatial_pknn", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &knns[i % knns.len()];
            i += 1;
            black_box(world.baseline.pknn(&world.ctx.store, q.issuer, q.q, q.k, q.tq).len())
        })
    });
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let cfg = RunConfig {
        num_users: 8_000,
        policies_per_user: 20,
        queries: 0,
        seed: 9,
        ..Default::default()
    };
    let mut world = World::build(&cfg);
    let mut g = c.benchmark_group("updates_8k_users");
    let mut rng = StdRng::seed_from_u64(23);
    g.bench_function("peb_upsert", |b| {
        b.iter(|| {
            let uid = rng.gen_range(0..8_000u64);
            let m = MovingPoint::new(
                UserId(uid),
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                Vec2::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)),
                30.0,
            );
            world.peb.upsert(m);
        })
    });
    g.bench_function("baseline_upsert", |b| {
        b.iter(|| {
            let uid = rng.gen_range(0..8_000u64);
            let m = MovingPoint::new(
                UserId(uid),
                Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                Vec2::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)),
                30.0,
            );
            world.baseline.upsert(m);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_btree,
    bench_zorder,
    bench_policy_encoding,
    bench_queries,
    bench_updates
);
criterion_main!(benches);
