//! Update streams (Sec 7.9): objects re-report their position/velocity as
//! time advances, and the paper measures query cost after every 25% of the
//! dataset has been updated, until everything has been updated twice.

use peb_common::{MovingPoint, Point, SpaceConfig, UserId};
use rand::Rng;

use crate::uniform::random_velocity;

/// Produces rounds of position updates over an evolving user population.
///
/// Objects move according to their current linear motion; each update
/// re-samples the velocity (bouncing at the space boundary) and advances
/// the update timestamp — the standard moving-object-database workload.
pub struct UpdateStream {
    space: SpaceConfig,
    max_speed: f64,
    users: Vec<MovingPoint>,
    time: f64,
    /// Next user index to update (round-robin over the population).
    cursor: usize,
    /// Simulated time between consecutive update batches.
    tick: f64,
}

impl UpdateStream {
    pub fn new(space: SpaceConfig, max_speed: f64, users: Vec<MovingPoint>, tick: f64) -> Self {
        assert!(tick > 0.0);
        let time = users.iter().map(|m| m.t_update).fold(0.0, f64::max);
        UpdateStream { space, max_speed, users, time, cursor: 0, tick }
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current (ground-truth) state of every user.
    pub fn users(&self) -> &[MovingPoint] {
        &self.users
    }

    /// Advance time by one tick and update the next `fraction` of the
    /// population (round-robin), returning the refreshed records.
    pub fn next_round(&mut self, rng: &mut impl Rng, fraction: f64) -> Vec<MovingPoint> {
        assert!((0.0..=1.0).contains(&fraction));
        self.time += self.tick;
        let n = self.users.len();
        let count = ((n as f64 * fraction).round() as usize).min(n);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            out.push(self.update_user(rng, idx));
        }
        out
    }

    /// Move a single user to its predicted position at the current time,
    /// clamp it into the space, and draw a fresh velocity.
    fn update_user(&mut self, rng: &mut impl Rng, idx: usize) -> MovingPoint {
        let old = self.users[idx];
        let pos = self.space.bounds().clamp(old.position_at(self.time));
        let vel = random_velocity(rng, self.max_speed);
        let m = MovingPoint::new(UserId(idx as u64), Point::new(pos.x, pos.y), vel, self.time);
        self.users[idx] = m;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(n: usize) -> UpdateStream {
        let mut rng = StdRng::seed_from_u64(13);
        let space = SpaceConfig::default();
        let users = uniform::generate(&mut rng, &space, n, 3.0, 0.0);
        UpdateStream::new(space, 3.0, users, 15.0)
    }

    #[test]
    fn quarter_round_updates_quarter_of_users() {
        let mut s = stream(100);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = s.next_round(&mut rng, 0.25);
        assert_eq!(batch.len(), 25);
        assert_eq!(s.time(), 15.0);
        for m in &batch {
            assert_eq!(m.t_update, 15.0);
            assert!(s.space.bounds().contains(&m.pos));
            assert!(m.speed() <= 3.0 + 1e-12);
        }
    }

    #[test]
    fn round_robin_covers_everyone_in_four_quarters() {
        let mut s = stream(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut touched = std::collections::HashSet::new();
        for _ in 0..4 {
            for m in s.next_round(&mut rng, 0.25) {
                touched.insert(m.uid);
            }
        }
        assert_eq!(touched.len(), 100, "one full pass must touch every user");
    }

    #[test]
    fn ground_truth_tracks_updates() {
        let mut s = stream(10);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = s.next_round(&mut rng, 1.0);
        for m in batch {
            assert_eq!(s.users()[m.uid.as_index()], m);
        }
    }
}
