//! Dataset traces: save/load a generated workload as plain text so an
//! experiment can be archived, diffed, and re-run bit-identically — the
//! moving-object-database equivalent of publishing the generator output
//! rather than just the seed.
//!
//! Format (line-oriented, tab-separated, `#` comments):
//!
//! ```text
//! #peb-trace v1
//! space\t<side>\t<grid_bits>\t<time_domain>
//! u\t<uid>\t<x>\t<y>\t<vx>\t<vy>\t<t_update>
//! p\t<owner>\t<viewer>\t<role>\t<xl>\t<xu>\t<yl>\t<yu>\t<t_start>\t<t_end>
//! ```

use std::fmt::Write as _;
use std::str::FromStr;

use peb_common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_policy::{Policy, PolicyStore, RoleId};

use crate::dataset::Dataset;

/// Serialize a dataset (positions + policies + space) to the trace format.
pub fn to_string(ds: &Dataset) -> String {
    let mut out = String::new();
    out.push_str("#peb-trace v1\n");
    let _ =
        writeln!(out, "space\t{}\t{}\t{}", ds.space.side, ds.space.grid_bits, ds.space.time_domain);
    for m in &ds.users {
        let _ = writeln!(
            out,
            "u\t{}\t{}\t{}\t{}\t{}\t{}",
            m.uid.0, m.pos.x, m.pos.y, m.vel.x, m.vel.y, m.t_update
        );
    }
    let mut policies: Vec<(UserId, UserId, &Policy)> = ds.store.iter().collect();
    policies.sort_by_key(|(o, v, _)| (*o, *v));
    for (owner, viewer, p) in policies {
        let _ = writeln!(
            out,
            "p\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            owner.0,
            viewer.0,
            p.role.0,
            p.locr.xl,
            p.locr.xu,
            p.locr.yl,
            p.locr.yu,
            p.tint.start,
            p.tint.end
        );
    }
    out
}

/// Errors while parsing a trace.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceError {
    MissingHeader,
    MissingSpaceLine,
    /// `(line number, description)`
    Malformed(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::MissingHeader => write!(f, "missing '#peb-trace v1' header"),
            TraceError::MissingSpaceLine => write!(f, "missing 'space' line"),
            TraceError::Malformed(line, what) => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn field<T: FromStr>(parts: &[&str], idx: usize, line_no: usize) -> Result<T, TraceError> {
    parts
        .get(idx)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TraceError::Malformed(line_no, format!("bad field {idx}")))
}

/// Parse a trace back into a [`Dataset`] (the `network` simulation state is
/// not part of a trace; positions and velocities are).
pub fn from_str(text: &str) -> Result<Dataset, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == "#peb-trace v1" => {}
        _ => return Err(TraceError::MissingHeader),
    }

    let mut space: Option<SpaceConfig> = None;
    let mut users: Vec<MovingPoint> = Vec::new();
    let mut store = PolicyStore::new();
    let mut max_speed = 0.0f64;

    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        match parts[0] {
            "space" => {
                space = Some(SpaceConfig::new(
                    field(&parts, 1, line_no)?,
                    field(&parts, 2, line_no)?,
                    field(&parts, 3, line_no)?,
                ));
            }
            "u" => {
                let m = MovingPoint::new(
                    UserId(field(&parts, 1, line_no)?),
                    Point::new(field(&parts, 2, line_no)?, field(&parts, 3, line_no)?),
                    Vec2::new(field(&parts, 4, line_no)?, field(&parts, 5, line_no)?),
                    field(&parts, 6, line_no)?,
                );
                max_speed = max_speed.max(m.speed());
                users.push(m);
            }
            "p" => {
                let owner = UserId(field(&parts, 1, line_no)?);
                let viewer = UserId(field(&parts, 2, line_no)?);
                let policy = Policy::new(
                    owner,
                    RoleId(field(&parts, 3, line_no)?),
                    Rect::new(
                        field(&parts, 4, line_no)?,
                        field(&parts, 5, line_no)?,
                        field(&parts, 6, line_no)?,
                        field(&parts, 7, line_no)?,
                    ),
                    TimeInterval::new(field(&parts, 8, line_no)?, field(&parts, 9, line_no)?),
                );
                store.add_additional(viewer, policy);
            }
            other => {
                return Err(TraceError::Malformed(line_no, format!("unknown record '{other}'")))
            }
        }
    }

    let space = space.ok_or(TraceError::MissingSpaceLine)?;
    Ok(Dataset { space, users, store, max_speed: max_speed.max(1e-9), network: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = DatasetBuilder::default().num_users(150).policies_per_user(6).seed(4).build();
        let text = to_string(&ds);
        let back = from_str(&text).expect("parse");
        assert_eq!(back.space, ds.space);
        assert_eq!(back.users, ds.users);
        assert_eq!(back.store.len(), ds.store.len());
        for (o, v, p) in ds.store.iter() {
            assert_eq!(back.store.policy(o, v), Some(p), "pair ({o}, {v})");
        }
        // And the re-serialization is bit-identical (canonical ordering).
        assert_eq!(to_string(&back), text);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(from_str("space\t1000\t10\t1440\n"), Err(TraceError::MissingHeader)));
    }

    #[test]
    fn rejects_missing_space() {
        let Err(err) = from_str("#peb-trace v1\nu\t0\t1\t2\t0\t0\t0\n") else {
            panic!("expected an error");
        };
        assert!(matches!(err, TraceError::MissingSpaceLine));
    }

    #[test]
    fn rejects_malformed_fields_with_line_numbers() {
        let Err(err) = from_str("#peb-trace v1\nspace\t1000\t10\t1440\nu\t0\tNOPE\t2\t0\t0\t0\n")
        else {
            panic!("expected an error");
        };
        match err {
            TraceError::Malformed(line, _) => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
        let Err(err) = from_str("#peb-trace v1\nspace\t1000\t10\t1440\nz\t1\n") else {
            panic!("expected an error");
        };
        assert!(matches!(err, TraceError::Malformed(3, _)));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "#peb-trace v1\n# a comment\n\nspace\t1000\t10\t1440\nu\t0\t5\t6\t0.5\t-0.5\t2\n";
        let ds = from_str(text).expect("parse");
        assert_eq!(ds.users.len(), 1);
        assert_eq!(ds.users[0].pos, Point::new(5.0, 6.0));
        assert!((ds.max_speed - ds.users[0].speed()).abs() < 1e-12);
    }

    #[test]
    fn multi_policy_pairs_survive_roundtrip() {
        let mut ds = DatasetBuilder::default().num_users(10).policies_per_user(2).seed(9).build();
        // Give one pair a second policy.
        let extra = Policy::new(
            UserId(0),
            RoleId::FAMILY,
            Rect::new(0.0, 10.0, 0.0, 10.0),
            TimeInterval::new(1.0, 2.0),
        );
        let viewer = ds.store.granted_by(UserId(0))[0];
        ds.store.add_additional(viewer, extra);
        let back = from_str(&to_string(&ds)).expect("parse");
        assert_eq!(back.store.policies(UserId(0), viewer).len(), 2);
    }
}
