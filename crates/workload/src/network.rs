//! Network-based position generator — the synthetic equivalent of the
//! route-network generator used by the paper (Sec 7.1, citing \[27\]).
//!
//! `H` destination hubs are placed uniformly; each hub is connected to its
//! `DEGREE` nearest neighbors with two-way straight routes. Objects start
//! at random points on random routes and belong to one of three speed
//! classes (maximum speeds `max_speed · {0.25, 0.5, 1.0}`, matching the
//! paper's 0.75 / 1.5 / 3 when `max_speed = 3`). An object always moves
//! toward a target hub; on arrival it picks a random connected hub next.
//! Speed ramps up leaving a hub and down approaching one, so positions
//! concentrate around hubs — the fewer the hubs, the more skewed the data.

use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use rand::Rng;

/// Routes per hub.
const DEGREE: usize = 3;
/// Fraction of an edge over which objects accelerate/decelerate.
const RAMP_FRACTION: f64 = 0.25;
/// Minimum speed factor at a hub (never fully stopped, so velocities stay
/// informative for the predictive index).
const MIN_SPEED_FACTOR: f64 = 0.2;

/// The three speed classes of the paper, as fractions of the global
/// maximum speed (0.75, 1.5, 3 when the maximum is 3).
pub const SPEED_CLASS_FACTORS: [f64; 3] = [0.25, 0.5, 1.0];

/// The hub-and-routes network plus per-object simulation state.
pub struct RoadNetwork {
    hubs: Vec<Point>,
    /// Adjacency: for each hub, the hubs it connects to.
    adj: Vec<Vec<usize>>,
}

impl RoadNetwork {
    /// Build a network of `num_hubs` uniformly placed destinations.
    pub fn generate(rng: &mut impl Rng, space: &SpaceConfig, num_hubs: usize) -> Self {
        assert!(num_hubs >= 2, "a network needs at least two destinations");
        let hubs: Vec<Point> = (0..num_hubs)
            .map(|_| Point::new(rng.gen_range(0.0..space.side), rng.gen_range(0.0..space.side)))
            .collect();
        // Connect each hub to its DEGREE nearest neighbors (two-way).
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_hubs];
        for i in 0..num_hubs {
            let mut by_dist: Vec<(f64, usize)> =
                (0..num_hubs).filter(|&j| j != i).map(|j| (hubs[i].dist_sq(&hubs[j]), j)).collect();
            by_dist.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &(_, j) in by_dist.iter().take(DEGREE.min(num_hubs - 1)) {
                if !adj[i].contains(&j) {
                    adj[i].push(j);
                }
                if !adj[j].contains(&i) {
                    adj[j].push(i);
                }
            }
        }
        RoadNetwork { hubs, adj }
    }

    pub fn num_hubs(&self) -> usize {
        self.hubs.len()
    }

    pub fn hub(&self, i: usize) -> Point {
        self.hubs[i]
    }

    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }
}

/// One simulated network-bound traveler.
#[derive(Debug, Clone)]
pub struct Traveler {
    pub uid: UserId,
    /// Maximum speed of this object's class.
    pub class_speed: f64,
    /// Hub the object departed from.
    from: usize,
    /// Hub the object is heading to.
    to: usize,
    /// Distance traveled along the current edge.
    progress: f64,
}

/// The full network simulation: owns the network and all travelers, and
/// can be stepped forward to produce update streams.
pub struct NetworkSimulation {
    pub network: RoadNetwork,
    travelers: Vec<Traveler>,
    time: f64,
}

impl NetworkSimulation {
    /// Place `n` objects at random points of random routes.
    pub fn new(
        rng: &mut impl Rng,
        space: &SpaceConfig,
        num_hubs: usize,
        n: usize,
        max_speed: f64,
    ) -> Self {
        let network = RoadNetwork::generate(rng, space, num_hubs);
        let travelers = (0..n)
            .map(|i| {
                let from = rng.gen_range(0..network.num_hubs());
                let to = *choose(rng, network.neighbors(from));
                let edge_len = network.hub(from).dist(&network.hub(to)).max(1e-9);
                Traveler {
                    uid: UserId(i as u64),
                    class_speed: max_speed * SPEED_CLASS_FACTORS[i % 3],
                    from,
                    to,
                    progress: rng.gen_range(0.0..edge_len),
                }
            })
            .collect();
        NetworkSimulation { network, travelers, time: 0.0 }
    }

    pub fn time(&self) -> f64 {
        self.time
    }

    pub fn len(&self) -> usize {
        self.travelers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.travelers.is_empty()
    }

    /// Current speed of a traveler given its position along the edge:
    /// ramp up after departure, ramp down before arrival.
    fn speed_of(&self, t: &Traveler) -> f64 {
        let edge_len = self.network.hub(t.from).dist(&self.network.hub(t.to)).max(1e-9);
        let ramp = (edge_len * RAMP_FRACTION).max(1e-9);
        let up = (t.progress / ramp).min(1.0);
        let down = ((edge_len - t.progress) / ramp).min(1.0);
        let factor = up.min(down).clamp(MIN_SPEED_FACTOR, 1.0);
        t.class_speed * factor
    }

    /// Snapshot a traveler as a moving point (position + instantaneous
    /// velocity along its route).
    pub fn snapshot(&self, idx: usize) -> MovingPoint {
        let t = &self.travelers[idx];
        let a = self.network.hub(t.from);
        let b = self.network.hub(t.to);
        let edge_len = a.dist(&b).max(1e-9);
        let frac = (t.progress / edge_len).clamp(0.0, 1.0);
        let pos = Point::new(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac);
        let dir = Vec2::new(b.x - a.x, b.y - a.y).with_norm(self.speed_of(t));
        MovingPoint::new(t.uid, pos, dir, self.time)
    }

    /// Snapshot every traveler.
    pub fn snapshot_all(&self) -> Vec<MovingPoint> {
        (0..self.travelers.len()).map(|i| self.snapshot(i)).collect()
    }

    /// Advance the whole simulation by `dt` time units; objects reaching a
    /// destination pick a random next one.
    pub fn step(&mut self, rng: &mut impl Rng, dt: f64) {
        self.time += dt;
        for i in 0..self.travelers.len() {
            let mut remaining = dt * self.speed_of(&self.travelers[i]);
            loop {
                let t = &mut self.travelers[i];
                let edge_len = self.network.hubs[t.from].dist(&self.network.hubs[t.to]).max(1e-9);
                let left_on_edge = edge_len - t.progress;
                if remaining < left_on_edge {
                    t.progress += remaining;
                    break;
                }
                remaining -= left_on_edge;
                // Arrived: choose the next destination at random.
                let arrived = t.to;
                let next = *choose(rng, self.network.neighbors(arrived));
                t.from = arrived;
                t.to = next;
                t.progress = 0.0;
            }
        }
    }
}

fn choose<'a, T>(rng: &mut impl Rng, slice: &'a [T]) -> &'a T {
    &slice[rng.gen_range(0..slice.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(hubs: usize, n: usize) -> NetworkSimulation {
        let mut rng = StdRng::seed_from_u64(11);
        NetworkSimulation::new(&mut rng, &SpaceConfig::default(), hubs, n, 3.0)
    }

    #[test]
    fn network_is_connected_enough() {
        let s = sim(25, 10);
        for h in 0..s.network.num_hubs() {
            assert!(!s.network.neighbors(h).is_empty(), "hub {h} isolated");
        }
    }

    #[test]
    fn snapshots_are_in_bounds_and_speed_limited() {
        let s = sim(50, 300);
        let space = SpaceConfig::default();
        for m in s.snapshot_all() {
            assert!(space.bounds().contains(&m.pos), "{:?} out of bounds", m.pos);
            assert!(m.speed() <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn three_speed_classes_present() {
        let s = sim(25, 30);
        let mut classes: Vec<f64> = s.travelers.iter().map(|t| t.class_speed).collect();
        classes.sort_by(f64::total_cmp);
        classes.dedup();
        assert_eq!(classes, vec![0.75, 1.5, 3.0]);
    }

    #[test]
    fn stepping_moves_objects_along_routes() {
        let mut s = sim(25, 100);
        let before = s.snapshot_all();
        let mut rng = StdRng::seed_from_u64(5);
        s.step(&mut rng, 30.0);
        let after = s.snapshot_all();
        assert_eq!(s.time(), 30.0);
        let moved = before.iter().zip(&after).filter(|(a, b)| a.pos.dist(&b.pos) > 1.0).count();
        assert!(moved > 50, "only {moved} of 100 objects moved");
        // Everyone still in bounds after travel.
        let space = SpaceConfig::default();
        for m in &after {
            assert!(space.bounds().contains(&m.pos));
        }
    }

    #[test]
    fn fewer_hubs_means_more_skew() {
        // Measure occupancy of a coarse grid: with 4 hubs the positions
        // concentrate in fewer cells than with 400.
        let occupied = |hubs: usize| {
            let s = sim(hubs, 2000);
            let mut cells = std::collections::HashSet::new();
            for m in s.snapshot_all() {
                cells.insert(((m.pos.x / 100.0) as i32, (m.pos.y / 100.0) as i32));
            }
            cells.len()
        };
        let few = occupied(4);
        let many = occupied(400);
        assert!(few < many, "4 hubs covered {few} cells, 400 hubs {many}");
    }

    #[test]
    fn speed_ramps_near_destinations() {
        let s = sim(10, 0);
        let t = Traveler {
            uid: UserId(0),
            class_speed: 3.0,
            from: 0,
            to: s.network.neighbors(0)[0],
            progress: 0.0,
        };
        let sim_ref = &s;
        let at_start = sim_ref.speed_of(&t);
        let edge_len = s.network.hub(t.from).dist(&s.network.hub(t.to));
        let mid = Traveler { progress: edge_len / 2.0, ..t.clone() };
        let at_mid = sim_ref.speed_of(&mid);
        assert!(at_start < at_mid, "speed at hub {at_start} must be below mid-edge {at_mid}");
        assert!(at_mid <= 3.0);
    }
}
