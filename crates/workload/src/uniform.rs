//! Uniformly distributed moving users.

use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use rand::Rng;

/// Generate `n` users with uniform positions, random directions and speeds
/// uniform in `[0, max_speed]`, all updated at time `t0`.
pub fn generate(
    rng: &mut impl Rng,
    space: &SpaceConfig,
    n: usize,
    max_speed: f64,
    t0: f64,
) -> Vec<MovingPoint> {
    (0..n)
        .map(|i| {
            let pos = Point::new(rng.gen_range(0.0..space.side), rng.gen_range(0.0..space.side));
            MovingPoint::new(UserId(i as u64), pos, random_velocity(rng, max_speed), t0)
        })
        .collect()
}

/// A velocity with uniform random direction and speed uniform in
/// `[0, max_speed]`.
pub fn random_velocity(rng: &mut impl Rng, max_speed: f64) -> Vec2 {
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let speed = rng.gen_range(0.0..=max_speed);
    Vec2::new(speed * angle.cos(), speed * angle.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_n_in_bounds_with_capped_speed() {
        let mut rng = StdRng::seed_from_u64(7);
        let space = SpaceConfig::default();
        let users = generate(&mut rng, &space, 500, 3.0, 0.0);
        assert_eq!(users.len(), 500);
        for (i, u) in users.iter().enumerate() {
            assert_eq!(u.uid.0, i as u64, "ids are dense");
            assert!(space.bounds().contains(&u.pos));
            assert!(u.speed() <= 3.0 + 1e-12);
            assert_eq!(u.t_update, 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let space = SpaceConfig::default();
        let a = generate(&mut StdRng::seed_from_u64(42), &space, 50, 3.0, 0.0);
        let b = generate(&mut StdRng::seed_from_u64(42), &space, 50, 3.0, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn positions_cover_the_space() {
        // Rough uniformity check: every quadrant gets a fair share.
        let mut rng = StdRng::seed_from_u64(1);
        let space = SpaceConfig::default();
        let users = generate(&mut rng, &space, 4000, 3.0, 0.0);
        let mut quad = [0usize; 4];
        for u in &users {
            let qx = (u.pos.x >= 500.0) as usize;
            let qy = (u.pos.y >= 500.0) as usize;
            quad[qx * 2 + qy] += 1;
        }
        for q in quad {
            assert!((800..1200).contains(&q), "quadrant counts {quad:?} skewed");
        }
    }
}
