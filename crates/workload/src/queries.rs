//! Query workload generation: random PRQ windows and PkNN parameters over
//! random issuers (Sec 7.1: 200 queries per measurement, quadratic windows
//! of side 200 and k = 5 by default).

use peb_common::{Point, Rect, SpaceConfig, Timestamp, UserId};
use rand::Rng;

/// One privacy-aware range query instance.
#[derive(Debug, Clone, Copy)]
pub struct RangeQuerySpec {
    pub issuer: UserId,
    pub window: Rect,
    pub tq: Timestamp,
}

/// One privacy-aware kNN query instance.
#[derive(Debug, Clone, Copy)]
pub struct KnnQuerySpec {
    pub issuer: UserId,
    pub q: Point,
    pub k: usize,
    pub tq: Timestamp,
}

/// Draws query instances uniformly over issuers and the space.
pub struct QueryGenerator {
    space: SpaceConfig,
    num_users: usize,
}

impl QueryGenerator {
    pub fn new(space: SpaceConfig, num_users: usize) -> Self {
        assert!(num_users > 0);
        QueryGenerator { space, num_users }
    }

    /// A quadratic window of the given side length, placed uniformly so it
    /// fits the space, at query time `tq`.
    pub fn range_query(&self, rng: &mut impl Rng, side: f64, tq: Timestamp) -> RangeQuerySpec {
        let side = side.min(self.space.side);
        let xl = rng.gen_range(0.0..=(self.space.side - side));
        let yl = rng.gen_range(0.0..=(self.space.side - side));
        RangeQuerySpec {
            issuer: UserId(rng.gen_range(0..self.num_users as u64)),
            window: Rect::new(xl, xl + side, yl, yl + side),
            tq,
        }
    }

    /// A kNN query at a uniform point.
    pub fn knn_query(&self, rng: &mut impl Rng, k: usize, tq: Timestamp) -> KnnQuerySpec {
        KnnQuerySpec {
            issuer: UserId(rng.gen_range(0..self.num_users as u64)),
            q: Point::new(rng.gen_range(0.0..self.space.side), rng.gen_range(0.0..self.space.side)),
            k,
            tq,
        }
    }

    /// A batch of `count` range queries.
    pub fn range_batch(
        &self,
        rng: &mut impl Rng,
        count: usize,
        side: f64,
        tq: Timestamp,
    ) -> Vec<RangeQuerySpec> {
        (0..count).map(|_| self.range_query(rng, side, tq)).collect()
    }

    /// A batch of `count` kNN queries.
    pub fn knn_batch(
        &self,
        rng: &mut impl Rng,
        count: usize,
        k: usize,
        tq: Timestamp,
    ) -> Vec<KnnQuerySpec> {
        (0..count).map(|_| self.knn_query(rng, k, tq)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn windows_fit_space_and_have_right_side() {
        let g = QueryGenerator::new(SpaceConfig::default(), 100);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = g.range_query(&mut rng, 200.0, 10.0);
            assert!((q.window.width() - 200.0).abs() < 1e-9);
            assert!((q.window.height() - 200.0).abs() < 1e-9);
            assert!(q.window.xl >= 0.0 && q.window.xu <= 1000.0);
            assert!(q.issuer.0 < 100);
        }
    }

    #[test]
    fn oversized_window_clamps_to_space() {
        let g = QueryGenerator::new(SpaceConfig::default(), 10);
        let mut rng = StdRng::seed_from_u64(2);
        let q = g.range_query(&mut rng, 5000.0, 0.0);
        assert_eq!(q.window.width(), 1000.0);
    }

    #[test]
    fn knn_batch_respects_parameters() {
        let g = QueryGenerator::new(SpaceConfig::default(), 42);
        let mut rng = StdRng::seed_from_u64(8);
        let qs = g.knn_batch(&mut rng, 20, 5, 99.0);
        assert_eq!(qs.len(), 20);
        for q in qs {
            assert_eq!(q.k, 5);
            assert_eq!(q.tq, 99.0);
            assert!(q.issuer.0 < 42);
            assert!(SpaceConfig::default().bounds().contains(&q.q));
        }
    }
}
