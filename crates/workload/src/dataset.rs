//! Dataset assembly: positions + policies + configuration in one bundle,
//! with a builder mirroring Table 1's parameter grid.

use peb_common::{MovingPoint, SpaceConfig};
use peb_policy::PolicyStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::network::NetworkSimulation;
use crate::policies::{self, PolicyGenConfig};
use crate::uniform;

/// Position distribution of the generated users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform random positions (the paper's default).
    Uniform,
    /// Network-based movement with the given number of destination hubs.
    Network { hubs: usize },
}

/// A fully generated experiment input.
pub struct Dataset {
    pub space: SpaceConfig,
    pub users: Vec<MovingPoint>,
    pub store: PolicyStore,
    pub max_speed: f64,
    /// The live network simulation when `Distribution::Network` was used,
    /// so update streams can keep objects on the roads.
    pub network: Option<NetworkSimulation>,
}

/// Builder with the paper's defaults (Table 1, bold values): 60K users,
/// 50 policies/user, θ = 0.7, max speed 3, uniform distribution.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    pub num_users: usize,
    pub max_speed: f64,
    pub distribution: Distribution,
    pub policy_cfg: PolicyGenConfig,
    pub seed: u64,
    pub space: SpaceConfig,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        DatasetBuilder {
            num_users: 60_000,
            max_speed: 3.0,
            distribution: Distribution::Uniform,
            policy_cfg: PolicyGenConfig::default(),
            seed: 0xC0FFEE,
            space: SpaceConfig::default(),
        }
    }
}

impl DatasetBuilder {
    pub fn num_users(mut self, n: usize) -> Self {
        self.num_users = n;
        self
    }

    pub fn max_speed(mut self, s: f64) -> Self {
        self.max_speed = s;
        self
    }

    pub fn distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    pub fn policies_per_user(mut self, np: usize) -> Self {
        self.policy_cfg = self.policy_cfg.with_policies(np);
        self
    }

    pub fn grouping_factor(mut self, theta: f64) -> Self {
        self.policy_cfg.grouping_factor = theta;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate positions and policies deterministically from the seed.
    pub fn build(self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let (users, network) = match self.distribution {
            Distribution::Uniform => (
                uniform::generate(&mut rng, &self.space, self.num_users, self.max_speed, 0.0),
                None,
            ),
            Distribution::Network { hubs } => {
                let sim = NetworkSimulation::new(
                    &mut rng,
                    &self.space,
                    hubs,
                    self.num_users,
                    self.max_speed,
                );
                (sim.snapshot_all(), Some(sim))
            }
        };
        let store = policies::generate(&mut rng, &self.space, self.num_users, &self.policy_cfg);
        Dataset { space: self.space, users, store, max_speed: self.max_speed, network }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_matches_table1_defaults() {
        let b = DatasetBuilder::default();
        assert_eq!(b.num_users, 60_000);
        assert_eq!(b.max_speed, 3.0);
        assert_eq!(b.policy_cfg.policies_per_user, 50);
        assert_eq!(b.policy_cfg.grouping_factor, 0.7);
        assert_eq!(b.distribution, Distribution::Uniform);
    }

    #[test]
    fn small_uniform_dataset() {
        let d = DatasetBuilder::default().num_users(300).policies_per_user(5).seed(1).build();
        assert_eq!(d.users.len(), 300);
        assert_eq!(d.store.len(), 300 * 5);
        assert!(d.network.is_none());
    }

    #[test]
    fn network_dataset_keeps_simulation() {
        let d = DatasetBuilder::default()
            .num_users(200)
            .policies_per_user(5)
            .distribution(Distribution::Network { hubs: 25 })
            .seed(2)
            .build();
        assert_eq!(d.users.len(), 200);
        assert!(d.network.is_some());
        assert_eq!(d.network.as_ref().unwrap().len(), 200);
    }

    #[test]
    fn same_seed_same_dataset() {
        let a = DatasetBuilder::default().num_users(100).policies_per_user(3).seed(7).build();
        let b = DatasetBuilder::default().num_users(100).policies_per_user(3).seed(7).build();
        assert_eq!(a.users, b.users);
        assert_eq!(a.store.len(), b.store.len());
        // Policy stores match pair-by-pair.
        for (o, v, p) in a.store.iter() {
            let q = b.store.policy(o, v).expect("pair missing under same seed");
            assert_eq!(p, q);
        }
    }
}
