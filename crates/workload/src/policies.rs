//! Policy generation with the grouping factor θ (Sec 6 / Sec 7.1).
//!
//! Users are randomly divided into groups; each user then receives `Np`
//! policies whose targets are same-group users with probability θ and
//! uniformly random users otherwise. θ = 1 means purely intra-group
//! relationships; θ = 0 means no group structure at all. Policy regions
//! and time intervals are drawn uniformly within configurable size ranges
//! ("we generate a given number of random policies by varying the spatial
//! ranges and time intervals").

use peb_common::{Rect, SpaceConfig, TimeInterval, UserId};
use peb_policy::{Policy, PolicyStore, RoleId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Knobs of the policy generator.
#[derive(Debug, Clone, Copy)]
pub struct PolicyGenConfig {
    /// `Np`: policies per user (paper default 50).
    pub policies_per_user: usize,
    /// θ ∈ [0, 1]: fraction of a user's policies that stay inside the
    /// user's group (paper default 0.7).
    pub grouping_factor: f64,
    /// Group size; must exceed `θ · Np` so intra-group targets exist.
    pub group_size: usize,
    /// Policy region side lengths are drawn from this range.
    pub region_side: (f64, f64),
    /// Policy interval durations are drawn from this range (time units).
    pub interval_len: (f64, f64),
}

impl Default for PolicyGenConfig {
    fn default() -> Self {
        PolicyGenConfig {
            policies_per_user: 50,
            grouping_factor: 0.7,
            group_size: 128,
            region_side: (500.0, 1000.0),
            interval_len: (720.0, 1440.0),
        }
    }
}

impl PolicyGenConfig {
    /// Adjust the group size so that θ·Np intra-group targets always exist.
    pub fn with_policies(mut self, np: usize) -> Self {
        self.policies_per_user = np;
        self.group_size = self.group_size.max(np + 1);
        self
    }
}

/// Generate the full policy store for `n` users.
///
/// Each user owns `Np` policies toward distinct viewers ("each user has
/// only one location privacy policy with respect to a particular user").
pub fn generate(
    rng: &mut impl Rng,
    space: &SpaceConfig,
    n: usize,
    cfg: &PolicyGenConfig,
) -> PolicyStore {
    assert!((0.0..=1.0).contains(&cfg.grouping_factor), "grouping factor must be in [0, 1]");
    assert!(cfg.group_size >= 2);

    // Random group assignment: shuffle ids, then chunk.
    let mut ids: Vec<u64> = (0..n as u64).collect();
    ids.shuffle(rng);
    let mut group_of: Vec<usize> = vec![0; n];
    let mut groups: Vec<Vec<u64>> = Vec::new();
    for (g, chunk) in ids.chunks(cfg.group_size).enumerate() {
        for &u in chunk {
            group_of[u as usize] = g;
        }
        groups.push(chunk.to_vec());
    }

    let mut store = PolicyStore::new();
    for owner in 0..n as u64 {
        let my_group = &groups[group_of[owner as usize]];
        let np = cfg.policies_per_user.min(n - 1);
        let mut targets: Vec<u64> = Vec::with_capacity(np);
        let mut attempts = 0;
        while targets.len() < np && attempts < np * 20 {
            attempts += 1;
            let in_group = rng.gen_bool(cfg.grouping_factor);
            let candidate = if in_group && my_group.len() > 1 {
                my_group[rng.gen_range(0..my_group.len())]
            } else {
                rng.gen_range(0..n as u64)
            };
            if candidate != owner && !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for viewer in targets {
            store.add(UserId(viewer), random_policy(rng, space, UserId(owner), cfg));
        }
    }
    store
}

/// One random policy: a region with side in `cfg.region_side` placed
/// uniformly, and an interval with duration in `cfg.interval_len` placed
/// uniformly in the time domain.
pub fn random_policy(
    rng: &mut impl Rng,
    space: &SpaceConfig,
    owner: UserId,
    cfg: &PolicyGenConfig,
) -> Policy {
    let side_x = rng.gen_range(cfg.region_side.0..=cfg.region_side.1).min(space.side);
    let side_y = rng.gen_range(cfg.region_side.0..=cfg.region_side.1).min(space.side);
    let xl = rng.gen_range(0.0..=(space.side - side_x));
    let yl = rng.gen_range(0.0..=(space.side - side_y));
    let dur = rng.gen_range(cfg.interval_len.0..=cfg.interval_len.1).min(space.time_domain);
    let start = rng.gen_range(0.0..=(space.time_domain - dur));
    Policy::new(
        owner,
        RoleId::FRIEND,
        Rect::new(xl, xl + side_x, yl, yl + side_y),
        TimeInterval::new(start, start + dur),
    )
}

/// Measure the *achieved* grouping factor of a store given the group map —
/// used by tests to validate the generator against its θ parameter.
pub fn measured_theta(store: &PolicyStore, group_of: impl Fn(UserId) -> usize) -> f64 {
    let mut total = 0usize;
    let mut in_group = 0usize;
    for (owner, viewer, _) in store.iter() {
        total += 1;
        if group_of(owner) == group_of(viewer) {
            in_group += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        in_group as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_user_gets_np_policies() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PolicyGenConfig { policies_per_user: 10, group_size: 32, ..Default::default() };
        let store = generate(&mut rng, &SpaceConfig::default(), 200, &cfg);
        assert_eq!(store.len(), 200 * 10);
        for u in 0..200u64 {
            assert_eq!(store.granted_by(UserId(u)).len(), 10, "owner u{u}");
        }
    }

    #[test]
    fn theta_one_keeps_policies_inside_groups() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = PolicyGenConfig {
            policies_per_user: 8,
            grouping_factor: 1.0,
            group_size: 16,
            ..Default::default()
        };
        let n = 160;
        // Re-derive the group map the generator used by reproducing its
        // shuffle: instead, verify structurally — with θ=1 every connected
        // pair must share a group, so the relation graph splits into
        // components of at most group_size users.
        let store = generate(&mut rng, &SpaceConfig::default(), n, &cfg);
        // Union-find over policy edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for (o, v, _) in store.iter() {
            let (a, b) = (find(&mut parent, o.as_index()), find(&mut parent, v.as_index()));
            parent[a] = b;
        }
        let mut sizes = std::collections::HashMap::new();
        for i in 0..n {
            *sizes.entry(find(&mut parent, i)).or_insert(0usize) += 1;
        }
        for (_, s) in sizes {
            assert!(s <= cfg.group_size, "component of size {s} exceeds the group size");
        }
    }

    #[test]
    fn theta_zero_spreads_policies_widely() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = PolicyGenConfig {
            policies_per_user: 10,
            grouping_factor: 0.0,
            group_size: 16,
            ..Default::default()
        };
        let n = 320;
        let store = generate(&mut rng, &SpaceConfig::default(), n, &cfg);
        // With random targets, the share of same-group pairs is ~ 16/320 = 5%.
        // (We cannot recover the exact shuffle, so check the weaker property
        // that distinct viewer groups are touched broadly.)
        let mut distinct_viewers = std::collections::HashSet::new();
        for (_, v, _) in store.iter() {
            distinct_viewers.insert(v);
        }
        assert!(distinct_viewers.len() > n * 3 / 4, "policies concentrated unexpectedly");
    }

    #[test]
    fn policies_fit_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let space = SpaceConfig::default();
        let cfg = PolicyGenConfig::default();
        for _ in 0..100 {
            let p = random_policy(&mut rng, &space, UserId(0), &cfg);
            assert!(p.locr.xl >= 0.0 && p.locr.xu <= space.side);
            assert!(p.locr.yl >= 0.0 && p.locr.yu <= space.side);
            assert!(p.tint.start >= 0.0 && p.tint.end <= space.time_domain);
            let w = p.locr.width();
            assert!(w >= cfg.region_side.0 && w <= cfg.region_side.1);
        }
    }

    #[test]
    fn with_policies_keeps_groups_large_enough() {
        let cfg = PolicyGenConfig::default().with_policies(200);
        assert!(cfg.group_size > 200);
    }

    #[test]
    fn measured_theta_math() {
        let mut store = PolicyStore::new();
        let space = SpaceConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PolicyGenConfig::default();
        // 0 and 1 in group A; 2 in group B.
        store.add(UserId(1), random_policy(&mut rng, &space, UserId(0), &cfg)); // in-group
        store.add(UserId(2), random_policy(&mut rng, &space, UserId(0), &cfg)); // cross
        let theta = measured_theta(&store, |u| if u.0 <= 1 { 0 } else { 1 });
        assert_eq!(theta, 0.5);
    }
}
