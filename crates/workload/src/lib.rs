//! Workload generation for the paper's empirical study (Sec 7.1).
//!
//! Two position distributions:
//!
//! * **Uniform** — positions chosen uniformly at random in the 1000 × 1000
//!   space, directions random, speeds uniform in `[0, max_speed]`.
//! * **Network-based** — a synthetic equivalent of the generator of
//!   Šaltenis et al. \[27\] (see DESIGN.md): objects move in a network of
//!   two-way routes connecting `H` destination hubs, are assigned to three
//!   groups with maximum speeds 0.75 / 1.5 / 3, pick random target
//!   destinations, and accelerate leaving / decelerate approaching a
//!   destination. Fewer hubs ⇒ more spatial skew.
//!
//! Policies are generated per user with the **grouping factor θ** of Sec 6:
//! users are partitioned into groups, and each of a user's `Np` policies
//! targets a same-group user with probability θ and a random user
//! otherwise (θ = 1: pure intra-group; θ = 0: no group structure).
//!
//! [`dataset::Dataset`] bundles everything an experiment needs, and
//! [`updates`] produces the update streams of Sec 7.9.

pub mod dataset;
pub mod network;
pub mod policies;
pub mod queries;
pub mod trace;
pub mod uniform;
pub mod updates;

pub use dataset::{Dataset, DatasetBuilder, Distribution};
pub use policies::PolicyGenConfig;
pub use queries::QueryGenerator;
pub use updates::UpdateStream;
