//! Concurrency suite for the optimistic-lock-coupling write path
//! ([`peb_btree::olc`]): a linearizability-style history checker over
//! racing writers and readers, plus deterministic seeded-schedule
//! regression tests that freeze a writer mid-structural-modification
//! (via [`peb_common::sched`] gates) and prove readers keep completing
//! against the half-published state.
//!
//! # History checking model
//!
//! Writers own disjoint key sets, so each key's writes are totally
//! ordered in real time and every written value is unique. Each
//! operation is stamped with invocation/response ticks from one global
//! clock. The checker then validates every *observation* (a point get,
//! or one key's presence/absence in a range or multi-range scan)
//! per key: key `k`'s state sequence is `None, v₁, v₂, …` where `vᵢ`
//! came from write `wᵢ`, state `i` is possibly-visible in the window
//! `[inv(wᵢ), resp(wᵢ₊₁)]` (it can take effect any time inside its
//! write, and must be gone once the *next* write has returned), and an
//! observation is legal iff its own `[inv, resp]` window overlaps the
//! window of some state carrying the observed value. Scans stamp one
//! window for the whole walk — a widening that only ever makes the
//! check more permissive, never unsound — and are checked key by key
//! (the documented relaxation: cross-key scan atomicity is not
//! asserted, matching the read-committed scan contract of the index
//! layer above).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use peb_btree::BTree;
use peb_common::sched;
use peb_storage::BufferPool;

/// The sched hooks (injector flag, gates) are process-global; every test
/// that enables them serializes here so a closed gate in one test can
/// never park a thread belonging to another.
static SCHED: Mutex<()> = Mutex::new(());

fn sched_lock() -> MutexGuard<'static, ()> {
    SCHED.lock().unwrap_or_else(|e| e.into_inner())
}

/// SplitMix64 — the tests' only randomness; a seed reproduces the whole
/// workload and decision stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---- linearizability-style history checking ----------------------------

#[derive(Clone, Copy, Debug)]
struct Event {
    key: u128,
    /// `Some(v)` for an upsert of the unique value `v`, `None` for a
    /// delete (writes) / an observed absence (observations).
    val: Option<u64>,
    inv: u64,
    resp: u64,
}

/// Check every observation of `key` against its (totally ordered) write
/// history; panics with the offending observation on a violation.
fn check_key(key: u128, writes: &mut [Event], obs: &[Event]) {
    writes.sort_by_key(|w| w.inv);
    // Per-key single-writer: write windows never overlap each other.
    for w in writes.windows(2) {
        assert!(w[0].resp <= w[1].inv, "key {key}: overlapping writes {w:?}");
    }
    // states[i] = (value, earliest it can take effect, latest it can
    // still be observed). State i is overwritten at the latest when
    // write i+1 returns.
    let mut states: Vec<(Option<u64>, u64, u64)> =
        vec![(None, 0, writes.first().map_or(u64::MAX, |w| w.resp))];
    for (i, w) in writes.iter().enumerate() {
        let end = writes.get(i + 1).map_or(u64::MAX, |n| n.resp);
        states.push((w.val, w.inv, end));
    }
    for o in obs {
        let legal =
            states.iter().any(|&(v, start, end)| v == o.val && start <= o.resp && o.inv <= end);
        assert!(
            legal,
            "key {key}: observation {o:?} matches no possibly-visible state\nstates: {states:?}"
        );
    }
}

/// The key universe: `writers` disjoint clusters of `per` keys each,
/// spread apart so range scans cross leaf boundaries.
fn universe(writers: u64, per: u64) -> Vec<u128> {
    (0..writers).flat_map(|w| (0..per).map(move |i| ((w * 1_000) + i * 7) as u128)).collect()
}

/// One seeded round of the stress: `writers` threads upsert / delete /
/// re-key inside their own clusters through the OLC write path while
/// `readers` threads issue point gets, range scans and multi-range scans;
/// every event lands in a shared history that is checked per key.
fn run_history_stress(seed: u64, writers: u64, per: u64, rounds: u64, readers: usize) {
    let _serial = sched_lock();
    let _sched = sched::SeededSection::new(seed);

    let mut tree: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
    let clock = Arc::new(AtomicU64::new(1));
    let mut history: Vec<Event> = Vec::new();
    // Pre-populate half of each cluster through the locked path; these
    // are "writes" that completed before the clock started.
    for (n, &k) in universe(writers, per).iter().enumerate() {
        if n % 2 == 0 {
            let v = u64::MAX - n as u64; // unique, disjoint from runtime values
            tree.insert(k, v);
            history.push(Event { key: k, val: Some(v), inv: 0, resp: 0 });
        }
    }
    tree.set_olc_writes(true);
    let tree = Arc::new(tree);
    let done = Arc::new(AtomicBool::new(false));

    let writer_threads: Vec<_> = (0..writers)
        .map(|w| {
            let tree = Arc::clone(&tree);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let keys: Vec<u128> = (0..per).map(|i| ((w * 1_000) + i * 7) as u128).collect();
                let mut events = Vec::with_capacity((rounds * 2) as usize);
                let mut val = w << 32; // unique values per writer
                for r in 0..rounds {
                    let h = mix(seed ^ (w << 40) ^ r);
                    let k = keys[(h % per) as usize];
                    match h % 5 {
                        // upsert
                        0..=2 => {
                            val += 1;
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            tree.olc_insert(k, val);
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            events.push(Event { key: k, val: Some(val), inv, resp });
                        }
                        // delete
                        3 => {
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            tree.olc_delete(k);
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            events.push(Event { key: k, val: None, inv, resp });
                        }
                        // re-key: move whatever lives at k to another
                        // owned key k2 (a delete and an insert, each a
                        // linearizable op of its own).
                        _ => {
                            let k2 = keys[(mix(h) % per) as usize];
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            let moved = tree.olc_delete(k);
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            events.push(Event { key: k, val: None, inv, resp });
                            if let Some(v) = moved {
                                if k2 != k {
                                    let inv = clock.fetch_add(1, Ordering::SeqCst);
                                    tree.olc_insert(k2, v);
                                    let resp = clock.fetch_add(1, Ordering::SeqCst);
                                    events.push(Event { key: k2, val: Some(v), inv, resp });
                                }
                            }
                        }
                    }
                }
                events
            })
        })
        .collect();

    let keyspace = universe(writers, per);
    let reader_threads: Vec<_> = (0..readers)
        .map(|rid| {
            let tree = Arc::clone(&tree);
            let clock = Arc::clone(&clock);
            let done = Arc::clone(&done);
            let keyspace = keyspace.clone();
            std::thread::spawn(move || {
                // Readers loop as fast as they can while the writers work,
                // so an unbounded log can outgrow memory on a slow box (a
                // single range scan records every key it covers). Past the
                // cap the reader keeps reading — the race pressure is the
                // point — but stops logging.
                const OBS_CAP: usize = 200_000;
                let mut obs: Vec<Event> = Vec::new();
                let mut n = 0u64;
                while !done.load(Ordering::Relaxed) {
                    n += 1;
                    let log = obs.len() < OBS_CAP;
                    let h = mix(seed ^ ((rid as u64) << 48) ^ n);
                    match h % 3 {
                        // point get
                        0 => {
                            let k = keyspace[(h >> 8) as usize % keyspace.len()];
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            let v = tree.get(k);
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            if log {
                                obs.push(Event { key: k, val: v, inv, resp });
                            }
                        }
                        // range scan over one or more clusters
                        1 => {
                            let lo = ((h >> 8) % 3) * 1_000;
                            let hi = lo + 1_000 * (1 + (h >> 16) % 3) - 1;
                            let (lo, hi) = (lo as u128, hi as u128);
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            let mut found = std::collections::HashMap::new();
                            tree.range_scan(lo, hi, |k, v| {
                                found.insert(k, v);
                                true
                            });
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            if log {
                                for &k in keyspace.iter().filter(|&&k| (lo..=hi).contains(&k)) {
                                    obs.push(Event {
                                        key: k,
                                        val: found.get(&k).copied(),
                                        inv,
                                        resp,
                                    });
                                }
                            }
                        }
                        // multi-range scan across all clusters
                        _ => {
                            let ivs: Vec<(u128, u128)> =
                                (0..3).map(|w| (w * 1_000, w * 1_000 + 500)).collect();
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            let mut found = std::collections::HashMap::new();
                            tree.multi_range_scan(&ivs, |k, v| {
                                found.insert(k, v);
                                true
                            });
                            let resp = clock.fetch_add(1, Ordering::SeqCst);
                            if log {
                                for &k in keyspace
                                    .iter()
                                    .filter(|&&k| ivs.iter().any(|&(l, h)| (l..=h).contains(&k)))
                                {
                                    obs.push(Event {
                                        key: k,
                                        val: found.get(&k).copied(),
                                        inv,
                                        resp,
                                    });
                                }
                            }
                        }
                    }
                }
                obs
            })
        })
        .collect();

    for t in writer_threads {
        history.extend(t.join().unwrap());
    }
    done.store(true, Ordering::Relaxed);
    let mut observations: Vec<Event> = Vec::new();
    for t in reader_threads {
        observations.extend(t.join().unwrap());
    }

    // Quiesced checks first: the tree is structurally sound and the
    // final state equals the model's replay of the same history.
    tree.validate().expect("tree valid after churn");
    let mut model: std::collections::HashMap<u128, u64> = std::collections::HashMap::new();
    let mut ordered = history.clone();
    ordered.sort_by_key(|w| w.inv);
    for w in &ordered {
        match w.val {
            Some(v) => {
                model.insert(w.key, v);
            }
            None => {
                model.remove(&w.key);
            }
        }
    }
    for &k in &keyspace {
        assert_eq!(tree.get(k), model.get(&k).copied(), "seed {seed}: final state of key {k}");
    }

    // Per-key window check of every observation.
    for &k in &keyspace {
        let mut writes: Vec<Event> = history.iter().filter(|w| w.key == k).copied().collect();
        let obs: Vec<Event> = observations.iter().filter(|o| o.key == k).copied().collect();
        check_key(k, &mut writes, &obs);
    }
}

/// The headline suite: 8 fixed seeds, each a different deterministic
/// yield schedule over the same racing workload. Run in CI with the
/// thread count unconstrained; `--ignored` runs the long soak below.
#[test]
fn lin_history_stress_eight_seeds() {
    for seed in [3, 7, 0xB0, 0xC4FE, 0xDEAD, 0x5EED, 0x9_1917, 0xAB_CDEF] {
        run_history_stress(seed, 3, 20, 400, 2);
    }
}

/// Long soak (CI `--ignored` lane): fresh seeds, wider keyspace, deeper
/// histories than the eight-seed suite. Sized to stay in the minutes on
/// a single-core box — the reader observation cap bounds both memory
/// and the window checker's input.
#[test]
#[ignore = "long soak; run explicitly with --ignored"]
fn lin_history_soak() {
    for seed in 0..8u64 {
        run_history_stress(mix(seed), 3, 24, 1_500, 2);
    }
}

// ---- seeded-schedule regressions: frozen mid-SMO states ----------------

/// Run `reads` on a helper thread with a deadline, so a reader that
/// would block on a frozen writer fails the test instead of wedging it.
fn must_complete<T: Send + 'static>(label: &str, reads: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(reads());
    });
    match rx.recv_timeout(std::time::Duration::from_secs(10)) {
        Ok(v) => v,
        Err(_) => {
            sched::disable(); // open every gate before unwinding
            panic!("{label}: readers blocked behind the frozen writer");
        }
    }
}

fn wait_blocked(name: &'static str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sched::is_blocked(name) {
        assert!(std::time::Instant::now() < deadline, "writer never reached gate {name}");
        std::thread::yield_now();
    }
}

/// A leaf split's publish order is new-right → parent anchor → left
/// shrink. Freeze the writer after the anchor (two publish permits),
/// with the old left leaf still holding its pre-split image, and prove
/// every reader completes with pre-insert answers — while the writer
/// holds its whole latched scope. Also the tentpole's lock-ledger
/// acceptance check: the split acquires exactly its path scope (leaf +
/// parent = 2 latches), not whole-tree exclusion.
#[test]
fn split_publish_gate_readers_make_progress() {
    let _serial = sched_lock();
    let mut tree: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
    // 255 ascending inserts: leaves of 85 + 170 under one root branch —
    // the rightmost leaf is exactly full, so the next ascending insert
    // splits it (safe node = the root branch).
    let leaf_cap = (4096 - 16) / 24;
    assert_eq!(leaf_cap, 170, "test layout assumes u64 leaves of 170");
    let n = 255u128;
    for k in 0..n {
        tree.insert(k * 2, k as u64);
    }
    assert_eq!(tree.height(), 2);
    assert_eq!(tree.leaf_page_count(), 2);
    tree.set_olc_writes(true);
    let tree = Arc::new(tree);

    let _sched = sched::SeededSection::new(0);
    let latches_before = tree.pool().lock_stats().latch_acquisitions;
    sched::close(sched::site_name(sched::Site::Publish), 2);
    let writer = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || tree.olc_insert(n * 2 + 1, 999_999))
    };
    wait_blocked(sched::site_name(sched::Site::Publish));

    // Frozen state: right leaf written and linked through the parent,
    // left leaf not yet shrunk. Readers must stream the pre-insert
    // answers without blocking.
    let t = Arc::clone(&tree);
    let seen = must_complete("split freeze", move || {
        let mut got = Vec::new();
        for k in 0..n {
            got.push(t.get(k * 2));
        }
        let mut scanned = Vec::new();
        t.range_scan(0, u128::MAX, |k, v| {
            scanned.push((k, v));
            true
        });
        (got, scanned)
    });
    for (k, v) in seen.0.iter().enumerate() {
        assert_eq!(*v, Some(k as u64), "key {} during frozen split", k * 2);
    }
    assert_eq!(seen.1.len(), n as usize, "scan during frozen split sees exactly the old keys");
    assert!(seen.1.windows(2).all(|w| w[0].0 < w[1].0), "scan stays sorted");

    sched::open(sched::site_name(sched::Site::Publish));
    writer.join().unwrap();
    sched::disable();

    // The split cost its path scope in latches — not whole-tree
    // exclusion over the dozens of resident pages.
    let latch_delta = tree.pool().lock_stats().latch_acquisitions - latches_before;
    assert_eq!(latch_delta, 2, "leaf split latches exactly leaf + safe parent");
    tree.validate().expect("valid after released split");
    assert_eq!(tree.get(n * 2 + 1), Some(999_999));
    assert_eq!(tree.len(), n as usize + 1);
}

/// A leaf merge publishes absorbing-left first, then the parent entry
/// removal. Freeze between the two: the parent still routes into the
/// absorbed (untouched, now-duplicated) leaf. Readers must answer every
/// surviving key correctly through both the stale and the fresh route.
#[test]
fn merge_publish_gate_readers_make_progress() {
    let _serial = sched_lock();
    let mut tree: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
    // 256 ascending inserts → three leaves (85, 85, 86) under one root.
    let n = 256u128;
    for k in 0..n {
        tree.insert(k * 2, k as u64);
    }
    assert_eq!(tree.height(), 2);
    assert_eq!(tree.leaf_page_count(), 3);
    // Trim the rightmost leaf to the minimum so the middle leaf cannot
    // borrow from it, then delete from the middle leaf: 85-at-minimum on
    // both sides forces merge-left (absorb middle into left).
    tree.delete(510);
    tree.set_olc_writes(true);
    let tree = Arc::new(tree);

    let _sched = sched::SeededSection::new(0);
    sched::close(sched::site_name(sched::Site::Publish), 1);
    let victim = 85 * 2; // first key of the middle leaf
    let writer = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || tree.olc_delete(victim))
    };
    wait_blocked(sched::site_name(sched::Site::Publish));

    // Frozen state: left leaf already holds the merged image; the parent
    // still has the separator to the absorbed middle leaf. Every key but
    // the deleted one must be served; the scan must not duplicate keys.
    let t = Arc::clone(&tree);
    let seen = must_complete("merge freeze", move || {
        let mut got = Vec::new();
        for k in 0..n - 1 {
            got.push((k * 2, t.get(k * 2)));
        }
        let mut scanned = Vec::new();
        t.range_scan(0, u128::MAX, |k, v| {
            scanned.push((k, v));
            true
        });
        (got, scanned)
    });
    for (k, v) in seen.0 {
        if k != victim {
            assert_eq!(v, Some((k / 2) as u64), "key {k} during frozen merge");
        }
    }
    assert_eq!(seen.1.len(), n as usize - 2, "scan sees survivors exactly once");
    assert!(seen.1.windows(2).all(|w| w[0].0 < w[1].0), "no duplicates through the stale leaf");

    sched::open(sched::site_name(sched::Site::Publish));
    writer.join().unwrap();
    sched::disable();

    tree.validate().expect("valid after released merge");
    assert_eq!(tree.get(victim), None);
    assert_eq!(tree.leaf_page_count(), 2);
}

/// Two structural writers collide on their shared parent: writer A
/// freezes mid-split holding leaf1 + parent, writer B splitting leaf0
/// latches its own leaf, fails the try-latch on the parent every
/// attempt, burns the whole restart budget and escalates to the writer
/// gate (where A's shared guard parks it — no livelock, no deadlock).
/// Readers keep completing throughout; once the gate opens, both splits
/// land and the contention shows up in `OlcStats` and the pool's
/// latch-wait ledger.
#[test]
fn latch_conflict_escalates_and_both_writers_land() {
    let _serial = sched_lock();
    let mut tree: BTree<u64> = BTree::new(Arc::new(BufferPool::new(256)));
    // 255 ascending inserts at stride 4 → leaves of 85 and 170 under one
    // root branch; then 85 offset keys refill the left leaf to exactly
    // full. Both leaves now split on their next insert.
    for k in 0..255u128 {
        tree.insert(k * 4, k as u64);
    }
    assert_eq!((tree.height(), tree.leaf_page_count()), (2, 2));
    for k in 0..85u128 {
        tree.insert(k * 4 + 2, 10_000 + k as u64);
    }
    assert_eq!(tree.leaf_page_count(), 2, "refill must not split yet");
    tree.set_olc_writes(true);
    let tree = Arc::new(tree);

    let _sched = sched::SeededSection::new(0);
    let waits_before = tree.pool().lock_stats().latch_waits;
    sched::close(sched::site_name(sched::Site::Publish), 0);
    // A: splits the right leaf; parks at its first publish still holding
    // the leaf + parent latches.
    let first = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || tree.olc_insert(2_000, 111))
    };
    wait_blocked(sched::site_name(sched::Site::Publish));

    // B: splits the left leaf; latches it, then try-latches the parent A
    // holds — every optimistic attempt restarts until B escalates and
    // blocks on the writer gate.
    let second = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || tree.olc_insert(1, 333))
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while tree.olc_stats().write_escalations == 0 {
        assert!(std::time::Instant::now() < deadline, "second writer never escalated");
        std::thread::yield_now();
    }

    let t = Arc::clone(&tree);
    let got = must_complete("latch freeze", move || {
        (0..255u128).map(|k| t.get(k * 4)).collect::<Vec<_>>()
    });
    for (k, v) in got.iter().enumerate() {
        assert_eq!(*v, Some(k as u64), "key {} while both writers are stuck", k * 4);
    }

    sched::open(sched::site_name(sched::Site::Publish));
    assert_eq!(first.join().unwrap(), None);
    assert_eq!(second.join().unwrap(), None);
    sched::disable();

    assert_eq!(tree.get(2_000), Some(111));
    assert_eq!(tree.get(1), Some(333));
    let stats = tree.olc_stats();
    assert!(stats.write_restarts >= 8, "collisions must be counted: {stats:?}");
    assert_eq!(stats.write_escalations, 1, "exactly the blocked writer escalated");
    assert!(
        tree.pool().lock_stats().latch_waits > waits_before,
        "failed try-latches must land on the wait ledger"
    );
    tree.validate().expect("valid after contention");
    assert_eq!(tree.len(), 255 + 85 + 2);
}
