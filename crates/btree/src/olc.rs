//! Optimistic-lock-coupling write path: inserts and deletes through
//! `&self`, overlapping optimistic readers instead of excluding them.
//!
//! # Protocol
//!
//! A write attempt descends exactly like an optimistic read
//! ([`crate::tree`]'s versioned descent), but records a full copy of
//! every page on the path together with its publication version. The
//! operation is then *classified* from the copies — in-place update,
//! simple insert/remove, or a structural modification (SMO) — and only
//! the pages the SMO actually rewrites are latched: the leaf first
//! (blocking, while zero latches are held), every further page try-only
//! bottom-up, releasing everything and restarting on any conflict. After
//! latching, every recorded `(page, version)` on the path is
//! re-validated; the latches then freeze the write scope, because *any*
//! concurrent operation that would move keys into or out of it must
//! write one of the latched pages.
//!
//! Readers are never blocked; they are protected by **publish order**
//! within each SMO:
//!
//! - **Split**: new right pages are written bottom-up while unreachable,
//!   then one anchor write links them (the safe node's new separator, or
//!   a new root + top swap), then the split pages shrink top-down. A
//!   reader that sees a shrunk page necessarily finds its parent — or
//!   the packed `(root, height)` top word — already changed, and
//!   restarts.
//! - **Borrow**: receiver, then parent separator, then donor shrink. The
//!   only lossy combination (old parent routing into the shrunk donor)
//!   is detected by the parent's version having changed first.
//! - **Merge**: the absorbing page first, then the parent entry removal.
//!   The absorbed page is never touched — its stale content remains
//!   correct for any reader still routed to it, and the page leaks like
//!   the locked path's merged pages do.
//!
//! An attempt that exhausts [`OLC_WRITE_RESTARTS`] escalates: it takes
//! the exclusive side of the tree's writer gate (draining every in-flight
//! writer, which all hold the shared side) and re-runs the same code with
//! validation off and blocking latches — conflict-free by construction,
//! and immune to the livelock where a tiny pool's own descent evictions
//! invalidate versions faster than they can be validated.
//!
//! # Ledger contract
//!
//! The OLC path reproduces the locked write path's
//! [`crate::WriteStats`] exactly (same `leaf_pages_written` bumps per
//! replace/insert/remove/split/borrow/merge) and the same structural
//! counters, so quiesced [`BTree::stats`]/[`BTree::validate`] agree with
//! a locked twin. The pool's [`peb_storage::IoStats`] differs by design:
//! an SMO publishes each rewritten page once from a finished image
//! (e.g. two writes for a leaf split where the locked path issues
//! three), which is why frozen-ledger benchmarks run with OLC off.

use std::sync::atomic::{AtomicU64, Ordering};

use peb_common::sched;
use peb_storage::{BufferPool, OptimisticRead, Page, PageId, PageLatch};

use crate::node::{self, branch_capacity, HEADER};
use crate::tree::{BTree, Restart};
use crate::value::RecordValue;

/// Restart budget of one OLC write operation before it escalates to the
/// exclusive side of the writer gate. Wider than the read path's budget:
/// a writer restart also releases latches other writers may be spinning
/// on, so backing off too early serializes the whole write side.
pub const OLC_WRITE_RESTARTS: usize = 8;

/// Contention counters of the OLC paths (all zero while the knob is off
/// or the tree is uncontended): restarts are optimistic attempts that
/// conflicted and retried; escalations are operations that exhausted
/// their restart budget and drained the writer gate. Relaxed atomics —
/// statistics, not synchronization.
#[derive(Default)]
pub(crate) struct OlcCounters {
    write_restarts: AtomicU64,
    write_escalations: AtomicU64,
    scan_restarts: AtomicU64,
    scan_escalations: AtomicU64,
}

impl OlcCounters {
    pub(crate) fn bump_write_restarts(&self) {
        self.write_restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_write_escalations(&self) {
        self.write_escalations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_scan_restarts(&self) {
        self.scan_restarts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_scan_escalations(&self) {
        self.scan_escalations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> OlcStats {
        OlcStats {
            write_restarts: self.write_restarts.load(Ordering::Relaxed),
            write_escalations: self.write_escalations.load(Ordering::Relaxed),
            scan_restarts: self.scan_restarts.load(Ordering::Relaxed),
            scan_escalations: self.scan_escalations.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.write_restarts.store(0, Ordering::Relaxed);
        self.write_escalations.store(0, Ordering::Relaxed);
        self.scan_restarts.store(0, Ordering::Relaxed);
        self.scan_escalations.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of one tree's OLC contention counters
/// ([`BTree::olc_stats`]): how often optimistic write attempts and
/// strict chain scans conflicted and retried, and how often an operation
/// gave up and drained the writer gate. The concurrency experiment's
/// companion to [`peb_storage::LockStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OlcStats {
    /// Optimistic write attempts aborted by a version or latch conflict.
    pub write_restarts: u64,
    /// Writes that exhausted [`OLC_WRITE_RESTARTS`] and ran gated.
    pub write_escalations: u64,
    /// Strict leaf-chain scan attempts aborted by a version conflict.
    pub scan_restarts: u64,
    /// Scans that exhausted their budget and ran locked under the gate.
    pub scan_escalations: u64,
}

impl OlcStats {
    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &OlcStats) -> OlcStats {
        OlcStats {
            write_restarts: self.write_restarts + other.write_restarts,
            write_escalations: self.write_escalations + other.write_escalations,
            scan_restarts: self.scan_restarts + other.scan_restarts,
            scan_escalations: self.scan_escalations + other.scan_escalations,
        }
    }
}

/// One recorded level of a writer's descent: the page image the
/// classification ran on, the publication version that image must still
/// have when the write executes, and the child index the route took.
struct Step {
    pid: PageId,
    page: Page,
    version: u64,
    /// Child index taken at this (branch) level; 0 at the leaf.
    j: usize,
}

/// Latches held by one write attempt, deduplicated by latch-table slot:
/// two pages hashing to the same slot share one mutex, and re-locking it
/// would self-deadlock. Dropping the set releases everything (restart
/// path and success path alike).
struct LatchSet<'a> {
    pool: &'a BufferPool,
    held: Vec<PageLatch<'a>>,
}

impl<'a> LatchSet<'a> {
    fn new(pool: &'a BufferPool) -> Self {
        LatchSet { pool, held: Vec::new() }
    }

    fn holds_slot(&self, slot: usize) -> bool {
        self.held.iter().any(|l| l.slot() == slot)
    }

    /// Blocking acquire. Safe only while this set is empty (the "first
    /// latch may block, the rest must try" discipline: a thread holding
    /// latches never waits, so the thread being waited on always runs to
    /// release) — or in gated mode, where no competing latcher exists.
    fn lock(&mut self, pid: PageId) {
        if !self.holds_slot(self.pool.latch_slot(pid)) {
            self.held.push(self.pool.latch(pid));
        }
    }

    /// Try-acquire; `false` means the caller must release everything and
    /// restart.
    fn try_lock(&mut self, pid: PageId) -> bool {
        if self.holds_slot(self.pool.latch_slot(pid)) {
            return true;
        }
        match self.pool.try_latch(pid) {
            Some(l) => {
                self.held.push(l);
                true
            }
            None => false,
        }
    }

    /// Acquire `pid` in the mode of this attempt: try-only under
    /// validation (optimistic attempt), blocking under the exclusive
    /// gate.
    fn acquire(&mut self, pid: PageId, validate: bool) -> Result<(), Restart> {
        if validate {
            if !self.try_lock(pid) {
                return Err(Restart);
            }
        } else {
            self.lock(pid);
        }
        Ok(())
    }
}

/// The per-level rebalance a structural delete planned from validated
/// copies; executed as ordered page publishes only after the whole
/// cascade is latched and validated.
struct DeletePlan {
    /// `(page, image)` publishes in reader-safe order.
    ops: Vec<(PageId, Page)>,
    /// `(new_root, new_height)` when the root collapsed.
    new_top: Option<(PageId, u32)>,
    leaf_write_bumps: u64,
    leaf_pages_delta: isize,
    total_pages_delta: isize,
}

impl<V: RecordValue> BTree<V> {
    /// Switch the optimistic-lock-coupling write path on or off.
    ///
    /// With it on, [`BTree::olc_insert`] and [`BTree::olc_delete`] may be
    /// called through `&self` from many threads while readers run, and
    /// the read path flips to strict validation (see
    /// [`BTree::olc_enabled`]). Mutually exclusive with buffered writes:
    /// message chains are single-writer state.
    pub fn set_olc_writes(&mut self, on: bool) {
        if on {
            assert!(
                !self.msgs.buffered && self.msgs.pending == 0 && self.msgs.chains.is_empty(),
                "OLC writes and buffered writes are mutually exclusive"
            );
        }
        self.olc.store(on, Ordering::Relaxed);
    }

    /// Snapshot of this tree's OLC contention counters (restarts and
    /// gate escalations on the write and strict-scan paths).
    pub fn olc_stats(&self) -> OlcStats {
        self.olc_stats.snapshot()
    }

    /// Zero the OLC contention counters (measurement windows).
    pub fn reset_olc_stats(&self) {
        self.olc_stats.reset()
    }

    /// Insert through the OLC write path (requires
    /// [`BTree::set_olc_writes`]). Same contract as [`BTree::insert`]:
    /// returns the previous value if `key` was present.
    pub fn olc_insert(&self, key: u128, value: V) -> Option<V> {
        debug_assert!(self.olc_enabled(), "olc_insert without set_olc_writes(true)");
        for _ in 0..OLC_WRITE_RESTARTS {
            let _share = self.gate.read();
            if let Ok(prev) = self.try_olc_insert(key, &value, true) {
                return prev;
            }
            self.olc_stats.bump_write_restarts();
        }
        self.olc_stats.bump_write_escalations();
        let _drain = self.gate.write();
        match self.try_olc_insert(key, &value, false) {
            Ok(prev) => prev,
            Err(Restart) => unreachable!("gated write attempt cannot conflict"),
        }
    }

    /// Delete through the OLC write path (requires
    /// [`BTree::set_olc_writes`]). Same contract as [`BTree::delete`]:
    /// returns the removed value if `key` was present.
    pub fn olc_delete(&self, key: u128) -> Option<V> {
        debug_assert!(self.olc_enabled(), "olc_delete without set_olc_writes(true)");
        for _ in 0..OLC_WRITE_RESTARTS {
            let _share = self.gate.read();
            if let Ok(removed) = self.try_olc_delete(key, true) {
                return removed;
            }
            self.olc_stats.bump_write_restarts();
        }
        self.olc_stats.bump_write_escalations();
        let _drain = self.gate.write();
        match self.try_olc_delete(key, false) {
            Ok(removed) => removed,
            Err(Restart) => unreachable!("gated write attempt cannot conflict"),
        }
    }

    /// Root-to-leaf descent recording `(page copy, version, child index)`
    /// per level. In validating mode every read is optimistic (strict:
    /// unpublished pages restart) with the parent re-checked after each
    /// child read and the packed top re-checked after the root read; in
    /// gated mode plain locked reads suffice (no concurrent writer).
    fn descend_record(&self, key: u128, top: u64, validate: bool) -> Result<Vec<Step>, Restart> {
        let (mut pid, height) = Self::unpack_top(top);
        let mut path: Vec<Step> = Vec::with_capacity(height as usize);
        let mut prev: Option<(PageId, u64)> = None;
        for level in (0..height).rev() {
            let (page, version) = if validate {
                match self.pool.read_versioned(pid, |p| p.clone()) {
                    OptimisticRead::Hit(p, v) => (p, v),
                    OptimisticRead::Unpublished | OptimisticRead::Conflict => return Err(Restart),
                }
            } else {
                (self.pool.read(pid, |p| p.clone()), 0)
            };
            if validate {
                if let Some((ppid, pv)) = prev {
                    match self.pool.read_version(ppid) {
                        Some(v) if v == pv => {}
                        _ => return Err(Restart),
                    }
                }
                if path.is_empty() && self.top_raw() != top {
                    return Err(Restart);
                }
                prev = Some((pid, version));
            }
            let j = if level > 0 { node::branch_child_index(&page, key) } else { 0 };
            let next = if level > 0 { node::child_at(&page, j) } else { PageId::INVALID };
            path.push(Step { pid, page, version, j });
            pid = next;
        }
        Ok(path)
    }

    /// Whether every recorded `(page, version)` on the path — and the
    /// packed top — is still current. Called after latching; the latched
    /// subset is frozen from here on. Always true in gated mode.
    fn path_current(&self, path: &[Step], top: u64, validate: bool) -> bool {
        if !validate {
            return true;
        }
        if self.top_raw() != top {
            return false;
        }
        path.iter().all(|s| self.pool.read_version(s.pid) == Some(s.version))
    }

    /// Re-validate one path page right after latching it (it was checked
    /// by [`BTree::path_current`] once, but could have changed between
    /// that check and this latch; from now on the latch freezes it).
    fn latch_validated(
        &self,
        latches: &mut LatchSet<'_>,
        step: &Step,
        validate: bool,
    ) -> Result<(), Restart> {
        latches.acquire(step.pid, validate)?;
        if validate && self.pool.read_version(step.pid) != Some(step.version) {
            return Err(Restart);
        }
        Ok(())
    }

    fn try_olc_insert(&self, key: u128, value: &V, validate: bool) -> Result<Option<V>, Restart> {
        sched::probe(sched::Site::Descend);
        let vsize = Self::vsize();
        let stride = Self::stride();
        let top = self.top_raw();
        let path = self.descend_record(key, top, validate)?;
        let leaf = path.last().expect("height >= 1");
        let lp = &leaf.page;
        let n = node::count(lp);
        let i = node::leaf_lower_bound(lp, key, vsize);
        let exists = i < n && node::leaf_key(lp, i, vsize) == key;
        let mut latches = LatchSet::new(&self.pool);

        if exists {
            let old = V::read(lp.bytes(node::leaf_entry_off(i, vsize) + 16, vsize));
            latches.lock(leaf.pid);
            if !self.path_current(&path, top, validate) {
                return Err(Restart);
            }
            self.pool.write(leaf.pid, |p| {
                value.write(p.bytes_mut(node::leaf_entry_off(i, vsize) + 16, vsize));
            });
            self.writes.bump_leaf_writes(1);
            return Ok(Some(old));
        }

        if n < Self::leaf_cap() {
            latches.lock(leaf.pid);
            if !self.path_current(&path, top, validate) {
                return Err(Restart);
            }
            self.pool.write(leaf.pid, |p| {
                let off = node::leaf_entry_off(i, vsize);
                p.shift(off, off + stride, (n - i) * stride);
                p.put_u128(off, key);
                value.write(p.bytes_mut(off + 16, vsize));
                node::set_count(p, n + 1);
            });
            self.writes.bump_leaf_writes(1);
            self.add_len(1);
            return Ok(None);
        }

        // Structural: the split scope is the maximal run of full nodes
        // from the leaf upward; the first non-full ancestor (if any) is
        // the safe node that absorbs the final separator. `scope_top` is
        // the path index of the highest splitting node.
        let mut scope_top = path.len() - 1;
        while scope_top > 0 && node::count(&path[scope_top - 1].page) >= branch_capacity() {
            scope_top -= 1;
        }
        let safe = if scope_top == 0 { None } else { Some(&path[scope_top - 1]) };

        // Leaf first (blocking — zero latches held), then every ancestor
        // in scope plus the safe node, bottom-up and try-only.
        latches.lock(leaf.pid);
        for idx in (scope_top.saturating_sub(1)..path.len() - 1).rev() {
            latches.acquire(path[idx].pid, validate)?;
        }
        if !self.path_current(&path, top, validate) {
            return Err(Restart);
        }

        // Build result images bottom-up from the (now frozen) copies,
        // with the locked path's exact geometry. Leaf split first.
        let mid = n / 2;
        let right_pid = self.pool.allocate();
        let mut right_img = Page::new();
        node::init_leaf(&mut right_img);
        right_img
            .bytes_mut(HEADER, (n - mid) * stride)
            .copy_from_slice(lp.bytes(node::leaf_entry_off(mid, vsize), (n - mid) * stride));
        node::set_count(&mut right_img, n - mid);
        node::set_right_sibling(&mut right_img, node::right_sibling(lp));
        let mut left_img = lp.clone();
        node::set_count(&mut left_img, mid);
        node::set_right_sibling(&mut left_img, right_pid);
        {
            let (timg, ti, tn) =
                if i <= mid { (&mut left_img, i, mid) } else { (&mut right_img, i - mid, n - mid) };
            let off = node::leaf_entry_off(ti, vsize);
            timg.shift(off, off + stride, (tn - ti) * stride);
            timg.put_u128(off, key);
            value.write(timg.bytes_mut(off + 16, vsize));
            node::set_count(timg, tn + 1);
        }
        let mut sep = node::leaf_key(&right_img, 0, vsize);
        let mut new_right = right_pid;
        // Unreachable new pages, published bottom-up.
        let mut new_pages: Vec<(PageId, Page)> = vec![(right_pid, right_img)];
        // Shrinks of the split pages, published top-down (reverse order).
        let mut shrinks: Vec<(PageId, Page)> = vec![(leaf.pid, left_img)];
        let mut branch_splits = 0usize;

        for idx in (scope_top..path.len() - 1).rev() {
            let step = &path[idx];
            let bp = &step.page;
            let bn = node::count(bp);
            let mut entries: Vec<(u128, PageId)> = (0..bn)
                .map(|x| (node::branch_key(bp, x), node::branch_entry_child(bp, x)))
                .collect();
            entries.insert(step.j, (sep, new_right));
            let m = entries.len() / 2;
            let (up_key, up_child) = entries[m];
            let rp = self.pool.allocate();
            let mut rimg = Page::new();
            node::init_branch(&mut rimg, up_child);
            for (x, (k, c)) in entries[m + 1..].iter().enumerate() {
                node::branch_insert_entry(&mut rimg, x, *k, *c);
            }
            let mut limg = bp.clone();
            node::set_count(&mut limg, 0);
            for (x, (k, c)) in entries[..m].iter().enumerate() {
                node::branch_insert_entry(&mut limg, x, *k, *c);
            }
            new_pages.push((rp, rimg));
            shrinks.push((step.pid, limg));
            sep = up_key;
            new_right = rp;
            branch_splits += 1;
        }

        // Publish: new pages (unreachable), one anchor, shrinks top-down.
        for (pid, img) in &new_pages {
            self.pool.write(*pid, |p| p.clone_from(img));
        }
        match safe {
            Some(s) => {
                let (sj, anchor_sep, anchor_right) = (s.j, sep, new_right);
                self.pool
                    .write(s.pid, |p| node::branch_insert_entry(p, sj, anchor_sep, anchor_right));
            }
            None => {
                let (_, height) = Self::unpack_top(top);
                let old_root = path[0].pid;
                let grown = self.pool.allocate();
                self.pool.write(grown, |p| {
                    node::init_branch(p, old_root);
                    node::branch_insert_entry(p, 0, sep, new_right);
                });
                self.set_top(grown, height + 1);
                self.add_total_pages(1);
                self.log_meta();
            }
        }
        for (pid, img) in shrinks.iter().rev() {
            self.pool.write(*pid, |p| p.clone_from(img));
        }

        self.add_len(1);
        self.add_total_pages((1 + branch_splits) as isize);
        self.add_leaf_pages(1);
        self.writes.bump_leaf_writes(3);
        Ok(None)
    }

    fn try_olc_delete(&self, key: u128, validate: bool) -> Result<Option<V>, Restart> {
        sched::probe(sched::Site::Descend);
        let vsize = Self::vsize();
        let stride = Self::stride();
        let top = self.top_raw();
        let path = self.descend_record(key, top, validate)?;
        let leaf_idx = path.len() - 1;
        let leaf = &path[leaf_idx];
        let lp = &leaf.page;
        let n = node::count(lp);
        let i = node::leaf_lower_bound(lp, key, vsize);
        if !(i < n && node::leaf_key(lp, i, vsize) == key) {
            // Absence concluded from a route-validated consistent image:
            // linearizes at the leaf read, exactly like a miss of `get`.
            return Ok(None);
        }
        let old = V::read(lp.bytes(node::leaf_entry_off(i, vsize) + 16, vsize));
        let mut latches = LatchSet::new(&self.pool);

        if n > Self::leaf_min() || path.len() == 1 {
            latches.lock(leaf.pid);
            if !self.path_current(&path, top, validate) {
                return Err(Restart);
            }
            self.pool.write(leaf.pid, |p| {
                let off = node::leaf_entry_off(i, vsize);
                p.shift(off + stride, off, (n - 1 - i) * stride);
                node::set_count(p, n - 1);
            });
            self.writes.bump_leaf_writes(1);
            self.add_len(-1);
            return Ok(Some(old));
        }

        // Structural: the removal underflows the leaf. Plan the whole
        // rebalance cascade from validated copies and fresh latched
        // sibling reads, then execute the publishes in order.
        latches.lock(leaf.pid);
        if !self.path_current(&path, top, validate) {
            return Err(Restart);
        }
        let mut child_img = lp.clone();
        {
            let off = node::leaf_entry_off(i, vsize);
            child_img.shift(off + stride, off, (n - 1 - i) * stride);
            node::set_count(&mut child_img, n - 1);
        }
        let plan = self.plan_rebalance(&path, leaf_idx, child_img, top, &mut latches, validate)?;

        for (pid, img) in &plan.ops {
            self.pool.write(*pid, |p| p.clone_from(img));
        }
        if let Some((new_root, new_height)) = plan.new_top {
            self.set_top(new_root, new_height);
            self.log_meta();
        }
        self.writes.bump_leaf_writes(plan.leaf_write_bumps);
        self.add_len(-1);
        self.add_leaf_pages(plan.leaf_pages_delta);
        self.add_total_pages(plan.total_pages_delta);
        Ok(Some(old))
    }

    /// Plan the borrow/merge cascade for a delete whose leaf underflowed.
    /// `child_img` is the latched, validated child's post-removal image;
    /// `level_idx` its path index. Latches the parent and the siblings it
    /// needs level by level (try-only under validation), re-validating
    /// each path page as it is latched; sibling content is read fresh
    /// under its latch (it was never on the descent path). Decision order
    /// matches the locked `fix_child` exactly: borrow-left, borrow-right,
    /// merge-left, merge-right.
    fn plan_rebalance(
        &self,
        path: &[Step],
        leaf_level: usize,
        mut child_img: Page,
        top: u64,
        latches: &mut LatchSet<'_>,
        validate: bool,
    ) -> Result<DeletePlan, Restart> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        let (_, height) = Self::unpack_top(top);
        let mut plan = DeletePlan {
            ops: Vec::new(),
            new_top: None,
            leaf_write_bumps: 1, // the removal itself
            leaf_pages_delta: 0,
            total_pages_delta: 0,
        };
        let mut level_idx = leaf_level;
        loop {
            let child = &path[level_idx];
            let parent = &path[level_idx - 1];
            self.latch_validated(latches, parent, validate)?;
            let pp = &parent.page;
            let pj = parent.j;
            let pcount = node::count(pp);
            let at_leaf = level_idx == leaf_level;
            let min = if at_leaf { Self::leaf_min() } else { Self::branch_min() };

            // Sibling ids come from the frozen parent image; their
            // content is only authoritative once latched.
            let fresh =
                |pid: PageId, latches: &mut LatchSet<'_>| -> Result<Option<Page>, Restart> {
                    latches.acquire(pid, validate)?;
                    Ok(Some(self.pool.read(pid, |p| p.clone())))
                };
            let left = if pj > 0 {
                let lpid = node::child_at(pp, pj - 1);
                fresh(lpid, latches)?.map(|img| (lpid, img))
            } else {
                None
            };
            let right = if pj < pcount {
                let rpid = node::child_at(pp, pj + 1);
                fresh(rpid, latches)?.map(|img| (rpid, img))
            } else {
                None
            };

            if let Some((lpid, limg)) = &left {
                if node::count(limg) > min {
                    let (receiver, parent_img, donor) = if at_leaf {
                        borrow_leaf_left(&child_img, limg, pp, pj, vsize, stride)
                    } else {
                        borrow_branch_left(&child_img, limg, pp, pj)
                    };
                    plan.ops.push((child.pid, receiver));
                    plan.ops.push((parent.pid, parent_img));
                    plan.ops.push((*lpid, donor));
                    if at_leaf {
                        plan.leaf_write_bumps += 2;
                    }
                    return Ok(plan);
                }
            }
            if let Some((rpid, rimg)) = &right {
                if node::count(rimg) > min {
                    let (receiver, parent_img, donor) = if at_leaf {
                        borrow_leaf_right(&child_img, rimg, pp, pj, vsize, stride)
                    } else {
                        borrow_branch_right(&child_img, rimg, pp, pj)
                    };
                    plan.ops.push((child.pid, receiver));
                    plan.ops.push((parent.pid, parent_img));
                    plan.ops.push((*rpid, donor));
                    if at_leaf {
                        plan.leaf_write_bumps += 2;
                    }
                    return Ok(plan);
                }
            }

            // Merge. Left-preferring like `fix_child`; the pair's left
            // page absorbs and the right page leaks untouched.
            let (absorb_pid, absorb_img, sep_idx) = if let Some((lpid, limg)) = &left {
                let img = if at_leaf {
                    merge_leaf(limg, &child_img, vsize, stride)
                } else {
                    merge_branch(limg, &child_img, node::branch_key(pp, pj - 1))
                };
                (*lpid, img, pj - 1)
            } else if let Some((_rpid, rimg)) = &right {
                let img = if at_leaf {
                    merge_leaf(&child_img, rimg, vsize, stride)
                } else {
                    merge_branch(&child_img, rimg, node::branch_key(pp, pj))
                };
                (child.pid, img, pj)
            } else {
                // A root child with no siblings cannot underflow
                // structurally; the root collapse below handles it.
                unreachable!("non-root child with no siblings");
            };
            let mut parent_img = pp.clone();
            node::branch_remove_entry(&mut parent_img, sep_idx);
            plan.ops.push((absorb_pid, absorb_img.clone()));
            plan.ops.push((parent.pid, parent_img.clone()));
            if at_leaf {
                plan.leaf_write_bumps += 1;
                plan.leaf_pages_delta -= 1;
            }
            plan.total_pages_delta -= 1;

            if level_idx - 1 == 0 {
                // Parent is the root: collapse it once it holds no
                // separator (its sole remaining child is the absorber).
                if pcount - 1 == 0 {
                    plan.new_top = Some((absorb_pid, height - 1));
                    plan.total_pages_delta -= 1;
                }
                return Ok(plan);
            }
            if pcount > Self::branch_min() {
                return Ok(plan);
            }
            // The parent itself underflowed: it becomes the child of the
            // next round, starting from its post-removal image.
            child_img = parent_img;
            level_idx -= 1;
        }
    }
}

// ---- rebalance image builders (mirror the locked write sequences) ------

/// Leaf borrow from the left sibling: `(receiver, parent, donor)` images,
/// published in that order.
fn borrow_leaf_left(
    child: &Page,
    l: &Page,
    parent: &Page,
    pj: usize,
    vsize: usize,
    stride: usize,
) -> (Page, Page, Page) {
    let ln = node::count(l);
    let entry = l.bytes(node::leaf_entry_off(ln - 1, vsize), stride).to_vec();
    let mut receiver = child.clone();
    let cn = node::count(&receiver);
    receiver.shift(HEADER, HEADER + stride, cn * stride);
    receiver.bytes_mut(HEADER, stride).copy_from_slice(&entry);
    node::set_count(&mut receiver, cn + 1);
    let mut pimg = parent.clone();
    let new_sep = u128::from_le_bytes(entry[..16].try_into().unwrap());
    node::set_branch_key(&mut pimg, pj - 1, new_sep);
    let mut donor = l.clone();
    node::set_count(&mut donor, ln - 1);
    (receiver, pimg, donor)
}

/// Leaf borrow from the right sibling.
fn borrow_leaf_right(
    child: &Page,
    r: &Page,
    parent: &Page,
    pj: usize,
    vsize: usize,
    stride: usize,
) -> (Page, Page, Page) {
    let rn = node::count(r);
    let entry = r.bytes(HEADER, stride).to_vec();
    let mut receiver = child.clone();
    let cn = node::count(&receiver);
    receiver.bytes_mut(node::leaf_entry_off(cn, vsize), stride).copy_from_slice(&entry);
    node::set_count(&mut receiver, cn + 1);
    let mut pimg = parent.clone();
    // The donor's post-removal first key: its current second entry.
    node::set_branch_key(&mut pimg, pj, node::leaf_key(r, 1, vsize));
    let mut donor = r.clone();
    donor.shift(HEADER + stride, HEADER, (rn - 1) * stride);
    node::set_count(&mut donor, rn - 1);
    (receiver, pimg, donor)
}

/// Branch borrow from the left sibling (rotation through the parent
/// separator).
fn borrow_branch_left(child: &Page, l: &Page, parent: &Page, pj: usize) -> (Page, Page, Page) {
    let ln = node::count(l);
    let (l_last_key, l_last_child) =
        (node::branch_key(l, ln - 1), node::branch_entry_child(l, ln - 1));
    let sep = node::branch_key(parent, pj - 1);
    let mut receiver = child.clone();
    let c_leftmost = node::leftmost_child(&receiver);
    node::branch_insert_entry(&mut receiver, 0, sep, c_leftmost);
    node::set_leftmost_child(&mut receiver, l_last_child);
    let mut pimg = parent.clone();
    node::set_branch_key(&mut pimg, pj - 1, l_last_key);
    let mut donor = l.clone();
    node::branch_remove_entry(&mut donor, ln - 1);
    (receiver, pimg, donor)
}

/// Branch borrow from the right sibling.
fn borrow_branch_right(child: &Page, r: &Page, parent: &Page, pj: usize) -> (Page, Page, Page) {
    let sep = node::branch_key(parent, pj);
    let (r_first_key, r_leftmost) = (node::branch_key(r, 0), node::leftmost_child(r));
    let r_first_child = node::branch_entry_child(r, 0);
    let mut receiver = child.clone();
    let cn = node::count(&receiver);
    node::branch_insert_entry(&mut receiver, cn, sep, r_leftmost);
    let mut pimg = parent.clone();
    node::set_branch_key(&mut pimg, pj, r_first_key);
    let mut donor = r.clone();
    node::set_leftmost_child(&mut donor, r_first_child);
    node::branch_remove_entry(&mut donor, 0);
    (receiver, pimg, donor)
}

/// Left leaf of a merging pair absorbing the right one.
fn merge_leaf(l: &Page, r: &Page, vsize: usize, stride: usize) -> Page {
    let rn = node::count(r);
    let mut img = l.clone();
    let ln = node::count(&img);
    img.bytes_mut(node::leaf_entry_off(ln, vsize), rn * stride)
        .copy_from_slice(r.bytes(HEADER, rn * stride));
    node::set_count(&mut img, ln + rn);
    node::set_right_sibling(&mut img, node::right_sibling(r));
    img
}

/// Left branch of a merging pair absorbing the right one through the
/// parent separator.
fn merge_branch(l: &Page, r: &Page, sep: u128) -> Page {
    let mut img = l.clone();
    let mut n = node::count(&img);
    node::branch_insert_entry(&mut img, n, sep, node::leftmost_child(r));
    n += 1;
    for x in 0..node::count(r) {
        node::branch_insert_entry(
            &mut img,
            n,
            node::branch_key(r, x),
            node::branch_entry_child(r, x),
        );
        n += 1;
    }
    img
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use peb_storage::BufferPool;

    use super::*;

    /// A fat record shrinking leaves to 15 entries, so small key ranges
    /// already force splits, borrows, merges, and root transitions.
    #[derive(Clone, Debug, PartialEq)]
    pub(super) struct Fat(pub(super) u64);

    impl RecordValue for Fat {
        const SIZE: usize = 240;

        fn write(&self, buf: &mut [u8]) {
            buf[..8].copy_from_slice(&self.0.to_le_bytes());
            buf[8..].fill(0xAB);
        }

        fn read(buf: &[u8]) -> Self {
            Fat(u64::from_le_bytes(buf[..8].try_into().unwrap()))
        }
    }

    fn olc_tree<V: RecordValue>() -> BTree<V> {
        let mut t = BTree::new(Arc::new(BufferPool::new(64)));
        t.set_olc_writes(true);
        t
    }

    #[test]
    fn olc_insert_get_delete_roundtrip() {
        let t: BTree<u64> = olc_tree();
        assert_eq!(t.olc_insert(7, 70), None);
        assert_eq!(t.olc_insert(7, 71), Some(70));
        assert_eq!(t.get(7), Some(71));
        assert_eq!(t.olc_delete(7), Some(71));
        assert_eq!(t.olc_delete(7), None);
        assert!(t.is_empty());
        t.validate().expect("valid");
    }

    #[test]
    fn olc_split_merge_small_leaves_match_locked_twin() {
        // Fat records: leaves split after 15 entries, so 120 keys walk
        // through plenty of leaf splits; the deletions then run borrows,
        // merges, and the root collapse. The locked twin defines every
        // answer and every ledger value.
        let olc: BTree<Fat> = olc_tree();
        let mut locked: BTree<Fat> = BTree::new(Arc::new(BufferPool::new(64)));
        for i in 0..120u128 {
            let k = (i * 37) % 120;
            assert_eq!(olc.olc_insert(k, Fat(i as u64)), locked.insert(k, Fat(i as u64)));
        }
        assert!(olc.height() >= 2, "must have split");
        olc.validate().expect("valid after inserts");
        assert_eq!(olc.len(), locked.len());
        assert_eq!(olc.height(), locked.height());
        assert_eq!(olc.leaf_page_count(), locked.leaf_page_count());
        assert_eq!(olc.page_count(), locked.page_count());
        assert_eq!(olc.write_stats(), locked.write_stats());
        for i in 0..120u128 {
            let k = (i * 53) % 150;
            assert_eq!(olc.olc_delete(k), locked.delete(k), "delete({k})");
            if i % 13 == 0 {
                olc.validate().expect("valid during deletions");
            }
        }
        assert_eq!(olc.len(), locked.len());
        assert_eq!(olc.height(), locked.height());
        assert_eq!(olc.write_stats(), locked.write_stats());
        olc.validate().expect("valid after deletions");
    }

    #[test]
    fn olc_deep_tree_cascaded_splits_and_collapse() {
        // 4000 fat records push past 200 leaves: the tree grows to
        // height 3 through cascaded branch splits (root grow twice), and
        // full deletion walks it back down through branch merges and two
        // root collapses.
        let olc: BTree<Fat> = olc_tree();
        let mut locked: BTree<Fat> = BTree::new(Arc::new(BufferPool::new(64)));
        let n = 4000u128;
        for i in 0..n {
            let k = (i * 2_654_435_761) % (1 << 20);
            assert_eq!(
                olc.olc_insert(k, Fat(i as u64)).is_some(),
                locked.insert(k, Fat(i as u64)).is_some()
            );
        }
        assert!(olc.height() >= 3, "height {}", olc.height());
        assert_eq!(olc.height(), locked.height());
        assert_eq!(olc.leaf_page_count(), locked.leaf_page_count());
        assert_eq!(olc.page_count(), locked.page_count());
        assert_eq!(olc.write_stats(), locked.write_stats());
        olc.validate().expect("valid at full size");
        for i in 0..n {
            let k = (i * 2_654_435_761) % (1 << 20);
            assert_eq!(olc.olc_delete(k).is_some(), locked.delete(k).is_some());
        }
        assert!(olc.is_empty());
        assert_eq!(olc.height(), 1, "root collapsed back to a leaf");
        assert_eq!(olc.height(), locked.height());
        assert_eq!(olc.write_stats(), locked.write_stats());
        olc.validate().expect("valid after full deletion");
    }

    #[test]
    fn olc_scans_match_locked_scans_descent_for_descent() {
        let olc: BTree<u64> = olc_tree();
        let mut locked: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        for k in 0..5_000u128 {
            olc.olc_insert(k * 3, k as u64);
            locked.insert(k * 3, k as u64);
        }
        for (lo, hi) in [(0u128, 14_997), (1_000, 2_000), (14_000, 20_000), (9, 9)] {
            assert_eq!(olc.range(lo, hi), locked.range(lo, hi), "range({lo},{hi})");
        }
        // The strict chain scan costs exactly one descent per range_scan,
        // like the relaxed walk.
        assert_eq!(olc.scan_stats().descents, locked.scan_stats().descents);
        // Multi-range results agree too (the OLC side forgoes the fused
        // descent cache, so only the emission is compared).
        let ivs = [(0u128, 300), (600, 900), (7_000, 7_600), (14_900, 15_000)];
        let mut a = Vec::new();
        let mut b = Vec::new();
        olc.multi_range_scan(&ivs, |k, v| {
            a.push((k, v));
            true
        });
        locked.multi_range_scan(&ivs, |k, v| {
            b.push((k, v));
            true
        });
        assert_eq!(a, b);
    }

    #[test]
    fn olc_and_buffered_writes_are_mutually_exclusive() {
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(16)));
        t.set_olc_writes(true);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.set_buffered_writes(true)));
        assert!(r.is_err(), "buffered writes must refuse to enable over OLC");
    }

    #[test]
    fn olc_concurrent_writers_and_readers_smoke() {
        // 4 writers insert interleaved key ranges while 2 readers issue
        // gets and range scans; afterwards the quiesced tree must agree
        // with a locked twin and validate structurally.
        use std::sync::atomic::{AtomicBool, Ordering};
        let t: Arc<BTree<u64>> = Arc::new(olc_tree());
        let done = Arc::new(AtomicBool::new(false));
        let n_per = 2_000u128;
        let writers: Vec<_> = (0..4u128)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..n_per {
                        let k = (i * 4 + w) * 7;
                        t.olc_insert(k, (w * 1_000_000 + i) as u64);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2u128)
            .map(|r| {
                let t = Arc::clone(&t);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        t.get((r * 997) % (n_per * 28));
                        t.range_scan(r * 100, r * 100 + 5_000, |_, v| {
                            sum = sum.wrapping_add(v);
                            true
                        });
                    }
                    sum
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(t.len(), (n_per * 4) as usize);
        t.validate().expect("valid after concurrent churn");
        let mut locked: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        for w in 0..4u128 {
            for i in 0..n_per {
                locked.insert((i * 4 + w) * 7, (w * 1_000_000 + i) as u64);
            }
        }
        assert_eq!(t.range(0, u128::MAX), locked.range(0, u128::MAX));
        assert_eq!(t.height(), locked.height());
    }
}

#[cfg(test)]
mod proptests {
    use std::sync::Arc;

    use peb_storage::BufferPool;
    use proptest::prelude::*;

    use super::tests::Fat;
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Random op sequences through the OLC write path against the
        /// locked `&mut` reference: identical answers, identical
        /// structure, identical write ledger, and scan parity — on fat
        /// records whose 15-entry leaves make every sequence structural.
        #[test]
        fn olc_random_ops_match_locked_reference(ops in proptest::collection::vec(
            (any::<bool>(), 0u128..120, any::<u64>()), 1..400)) {
            let mut olc: BTree<Fat> = BTree::new(Arc::new(BufferPool::new(64)));
            olc.set_olc_writes(true);
            let mut locked: BTree<Fat> = BTree::new(Arc::new(BufferPool::new(64)));
            for (is_insert, key, val) in ops {
                if is_insert {
                    prop_assert_eq!(olc.olc_insert(key, Fat(val)), locked.insert(key, Fat(val)));
                } else {
                    prop_assert_eq!(olc.olc_delete(key), locked.delete(key));
                }
            }
            olc.validate().expect("valid");
            prop_assert_eq!(olc.len(), locked.len());
            prop_assert_eq!(olc.height(), locked.height());
            prop_assert_eq!(olc.leaf_page_count(), locked.leaf_page_count());
            prop_assert_eq!(olc.page_count(), locked.page_count());
            prop_assert_eq!(olc.write_stats(), locked.write_stats());
            for probe in 0..120u128 {
                prop_assert_eq!(olc.get(probe), locked.get(probe));
            }
            prop_assert_eq!(olc.range(0, u128::MAX), locked.range(0, u128::MAX));
            prop_assert_eq!(olc.scan_stats(), locked.scan_stats());
        }
    }
}
