//! Fixed-size leaf values.

/// A value that can live in a B+-tree leaf: fixed byte size, plain
/// serialization. Implementations must write exactly [`Self::SIZE`] bytes.
pub trait RecordValue: Clone {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Serialize into `buf` (`buf.len() == SIZE`).
    fn write(&self, buf: &mut [u8]);

    /// Deserialize from `buf` (`buf.len() == SIZE`).
    fn read(buf: &[u8]) -> Self;
}

impl RecordValue for u64 {
    const SIZE: usize = 8;

    fn write(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf.try_into().unwrap())
    }
}

impl RecordValue for () {
    const SIZE: usize = 0;

    fn write(&self, _buf: &mut [u8]) {}

    fn read(_buf: &[u8]) -> Self {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = [0u8; 8];
        0xDEAD_BEEF_u64.write(&mut buf);
        assert_eq!(u64::read(&buf), 0xDEAD_BEEF);
    }

    #[test]
    fn unit_value_is_zero_sized() {
        assert_eq!(<() as RecordValue>::SIZE, 0);
        let mut buf = [0u8; 0];
        ().write(&mut buf);
        <() as RecordValue>::read(&buf);
    }
}
