//! On-page node layout.
//!
//! Every node occupies one 4 KB page:
//!
//! ```text
//! offset  size  field
//! 0       1     node type (0 = leaf, 1 = branch)
//! 2       2     entry count
//! 4       4     leaf: right-sibling page id      (INVALID if none)
//! 8       4     message-chain head page id + 1   (0 if none; see `msg`)
//! 12      4     branch: leftmost child page id
//! 16      —     entry array
//! ```
//!
//! Leaf entry `i` (stride `16 + V::SIZE`): `key: u128`, then the value
//! bytes. Branch entry `i` (stride 20): `key: u128`, `child: PageId`, where
//! `child` roots the subtree covering `[key_i, key_{i+1})` and the header's
//! leftmost child covers everything below `key_0`.

use peb_storage::{Page, PageId, PAGE_SIZE};

/// Byte offset of the node-type tag.
pub const OFF_TYPE: usize = 0;
/// Byte offset of the entry count.
pub const OFF_COUNT: usize = 2;
/// Byte offset of a leaf's right-sibling pointer.
pub const OFF_RIGHT: usize = 4;
/// Byte offset of the node's message-chain head pointer (stored as
/// `pid + 1` so an all-zero page means "no chain"; see the `msg` module).
pub const OFF_CHAIN: usize = 8;
/// Byte offset of a branch's leftmost child pointer.
pub const OFF_LEFTMOST: usize = 12;
/// First byte of the entry array.
pub const HEADER: usize = 16;

/// Branch entry stride: 16-byte key + 4-byte child id.
pub const BRANCH_ENTRY: usize = 20;

/// Node-type tag of a leaf page.
pub const TYPE_LEAF: u8 = 0;
/// Node-type tag of a branch (inner) page.
pub const TYPE_BRANCH: u8 = 1;

/// Number of `(key, child)` entries a branch page can hold.
pub const fn branch_capacity() -> usize {
    (PAGE_SIZE - HEADER) / BRANCH_ENTRY
}

/// Number of `(key, value)` entries a leaf page can hold for a value of
/// `vsize` bytes.
pub const fn leaf_capacity(vsize: usize) -> usize {
    (PAGE_SIZE - HEADER) / (16 + vsize)
}

/// Whether the page is a leaf node.
#[inline]
pub fn is_leaf(p: &Page) -> bool {
    p.get_u8(OFF_TYPE) == TYPE_LEAF
}

/// The page's entry count.
#[inline]
pub fn count(p: &Page) -> usize {
    p.get_u16(OFF_COUNT) as usize
}

/// Overwrite the page's entry count.
#[inline]
pub fn set_count(p: &mut Page, n: usize) {
    p.put_u16(OFF_COUNT, n as u16);
}

/// Format the page as an empty leaf with no right sibling.
#[inline]
pub fn init_leaf(p: &mut Page) {
    p.put_u8(OFF_TYPE, TYPE_LEAF);
    set_count(p, 0);
    p.put_page_id(OFF_RIGHT, PageId::INVALID);
    p.put_u32(OFF_CHAIN, 0);
}

/// Format the page as an empty branch whose leftmost child is `leftmost`.
#[inline]
pub fn init_branch(p: &mut Page, leftmost: PageId) {
    p.put_u8(OFF_TYPE, TYPE_BRANCH);
    set_count(p, 0);
    p.put_page_id(OFF_LEFTMOST, leftmost);
    p.put_u32(OFF_CHAIN, 0);
}

/// The node's message-chain head (`INVALID` when it has no chain).
#[inline]
pub fn chain_head(p: &Page) -> PageId {
    let raw = p.get_u32(OFF_CHAIN);
    if raw == 0 {
        PageId::INVALID
    } else {
        PageId(raw - 1)
    }
}

/// Overwrite the node's message-chain head (`INVALID` clears it).
#[inline]
pub fn set_chain_head(p: &mut Page, pid: PageId) {
    p.put_u32(OFF_CHAIN, if pid.is_valid() { pid.0 + 1 } else { 0 });
}

// ---- leaf accessors -------------------------------------------------------

/// Byte offset of leaf entry `i` for values of `vsize` bytes.
#[inline]
pub fn leaf_entry_off(i: usize, vsize: usize) -> usize {
    HEADER + i * (16 + vsize)
}

/// Key of leaf entry `i`.
#[inline]
pub fn leaf_key(p: &Page, i: usize, vsize: usize) -> u128 {
    p.get_u128(leaf_entry_off(i, vsize))
}

/// The leaf's right-sibling pointer (`INVALID` at the end of the chain).
#[inline]
pub fn right_sibling(p: &Page) -> PageId {
    p.get_page_id(OFF_RIGHT)
}

/// Overwrite the leaf's right-sibling pointer.
#[inline]
pub fn set_right_sibling(p: &mut Page, pid: PageId) {
    p.put_page_id(OFF_RIGHT, pid);
}

/// Binary search in a leaf: index of the first entry with key >= `key`.
pub fn leaf_lower_bound(p: &Page, key: u128, vsize: usize) -> usize {
    let (mut lo, mut hi) = (0usize, count(p));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_key(p, mid, vsize) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

// ---- branch accessors -----------------------------------------------------

/// Separator key of branch entry `i`.
#[inline]
pub fn branch_key(p: &Page, i: usize) -> u128 {
    p.get_u128(HEADER + i * BRANCH_ENTRY)
}

/// Overwrite the separator key of branch entry `i`.
#[inline]
pub fn set_branch_key(p: &mut Page, i: usize, k: u128) {
    p.put_u128(HEADER + i * BRANCH_ENTRY, k);
}

/// Child page of branch entry `i` (the subtree covering `[key_i, key_{i+1})`).
#[inline]
pub fn branch_entry_child(p: &Page, i: usize) -> PageId {
    p.get_page_id(HEADER + i * BRANCH_ENTRY + 16)
}

/// Overwrite the child pointer of branch entry `i`.
#[inline]
pub fn set_branch_entry_child(p: &mut Page, i: usize, c: PageId) {
    p.put_page_id(HEADER + i * BRANCH_ENTRY + 16, c);
}

/// The branch's leftmost child (the subtree below every separator).
#[inline]
pub fn leftmost_child(p: &Page) -> PageId {
    p.get_page_id(OFF_LEFTMOST)
}

/// Overwrite the branch's leftmost child pointer.
#[inline]
pub fn set_leftmost_child(p: &mut Page, c: PageId) {
    p.put_page_id(OFF_LEFTMOST, c);
}

/// Child pointer number `j` where `j = 0` is the leftmost child and
/// `j >= 1` is entry `j − 1`'s child. A branch with `count` entries has
/// `count + 1` children.
#[inline]
pub fn child_at(p: &Page, j: usize) -> PageId {
    if j == 0 {
        leftmost_child(p)
    } else {
        branch_entry_child(p, j - 1)
    }
}

/// Overwrite child pointer number `j` (see [`child_at`]).
#[inline]
pub fn set_child_at(p: &mut Page, j: usize, c: PageId) {
    if j == 0 {
        set_leftmost_child(p, c);
    } else {
        set_branch_entry_child(p, j - 1, c);
    }
}

/// Which child pointer to follow for `key`: the number of separators <= key.
/// (Separator `key_i` sends `key >= key_i` to the right, so we count them.)
pub fn branch_child_index(p: &Page, key: u128) -> usize {
    let (mut lo, mut hi) = (0usize, count(p));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if branch_key(p, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo // number of separators <= key == child pointer index
}

/// Insert `(key, child)` as entry `i`, shifting later entries right.
pub fn branch_insert_entry(p: &mut Page, i: usize, key: u128, child: PageId) {
    let n = count(p);
    debug_assert!(i <= n && n < branch_capacity());
    let off = HEADER + i * BRANCH_ENTRY;
    p.shift(off, off + BRANCH_ENTRY, (n - i) * BRANCH_ENTRY);
    p.put_u128(off, key);
    p.put_page_id(off + 16, child);
    set_count(p, n + 1);
}

/// Remove entry `i`, shifting later entries left.
pub fn branch_remove_entry(p: &mut Page, i: usize) {
    let n = count(p);
    debug_assert!(i < n);
    let off = HEADER + i * BRANCH_ENTRY;
    p.shift(off + BRANCH_ENTRY, off, (n - 1 - i) * BRANCH_ENTRY);
    set_count(p, n - 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_match_paper_scale() {
        // 20-byte branch entries: 204 per 4 KB page.
        assert_eq!(branch_capacity(), 204);
        // 48-byte leaf records (16-byte key + 32-byte moving-object value).
        assert_eq!(leaf_capacity(32), 85);
        assert_eq!(leaf_capacity(8), 170);
    }

    #[test]
    fn leaf_lower_bound_finds_first_geq() {
        let mut p = Page::new();
        init_leaf(&mut p);
        for (i, k) in [10u128, 20, 20, 30].iter().enumerate() {
            p.put_u128(leaf_entry_off(i, 8), *k);
        }
        set_count(&mut p, 4);
        assert_eq!(leaf_lower_bound(&p, 5, 8), 0);
        assert_eq!(leaf_lower_bound(&p, 10, 8), 0);
        assert_eq!(leaf_lower_bound(&p, 15, 8), 1);
        assert_eq!(leaf_lower_bound(&p, 20, 8), 1);
        assert_eq!(leaf_lower_bound(&p, 31, 8), 4);
    }

    #[test]
    fn branch_child_index_routes_by_separator() {
        let mut p = Page::new();
        init_branch(&mut p, PageId(100));
        branch_insert_entry(&mut p, 0, 10, PageId(101));
        branch_insert_entry(&mut p, 1, 20, PageId(102));
        // keys < 10 -> leftmost; 10..19 -> child of entry 0; >= 20 -> entry 1.
        assert_eq!(branch_child_index(&p, 5), 0);
        assert_eq!(child_at(&p, 0), PageId(100));
        assert_eq!(branch_child_index(&p, 10), 1);
        assert_eq!(child_at(&p, 1), PageId(101));
        assert_eq!(branch_child_index(&p, 19), 1);
        assert_eq!(branch_child_index(&p, 20), 2);
        assert_eq!(child_at(&p, 2), PageId(102));
    }

    #[test]
    fn branch_insert_remove_shifts_entries() {
        let mut p = Page::new();
        init_branch(&mut p, PageId(0));
        branch_insert_entry(&mut p, 0, 10, PageId(1));
        branch_insert_entry(&mut p, 1, 30, PageId(3));
        branch_insert_entry(&mut p, 1, 20, PageId(2)); // middle insert
        assert_eq!(count(&p), 3);
        assert_eq!((branch_key(&p, 0), branch_key(&p, 1), branch_key(&p, 2)), (10, 20, 30));
        branch_remove_entry(&mut p, 1);
        assert_eq!(count(&p), 2);
        assert_eq!((branch_key(&p, 0), branch_key(&p, 1)), (10, 30));
        assert_eq!(branch_entry_child(&p, 1), PageId(3));
    }

    #[test]
    fn chain_head_roundtrips_and_inits_clear() {
        let mut p = Page::new();
        init_leaf(&mut p);
        assert_eq!(chain_head(&p), PageId::INVALID);
        set_chain_head(&mut p, PageId(0)); // page id 0 must be representable
        assert_eq!(chain_head(&p), PageId(0));
        set_chain_head(&mut p, PageId(41));
        assert_eq!(chain_head(&p), PageId(41));
        set_chain_head(&mut p, PageId::INVALID);
        assert_eq!(chain_head(&p), PageId::INVALID);
        init_branch(&mut p, PageId(3));
        assert_eq!(chain_head(&p), PageId::INVALID);
    }

    #[test]
    fn set_child_at_distinguishes_leftmost() {
        let mut p = Page::new();
        init_branch(&mut p, PageId(7));
        branch_insert_entry(&mut p, 0, 50, PageId(8));
        set_child_at(&mut p, 0, PageId(70));
        set_child_at(&mut p, 1, PageId(80));
        assert_eq!(leftmost_child(&p), PageId(70));
        assert_eq!(branch_entry_child(&p, 0), PageId(80));
    }
}
