//! B-epsilon-style message buffering for the write path.
//!
//! With buffered writes enabled ([`BTree::set_buffered_writes`]), upserts
//! and deletes no longer descend to a leaf. Each becomes a *message* —
//! `(key, sequence number, op, payload)` — appended to a **chain of
//! sidecar message pages** hung off the root node (the highest buffered
//! level). When the root chain fills, its messages are either pushed one
//! level down into per-child chains of the root's children (`height >= 3`,
//! a *spill*) or applied to the leaves in one batched *flush* that reuses
//! the sorted-merge machinery of [`BTree::merge_sorted`]: drain every
//! chain, compact to the newest message per key (last-write-wins by
//! sequence number), and either apply per key (small residue) or rebuild
//! the leaf level bottom-up (large residue).
//!
//! Message pages live in the same buffer pool as tree pages, so buffering
//! is measured in exactly the same unit as the rest of the tree: logical
//! and physical page accesses. The saving is structural — appending costs
//! one page write to the chain tail instead of a root-to-leaf descent plus
//! a leaf read-modify-write, and a flush writes each leaf once for many
//! messages instead of once per message.
//!
//! # Reads
//!
//! Point and range reads stay correct while messages are in flight:
//! [`BTree::get`], [`BTree::range_scan`] and [`BTree::multi_range_scan`]
//! overlay the buffered messages (newest per key) on the leaf contents —
//! puts interleave in key order, deletes suppress leaf entries. With no
//! pending messages the overlay machinery is completely bypassed, so the
//! unbuffered read path (and its frozen I/O ledger) is untouched.
//!
//! # Contract
//!
//! While buffering is on, writers must use the `buffered_*` entry points
//! (plain [`BTree::insert`]/[`BTree::delete`] would be ordered *before*
//! in-flight messages for the same key; both debug-assert an empty
//! buffer). [`BTree::set_buffered_writes`]`(false)` flushes everything
//! pending, after which the tree is byte-for-byte an ordinary B+-tree.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use peb_storage::{CrashPoint, PageId, PAGE_SIZE};

use crate::bulk::{MERGE_FILL, MERGE_REBUILD_RATIO};
use crate::multiscan::coalesce_intervals;
use crate::node;
use crate::tree::BTree;
use crate::value::RecordValue;

/// Message op: insert-or-replace the key's record.
pub const OP_PUT: u8 = 0;
/// Message op: remove the key.
pub const OP_DEL: u8 = 1;
/// Message op: a put that re-homes a record under a new key (the cheap
/// carrier of a sequence-value re-key; behaves exactly like [`OP_PUT`],
/// tallied separately in [`WriteStats::rekey_messages`]).
pub const OP_REKEY: u8 = 2;

/// Byte offset of a message page's entry count (`u16`).
const OFF_MSG_COUNT: usize = 0;
/// Byte offset of a message page's next-page link (`u32`, stored as
/// `pid + 1` so zero means "end of chain").
const OFF_MSG_NEXT: usize = 4;
/// First byte of a message page's entry array.
const MSG_HEADER: usize = 8;

/// Pages a single chain may grow to before the buffer overflows (spill or
/// flush). Sixteen 4 KB pages hold ~1200 moving-object messages — enough
/// to amortize a flush over a whole shard's leaf level (a flush that
/// touches every leaf once costs roughly the same no matter how many
/// messages it drains, so deeper chains buy a proportionally cheaper
/// per-message flush; past the point where a flush touches every leaf
/// anyway, deeper chains only add overlay-scan cost to reads).
const MAX_CHAIN_PAGES: usize = 16;

/// One buffered message, decoded.
#[derive(Clone)]
struct Msg<V> {
    key: u128,
    seq: u64,
    op: u8,
    /// `None` exactly when `op == OP_DEL`.
    val: Option<V>,
}

/// In-memory metadata of one sidecar message chain (the pages themselves
/// live in the buffer pool; the owning node stores the head pointer at
/// [`node::OFF_CHAIN`]).
#[derive(Clone, Copy)]
pub(crate) struct Chain {
    head: PageId,
    tail: PageId,
    /// Messages in the tail page (earlier pages are full).
    tail_count: usize,
    /// Pages in the chain.
    pages: usize,
}

/// The message-buffer half of a [`BTree`]: per-node chain metadata plus
/// the monotonic sequence counter that makes last-write-wins total.
#[derive(Default)]
pub(crate) struct MsgState {
    pub(crate) buffered: bool,
    pub(crate) chains: HashMap<PageId, Chain>,
    /// Buffered messages across all chains.
    pub(crate) pending: usize,
    /// Next message sequence number (never reset; survives rebuilds).
    pub(crate) seq: u64,
}

/// Deterministic counters of the buffered write path — the companion of
/// [`crate::ScanStats`] for the ingestion experiment. `leaf_pages_written`
/// is counted in **both** modes (every leaf-page write of insert, delete,
/// rebalancing, bulk loading and flushing), so a buffered and an
/// unbuffered run of the same workload can be compared write for write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Messages appended to a buffer chain (puts, deletes and re-keys).
    pub messages_buffered: u64,
    /// The subset of `messages_buffered` that were [`OP_REKEY`] puts.
    pub rekey_messages: u64,
    /// Full buffer flushes (every chain drained and applied to leaves).
    pub buffer_flushes: u64,
    /// Root-chain spills into per-child chains one level down.
    pub buffer_spills: u64,
    /// Leaf pages written, by any path (the per-upsert write
    /// amplification metric of the ingest benchmark).
    pub leaf_pages_written: u64,
}

impl WriteStats {
    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &WriteStats) -> WriteStats {
        WriteStats {
            messages_buffered: self.messages_buffered + other.messages_buffered,
            rekey_messages: self.rekey_messages + other.rekey_messages,
            buffer_flushes: self.buffer_flushes + other.buffer_flushes,
            buffer_spills: self.buffer_spills + other.buffer_spills,
            leaf_pages_written: self.leaf_pages_written + other.leaf_pages_written,
        }
    }
}

/// The tree-resident atomic half of [`WriteStats`] (snapshots take
/// `&self`, like [`crate::multiscan::ScanCounters`]).
#[derive(Default)]
pub(crate) struct WriteCounters {
    messages: AtomicU64,
    rekeys: AtomicU64,
    flushes: AtomicU64,
    spills: AtomicU64,
    leaf_writes: AtomicU64,
}

impl WriteCounters {
    pub(crate) fn bump_msg(&self, op: u8) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        if op == OP_REKEY {
            self.rekeys.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn bump_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_spill(&self) {
        self.spills.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_leaf_writes(&self, n: u64) {
        self.leaf_writes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> WriteStats {
        WriteStats {
            messages_buffered: self.messages.load(Ordering::Relaxed),
            rekey_messages: self.rekeys.load(Ordering::Relaxed),
            buffer_flushes: self.flushes.load(Ordering::Relaxed),
            buffer_spills: self.spills.load(Ordering::Relaxed),
            leaf_pages_written: self.leaf_writes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn restore(&self, s: WriteStats) {
        self.messages.store(s.messages_buffered, Ordering::Relaxed);
        self.rekeys.store(s.rekey_messages, Ordering::Relaxed);
        self.flushes.store(s.buffer_flushes, Ordering::Relaxed);
        self.spills.store(s.buffer_spills, Ordering::Relaxed);
        self.leaf_writes.store(s.leaf_pages_written, Ordering::Relaxed);
    }
}

impl<V: RecordValue> BTree<V> {
    /// Bytes of one encoded message: key, sequence number, op tag, value.
    const fn msg_stride() -> usize {
        16 + 8 + 1 + V::SIZE
    }

    /// Messages one 4 KB chain page holds.
    const fn chain_page_cap() -> usize {
        (PAGE_SIZE - MSG_HEADER) / Self::msg_stride()
    }

    // ---- knob and ledger ---------------------------------------------------

    /// Turn buffered writes on or off. Turning them **off** first flushes
    /// every pending message, so the tree afterwards is an ordinary
    /// B+-tree with nothing in flight. Turning them on costs nothing
    /// until the first `buffered_*` call.
    pub fn set_buffered_writes(&mut self, on: bool) {
        if on {
            assert!(!self.olc_enabled(), "buffered writes and OLC writes are mutually exclusive");
        }
        if !on {
            self.flush_messages();
        }
        self.msgs.buffered = on;
    }

    /// Whether `buffered_*` writes append messages instead of descending.
    pub fn buffered_writes(&self) -> bool {
        self.msgs.buffered
    }

    /// Buffered messages currently awaiting a flush.
    pub fn pending_messages(&self) -> usize {
        self.msgs.pending
    }

    /// Deterministic write-path counters (see [`WriteStats`]).
    pub fn write_stats(&self) -> WriteStats {
        self.writes.snapshot()
    }

    /// Zero the write-path counters (measurement windows).
    pub fn reset_write_stats(&self) {
        self.writes.restore(WriteStats::default());
    }

    /// Overwrite the write-path counters — the carry half of the
    /// ledger-outlives-maintenance contract, like
    /// [`BTree::restore_scan_stats`].
    pub fn restore_write_stats(&self, s: WriteStats) {
        self.writes.restore(s);
    }

    // ---- buffered write entry points ---------------------------------------

    /// Insert-or-replace through the message buffer: one page write to the
    /// root chain's tail instead of a root-to-leaf descent. Falls through
    /// to [`BTree::insert`] when buffering is off.
    pub fn buffered_insert(&mut self, key: u128, value: V) {
        if !self.msgs.buffered {
            self.insert(key, value);
            return;
        }
        self.append_message(key, OP_PUT, Some(value));
    }

    /// Delete through the message buffer (a tombstone message). Falls
    /// through to [`BTree::delete`] when buffering is off.
    pub fn buffered_delete(&mut self, key: u128) {
        if !self.msgs.buffered {
            self.delete(key);
            return;
        }
        self.append_message(key, OP_DEL, None);
    }

    /// Move a record from `old_key` to `new_key` through the message
    /// buffer: a tombstone plus an [`OP_REKEY`] put, appended **as one
    /// batch** — one page touch instead of a delete descent plus an
    /// insert descent. Falls through to delete + insert when buffering is
    /// off.
    pub fn buffered_rekey(&mut self, old_key: u128, new_key: u128, value: V) {
        if !self.msgs.buffered {
            self.delete(old_key);
            self.insert(new_key, value);
            return;
        }
        self.append_message_pair(old_key, (new_key, OP_REKEY, value));
    }

    /// Move-and-replace through the message buffer: the tombstone for
    /// `old_key` and the put for `key` land in **one** chain append — one
    /// page touch for the whole upsert, which is where the buffered
    /// ingestion path earns its throughput (the index's single-upsert
    /// fast path calls this whenever an object stays in its shard). Falls
    /// through to delete + insert when buffering is off.
    pub fn buffered_upsert(&mut self, old_key: u128, key: u128, value: V) {
        if !self.msgs.buffered {
            self.delete(old_key);
            self.insert(key, value);
            return;
        }
        self.append_message_pair(old_key, (key, OP_PUT, value));
    }

    /// Insert-or-replace a whole sorted run through the message buffer in
    /// as few page touches as the chain's tail pages allow (the buffered
    /// counterpart of [`BTree::merge_sorted`]'s batched entry). Falls
    /// through to `merge_sorted` when buffering is off.
    pub fn buffered_insert_batch(&mut self, entries: Vec<(u128, V)>) {
        if !self.msgs.buffered {
            self.merge_sorted(entries);
            return;
        }
        self.maybe_overflow();
        let root = self.root();
        let msgs: Vec<Msg<V>> = entries
            .into_iter()
            .map(|(key, v)| {
                let seq = self.msgs.seq;
                self.msgs.seq += 1;
                self.writes.bump_msg(OP_PUT);
                Msg { key, seq, op: OP_PUT, val: Some(v) }
            })
            .collect();
        self.chain_append_batch(root, &msgs);
    }

    fn append_message(&mut self, key: u128, op: u8, val: Option<V>) {
        self.maybe_overflow();
        let seq = self.msgs.seq;
        self.msgs.seq += 1;
        self.writes.bump_msg(op);
        let root = self.root();
        self.chain_append_batch(root, &[Msg { key, seq, op, val }]);
    }

    /// Append a tombstone and a put with consecutive sequence numbers in
    /// one chain write (the tombstone first, so last-write-wins keeps the
    /// put even when both name the same key).
    fn append_message_pair(&mut self, del_key: u128, put: (u128, u8, V)) {
        self.maybe_overflow();
        let seq = self.msgs.seq;
        self.msgs.seq += 2;
        self.writes.bump_msg(OP_DEL);
        self.writes.bump_msg(put.1);
        let root = self.root();
        self.chain_append_batch(
            root,
            &[
                Msg { key: del_key, seq, op: OP_DEL, val: None },
                Msg { key: put.0, seq: seq + 1, op: put.1, val: Some(put.2) },
            ],
        );
    }

    // ---- chain plumbing ----------------------------------------------------

    /// Append messages to `owner`'s chain, filling the tail page and
    /// growing the chain as needed. One page write per (partially) filled
    /// page, not per message.
    fn chain_append_batch(&mut self, owner: PageId, msgs: &[Msg<V>]) {
        let cap = Self::chain_page_cap();
        let stride = Self::msg_stride();
        let mut i = 0usize;
        while i < msgs.len() {
            let room = match self.msgs.chains.get(&owner) {
                Some(c) => cap - c.tail_count,
                None => 0,
            };
            if room == 0 {
                self.chain_new_tail(owner);
                continue;
            }
            let take = room.min(msgs.len() - i);
            let (tail, start) = {
                let c = &self.msgs.chains[&owner];
                (c.tail, c.tail_count)
            };
            self.pool.write_chain(tail, |p| {
                for (j, m) in msgs[i..i + take].iter().enumerate() {
                    let off = MSG_HEADER + (start + j) * stride;
                    p.put_u128(off, m.key);
                    p.put_u64(off + 16, m.seq);
                    p.put_u8(off + 24, m.op);
                    if let Some(v) = &m.val {
                        v.write(p.bytes_mut(off + 25, V::SIZE));
                    }
                }
                p.put_u16(OFF_MSG_COUNT, (start + take) as u16);
            });
            let c = self.msgs.chains.get_mut(&owner).expect("chain exists");
            c.tail_count += take;
            i += take;
        }
        self.msgs.pending += msgs.len();
    }

    /// Start `owner`'s chain, or link a fresh tail page onto it.
    fn chain_new_tail(&mut self, owner: PageId) {
        let pid = self.pool.allocate();
        self.add_total_pages(1);
        self.pool.write_chain(pid, |p| {
            p.put_u16(OFF_MSG_COUNT, 0);
            p.put_u32(OFF_MSG_NEXT, 0);
        });
        if let std::collections::hash_map::Entry::Vacant(e) = self.msgs.chains.entry(owner) {
            e.insert(Chain { head: pid, tail: pid, tail_count: 0, pages: 1 });
            self.pool.write(owner, |p| node::set_chain_head(p, pid));
        } else {
            let prev = {
                let c = self.msgs.chains.get_mut(&owner).expect("checked");
                let prev = c.tail;
                c.tail = pid;
                c.tail_count = 0;
                c.pages += 1;
                prev
            };
            self.pool.write_chain(prev, |p| p.put_u32(OFF_MSG_NEXT, pid.0 + 1));
        }
    }

    /// Decode every message of the chain starting at `head` into `out`.
    fn read_chain_msgs(&self, head: PageId, out: &mut Vec<Msg<V>>) {
        let stride = Self::msg_stride();
        let mut pid = head;
        while pid.is_valid() {
            let (mut msgs, next) = self.pool.read(pid, |p| {
                let n = p.get_u16(OFF_MSG_COUNT) as usize;
                let mut v: Vec<Msg<V>> = Vec::with_capacity(n);
                for i in 0..n {
                    let off = MSG_HEADER + i * stride;
                    let op = p.get_u8(off + 24);
                    v.push(Msg {
                        key: p.get_u128(off),
                        seq: p.get_u64(off + 16),
                        op,
                        val: if op == OP_DEL {
                            None
                        } else {
                            Some(V::read(p.bytes(off + 25, V::SIZE)))
                        },
                    });
                }
                let raw = p.get_u32(OFF_MSG_NEXT);
                (v, if raw == 0 { PageId::INVALID } else { PageId(raw - 1) })
            });
            out.append(&mut msgs);
            pid = next;
        }
    }

    /// Chain owners in deterministic (page id) order — `HashMap` iteration
    /// order must never leak into the I/O ledger.
    fn chain_owners(&self) -> Vec<PageId> {
        let mut owners: Vec<PageId> = self.msgs.chains.keys().copied().collect();
        owners.sort_unstable_by_key(|p| p.0);
        owners
    }

    // ---- overflow: spill down, then flush ----------------------------------

    /// Called before each append: when the root chain is at capacity,
    /// either spill it one level down (tall trees) or flush everything.
    fn maybe_overflow(&mut self) {
        let cap = Self::chain_page_cap();
        let root_full = self
            .msgs
            .chains
            .get(&self.root())
            .is_some_and(|c| c.pages >= MAX_CHAIN_PAGES && c.tail_count == cap);
        if !root_full {
            return;
        }
        // Spills and flushes are the buffer's bulk page traffic: attribute
        // every disk write inside to the chain-spill crash-point category
        // so the kill-point matrix can target this region specifically.
        let pool = Arc::clone(&self.pool);
        pool.with_crash_scope(CrashPoint::ChainSpill, || {
            if self.height() >= 3 {
                self.spill_root_chain();
                let child_over = self
                    .msgs
                    .chains
                    .iter()
                    .any(|(pid, c)| *pid != self.root() && c.pages > MAX_CHAIN_PAGES);
                if child_over {
                    self.flush_messages();
                }
            } else {
                self.flush_messages();
            }
            // The overflow is one unit of structural work: force its log
            // records durable at the boundary so the unforced-log window
            // stays bounded. The forced log pages are the spill's own
            // crash-injection points (an uncommitted tail rolls back to
            // the last commit on recovery). No-op with durability off.
            pool.wal_force();
        });
    }

    /// Push the root chain's messages into per-child chains of the root's
    /// children, routed by the root's separators. Messages only ever move
    /// downward, so sequence-number order is preserved across levels.
    fn spill_root_chain(&mut self) {
        let Some(chain) = self.msgs.chains.remove(&self.root()) else { return };
        let mut msgs: Vec<Msg<V>> = Vec::new();
        self.read_chain_msgs(chain.head, &mut msgs);
        self.msgs.pending -= msgs.len();
        self.add_total_pages(-(chain.pages as isize));
        // The chain pages leak on the simulated disk like merged tree
        // pages do; clear the on-page head so the format stays honest.
        let root = self.root();
        self.pool.write(root, |p| node::set_chain_head(p, PageId::INVALID));

        // Route every message through the root page once.
        let groups: BTreeMap<u32, Vec<Msg<V>>> = self.pool.read(root, |p| {
            let mut g: BTreeMap<u32, Vec<Msg<V>>> = BTreeMap::new();
            for m in msgs.drain(..) {
                let child = node::child_at(p, node::branch_child_index(p, m.key));
                g.entry(child.0).or_default().push(m);
            }
            g
        });
        self.writes.bump_spill();
        for (child, group) in groups {
            self.chain_append_batch(PageId(child), &group);
        }
    }

    /// Drain **every** chain, compact to the newest message per key, and
    /// apply the residue to the leaves — leaf-batched when it is small
    /// relative to the tree, otherwise by the same sequential-scan,
    /// two-way-merge, bulk-rebuild strategy as [`BTree::merge_sorted`],
    /// honoring tombstones. A no-op with nothing pending.
    pub fn flush_messages(&mut self) {
        if self.msgs.pending == 0 {
            return;
        }
        let mut all: Vec<Msg<V>> = Vec::with_capacity(self.msgs.pending);
        for owner in self.chain_owners() {
            let chain = self.msgs.chains.remove(&owner).expect("listed owner");
            self.read_chain_msgs(chain.head, &mut all);
            self.add_total_pages(-(chain.pages as isize));
            self.pool.write(owner, |p| node::set_chain_head(p, PageId::INVALID));
        }
        self.msgs.pending = 0;
        self.writes.bump_flush();

        // Last write wins per key; BTreeMap gives the sorted order the
        // merge needs.
        let mut best: BTreeMap<u128, Msg<V>> = BTreeMap::new();
        for m in all {
            match best.get(&m.key) {
                Some(b) if b.seq >= m.seq => {}
                _ => {
                    best.insert(m.key, m);
                }
            }
        }

        if best.len() * MERGE_REBUILD_RATIO < self.len() {
            // Small residue: apply leaf by leaf — one write per touched
            // leaf — instead of one descent-and-write per message.
            self.apply_messages_by_leaf(best.into_values().collect());
            return;
        }

        // Large residue: one sequential leaf scan, two-way merge with the
        // messages (puts replace, tombstones drop), bottom-up rebuild.
        let old = self.range(0, u128::MAX);
        let mut merged: Vec<(u128, V)> = Vec::with_capacity(old.len() + best.len());
        let mut it = best.into_iter().peekable();
        for (k, v) in old {
            while it.peek().is_some_and(|(mk, _)| *mk < k) {
                let (mk, m) = it.next().expect("peeked");
                if m.op != OP_DEL {
                    merged.push((mk, m.val.expect("puts carry a value")));
                }
            }
            if it.peek().is_some_and(|(mk, _)| *mk == k) {
                let (mk, m) = it.next().expect("peeked");
                if m.op != OP_DEL {
                    merged.push((mk, m.val.expect("puts carry a value")));
                }
            } else {
                merged.push((k, v));
            }
        }
        for (mk, m) in it {
            if m.op != OP_DEL {
                merged.push((mk, m.val.expect("puts carry a value")));
            }
        }

        let scans = self.scan_stats();
        let prior_writes = self.write_stats();
        let buffered = self.msgs.buffered;
        let seq = self.msgs.seq;
        let tree_id = self.tree_id;
        *self = BTree::bulk_load(Arc::clone(&self.pool), merged, MERGE_FILL);
        self.restore_scan_stats(scans);
        // The rebuild's own leaf writes are part of this flush's cost.
        self.restore_write_stats(prior_writes.merged(&self.write_stats()));
        self.msgs.buffered = buffered;
        self.msgs.seq = seq;
        // The rebuild is a new tree value with a new root; it keeps the
        // old WAL identity, and recovery must learn the root moved.
        self.tree_id = tree_id;
        self.log_meta();
    }

    /// Locked root-to-leaf descent for `key`, also returning the leaf's
    /// **fence key** — the exclusive upper bound of keys it can hold
    /// (`u128::MAX` when the leaf tops the key space). The fence is what
    /// lets the flush assign a whole run of sorted messages to one leaf.
    fn descend_to_leaf_locked(&self, key: u128) -> (PageId, u128) {
        let mut pid = self.root();
        let mut fence = u128::MAX;
        for _ in 1..self.height() {
            let (child, f) = self.pool.read(pid, |p| {
                let j = node::branch_child_index(p, key);
                let f = if j < node::count(p) { node::branch_key(p, j) } else { u128::MAX };
                (node::child_at(p, j), f)
            });
            fence = fence.min(f);
            pid = child;
        }
        (pid, fence)
    }

    /// The leaf-batched half of a flush: walk the compacted messages in
    /// key order, group every run that routes to the same leaf, and apply
    /// each group with **one** read-merge-write of that leaf. This is the
    /// write saving the buffer exists for — `m` messages into one leaf
    /// cost one leaf write, not `m`. A group whose merged contents would
    /// overflow the leaf (or underflow below the rebalancing minimum)
    /// falls back to ordinary per-key inserts/deletes, which split and
    /// rebalance as usual.
    fn apply_messages_by_leaf(&mut self, msgs: Vec<Msg<V>>) {
        let vsize = V::SIZE;
        let mut i = 0usize;
        while i < msgs.len() {
            let (leaf, fence) = self.descend_to_leaf_locked(msgs[i].key);
            let mut j = i + 1;
            while j < msgs.len() && msgs[j].key < fence {
                j += 1;
            }
            let group = &msgs[i..j];

            let entries: Vec<(u128, V)> = self.pool.read(leaf, |p| {
                (0..node::count(p))
                    .map(|s| {
                        (
                            node::leaf_key(p, s, vsize),
                            V::read(p.bytes(node::leaf_entry_off(s, vsize) + 16, vsize)),
                        )
                    })
                    .collect()
            });
            // Two-way merge: messages are sorted, unique and newer.
            let mut merged: Vec<(u128, &V)> = Vec::with_capacity(entries.len() + group.len());
            let mut g = group.iter().peekable();
            for (k, v) in &entries {
                while g.peek().is_some_and(|m| m.key < *k) {
                    let m = g.next().expect("peeked");
                    if m.op != OP_DEL {
                        merged.push((m.key, m.val.as_ref().expect("puts carry a value")));
                    }
                }
                if g.peek().is_some_and(|m| m.key == *k) {
                    let m = g.next().expect("peeked");
                    if m.op != OP_DEL {
                        merged.push((m.key, m.val.as_ref().expect("puts carry a value")));
                    }
                } else {
                    merged.push((*k, v));
                }
            }
            for m in g {
                if m.op != OP_DEL {
                    merged.push((m.key, m.val.as_ref().expect("puts carry a value")));
                }
            }

            // Every group key routes to this leaf, so an in-place rewrite
            // preserves separators and the sibling chain as long as the
            // occupancy bounds hold.
            let fits = merged.len() <= Self::leaf_cap()
                && (self.height() == 1 || merged.len() >= Self::leaf_min());
            if fits {
                self.pool.write(leaf, |p| {
                    for (s, (k, v)) in merged.iter().enumerate() {
                        let off = node::leaf_entry_off(s, vsize);
                        p.put_u128(off, *k);
                        v.write(p.bytes_mut(off + 16, vsize));
                    }
                    node::set_count(p, merged.len());
                });
                self.writes.bump_leaf_writes(1);
                self.set_len(self.len() + merged.len() - entries.len());
            } else {
                drop(merged);
                for m in group.iter().cloned() {
                    if m.op == OP_DEL {
                        self.delete(m.key);
                    } else {
                        self.insert(m.key, m.val.expect("puts carry a value"));
                    }
                }
            }
            i = j;
        }
    }

    // ---- recovery ----------------------------------------------------------

    /// Rebuild the in-memory chain registry from on-page chain heads
    /// (recovery: the pages came back byte-exact, only the in-memory
    /// metadata died with the process). Each `(owner, head)` pair names a
    /// node whose [`node::chain_head`] slot was found valid; the chain is
    /// walked once through the pool to restore head/tail/page counts, the
    /// pending-message total, and the sequence counter — advanced past
    /// the newest message seen, so post-recovery messages keep winning
    /// last-write-wins.
    pub(crate) fn reattach_chains(&mut self, owners: &[(PageId, PageId)]) {
        for &(owner, head) in owners {
            let mut pages = 0usize;
            let mut tail = head;
            let mut tail_count = 0usize;
            let mut pid = head;
            while pid.is_valid() {
                let (n, next) = self.pool.read(pid, |p| {
                    let raw = p.get_u32(OFF_MSG_NEXT);
                    (
                        p.get_u16(OFF_MSG_COUNT) as usize,
                        if raw == 0 { PageId::INVALID } else { PageId(raw - 1) },
                    )
                });
                pages += 1;
                tail = pid;
                tail_count = n;
                self.msgs.pending += n;
                pid = next;
            }
            self.add_total_pages(pages as isize);
            self.msgs.chains.insert(owner, Chain { head, tail, tail_count, pages });
            let mut msgs: Vec<Msg<V>> = Vec::new();
            self.read_chain_msgs(head, &mut msgs);
            for m in &msgs {
                self.msgs.seq = self.msgs.seq.max(m.seq + 1);
            }
        }
        if self.msgs.pending > 0 {
            self.msgs.buffered = true;
        }
    }

    // ---- read-side overlay -------------------------------------------------

    /// The newest in-flight message per key within the union of `ranges`:
    /// `Some(value)` for a put, `None` for a tombstone. Reads every chain
    /// page through the pool (honest I/O); callers gate on
    /// [`BTree::pending_messages`] so the unbuffered path never pays this.
    pub(crate) fn collect_overlay(&self, ranges: &[(u128, u128)]) -> BTreeMap<u128, Option<V>> {
        let runs = coalesce_intervals(ranges);
        let mut best: BTreeMap<u128, (u64, Option<V>)> = BTreeMap::new();
        let mut msgs: Vec<Msg<V>> = Vec::new();
        for owner in self.chain_owners() {
            self.read_chain_msgs(self.msgs.chains[&owner].head, &mut msgs);
        }
        for m in msgs {
            // First run whose end reaches the key, then check its start.
            let i = runs.partition_point(|&(_, hi)| hi < m.key);
            if i == runs.len() || runs[i].0 > m.key {
                continue;
            }
            match best.get(&m.key) {
                Some((seq, _)) if *seq >= m.seq => {}
                _ => {
                    best.insert(m.key, (m.seq, m.val));
                }
            }
        }
        best.into_iter().map(|(k, (_, v))| (k, v)).collect()
    }

    /// Merge an overlay into an ordered leaf-scan emission: overlay puts
    /// interleave by key, overlay entries matching a leaf key win (the
    /// message is newer by construction), tombstones suppress. Returns
    /// whether the merged scan ran to completion.
    pub(crate) fn scan_with_overlay(
        &self,
        overlay: BTreeMap<u128, Option<V>>,
        inner: impl FnOnce(&mut dyn FnMut(u128, V) -> bool) -> bool,
        visit: &mut dyn FnMut(u128, V) -> bool,
    ) -> bool {
        let mut ov = overlay.into_iter().peekable();
        let mut stopped = false;
        let completed = inner(&mut |k: u128, v: V| {
            while ov.peek().is_some_and(|(ok, _)| *ok < k) {
                let (okk, mv) = ov.next().expect("peeked");
                if let Some(val) = mv {
                    if !visit(okk, val) {
                        stopped = true;
                        return false;
                    }
                }
            }
            if ov.peek().is_some_and(|(ok, _)| *ok == k) {
                let (okk, mv) = ov.next().expect("peeked");
                return match mv {
                    Some(val) => {
                        if visit(okk, val) {
                            true
                        } else {
                            stopped = true;
                            false
                        }
                    }
                    None => true, // tombstoned: skip the leaf entry
                };
            }
            if visit(k, v) {
                true
            } else {
                stopped = true;
                false
            }
        });
        if stopped {
            return false;
        }
        if !completed {
            return false;
        }
        for (k, mv) in ov {
            if let Some(val) = mv {
                if !visit(k, val) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_storage::BufferPool;
    use std::collections::BTreeMap as Model;

    fn tree() -> BTree<u64> {
        BTree::new(Arc::new(BufferPool::new(64)))
    }

    #[test]
    fn buffered_ops_match_model_after_flush() {
        let mut t = tree();
        t.set_buffered_writes(true);
        let mut model: Model<u128, u64> = Model::new();
        // A deterministic interleaving of puts, overwrites and deletes.
        for i in 0..5_000u128 {
            let k = (i * 2_654_435_761) % 2_048;
            if i % 5 == 4 {
                t.buffered_delete(k);
                model.remove(&k);
            } else {
                t.buffered_insert(k, i as u64);
                model.insert(k, i as u64);
            }
        }
        t.set_buffered_writes(false);
        assert_eq!(t.pending_messages(), 0, "off flushes everything");
        t.validate().expect("valid after flush");
        let got: Model<u128, u64> = t.range(0, u128::MAX).into_iter().collect();
        assert_eq!(got, model);
        let s = t.write_stats();
        assert_eq!(s.messages_buffered, 5_000);
        assert!(s.buffer_flushes >= 1, "the workload overflowed the buffer");
    }

    #[test]
    fn reads_overlay_pending_messages() {
        let mut t = tree();
        for k in 0..500u128 {
            t.insert(k * 2, 1);
        }
        t.set_buffered_writes(true);
        t.buffered_insert(11, 7); // new key between leaf keys
        t.buffered_insert(20, 8); // overwrites a leaf entry
        t.buffered_delete(40); // tombstones a leaf entry
        assert!(t.pending_messages() > 0, "nothing flushed yet");
        // Point lookups see messages first.
        assert_eq!(t.get(11), Some(7));
        assert_eq!(t.get(20), Some(8));
        assert_eq!(t.get(40), None);
        assert_eq!(t.get(42), Some(1), "untouched key");
        // Range scan interleaves, replaces and suppresses.
        let got: Vec<(u128, u64)> = t.range(10, 44);
        let want: Vec<(u128, u64)> = vec![
            (10, 1),
            (11, 7),
            (12, 1),
            (14, 1),
            (16, 1),
            (18, 1),
            (20, 8),
            (22, 1),
            (24, 1),
            (26, 1),
            (28, 1),
            (30, 1),
            (32, 1),
            (34, 1),
            (36, 1),
            (38, 1),
            (42, 1),
            (44, 1),
        ];
        assert_eq!(got, want);
        // Fused multi-interval scans see the same overlay.
        let mut keys = Vec::new();
        t.multi_range_scan(&[(38, 44), (10, 12)], |k, _| {
            keys.push(k);
            true
        });
        assert_eq!(keys, vec![10, 11, 12, 38, 42, 44]);
        // Early exit propagates through the overlay merge.
        let mut seen = 0;
        assert!(!t.range_scan(0, u128::MAX, |_, _| {
            seen += 1;
            seen < 3
        }));
        assert_eq!(seen, 3);
    }

    #[test]
    fn buffered_ingest_writes_fewer_leaf_pages() {
        let n = 6_000u128;
        let build =
            || BTree::bulk_load(Arc::new(BufferPool::new(64)), (0..n).map(|k| (k * 2, 0u64)), 1.0);
        let workload: Vec<u128> = (0..n).map(|i| (i * 2_654_435_761) % (n * 2)).collect();

        let mut plain = build();
        plain.reset_write_stats();
        for &k in &workload {
            plain.insert(k, 1);
        }
        let plain_writes = plain.write_stats().leaf_pages_written;

        let mut buffered = build();
        buffered.set_buffered_writes(true);
        buffered.reset_write_stats();
        for &k in &workload {
            buffered.buffered_insert(k, 1);
        }
        buffered.set_buffered_writes(false);
        let buf_writes = buffered.write_stats().leaf_pages_written;

        assert_eq!(plain.range(0, u128::MAX), buffered.range(0, u128::MAX), "same final contents");
        assert!(
            buf_writes * 2 <= plain_writes,
            "buffered {buf_writes} leaf writes vs plain {plain_writes}: batching must at least halve them"
        );
    }

    #[test]
    fn tall_trees_spill_before_flushing() {
        // Enough keys for height >= 3 so the root chain distributes into
        // child chains before any full flush.
        let n = 40_000u128;
        let mut t =
            BTree::bulk_load(Arc::new(BufferPool::new(256)), (0..n).map(|k| (k * 2, 0u64)), 1.0);
        assert!(t.height() >= 3, "height {}", t.height());
        t.set_buffered_writes(true);
        for i in 0..4_000u128 {
            t.buffered_insert((i * 40_503) % (n * 2), 9);
        }
        let mid = t.write_stats();
        assert!(mid.buffer_spills >= 1, "root chain must have spilled: {mid:?}");
        t.set_buffered_writes(false);
        t.validate().expect("valid after spills and final flush");
    }

    #[test]
    fn rekey_moves_the_record() {
        let mut t = tree();
        for k in 0..1_000u128 {
            t.insert(k, k as u64);
        }
        t.set_buffered_writes(true);
        let v = t.get(77).unwrap();
        t.buffered_rekey(77, 5_077, v);
        assert_eq!(t.get(77), None, "old home tombstoned while pending");
        assert_eq!(t.get(5_077), Some(77), "new home visible while pending");
        t.flush_messages();
        assert_eq!(t.get(77), None);
        assert_eq!(t.get(5_077), Some(77));
        assert_eq!(t.write_stats().rekey_messages, 1);
        t.validate().expect("valid after re-key flush");
    }

    #[test]
    fn merge_sorted_flushes_pending_first() {
        let mut t = tree();
        t.set_buffered_writes(true);
        t.buffered_insert(10, 1);
        t.buffered_delete(10);
        t.buffered_insert(12, 2);
        // The merge must order its batch after the in-flight messages.
        t.merge_sorted(vec![(10u128, 9u64), (11, 9)]);
        assert_eq!(t.pending_messages(), 0);
        assert_eq!(t.get(10), Some(9), "batch lands after the tombstone");
        assert_eq!(t.get(11), Some(9));
        assert_eq!(t.get(12), Some(2));
        assert!(t.buffered_writes(), "knob survives the merge rebuild");
    }

    #[test]
    fn unbuffered_trees_never_touch_the_message_path() {
        let mut t = tree();
        for k in 0..3_000u128 {
            t.insert(k, k as u64);
        }
        assert_eq!(t.pending_messages(), 0);
        assert_eq!(t.write_stats().messages_buffered, 0);
        // buffered_* entry points degrade to the plain ones.
        t.buffered_insert(9_001, 5);
        t.buffered_delete(100);
        assert_eq!(t.pending_messages(), 0);
        assert_eq!(t.get(9_001), Some(5));
        assert_eq!(t.get(100), None);
        t.validate().expect("plain ops through the buffered API");
    }
}
