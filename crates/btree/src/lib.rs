//! A disk-based B+-tree over `u128` keys.
//!
//! This is the base structure shared by the Bx-tree and the PEB-tree: "the
//! PEB-tree is based on the widely implemented B+-tree, which promises easy
//! integration into existing commercial database systems" (Sec 1). Every
//! node is one 4 KB page accessed through the [`peb_storage::BufferPool`],
//! so all tree operations are measured in exactly the unit the paper
//! reports: physical page I/Os behind an LRU buffer.
//!
//! Design points:
//!
//! * **Unique keys.** Index keys embed the user id in their low bits (see
//!   `peb-bx`/`pebtree` key layouts), so the tree never stores duplicate
//!   keys and deletion is an exact-key operation.
//! * **Fixed-size records.** Leaf values implement [`RecordValue`] with a
//!   compile-time size; a leaf holds `⌊(4096 − 16) / (16 + SIZE)⌋` entries.
//! * **Full delete rebalancing.** Underflowing nodes borrow from or merge
//!   with siblings, and the root collapses when it loses its last
//!   separator, as in textbook B+-trees.
//! * **Sibling-linked leaves.** Range scans descend once and then walk the
//!   leaf chain, which is what makes the Bx/PEB interval probes cheap.
//! * **Lock-free optimistic reads.** [`BTree::get`] and
//!   [`BTree::range_scan`] traverse via the pool's versioned page
//!   snapshots (optimistic lock coupling: validate each parent's version
//!   after following its child pointer, restart from the root on a
//!   mismatch) and fall back to the locked read path per page or — after
//!   bounded restarts — wholesale; see the [`tree`] module docs.
//! * **Optional B-epsilon-style write buffering.** With
//!   [`BTree::set_buffered_writes`] on, upserts and deletes append
//!   messages to sidecar chain pages at the root and flush downward in
//!   sorted batches; reads overlay in-flight messages so results are
//!   unchanged. Off (the default) the write path is untouched; see the
//!   [`msg`] module docs.
//! * **Optional optimistic-lock-coupling writes.** With
//!   [`BTree::set_olc_writes`] on, [`BTree::olc_insert`] and
//!   [`BTree::olc_delete`] run through `&self` under per-page latches
//!   with version validation, so writers overlap optimistic readers
//!   instead of excluding them; structural modifications stay
//!   reader-safe purely through publish ordering. Off (the default)
//!   nothing changes; see the [`olc`] module docs.

#![warn(missing_docs)]

pub mod bulk;
pub mod msg;
pub mod multiscan;
pub mod node;
pub mod olc;
pub mod tree;
pub mod value;

pub use msg::WriteStats;
pub use multiscan::{coalesce_intervals, ScanStats, ScanTermination};
pub use olc::{OlcStats, OLC_WRITE_RESTARTS};
pub use tree::{BTree, TreeStats, OPT_MAX_RESTARTS};
pub use value::RecordValue;
