//! B+-tree operations: search, insert with split propagation, delete with
//! borrow/merge rebalancing, and sibling-chain range scans.
//!
//! # Optimistic read path
//!
//! [`BTree::get`] and [`BTree::range_scan`] descend the tree through the
//! buffer pool's lock-free versioned reads
//! ([`BufferPool::read_versioned`]) in the style of optimistic lock
//! coupling: each page is copied out under no lock with its publication
//! version validated around the copy, and after following a child pointer
//! the parent's version is re-checked ([`BufferPool::read_version`]) so a
//! page that changed underneath the descent restarts it from the root.
//! Restarts are bounded ([`OPT_MAX_RESTARTS`]); pages that are not
//! published lock-free (cold pages, mirror-slot collisions) are read
//! through the ordinary locked path *within* the descent, which keeps the
//! per-page I/O accounting identical to a fully locked traversal. The
//! write path ([`BTree::insert`], [`BTree::delete`], bulk loading) is
//! unchanged and locked; it requires `&mut self`, so traversals racing a
//! *tree* writer are excluded by Rust's borrow rules — the version
//! protocol defends against the page-level churn (evictions, reloads,
//! cross-tree pool traffic) that shared-pool concurrency can cause.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use peb_common::Deadline;
use peb_storage::{BufferPool, IoFault, OptimisticRead, Page, PageId, PageSnapshot};

use crate::msg::{MsgState, WriteCounters};
use crate::multiscan::{coalesce_intervals, ScanCounters, ScanStats, ScanTermination};
use crate::node::{self, branch_capacity, leaf_capacity, HEADER};
use crate::olc::OlcCounters;
use crate::value::RecordValue;

/// Bound on root-restarts of an optimistic descent before it falls back
/// to the fully locked path. Conflicts need a racing page writer, so on a
/// quiesced tree the first attempt always succeeds; under churn the bound
/// keeps the read path from livelocking against a steady writer.
pub const OPT_MAX_RESTARTS: usize = 3;

/// Signal that an optimistic descent observed a version conflict and must
/// restart from the root (internal to the read path).
pub(crate) struct Restart;

/// One cached level of a fused scan's descent path: a versioned snapshot
/// of the branch page last consulted at this depth. Reused by the next
/// re-route while [`BufferPool::snapshot_valid`] holds (see
/// [`BTree::multi_range_scan`]); re-read through the pool otherwise.
#[derive(Default)]
struct PathLevel {
    snap: PageSnapshot,
    /// Whether `snap` has ever been filled this scan.
    filled: bool,
}

/// A disk-based B+-tree mapping unique `u128` keys to fixed-size records.
pub struct BTree<V: RecordValue> {
    pub(crate) pool: Arc<BufferPool>,
    /// `(root page id << 32) | height`, packed so one atomic load yields a
    /// *consistent pair*: root growth and root collapse change both, and a
    /// concurrent traversal that read them separately could pair a new
    /// root with an old height. Plain loads/stores under `&mut self`;
    /// acquire/release once the OLC write path shares the tree.
    top: AtomicU64,
    /// Stored entries. Relaxed: a statistic, not a routing input.
    len: AtomicUsize,
    leaf_pages: AtomicUsize,
    total_pages: AtomicUsize,
    /// Deterministic scan-path counters (descents, cached branch pages).
    scans: ScanCounters,
    /// Deterministic write-path counters (messages, flushes, leaf writes).
    pub(crate) writes: WriteCounters,
    /// B-epsilon message-buffer state (see the [`crate::msg`] module).
    pub(crate) msgs: MsgState,
    /// Identity of this tree in the write-ahead log (`u32::MAX` =
    /// unregistered: root changes are not logged). Set by the index layer
    /// when durability is on; survives wholesale rebuilds
    /// ([`BTree::bulk_load`]-based merges, flushes) via
    /// [`BTree::set_tree_id`].
    pub(crate) tree_id: u32,
    /// Whether the optimistic-lock-coupling write path is active
    /// ([`BTree::set_olc_writes`]). Flips reader semantics to *strict*
    /// validation: an unpublished page aborts an optimistic descent
    /// instead of being read through the locked path, because with
    /// concurrent writers a locked read mid-descent has no version to
    /// validate the route against.
    pub(crate) olc: AtomicBool,
    /// Contention counters of the OLC paths ([`BTree::olc_stats`]).
    pub(crate) olc_stats: OlcCounters,
    /// Writer drain for terminal fallbacks. OLC writers hold the shared
    /// side for the duration of one operation; a reader (or writer) that
    /// exhausts its optimistic restart budget takes the exclusive side,
    /// which drains every in-flight writer and makes a locked traversal
    /// safe again. Acquired before any page latch (gate → latch order).
    pub(crate) gate: RwLock<()>,
    _values: PhantomData<V>,
}

impl<V: RecordValue> BTree<V> {
    /// Create an empty tree whose pages live in `pool`.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        let root = pool.allocate();
        pool.write(root, node::init_leaf);
        let t = BTree::from_raw(pool, root, 1, 0, 1, 1);
        t.writes.bump_leaf_writes(1);
        t
    }

    // ---- shared structural state (packed top + counters) -------------------

    const fn pack_top(root: PageId, height: u32) -> u64 {
        ((root.0 as u64) << 32) | height as u64
    }

    pub(crate) const fn unpack_top(top: u64) -> (PageId, u32) {
        (PageId((top >> 32) as u32), top as u32)
    }

    /// One consistent load of the `(root, height)` pair.
    pub(crate) fn top(&self) -> (PageId, u32) {
        Self::unpack_top(self.top_raw())
    }

    /// The raw packed top word, for equality re-validation after a
    /// descent's first page read (catches root growth/collapse that
    /// republished the old root underneath the reader).
    pub(crate) fn top_raw(&self) -> u64 {
        self.top.load(Ordering::Acquire)
    }

    /// Publish a new `(root, height)` pair. Within a structural
    /// modification this must be ordered per the SMO publish discipline
    /// (new pages first; the old root's shrink only after).
    pub(crate) fn set_top(&self, root: PageId, height: u32) {
        self.top.store(Self::pack_top(root, height), Ordering::Release);
    }

    pub(crate) fn add_len(&self, delta: isize) {
        if delta >= 0 {
            self.len.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.len.fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    pub(crate) fn set_len(&self, n: usize) {
        self.len.store(n, Ordering::Relaxed);
    }

    pub(crate) fn add_leaf_pages(&self, delta: isize) {
        if delta >= 0 {
            self.leaf_pages.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.leaf_pages.fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_total_pages(&self, delta: isize) {
        if delta >= 0 {
            self.total_pages.fetch_add(delta as usize, Ordering::Relaxed);
        } else {
            self.total_pages.fetch_sub((-delta) as usize, Ordering::Relaxed);
        }
    }

    /// Whether the optimistic-lock-coupling write path is on (strict
    /// reader validation; writers may run concurrently under the shared
    /// side of the gate).
    pub fn olc_enabled(&self) -> bool {
        self.olc.load(Ordering::Relaxed)
    }

    pub(crate) const fn vsize() -> usize {
        V::SIZE
    }

    pub(crate) const fn stride() -> usize {
        16 + V::SIZE
    }

    pub(crate) const fn leaf_cap() -> usize {
        leaf_capacity(V::SIZE)
    }

    pub(crate) const fn leaf_min() -> usize {
        leaf_capacity(V::SIZE) / 2
    }

    pub(crate) const fn branch_min() -> usize {
        branch_capacity() / 2
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the tree stores no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height in levels (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.top().1
    }

    /// Number of live leaf pages (`Nl` in the paper's cost model).
    pub fn leaf_page_count(&self) -> usize {
        self.leaf_pages.load(Ordering::Relaxed)
    }

    /// Number of live pages across all levels.
    pub fn page_count(&self) -> usize {
        self.total_pages.load(Ordering::Relaxed)
    }

    /// The buffer pool this tree performs I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Internal constructor used by the bulk loader; the caller is
    /// responsible for every structural invariant.
    pub(crate) fn from_raw(
        pool: Arc<BufferPool>,
        root: PageId,
        height: u32,
        len: usize,
        leaf_pages: usize,
        total_pages: usize,
    ) -> Self {
        BTree {
            pool,
            top: AtomicU64::new(Self::pack_top(root, height)),
            len: AtomicUsize::new(len),
            leaf_pages: AtomicUsize::new(leaf_pages),
            total_pages: AtomicUsize::new(total_pages),
            scans: ScanCounters::default(),
            writes: WriteCounters::default(),
            msgs: MsgState::default(),
            tree_id: u32::MAX,
            olc: AtomicBool::new(false),
            olc_stats: OlcCounters::default(),
            gate: RwLock::new(()),
            _values: PhantomData,
        }
    }

    /// The root page of this tree (changes on root split/collapse and on
    /// wholesale rebuilds).
    pub fn root(&self) -> PageId {
        self.top().0
    }

    /// This tree's identity in the write-ahead log (`u32::MAX` =
    /// unregistered).
    pub fn tree_id(&self) -> u32 {
        self.tree_id
    }

    /// Register this tree under `id` in the write-ahead log and log its
    /// current root and height, so recovery can locate it. Called by the
    /// index layer when durability is enabled and re-called after every
    /// wholesale tree replacement (merge rebuilds, message flushes, shard
    /// expiry swaps) — the replacement tree is a *new* `BTree` value that
    /// must keep the old identity.
    pub fn set_tree_id(&mut self, id: u32) {
        self.tree_id = id;
        self.log_meta();
    }

    /// Log this tree's (root, height) to the write-ahead log — a no-op
    /// unless the pool is durable and the tree is registered.
    pub(crate) fn log_meta(&self) {
        let (root, height) = self.top();
        self.pool.wal_tree_meta(self.tree_id, root, height);
    }

    /// Reconstruct a tree from its recovered on-disk pages: `root` and
    /// `height` come from the newest durable `TreeMeta` record of
    /// `tree_id`. One breadth-first structural walk rebuilds the
    /// in-memory bookkeeping the crash destroyed — entry count, page
    /// counts, and the message-chain registry (from the on-page chain
    /// heads, including the pending count and sequence counter) — after
    /// which the tree answers exactly like one that never crashed.
    pub fn reattach(pool: Arc<BufferPool>, tree_id: u32, root: PageId, height: u32) -> Self {
        let mut t: BTree<V> = BTree::from_raw(pool, root, height, 0, 0, 0);
        t.tree_id = tree_id;
        let mut frontier = vec![root];
        let mut chained: Vec<(PageId, PageId)> = Vec::new();
        for _ in 0..height {
            let mut next = Vec::new();
            for &pid in &frontier {
                t.add_total_pages(1);
                let (n, leaf, chain, children) = t.pool.read(pid, |p| {
                    let n = node::count(p);
                    let leaf = node::is_leaf(p);
                    let children: Vec<PageId> = if leaf {
                        Vec::new()
                    } else {
                        (0..=n).map(|j| node::child_at(p, j)).collect()
                    };
                    (n, leaf, node::chain_head(p), children)
                });
                if chain.is_valid() {
                    chained.push((pid, chain));
                }
                if leaf {
                    t.add_leaf_pages(1);
                    t.add_len(n as isize);
                } else {
                    next.extend(children);
                }
            }
            frontier = next;
        }
        t.reattach_chains(&chained);
        t
    }

    /// Deterministic scan-path counters: root-to-leaf descents performed
    /// by [`BTree::range_scan`]/[`BTree::multi_range_scan`] and branch
    /// pages the fused path served from its descent cache. The companion
    /// of the pool's I/O ledger for the fused-scan experiment.
    pub fn scan_stats(&self) -> ScanStats {
        self.scans.snapshot()
    }

    /// Zero the scan-path counters (measurement windows).
    pub fn reset_scan_stats(&self) {
        self.scans.restore(ScanStats::default());
    }

    /// Overwrite the scan-path counters — the carry half of the
    /// "the scan ledger outlives structural maintenance" contract: code
    /// that replaces a tree wholesale (`merge_sorted`'s rebuild, a
    /// shard's O(1) expiry swap) snapshots [`BTree::scan_stats`] first
    /// and restores it onto the replacement.
    pub fn restore_scan_stats(&self, s: ScanStats) {
        self.scans.restore(s);
    }

    // ---- leaf byte helpers -------------------------------------------------

    fn leaf_value_at(&self, pid: PageId, i: usize) -> Result<V, IoFault> {
        self.pool.try_read(pid, |p| {
            V::read(p.bytes(node::leaf_entry_off(i, Self::vsize()) + 16, Self::vsize()))
        })
    }

    // ---- point lookup ------------------------------------------------------

    /// One page read of an optimistic descent: lock-free when the page is
    /// published, locked otherwise, restarting on version conflicts.
    /// `prev` carries the `(page, version)` the current `pid` was read
    /// from; it is re-validated *after* this page is read (the optimistic
    /// lock coupling handshake — a parent that was rewritten while we
    /// followed its child pointer invalidates the route) and then
    /// replaced by this page's version for the next step. A locked read
    /// yields no version, so the chain restarts from it.
    ///
    /// With the tree quiesced on the write side (`olc` off — writers hold
    /// `&mut self` or a shard-exclusive lock), a parent that merely became
    /// *unpublished* (evicted or displaced from its mirror slot — its
    /// content survives on disk unchanged) does **not** restart the
    /// descent: page contents only change under exclusive tree access, so
    /// an unpublished parent cannot have rerouted us, and tolerating it
    /// keeps buffer churn from perturbing the deterministic I/O ledger.
    /// Only a parent republished at a *different version* — a genuine
    /// rewrite — forces the restart.
    ///
    /// With the OLC write path on, both relaxations are unsound — a
    /// locked mid-descent read has no version to validate the route
    /// against while a writer races, and a vanished parent version can
    /// hide a rewrite — so *strict* mode turns an unpublished page and a
    /// vanished parent version into restarts. The terminal fallback
    /// ([`BTree::gate`]) drains writers before any locked traversal.
    fn descend_step<R>(
        &self,
        pid: PageId,
        prev: &mut Option<(PageId, u64)>,
        f: impl Fn(&Page) -> R,
    ) -> Result<R, Restart> {
        let strict = self.olc_enabled();
        let (r, version) = match self.pool.read_versioned(pid, &f) {
            OptimisticRead::Hit(r, v) => (r, Some(v)),
            // Not published lock-free (cold page, mirror collision): the
            // locked read is authoritative and counts the touch exactly
            // like a fully locked descent would. An unresolvable media
            // fault here aborts the attempt like a conflict; the caller's
            // locked fallback re-encounters it and surfaces (or panics,
            // on the legacy entry points) with full typing.
            OptimisticRead::Unpublished if !strict => match self.pool.try_read(pid, &f) {
                Ok(r) => (r, None),
                Err(_) => return Err(Restart),
            },
            OptimisticRead::Unpublished | OptimisticRead::Conflict => return Err(Restart),
        };
        if let Some((ppid, pv)) = *prev {
            match self.pool.read_version(ppid) {
                Some(v) if v != pv => return Err(Restart),
                None if strict => return Err(Restart),
                _ => {}
            }
        }
        *prev = version.map(|v| (pid, v));
        Ok(r)
    }

    /// One optimistic root-to-leaf descent for `key`; `Err` means a
    /// version conflict invalidated the route and the caller restarts.
    ///
    /// The packed top is loaded once (a consistent `(root, height)` pair)
    /// and re-validated after the first page read: a root grow publishes
    /// the new top *before* shrinking the old root, so a reader that saw
    /// the shrunk old root — the one image it has no parent version to
    /// validate against — necessarily sees a changed top and restarts.
    fn try_get_optimistic(&self, key: u128) -> Result<Option<V>, Restart> {
        let vsize = Self::vsize();
        let top = self.top_raw();
        let (mut pid, height) = Self::unpack_top(top);
        let mut prev: Option<(PageId, u64)> = None;
        for level in 1..height {
            pid = self.descend_step(pid, &mut prev, |p| {
                node::child_at(p, node::branch_child_index(p, key))
            })?;
            if level == 1 && self.top_raw() != top {
                return Err(Restart);
            }
        }
        let found = self.descend_step(pid, &mut prev, |p| {
            let i = node::leaf_lower_bound(p, key, vsize);
            if i < node::count(p) && node::leaf_key(p, i, vsize) == key {
                Some(V::read(p.bytes(node::leaf_entry_off(i, vsize) + 16, vsize)))
            } else {
                None
            }
        })?;
        if height == 1 && self.top_raw() != top {
            return Err(Restart);
        }
        Ok(found)
    }

    /// The fully locked point lookup — the universal fallback of
    /// [`BTree::get`] and the reference behavior the optimistic descent
    /// is tested against.
    fn get_locked(&self, key: u128) -> Result<Option<V>, IoFault> {
        let (mut pid, height) = self.top();
        for _ in 1..height {
            pid =
                self.pool.try_read(pid, |p| node::child_at(p, node::branch_child_index(p, key)))?;
        }
        self.pool.try_read(pid, |p| {
            let i = node::leaf_lower_bound(p, key, Self::vsize());
            if i < node::count(p) && node::leaf_key(p, i, Self::vsize()) == key {
                Some(V::read(p.bytes(node::leaf_entry_off(i, Self::vsize()) + 16, Self::vsize())))
            } else {
                None
            }
        })
    }

    /// Exact-key lookup.
    ///
    /// Descends optimistically — lock-free versioned page snapshots with
    /// an OLC-style validation chain — and transparently falls back to
    /// the locked read path, per page when a page is not published
    /// lock-free and wholesale after [`OPT_MAX_RESTARTS`] version
    /// conflicts. Both paths return the same answer and count the same
    /// I/O; only the pool's [`peb_storage::LockStats`] can tell them
    /// apart:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use peb_btree::BTree;
    /// use peb_storage::BufferPool;
    ///
    /// let optimistic = Arc::new(BufferPool::new(32));
    /// let locked = Arc::new(BufferPool::with_shards(32, 1).optimistic(false));
    /// let mut a: BTree<u64> = BTree::new(Arc::clone(&optimistic));
    /// let mut b: BTree<u64> = BTree::new(locked);
    /// for k in 0..2_000u128 {
    ///     a.insert(k * 3, k as u64);
    ///     b.insert(k * 3, k as u64);
    /// }
    /// // The fallback contract: the optimistic tree answers exactly like
    /// // the locked-only tree, present keys and misses alike...
    /// for probe in [0u128, 1, 2_997, 2_998, 5_997, 9_000] {
    ///     assert_eq!(a.get(probe), b.get(probe));
    /// }
    /// // ...and on a warm tree it did so without acquiring any lock.
    /// optimistic.reset_stats();
    /// assert_eq!(a.get(2_997), Some(999));
    /// assert_eq!(optimistic.lock_stats().lock_acquisitions, 0);
    /// ```
    pub fn get(&self, key: u128) -> Option<V> {
        self.try_get(key).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BTree::get`]: identical descent and I/O accounting, but
    /// an unresolvable media fault (transient retries exhausted, permanent
    /// bad sector, unrepairable corruption) comes back as a typed
    /// [`IoFault`] instead of a panic. The optimistic fast path reads only
    /// mirror-published pages — images that were checksum-verified when
    /// faulted in — so faults can only arise in the locked fallback's
    /// device fetch. The message-buffer overlay reads chain pages through
    /// the legacy (panicking) path; flush buffered messages before running
    /// on suspect media.
    pub fn try_get(&self, key: u128) -> Result<Option<V>, IoFault> {
        // A pending buffered message is newer than anything in the leaves:
        // the newest put answers, the newest tombstone hides the key. With
        // nothing pending (always, when buffering is off) this costs one
        // integer compare.
        if self.msgs.pending > 0 {
            if let Some(answer) = self.collect_overlay(&[(key, key)]).remove(&key) {
                return Ok(answer);
            }
        }
        for _ in 0..OPT_MAX_RESTARTS {
            if let Ok(found) = self.try_get_optimistic(key) {
                return Ok(found);
            }
        }
        if self.olc_enabled() {
            // Strict mode has no per-page locked fallback, so a cold or
            // contended path lands here: drain writers, then read locked
            // (which also republishes the path for future attempts).
            let _drain = self.gate.write();
            self.get_locked(key)
        } else {
            self.get_locked(key)
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u128) -> bool {
        self.get(key).is_some()
    }

    // ---- insertion ---------------------------------------------------------

    /// Insert a new entry. Returns the previous value if `key` was already
    /// present (the entry is replaced in place; no structural change).
    ///
    /// With buffered writes on, use [`BTree::buffered_insert`] instead: a
    /// direct insert would be ordered *before* any in-flight message for
    /// the same key.
    pub fn insert(&mut self, key: u128, value: V) -> Option<V> {
        self.try_insert(key, value).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BTree::insert`]: an unresolvable media fault while
    /// faulting a path page in surfaces as a typed [`IoFault`] instead of
    /// a panic. A fault mid-split can leave structural work half-applied
    /// (like a panic would); durable pools repair and recover, non-durable
    /// pools should treat the tree as suspect after an error.
    pub fn try_insert(&mut self, key: u128, value: V) -> Result<Option<V>, IoFault> {
        debug_assert_eq!(
            self.msgs.pending, 0,
            "plain insert with buffered messages pending; use buffered_insert"
        );
        let (root, height) = self.top();
        Ok(match self.insert_rec(root, height - 1, key, &value)? {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Done => {
                self.add_len(1);
                None
            }
            InsertOutcome::Split(sep, right) => {
                // Grow a new root above the old one.
                let new_root = self.pool.allocate();
                self.add_total_pages(1);
                self.pool.try_write(new_root, |p| {
                    node::init_branch(p, root);
                    node::branch_insert_entry(p, 0, sep, right);
                })?;
                self.set_top(new_root, height + 1);
                self.add_len(1);
                self.log_meta();
                None
            }
        })
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        level: u32,
        key: u128,
        value: &V,
    ) -> Result<InsertOutcome<V>, IoFault> {
        if level == 0 {
            return self.leaf_insert(pid, key, value);
        }
        let j = self.pool.try_read(pid, |p| node::branch_child_index(p, key))?;
        let child = self.pool.try_read(pid, |p| node::child_at(p, j))?;
        match self.insert_rec(child, level - 1, key, value)? {
            InsertOutcome::Split(sep, right) => {
                let n = self.pool.try_read(pid, node::count)?;
                if n < branch_capacity() {
                    self.pool.try_write(pid, |p| node::branch_insert_entry(p, j, sep, right))?;
                    Ok(InsertOutcome::Done)
                } else {
                    self.branch_split_insert(pid, j, sep, right)
                }
            }
            other => Ok(other),
        }
    }

    fn leaf_insert(
        &mut self,
        pid: PageId,
        key: u128,
        value: &V,
    ) -> Result<InsertOutcome<V>, IoFault> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        enum Slot<V> {
            Replace(usize, V),
            Insert(usize, usize), // (index, count)
        }
        let slot = self.pool.try_read(pid, |p| {
            let i = node::leaf_lower_bound(p, key, vsize);
            let n = node::count(p);
            if i < n && node::leaf_key(p, i, vsize) == key {
                Slot::Replace(i, V::read(p.bytes(node::leaf_entry_off(i, vsize) + 16, vsize)))
            } else {
                Slot::Insert(i, n)
            }
        })?;
        match slot {
            Slot::Replace(i, old) => {
                self.pool.try_write(pid, |p| {
                    value.write(p.bytes_mut(node::leaf_entry_off(i, vsize) + 16, vsize));
                })?;
                self.writes.bump_leaf_writes(1);
                Ok(InsertOutcome::Replaced(old))
            }
            Slot::Insert(i, n) if n < Self::leaf_cap() => {
                self.pool.try_write(pid, |p| {
                    let off = node::leaf_entry_off(i, vsize);
                    p.shift(off, off + stride, (n - i) * stride);
                    p.put_u128(off, key);
                    value.write(p.bytes_mut(off + 16, vsize));
                    node::set_count(p, n + 1);
                })?;
                self.writes.bump_leaf_writes(1);
                Ok(InsertOutcome::Done)
            }
            Slot::Insert(i, n) => {
                // Full leaf: split, then insert into the proper half.
                let mid = n / 2;
                let right = self.pool.allocate();
                self.add_total_pages(1);
                self.add_leaf_pages(1);

                // Move entries [mid..n) into the new right leaf.
                let moved: Vec<u8> = self.pool.try_read(pid, |p| {
                    p.bytes(node::leaf_entry_off(mid, vsize), (n - mid) * stride).to_vec()
                })?;
                let old_sibling = self.pool.try_read(pid, node::right_sibling)?;
                self.pool.try_write(right, |p| {
                    node::init_leaf(p);
                    p.bytes_mut(HEADER, moved.len()).copy_from_slice(&moved);
                    node::set_count(p, n - mid);
                    node::set_right_sibling(p, old_sibling);
                })?;
                self.pool.try_write(pid, |p| {
                    node::set_count(p, mid);
                    node::set_right_sibling(p, right);
                })?;

                // Insert the pending entry on the side it belongs to.
                let (target, ti, tn) =
                    if i <= mid { (pid, i, mid) } else { (right, i - mid, n - mid) };
                self.pool.try_write(target, |p| {
                    let off = node::leaf_entry_off(ti, vsize);
                    p.shift(off, off + stride, (tn - ti) * stride);
                    p.put_u128(off, key);
                    value.write(p.bytes_mut(off + 16, vsize));
                    node::set_count(p, tn + 1);
                })?;

                self.writes.bump_leaf_writes(3);
                let sep = self.pool.try_read(right, |p| node::leaf_key(p, 0, vsize))?;
                Ok(InsertOutcome::Split(sep, right))
            }
        }
    }

    /// Split a full branch while inserting `(sep, child)` at entry index `j`.
    fn branch_split_insert(
        &mut self,
        pid: PageId,
        j: usize,
        sep: u128,
        child: PageId,
    ) -> Result<InsertOutcome<V>, IoFault> {
        // Materialize all entries plus the pending one, split around the
        // median, and push the median up.
        let mut entries: Vec<(u128, PageId)> = self.pool.try_read(pid, |p| {
            (0..node::count(p))
                .map(|i| (node::branch_key(p, i), node::branch_entry_child(p, i)))
                .collect()
        })?;
        entries.insert(j, (sep, child));

        let m = entries.len() / 2;
        let (up_key, up_child) = entries[m];
        let right = self.pool.allocate();
        self.add_total_pages(1);

        self.pool.try_write(right, |p| {
            node::init_branch(p, up_child);
            for (i, (k, c)) in entries[m + 1..].iter().enumerate() {
                node::branch_insert_entry(p, i, *k, *c);
            }
        })?;
        self.pool.try_write(pid, |p| {
            node::set_count(p, 0);
            for (i, (k, c)) in entries[..m].iter().enumerate() {
                node::branch_insert_entry(p, i, *k, *c);
            }
        })?;
        Ok(InsertOutcome::Split(up_key, right))
    }

    // ---- deletion ----------------------------------------------------------

    /// Remove `key`, returning its value if present.
    ///
    /// With buffered writes on, use [`BTree::buffered_delete`] instead: a
    /// direct delete would be ordered *before* any in-flight message for
    /// the same key.
    pub fn delete(&mut self, key: u128) -> Option<V> {
        self.try_delete(key).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BTree::delete`]: an unresolvable media fault surfaces as
    /// a typed [`IoFault`] instead of a panic. A fault mid-rebalance can
    /// leave structural work half-applied, exactly like a panic would —
    /// see [`BTree::try_insert`].
    pub fn try_delete(&mut self, key: u128) -> Result<Option<V>, IoFault> {
        debug_assert_eq!(
            self.msgs.pending, 0,
            "plain delete with buffered messages pending; use buffered_delete"
        );
        let (root, height) = self.top();
        let removed = self.delete_rec(root, height - 1, key)?;
        if removed.is_some() {
            self.add_len(-1);
            // Collapse the root if it is an empty branch.
            if height > 1 {
                let (n, first_child) =
                    self.pool.try_read(root, |p| (node::count(p), node::leftmost_child(p)))?;
                if n == 0 {
                    self.set_top(first_child, height - 1);
                    self.add_total_pages(-1);
                    self.log_meta();
                }
            }
        }
        Ok(removed)
    }

    fn delete_rec(&mut self, pid: PageId, level: u32, key: u128) -> Result<Option<V>, IoFault> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        if level == 0 {
            let found = self.pool.try_read(pid, |p| {
                let i = node::leaf_lower_bound(p, key, vsize);
                if i < node::count(p) && node::leaf_key(p, i, vsize) == key {
                    Some(i)
                } else {
                    None
                }
            })?;
            let Some(i) = found else { return Ok(None) };
            let old = self.leaf_value_at(pid, i)?;
            self.pool.try_write(pid, |p| {
                let n = node::count(p);
                let off = node::leaf_entry_off(i, vsize);
                p.shift(off + stride, off, (n - 1 - i) * stride);
                node::set_count(p, n - 1);
            })?;
            self.writes.bump_leaf_writes(1);
            return Ok(Some(old));
        }

        let j = self.pool.try_read(pid, |p| node::branch_child_index(p, key))?;
        let child = self.pool.try_read(pid, |p| node::child_at(p, j))?;
        let Some(removed) = self.delete_rec(child, level - 1, key)? else { return Ok(None) };

        let child_min = if level - 1 == 0 { Self::leaf_min() } else { Self::branch_min() };
        let child_count = self.pool.try_read(child, node::count)?;
        if child_count < child_min {
            self.fix_child(pid, j, level - 1)?;
        }
        Ok(Some(removed))
    }

    /// Restore occupancy of child pointer `j` of branch `pid` by borrowing
    /// from a sibling or merging with one. `child_level == 0` means the
    /// children are leaves.
    fn fix_child(&mut self, pid: PageId, j: usize, child_level: u32) -> Result<(), IoFault> {
        let parent_count = self.pool.try_read(pid, node::count)?;
        let child = self.pool.try_read(pid, |p| node::child_at(p, j))?;
        let left =
            if j > 0 { Some(self.pool.try_read(pid, |p| node::child_at(p, j - 1))?) } else { None };
        let right = if j < parent_count {
            Some(self.pool.try_read(pid, |p| node::child_at(p, j + 1))?)
        } else {
            None
        };
        let min = if child_level == 0 { Self::leaf_min() } else { Self::branch_min() };

        if let Some(l) = left {
            if self.pool.try_read(l, node::count)? > min {
                return self.borrow_from_left(pid, j, l, child, child_level);
            }
        }
        if let Some(r) = right {
            if self.pool.try_read(r, node::count)? > min {
                return self.borrow_from_right(pid, j, child, r, child_level);
            }
        }
        if let Some(l) = left {
            self.merge_children(pid, j - 1, l, child, child_level)?;
        } else if let Some(r) = right {
            self.merge_children(pid, j, child, r, child_level)?;
        }
        // A root child with no siblings cannot underflow structurally; the
        // root itself shrinks via `delete`.
        Ok(())
    }

    fn borrow_from_left(
        &mut self,
        pid: PageId,
        j: usize,
        l: PageId,
        c: PageId,
        level: u32,
    ) -> Result<(), IoFault> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        if level == 0 {
            // Move left's last entry to the front of c.
            let ln = self.pool.try_read(l, node::count)?;
            let entry: Vec<u8> = self
                .pool
                .try_read(l, |p| p.bytes(node::leaf_entry_off(ln - 1, vsize), stride).to_vec())?;
            self.pool.try_write(l, |p| node::set_count(p, ln - 1))?;
            self.pool.try_write(c, |p| {
                let n = node::count(p);
                p.shift(HEADER, HEADER + stride, n * stride);
                p.bytes_mut(HEADER, stride).copy_from_slice(&entry);
                node::set_count(p, n + 1);
            })?;
            let new_sep = u128::from_le_bytes(entry[..16].try_into().unwrap());
            self.pool.try_write(pid, |p| node::set_branch_key(p, j - 1, new_sep))?;
            self.writes.bump_leaf_writes(2);
        } else {
            // Rotate through the parent separator.
            let ln = self.pool.try_read(l, node::count)?;
            let (l_last_key, l_last_child) = self.pool.try_read(l, |p| {
                (node::branch_key(p, ln - 1), node::branch_entry_child(p, ln - 1))
            })?;
            let sep = self.pool.try_read(pid, |p| node::branch_key(p, j - 1))?;
            let c_leftmost = self.pool.try_read(c, node::leftmost_child)?;
            self.pool.try_write(c, |p| {
                node::branch_insert_entry(p, 0, sep, c_leftmost);
                node::set_leftmost_child(p, l_last_child);
            })?;
            self.pool.try_write(l, |p| node::branch_remove_entry(p, ln - 1))?;
            self.pool.try_write(pid, |p| node::set_branch_key(p, j - 1, l_last_key))?;
        }
        Ok(())
    }

    fn borrow_from_right(
        &mut self,
        pid: PageId,
        j: usize,
        c: PageId,
        r: PageId,
        level: u32,
    ) -> Result<(), IoFault> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        if level == 0 {
            // Move right's first entry to the end of c.
            let entry: Vec<u8> = self.pool.try_read(r, |p| p.bytes(HEADER, stride).to_vec())?;
            self.pool.try_write(r, |p| {
                let n = node::count(p);
                p.shift(HEADER + stride, HEADER, (n - 1) * stride);
                node::set_count(p, n - 1);
            })?;
            self.pool.try_write(c, |p| {
                let n = node::count(p);
                p.bytes_mut(node::leaf_entry_off(n, vsize), stride).copy_from_slice(&entry);
                node::set_count(p, n + 1);
            })?;
            let new_sep = self.pool.try_read(r, |p| node::leaf_key(p, 0, vsize))?;
            self.pool.try_write(pid, |p| node::set_branch_key(p, j, new_sep))?;
            self.writes.bump_leaf_writes(2);
        } else {
            let sep = self.pool.try_read(pid, |p| node::branch_key(p, j))?;
            let (r_first_key, r_leftmost) =
                self.pool.try_read(r, |p| (node::branch_key(p, 0), node::leftmost_child(p)))?;
            let r_first_child = self.pool.try_read(r, |p| node::branch_entry_child(p, 0))?;
            self.pool.try_write(c, |p| {
                let n = node::count(p);
                node::branch_insert_entry(p, n, sep, r_leftmost);
            })?;
            self.pool.try_write(r, |p| {
                node::set_leftmost_child(p, r_first_child);
                node::branch_remove_entry(p, 0);
            })?;
            self.pool.try_write(pid, |p| node::set_branch_key(p, j, r_first_key))?;
        }
        Ok(())
    }

    /// Merge the right node of the pair `(child j, child j+1)` into the
    /// left one and drop parent entry `sep_idx` (`== j`).
    fn merge_children(
        &mut self,
        pid: PageId,
        sep_idx: usize,
        l: PageId,
        r: PageId,
        level: u32,
    ) -> Result<(), IoFault> {
        let vsize = Self::vsize();
        let stride = Self::stride();
        if level == 0 {
            let (rn, r_sibling) =
                self.pool.try_read(r, |p| (node::count(p), node::right_sibling(p)))?;
            let bytes: Vec<u8> =
                self.pool.try_read(r, |p| p.bytes(HEADER, rn * stride).to_vec())?;
            self.pool.try_write(l, |p| {
                let n = node::count(p);
                p.bytes_mut(node::leaf_entry_off(n, vsize), bytes.len()).copy_from_slice(&bytes);
                node::set_count(p, n + rn);
                node::set_right_sibling(p, r_sibling);
            })?;
            self.writes.bump_leaf_writes(1);
            self.add_leaf_pages(-1);
        } else {
            let sep = self.pool.try_read(pid, |p| node::branch_key(p, sep_idx))?;
            let r_leftmost = self.pool.try_read(r, node::leftmost_child)?;
            let r_entries: Vec<(u128, PageId)> = self.pool.try_read(r, |p| {
                (0..node::count(p))
                    .map(|i| (node::branch_key(p, i), node::branch_entry_child(p, i)))
                    .collect()
            })?;
            self.pool.try_write(l, |p| {
                let mut n = node::count(p);
                node::branch_insert_entry(p, n, sep, r_leftmost);
                n += 1;
                for (k, c) in r_entries {
                    node::branch_insert_entry(p, n, k, c);
                    n += 1;
                }
            })?;
        }
        self.pool.try_write(pid, |p| node::branch_remove_entry(p, sep_idx))?;
        self.add_total_pages(-1);
        // The page of `r` is leaked on the simulated disk; the simulator has
        // no free list, and leaked pages cost no I/O.
        Ok(())
    }

    // ---- range scans -------------------------------------------------------

    /// Optimistic descent for [`BTree::range_scan`]: the leaf that would
    /// contain `lo`, plus the index of its first entry `>= lo`.
    fn try_find_start_leaf(&self, lo: u128) -> Result<(PageId, usize), Restart> {
        let vsize = Self::vsize();
        let top = self.top_raw();
        let (mut pid, height) = Self::unpack_top(top);
        let mut prev: Option<(PageId, u64)> = None;
        for level in 1..height {
            pid = self.descend_step(pid, &mut prev, |p| {
                node::child_at(p, node::branch_child_index(p, lo))
            })?;
            if level == 1 && self.top_raw() != top {
                return Err(Restart);
            }
        }
        let start = self.descend_step(pid, &mut prev, |p| node::leaf_lower_bound(p, lo, vsize))?;
        if height == 1 && self.top_raw() != top {
            return Err(Restart);
        }
        Ok((pid, start))
    }

    /// Visit all entries with `lo <= key <= hi` in key order. The callback
    /// returns `false` to stop early; `range_scan` returns whether the scan
    /// ran to completion.
    ///
    /// The descent to the starting leaf is optimistic with bounded
    /// restarts (nothing has been emitted yet, so restarting is free);
    /// the sibling-chain walk reads each leaf from a lock-free versioned
    /// snapshot when one is published and from the locked page otherwise.
    /// Once entries have reached the visitor the walk never restarts — a
    /// version conflict mid-chain defers to the locked read of the same
    /// leaf — so the visitor sees every in-range entry exactly once, in
    /// order, just like the fully locked scan.
    ///
    /// With buffered messages pending, the scan overlays the newest
    /// in-range message per key on the leaf emission (puts interleave and
    /// replace, tombstones suppress), so the visitor sees exactly what it
    /// would see after a flush. With nothing pending — always, when
    /// buffering is off — this costs one integer compare.
    pub fn range_scan(&self, lo: u128, hi: u128, visit: impl FnMut(u128, V) -> bool) -> bool {
        self.try_range_scan(lo, hi, visit).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BTree::range_scan`]: identical traversal and visit
    /// sequence, but an unresolvable media fault surfaces as a typed
    /// [`IoFault`] instead of a panic. Entries already handed to `visit`
    /// before the fault stand (the scan emits in key order, so the prefix
    /// is exact); the scan stops at the fault. The message-buffer overlay
    /// reads chain pages through the legacy path — see [`BTree::try_get`].
    pub fn try_range_scan(
        &self,
        lo: u128,
        hi: u128,
        mut visit: impl FnMut(u128, V) -> bool,
    ) -> Result<bool, IoFault> {
        if self.msgs.pending == 0 {
            return self.scan_leaves(lo, hi, visit);
        }
        if lo > hi {
            return Ok(true);
        }
        let overlay = self.collect_overlay(&[(lo, hi)]);
        // `scan_with_overlay` composes infallible visitors; a fault in the
        // leaf walk is parked in `fault` (stopping the merge like an early
        // exit) and re-surfaced once the merge unwinds.
        let mut fault = None;
        let done = self.scan_with_overlay(
            overlay,
            |f| match self.scan_leaves(lo, hi, f) {
                Ok(done) => done,
                Err(e) => {
                    fault = Some(e);
                    false
                }
            },
            &mut visit,
        );
        match fault {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// Mode dispatch for the leaf-chain walk: the relaxed walk (per-leaf
    /// locked fallback, never restarts once emitting) is exact while
    /// writers are excluded; with the OLC write path on, the strict
    /// frontier-validated walk is required.
    fn scan_leaves(
        &self,
        lo: u128,
        hi: u128,
        visit: impl FnMut(u128, V) -> bool,
    ) -> Result<bool, IoFault> {
        if self.olc_enabled() {
            self.range_scan_leaves_olc(lo, hi, visit)
        } else {
            self.range_scan_leaves(lo, hi, visit)
        }
    }

    /// The leaf-only body of [`BTree::range_scan`] (no message overlay).
    fn range_scan_leaves(
        &self,
        lo: u128,
        hi: u128,
        mut visit: impl FnMut(u128, V) -> bool,
    ) -> Result<bool, IoFault> {
        if lo > hi {
            return Ok(true);
        }
        self.scans.bump_descent();
        let vsize = Self::vsize();
        let mut found = None;
        for _ in 0..OPT_MAX_RESTARTS {
            if let Ok(start) = self.try_find_start_leaf(lo) {
                found = Some(start);
                break;
            }
        }
        let (mut pid, mut start) = match found {
            Some(start) => start,
            None => {
                // Locked fallback descent (same page touches, same answer).
                let (mut pid, height) = self.top();
                for _ in 1..height {
                    pid = self
                        .pool
                        .try_read(pid, |p| node::child_at(p, node::branch_child_index(p, lo)))?;
                }
                let start = self.pool.try_read(pid, |p| node::leaf_lower_bound(p, lo, vsize))?;
                (pid, start)
            }
        };
        loop {
            // Collect this leaf's in-range entries from one consistent
            // page image, then emit with no page borrow (and no lock)
            // held across the callback.
            let read_leaf = |p: &Page| {
                let n = node::count(p);
                let mut batch = Vec::new();
                let mut i = start;
                while i < n {
                    let k = node::leaf_key(p, i, vsize);
                    if k > hi {
                        return (batch, PageId::INVALID);
                    }
                    batch.push((k, V::read(p.bytes(node::leaf_entry_off(i, vsize) + 16, vsize))));
                    i += 1;
                }
                (batch, node::right_sibling(p))
            };
            let (batch, next) = match self.pool.read_versioned(pid, read_leaf) {
                OptimisticRead::Hit(r, _) => r,
                OptimisticRead::Unpublished | OptimisticRead::Conflict => {
                    self.pool.try_read(pid, read_leaf)?
                }
            };
            for (k, v) in batch {
                if !visit(k, v) {
                    return Ok(false);
                }
            }
            if !next.is_valid() {
                return Ok(true);
            }
            pid = next;
            start = 0;
        }
    }

    /// OLC-safe counterpart of [`BTree::range_scan_leaves`], used while
    /// the write path runs concurrently. The scan keeps a **frontier**
    /// (the smallest key not yet emitted) so a restart never re-emits or
    /// skips an entry, and the chain walk validates the previous leaf's
    /// version after reading each next leaf — a sibling link read from a
    /// leaf that has since split or been absorbed would otherwise skip
    /// the keys that moved. After [`OPT_MAX_RESTARTS`] failed attempts
    /// the scan drains writers through the gate and finishes on the
    /// relaxed walk, which is exact once writers are excluded.
    fn range_scan_leaves_olc(
        &self,
        lo: u128,
        hi: u128,
        mut visit: impl FnMut(u128, V) -> bool,
    ) -> Result<bool, IoFault> {
        if lo > hi {
            return Ok(true);
        }
        self.scans.bump_descent();
        let mut frontier = lo;
        for _ in 0..OPT_MAX_RESTARTS {
            if let Ok(done) = self.try_scan_olc(&mut frontier, hi, &mut visit) {
                return Ok(done);
            }
            self.olc_stats.bump_scan_restarts();
        }
        self.olc_stats.bump_scan_escalations();
        let _drain = self.gate.write();
        self.range_scan_leaves(frontier, hi, visit)
    }

    /// One attempt of the OLC chain scan: emit every `[*frontier, hi]`
    /// entry in order, advancing the frontier past each emitted key.
    /// `Ok(done)` mirrors the visitor protocol (`false` = early stop);
    /// `Err` means a validation failed after the frontier had advanced
    /// past everything already emitted, so the caller can retry from the
    /// frontier with no duplicate or missed emission.
    fn try_scan_olc(
        &self,
        frontier: &mut u128,
        hi: u128,
        visit: &mut impl FnMut(u128, V) -> bool,
    ) -> Result<bool, Restart> {
        let vsize = Self::vsize();
        let lo = *frontier;
        let top = self.top_raw();
        let (mut pid, height) = Self::unpack_top(top);
        let mut prev: Option<(PageId, u64)> = None;
        for level in 1..height {
            pid = self.descend_step(pid, &mut prev, |p| {
                node::child_at(p, node::branch_child_index(p, lo))
            })?;
            if level == 1 && self.top_raw() != top {
                return Err(Restart);
            }
        }
        // The leaf batch is collected inside the descent's own validated
        // read, so its route is covered by the parent re-check and no
        // separate (unvalidatable) re-read of the leaf is needed.
        let collect = |p: &Page, from: u128| {
            let n = node::count(p);
            let mut batch = Vec::new();
            let mut i = node::leaf_lower_bound(p, from, vsize);
            while i < n {
                let k = node::leaf_key(p, i, vsize);
                if k > hi {
                    return (batch, PageId::INVALID);
                }
                batch.push((k, V::read(p.bytes(node::leaf_entry_off(i, vsize) + 16, vsize))));
                i += 1;
            }
            (batch, node::right_sibling(p))
        };
        let (batch, mut next) = self.descend_step(pid, &mut prev, |p| collect(p, lo))?;
        if height == 1 && self.top_raw() != top {
            return Err(Restart);
        }
        // Strict mode never returns a version-less read, so the descent
        // left this leaf's (id, version) in `prev`.
        let (mut cur, mut cur_v) = prev.ok_or(Restart)?;
        for (k, v) in batch {
            if !visit(k, v) {
                return Ok(false);
            }
            if k == u128::MAX {
                return Ok(true);
            }
            *frontier = k + 1;
        }
        while next.is_valid() {
            let from = *frontier;
            let (r, v) = match self.pool.read_versioned(next, |p| collect(p, from)) {
                OptimisticRead::Hit(r, v) => (r, v),
                OptimisticRead::Unpublished | OptimisticRead::Conflict => return Err(Restart),
            };
            // The link we followed must still be current: if `cur` has
            // changed since we read it (split shrank it, a merge absorbed
            // it), the keys between it and `next` may have moved and this
            // leaf is not necessarily the true successor.
            match self.pool.read_version(cur) {
                Some(x) if x == cur_v => {}
                _ => return Err(Restart),
            }
            let (batch, nn) = r;
            (cur, cur_v) = (next, v);
            for (k, v) in batch {
                if !visit(k, v) {
                    return Ok(false);
                }
                if k == u128::MAX {
                    return Ok(true);
                }
                *frontier = k + 1;
            }
            next = nn;
        }
        Ok(true)
    }

    /// Collect all `(key, value)` pairs in `[lo, hi]`.
    pub fn range(&self, lo: u128, hi: u128) -> Vec<(u128, V)> {
        let mut out = Vec::new();
        self.range_scan(lo, hi, |k, v| {
            out.push((k, v));
            true
        });
        out
    }

    /// Fallible [`BTree::range`]: collect all pairs in `[lo, hi]` or
    /// surface the first unresolvable media fault as a typed [`IoFault`].
    pub fn try_range(&self, lo: u128, hi: u128) -> Result<Vec<(u128, V)>, IoFault> {
        let mut out = Vec::new();
        self.try_range_scan(lo, hi, |k, v| {
            out.push((k, v));
            true
        })?;
        Ok(out)
    }

    // ---- fused multi-interval scans -----------------------------------------

    /// Route from the root to the leaf that would contain `key`, reusing
    /// the still-valid cached branch pages of `path` (one slot per branch
    /// level, root first). Returns the leaf's page id and its **fence
    /// key** — the exclusive upper bound of keys the leaf can hold,
    /// derived from the tightest separator along the path (`u128::MAX`
    /// when the leaf tops the key space).
    ///
    /// Each branch level is served from the cache when its snapshot still
    /// names the page the route wants *and* the pool still publishes that
    /// page at the snapshot's version ([`BufferPool::snapshot_valid`] —
    /// the PR 4 versioned-page machinery); a reused level costs no pool
    /// traffic at all. Any other level is re-read through
    /// [`BufferPool::read_snapshot`], which counts one logical read
    /// exactly like a step of the per-interval descent (lock-free when
    /// published, locked fallback otherwise). Routing through a cached
    /// copy is sound because page contents of this tree cannot change
    /// under `&self` (writers need `&mut`), so a validated copy is
    /// bit-identical to the live page; a copy whose page was evicted or
    /// republished since merely fails validation and is re-read — the
    /// conservative fallback, never a wrong route.
    fn descend_cached(&self, key: u128, path: &mut [PathLevel]) -> Result<(PageId, u128), IoFault> {
        let mut pid = self.root();
        let mut fence = u128::MAX;
        for (depth, level) in path.iter_mut().enumerate() {
            let cached =
                level.filled && level.snap.pid() == pid && self.pool.snapshot_valid(&level.snap);
            if cached {
                self.scans.bump_cached();
            } else {
                self.pool.try_read_snapshot(pid, &mut level.snap)?;
                level.filled = true;
                if depth == 0 {
                    // Only a route that had to fetch the root through the
                    // pool counts as a descent; a re-route served from the
                    // cache is the saving the counter exists to expose.
                    self.scans.bump_descent();
                }
            }
            let p = level.snap.page();
            let j = node::branch_child_index(p, key);
            if j < node::count(p) {
                fence = node::branch_key(p, j);
            }
            pid = node::child_at(p, j);
        }
        if path.is_empty() {
            // Single-leaf tree: every route lands straight on the root.
            self.scans.bump_descent();
        }
        Ok((pid, fence))
    }

    /// Visit every entry whose key falls in the union of `intervals`
    /// (inclusive `(lo, hi)` pairs, in any order, overlap allowed),
    /// exactly once, in ascending key order. The callback returns `false`
    /// to stop early; `multi_range_scan` returns whether it ran to
    /// completion.
    ///
    /// This is the fused counterpart of issuing one [`BTree::range_scan`]
    /// per interval: the set is sorted and coalesced once
    /// ([`crate::coalesce_intervals`]), the tree descends to the first
    /// interval, and the scan then walks the leaf sibling chain across
    /// intervals — re-descending **only when the next interval lies
    /// beyond the current leaf's fence key**, and then through a cached
    /// descent path whose still-valid upper-level pages cost no pool
    /// traffic (see [`BTree::scan_stats`]). Page for page it touches a
    /// subset of what the per-interval scans touch, so its I/O ledger is
    /// bounded by theirs; the visit sequence is identical to per-interval
    /// scans over the coalesced set.
    ///
    /// Leaves are read from lock-free versioned snapshots when published
    /// and from the locked page otherwise, exactly like
    /// [`BTree::range_scan`]'s chain walk; entries are handed to `visit`
    /// with no page borrow or lock held.
    ///
    /// With buffered messages pending, the newest in-union message per key
    /// is overlaid on the leaf emission exactly as in
    /// [`BTree::range_scan`]; with nothing pending the fused path below
    /// runs untouched.
    pub fn multi_range_scan(
        &self,
        intervals: &[(u128, u128)],
        visit: impl FnMut(u128, V) -> bool,
    ) -> bool {
        self.try_multi_range_scan(intervals, visit)
            .unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BTree::multi_range_scan`]: identical fused traversal,
    /// but an unresolvable media fault surfaces as a typed [`IoFault`]
    /// instead of a panic. Entries already emitted stand, in order — see
    /// [`BTree::try_range_scan`].
    pub fn try_multi_range_scan(
        &self,
        intervals: &[(u128, u128)],
        mut visit: impl FnMut(u128, V) -> bool,
    ) -> Result<bool, IoFault> {
        if self.msgs.pending == 0 {
            return self.multi_range_scan_leaves(intervals, visit, &mut || true);
        }
        let overlay = self.collect_overlay(intervals);
        // Same fault-parking composition as [`BTree::try_range_scan`].
        let mut fault = None;
        let done = self.scan_with_overlay(
            overlay,
            |f| match self.multi_range_scan_leaves(intervals, f, &mut || true) {
                Ok(done) => done,
                Err(e) => {
                    fault = Some(e);
                    false
                }
            },
            &mut visit,
        );
        match fault {
            Some(e) => Err(e),
            None => Ok(done),
        }
    }

    /// Deadline-checked [`BTree::try_multi_range_scan`]: the identical
    /// fused traversal, with the deadline consulted at every **leaf-page
    /// boundary** and before every entry visit — so once it expires, the
    /// scan stops within one page visit (the cooperative-cancellation
    /// epsilon the chaos harness asserts). The prefix already emitted is
    /// exact and in order; the typed [`ScanTermination`] tells the caller
    /// whether it saw everything, stopped voluntarily, or ran out of
    /// budget.
    ///
    /// [`ScanTermination`]: crate::multiscan::ScanTermination
    pub fn try_multi_range_scan_deadline(
        &self,
        intervals: &[(u128, u128)],
        deadline: &Deadline,
        mut visit: impl FnMut(u128, V) -> bool,
    ) -> Result<ScanTermination, IoFault> {
        let mut expired = false;
        let mut stopped = false;
        let wrapped = |k: u128, v: V| {
            if deadline.expired() {
                expired = true;
                return false;
            }
            if !visit(k, v) {
                stopped = true;
                return false;
            }
            true
        };
        // The leaf-boundary checkpoint: cheaper than wrapping because it
        // also fires on leaves that contribute *no* entries (interval
        // gaps), which the per-entry check alone would walk past.
        let mut checkpoint = || !deadline.expired();
        let done = if self.msgs.pending == 0 {
            self.multi_range_scan_leaves(intervals, wrapped, &mut checkpoint)?
        } else {
            let overlay = self.collect_overlay(intervals);
            let mut fault = None;
            let mut wrapped = wrapped;
            let done = self.scan_with_overlay(
                overlay,
                |f| match self.multi_range_scan_leaves(intervals, f, &mut checkpoint) {
                    Ok(done) => done,
                    Err(e) => {
                        fault = Some(e);
                        false
                    }
                },
                &mut wrapped,
            );
            if let Some(e) = fault {
                return Err(e);
            }
            done
        };
        Ok(if done {
            ScanTermination::Complete
        } else if stopped {
            ScanTermination::Stopped
        } else {
            // Either the visitor wrapper or a leaf-boundary checkpoint
            // saw the expiry (the overlay merge can stop the leaf walk
            // without consulting the wrapper, so `expired` alone is not
            // authoritative).
            debug_assert!(expired || deadline.expired());
            ScanTermination::Expired
        })
    }

    /// The leaf-only body of [`BTree::multi_range_scan`] (no overlay).
    /// `checkpoint` is consulted once per leaf-page iteration (and per
    /// coalesced run on the OLC path); returning `false` ends the scan
    /// like a visitor early-exit — the deadline hook of
    /// [`BTree::try_multi_range_scan_deadline`].
    fn multi_range_scan_leaves(
        &self,
        intervals: &[(u128, u128)],
        mut visit: impl FnMut(u128, V) -> bool,
        checkpoint: &mut dyn FnMut() -> bool,
    ) -> Result<bool, IoFault> {
        let runs = coalesce_intervals(intervals);
        if runs.is_empty() {
            return Ok(true);
        }
        if self.olc_enabled() {
            // The fused descent-path cache validates each cached level's
            // version in isolation — there is no parent-after-child
            // handshake — which is only sound while writers are excluded.
            // Under the OLC write path each coalesced run walks the
            // strict frontier-validated chain scan instead (one descent
            // per run; the cache saving is deliberately forgone).
            for &(lo, hi) in &runs {
                if !checkpoint() {
                    return Ok(false);
                }
                if !self.range_scan_leaves_olc(lo, hi, &mut visit)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
        let vsize = Self::vsize();
        let mut path: Vec<PathLevel> = (1..self.height()).map(|_| PathLevel::default()).collect();
        let mut i = 0usize;
        'runs: while i < runs.len() {
            // Checked before the descent too: a freshly expired deadline
            // must not pay height-many branch reads for a run it will
            // never emit from.
            if !checkpoint() {
                return Ok(false);
            }
            let (mut pid, fence) = self.descend_cached(runs[i].0, &mut path)?;
            // The fence is exact for the descended leaf; once the walk
            // moves along the sibling chain the new leaves' fences are
            // unknown (`None`) and the skip rule falls back to the last
            // key actually seen.
            let mut fence = Some(fence);
            loop {
                if !checkpoint() {
                    return Ok(false);
                }
                // Collect this leaf's in-union entries from one
                // consistent page image, then emit with no page borrow
                // (and no lock) held across the callback.
                let read_leaf = |p: &Page| {
                    let n = node::count(p);
                    let mut batch: Vec<(u128, V)> = Vec::new();
                    let mut ri = i;
                    let mut idx = node::leaf_lower_bound(p, runs[ri].0, vsize);
                    while idx < n && ri < runs.len() {
                        let k = node::leaf_key(p, idx, vsize);
                        while ri < runs.len() && runs[ri].1 < k {
                            ri += 1;
                        }
                        if ri == runs.len() {
                            break;
                        }
                        if k >= runs[ri].0 {
                            batch.push((
                                k,
                                V::read(p.bytes(node::leaf_entry_off(idx, vsize) + 16, vsize)),
                            ));
                            idx += 1;
                        } else {
                            // Jump over the intra-leaf gap to the next
                            // interval's first possible entry.
                            idx = node::leaf_lower_bound(p, runs[ri].0, vsize);
                        }
                    }
                    let last_key = if n > 0 { Some(node::leaf_key(p, n - 1, vsize)) } else { None };
                    (batch, node::right_sibling(p), ri, last_key)
                };
                let (batch, next, mut ri, last_key) = match self.pool.read_versioned(pid, read_leaf)
                {
                    OptimisticRead::Hit(r, _) => r,
                    OptimisticRead::Unpublished | OptimisticRead::Conflict => {
                        self.pool.try_read(pid, read_leaf)?
                    }
                };
                for (k, v) in batch {
                    if !visit(k, v) {
                        return Ok(false);
                    }
                }
                // Drop intervals this leaf fully consumed: everything up
                // to the last key seen, plus — when the fence is known —
                // everything below it (keys in the gap between the last
                // entry and the fence exist nowhere else in the tree).
                let covered = match (fence, last_key) {
                    // `f - 1` is safe: f == u128::MAX means "unbounded",
                    // already excluded by the match guard.
                    (Some(f), _) if f != u128::MAX => f - 1,
                    (_, Some(k)) => k,
                    // An empty rightmost leaf (only the root can be
                    // empty): nothing exists at all.
                    _ => u128::MAX,
                };
                while ri < runs.len() && runs[ri].1 <= covered {
                    ri += 1;
                }
                i = ri;
                if i == runs.len() {
                    return Ok(true);
                }
                if !next.is_valid() {
                    // Rightmost leaf: no key beyond it, the remaining
                    // intervals are empty.
                    return Ok(true);
                }
                // The next needed interval starts at or beyond this
                // leaf's coverage. If it starts within coverage (it
                // straddles into the next leaf), follow the sibling
                // pointer; otherwise the gap is of unknown width — re-
                // descend through the cached path (upper levels are
                // normally still valid, so the re-route costs one leaf
                // read, like a sibling step).
                if runs[i].0 <= covered {
                    pid = next;
                    fence = None;
                } else {
                    continue 'runs;
                }
            }
        }
        Ok(true)
    }

    // ---- diagnostics -------------------------------------------------------

    /// Check every structural invariant; returns a description of the first
    /// violation. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let (root, height) = self.top();
        let mut leaves_seen = 0usize;
        let mut entries_seen = 0usize;
        self.validate_node(
            root,
            height - 1,
            None,
            None,
            true,
            &mut leaves_seen,
            &mut entries_seen,
        )?;
        if entries_seen != self.len() {
            return Err(format!("len {} != entries found {}", self.len(), entries_seen));
        }
        if leaves_seen != self.leaf_page_count() {
            return Err(format!(
                "leaf_pages {} != leaves found {}",
                self.leaf_page_count(),
                leaves_seen
            ));
        }
        // The sibling chain must enumerate all entries in sorted order.
        let mut pid = root;
        for _ in 1..height {
            pid = self.pool.read(pid, node::leftmost_child);
        }
        let mut prev: Option<u128> = None;
        let mut chained = 0usize;
        while pid.is_valid() {
            let (keys, next) = self.pool.read(pid, |p| {
                let ks: Vec<u128> =
                    (0..node::count(p)).map(|i| node::leaf_key(p, i, Self::vsize())).collect();
                (ks, node::right_sibling(p))
            });
            for k in keys {
                if let Some(pv) = prev {
                    if pv >= k {
                        return Err(format!("sibling chain out of order: {pv} >= {k}"));
                    }
                }
                prev = Some(k);
                chained += 1;
            }
            pid = next;
        }
        if chained != self.len() {
            return Err(format!("sibling chain covers {} of {} entries", chained, self.len()));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_node(
        &self,
        pid: PageId,
        level: u32,
        lo: Option<u128>,
        hi: Option<u128>,
        is_root: bool,
        leaves: &mut usize,
        entries: &mut usize,
    ) -> Result<(), String> {
        let vsize = Self::vsize();
        let n = self.pool.read(pid, node::count);
        let leaf = self.pool.read(pid, node::is_leaf);
        if leaf != (level == 0) {
            return Err(format!("page {pid:?}: leaf flag does not match level {level}"));
        }
        let min = if is_root {
            if level == 0 {
                0
            } else {
                1
            }
        } else if level == 0 {
            Self::leaf_min()
        } else {
            Self::branch_min()
        };
        if n < min {
            return Err(format!("page {pid:?} underflow: {n} < {min}"));
        }

        let key_at = |i: usize| {
            if level == 0 {
                self.pool.read(pid, |p| node::leaf_key(p, i, vsize))
            } else {
                self.pool.read(pid, |p| node::branch_key(p, i))
            }
        };
        for i in 0..n {
            let k = key_at(i);
            if i > 0 && key_at(i - 1) >= k {
                return Err(format!("page {pid:?}: keys not strictly increasing at {i}"));
            }
            if let Some(l) = lo {
                if k < l {
                    return Err(format!("page {pid:?}: key {k} below lower bound {l}"));
                }
            }
            if let Some(h) = hi {
                if k >= h {
                    return Err(format!("page {pid:?}: key {k} not below upper bound {h}"));
                }
            }
        }

        if level == 0 {
            *leaves += 1;
            *entries += n;
            return Ok(());
        }
        for j in 0..=n {
            let child = self.pool.read(pid, |p| node::child_at(p, j));
            let clo = if j == 0 { lo } else { Some(key_at(j - 1)) };
            let chi = if j == n { hi } else { Some(key_at(j)) };
            self.validate_node(child, level - 1, clo, chi, false, leaves, entries)?;
        }
        Ok(())
    }
}

enum InsertOutcome<V> {
    /// Entry stored without structural change.
    Done,
    /// Key already existed; the old value is returned.
    Replaced(V),
    /// The child split: insert `(separator, new right page)` in the parent.
    Split(u128, PageId),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> BTree<u64> {
        BTree::new(Arc::new(BufferPool::new(64)))
    }

    #[test]
    fn empty_tree() {
        let t = tree();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.get(5), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn insert_get_small() {
        let mut t = tree();
        for k in [5u128, 1, 9, 3, 7] {
            assert_eq!(t.insert(k, k as u64 * 10), None);
        }
        assert_eq!(t.len(), 5);
        for k in [1u128, 3, 5, 7, 9] {
            assert_eq!(t.get(k), Some(k as u64 * 10));
        }
        assert_eq!(t.get(2), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut t = tree();
        assert_eq!(t.insert(42, 1), None);
        assert_eq!(t.insert(42, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(42), Some(2));
    }

    #[test]
    fn grows_past_many_splits() {
        let mut t = tree();
        let n = 20_000u128;
        // Insert in a shuffled-ish order (multiplicative hashing).
        for i in 0..n {
            let k = (i * 2_654_435_761) % (1 << 30);
            t.insert(k, i as u64);
        }
        assert!(t.height() >= 2, "tree must have split");
        t.validate().expect("valid after bulk insert");
        for i in 0..n {
            let k = (i * 2_654_435_761) % (1 << 30);
            assert_eq!(t.get(k), Some(i as u64));
        }
    }

    #[test]
    fn sequential_and_reverse_insertion() {
        for rev in [false, true] {
            let mut t = tree();
            let keys: Vec<u128> = if rev { (0..5000).rev().collect() } else { (0..5000).collect() };
            for &k in &keys {
                t.insert(k, k as u64);
            }
            t.validate().expect("valid");
            assert_eq!(t.len(), 5000);
            assert_eq!(t.range(0, 4999).len(), 5000);
        }
    }

    #[test]
    fn delete_simple() {
        let mut t = tree();
        for k in 0..10u128 {
            t.insert(k, k as u64);
        }
        assert_eq!(t.delete(5), Some(5));
        assert_eq!(t.delete(5), None);
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(5), None);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn delete_everything_collapses_root() {
        let mut t = tree();
        let n = 10_000u128;
        for k in 0..n {
            t.insert(k, k as u64);
        }
        assert!(t.height() > 1);
        for k in 0..n {
            assert_eq!(t.delete(k), Some(k as u64), "key {k}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1, "root collapsed back to a leaf");
        t.validate().expect("valid after full deletion");
    }

    #[test]
    fn delete_reverse_order_exercises_left_merges() {
        let mut t = tree();
        let n = 10_000u128;
        for k in 0..n {
            t.insert(k, k as u64);
        }
        for k in (0..n).rev() {
            assert_eq!(t.delete(k), Some(k as u64));
            if k % 977 == 0 {
                t.validate().expect("valid during reverse deletion");
            }
        }
        assert!(t.is_empty());
    }

    #[test]
    fn range_scan_inclusive_bounds_and_early_exit() {
        let mut t = tree();
        for k in (0..100u128).map(|i| i * 2) {
            t.insert(k, k as u64);
        }
        let got = t.range(10, 20);
        assert_eq!(got.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![10, 12, 14, 16, 18, 20]);
        // Early exit after 3 entries.
        let mut seen = 0;
        let completed = t.range_scan(0, u128::MAX, |_, _| {
            seen += 1;
            seen < 3
        });
        assert!(!completed);
        assert_eq!(seen, 3);
        // Empty and reversed ranges.
        assert!(t.range(11, 11).is_empty());
        assert!(t.range(20, 10).is_empty());
    }

    #[test]
    fn range_scan_crosses_leaf_boundaries() {
        let mut t = tree();
        let n = 3_000u128;
        for k in 0..n {
            t.insert(k, k as u64);
        }
        assert!(t.leaf_page_count() > 1);
        let got = t.range(100, 2_899);
        assert_eq!(got.len(), 2_800);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn interleaved_insert_delete_stays_valid() {
        let mut t = tree();
        // Churn: insert 2 keys, delete 1, repeatedly.
        let mut next = 0u128;
        let mut alive = std::collections::BTreeSet::new();
        for round in 0..4_000 {
            t.insert(next, next as u64);
            alive.insert(next);
            next += 1;
            t.insert(next, next as u64);
            alive.insert(next);
            next += 1;
            let victim = (round * 7919) as u128 % next;
            if alive.remove(&victim) {
                assert!(t.delete(victim).is_some());
            }
        }
        assert_eq!(t.len(), alive.len());
        t.validate().expect("valid after churn");
        let all = t.range(0, u128::MAX);
        assert_eq!(all.len(), alive.len());
    }

    #[test]
    fn io_is_counted_through_the_pool() {
        let pool = Arc::new(BufferPool::new(8));
        let mut t: BTree<u64> = BTree::new(Arc::clone(&pool));
        for k in 0..20_000u128 {
            t.insert(k, 0);
        }
        pool.clear();
        pool.reset_stats();
        t.get(12_345);
        let s = pool.stats();
        // A cold point lookup reads exactly one page per level.
        assert_eq!(s.physical_reads as u32, t.height());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (any::<bool>(), 0u128..500, any::<u64>()), 1..600)) {
            let mut model = BTreeMap::new();
            let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(32)));
            for (is_insert, key, val) in ops {
                if is_insert {
                    prop_assert_eq!(t.insert(key, val), model.insert(key, val));
                } else {
                    prop_assert_eq!(t.delete(key), model.remove(&key));
                }
            }
            t.validate().map_err(TestCaseError::fail)?;
            prop_assert_eq!(t.len(), model.len());
            let got = t.range(0, u128::MAX);
            let want: Vec<(u128, u64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn range_queries_match_model(
            keys in proptest::collection::btree_set(0u128..2_000, 1..300),
            lo in 0u128..2_000,
            len in 0u128..500,
        ) {
            let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(32)));
            for &k in &keys {
                t.insert(k, k as u64);
            }
            let hi = lo.saturating_add(len);
            let got: Vec<u128> = t.range(lo, hi).into_iter().map(|(k, _)| k).collect();
            let want: Vec<u128> = keys.range(lo..=hi).copied().collect();
            prop_assert_eq!(got, want);
        }
    }
}

#[cfg(test)]
mod optimistic_tests {
    use super::*;

    /// Two structurally identical trees, one over a pool with the
    /// lock-free read path on and one with it off.
    fn twin_trees(cap: usize, n: u128) -> (BTree<u64>, BTree<u64>) {
        let mut opt: BTree<u64> = BTree::new(Arc::new(BufferPool::new(cap)));
        let mut locked: BTree<u64> =
            BTree::new(Arc::new(BufferPool::with_shards(cap, 1).optimistic(false)));
        for i in 0..n {
            let k = (i * 2_654_435_761) % (1 << 24);
            opt.insert(k, i as u64);
            locked.insert(k, i as u64);
        }
        for i in (0..n).step_by(5) {
            let k = (i * 2_654_435_761) % (1 << 24);
            opt.delete(k);
            locked.delete(k);
        }
        (opt, locked)
    }

    #[test]
    fn quiesced_optimistic_reads_converge_to_locked_reads() {
        // The equivalence half of the acceptance bar: on a quiesced tree
        // the optimistic get/range answers are exactly the locked ones.
        let (opt, locked) = twin_trees(64, 8_000);
        assert_eq!(opt.len(), locked.len());
        for probe in (0..1 << 24).step_by(97_003) {
            assert_eq!(opt.get(probe), locked.get(probe), "get({probe})");
        }
        for (lo, hi) in [(0u128, 1 << 24), (12_345, 999_999), (1 << 20, (1 << 20) + 50_000)] {
            assert_eq!(opt.range(lo, hi), locked.range(lo, hi), "range({lo}, {hi})");
        }
    }

    #[test]
    fn io_ledger_is_identical_with_and_without_optimistic_reads() {
        // The frozen-I/O property at unit scale: same inserts, same
        // reads, same thrashing 8-frame pool — the IoStats ledgers must
        // agree counter for counter even though one side reads lock-free.
        let (opt, locked) = twin_trees(8, 4_000);
        for t in [&opt, &locked] {
            t.pool().flush_all();
            t.pool().clear();
            t.pool().reset_stats();
        }
        let probe = |t: &BTree<u64>| {
            for k in (0..1 << 24).step_by(131_071) {
                t.get(k);
            }
            let mut n = 0usize;
            t.range_scan(1 << 20, (1 << 20) + 200_000, |_, _| {
                n += 1;
                true
            });
            n
        };
        assert_eq!(probe(&opt), probe(&locked));
        assert_eq!(opt.pool().stats(), locked.pool().stats(), "ledgers diverged");
        // And the optimistic side really did exercise the lock-free path
        // once pages warmed up.
        assert!(opt.pool().lock_stats().optimistic_hits > 0);
        assert_eq!(locked.pool().lock_stats().optimistic_attempts(), 0);
    }

    #[test]
    fn warm_tree_reads_acquire_no_locks() {
        // Pool large enough to hold the whole tree: after one warming
        // pass every path page is published and reads go fully lock-free.
        let pool = Arc::new(BufferPool::new(256));
        let mut t: BTree<u64> = BTree::new(Arc::clone(&pool));
        for k in 0..10_000u128 {
            t.insert(k, k as u64);
        }
        assert!(t.height() >= 2);
        t.get(5_000);
        t.range(2_000, 2_200);
        pool.reset_stats();
        assert_eq!(t.get(5_000), Some(5_000));
        assert_eq!(t.range(2_000, 2_200).len(), 201);
        let locks = pool.lock_stats();
        assert_eq!(locks.lock_acquisitions, 0, "warm reads must not touch a mutex");
        assert!(locks.optimistic_hits as u32 >= t.height(), "every page touch was optimistic");
        assert!(pool.stats().logical_reads > 0, "touches still land on the I/O ledger");
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;

    #[test]
    fn works_with_single_frame_buffer() {
        // Every page access evicts the previous page: correctness must not
        // depend on residency, only performance does.
        let pool = Arc::new(BufferPool::new(1));
        let mut t: BTree<u64> = BTree::new(Arc::clone(&pool));
        for k in 0..5_000u128 {
            t.insert(k * 3, k as u64);
        }
        t.validate().expect("valid under constant eviction");
        for k in (0..5_000u128).step_by(97) {
            assert_eq!(t.get(k * 3), Some(k as u64));
        }
        for k in 0..5_000u128 {
            assert_eq!(t.delete(k * 3), Some(k as u64));
        }
        assert!(t.is_empty());
        assert!(pool.stats().physical_reads > 0, "tiny buffer must thrash");
    }

    #[test]
    fn buffer_smaller_than_height_still_correct() {
        // Height grows to >= 3 with enough keys; a 2-frame pool cannot hold
        // a full root-to-leaf path.
        let pool = Arc::new(BufferPool::new(2));
        let mut t: BTree<u64> = BTree::new(Arc::clone(&pool));
        let n = 60_000u128;
        for k in 0..n {
            t.insert(k, (k % 1_000) as u64);
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.get(n / 2), Some(((n / 2) % 1_000) as u64));
        assert_eq!(t.range(100, 200).len(), 101);
    }

    #[test]
    fn dense_then_sparse_key_space() {
        // Mix a dense cluster with far-apart keys: exercises splits at both
        // ends and separator routing across magnitudes.
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        for k in 0..2_000u128 {
            t.insert(k, 1);
        }
        for k in 0..2_000u128 {
            t.insert(k << 100, 2); // astronomically sparse high keys
        }
        t.validate().expect("valid with mixed densities");
        assert_eq!(t.len(), 3_999, "key 0 overlaps between the two sets");
        assert_eq!(t.range(0, 1_999).len(), 2_000);
    }
}

/// Structural summary of a tree, for diagnostics and capacity planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Stored entries.
    pub entries: usize,
    /// Tree height in levels (1 = the root is a leaf).
    pub height: u32,
    /// Live leaf pages (`Nl` in the paper's cost model).
    pub leaf_pages: usize,
    /// Live pages across all levels.
    pub total_pages: usize,
    /// Average leaf occupancy in `[0, 1]`.
    pub avg_leaf_fill: f64,
}

impl<V: RecordValue> BTree<V> {
    /// O(1) structural statistics.
    pub fn stats(&self) -> TreeStats {
        let cap = Self::leaf_cap();
        let (len, leaf_pages) = (self.len(), self.leaf_page_count());
        TreeStats {
            entries: len,
            height: self.height(),
            leaf_pages,
            total_pages: self.page_count(),
            avg_leaf_fill: if leaf_pages == 0 {
                0.0
            } else {
                len as f64 / (leaf_pages * cap) as f64
            },
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_reflect_structure() {
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        for k in 0..10_000u128 {
            t.insert(k, 0);
        }
        let s = t.stats();
        assert_eq!(s.entries, 10_000);
        assert_eq!(s.height, t.height());
        assert_eq!(s.leaf_pages, t.leaf_page_count());
        assert!(s.avg_leaf_fill > 0.4 && s.avg_leaf_fill <= 1.0, "fill {}", s.avg_leaf_fill);
    }

    #[test]
    fn bulk_loaded_tree_is_denser() {
        let keys: Vec<(u128, u64)> = (0..10_000u128).map(|k| (k, 0u64)).collect();
        let bulk = BTree::bulk_load(Arc::new(BufferPool::new(64)), keys.clone(), 1.0);
        let mut inc: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        for (k, v) in keys {
            inc.insert(k, v);
        }
        assert!(bulk.stats().avg_leaf_fill > inc.stats().avg_leaf_fill);
        assert!(bulk.stats().avg_leaf_fill > 0.95);
    }
}
