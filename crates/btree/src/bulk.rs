//! Bottom-up bulk loading.
//!
//! Building an index over an existing user base one insert at a time costs
//! `O(n log n)` page touches and leaves pages ~69% full. Bulk loading packs
//! sorted entries into leaves at a chosen fill factor and builds the branch
//! levels bottom-up in one pass — the standard way real systems create an
//! index over existing data.
//!
//! The loader keeps every B+-tree invariant that [`crate::tree::BTree::validate`]
//! checks, including minimum occupancy of the rightmost node at each level
//! (fixed up by rebalancing the last two nodes when the tail would
//! underflow).

use std::sync::Arc;

use peb_storage::{BufferPool, PageId};

use crate::node::{self, branch_capacity, leaf_capacity};
use crate::tree::BTree;
use crate::value::RecordValue;

impl<V: RecordValue> BTree<V> {
    /// Build a tree from entries **sorted by strictly increasing key**.
    ///
    /// `fill` is the target fraction of each node's capacity (clamped to
    /// `[0.5, 1.0]`); the paper-era default of 1.0 maximizes leaf density,
    /// while lower values leave room for subsequent inserts.
    ///
    /// # Panics
    /// Panics if keys are not strictly increasing.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        entries: impl IntoIterator<Item = (u128, V)>,
        fill: f64,
    ) -> Self {
        let fill = fill.clamp(0.5, 1.0);
        let leaf_cap = leaf_capacity(V::SIZE);
        let leaf_target = ((leaf_cap as f64 * fill).floor() as usize).max(1);
        let vsize = V::SIZE;
        let stride = 16 + vsize;

        // ---- leaf level ----
        let mut leaves: Vec<(u128, PageId)> = Vec::new(); // (first key, pid)
        let mut len = 0usize;
        let mut cur: Option<(PageId, usize)> = None; // (pid, count)
        let mut prev_key: Option<u128> = None;

        for (key, value) in entries {
            if let Some(pk) = prev_key {
                assert!(pk < key, "bulk_load requires strictly increasing keys");
            }
            prev_key = Some(key);
            let (pid, count) = match cur {
                Some((pid, count)) if count < leaf_target => (pid, count),
                _ => {
                    // Seal the previous leaf and open a fresh one.
                    let new_pid = pool.allocate();
                    pool.write(new_pid, node::init_leaf);
                    if let Some((prev_pid, prev_count)) = cur {
                        pool.write(prev_pid, |p| {
                            node::set_count(p, prev_count);
                            node::set_right_sibling(p, new_pid);
                        });
                    }
                    leaves.push((key, new_pid));
                    (new_pid, 0)
                }
            };
            pool.write(pid, |p| {
                let off = node::leaf_entry_off(count, vsize);
                p.put_u128(off, key);
                value.write(p.bytes_mut(off + 16, vsize));
            });
            cur = Some((pid, count + 1));
            len += 1;
        }

        // Seal the final leaf; an empty input still needs a root leaf.
        match cur {
            Some((pid, count)) => pool.write(pid, |p| node::set_count(p, count)),
            None => {
                let root = pool.allocate();
                pool.write(root, node::init_leaf);
                return BTree::from_raw(pool, root, 1, 0, 1, 1);
            }
        }

        // Fix a potentially underfull last leaf: merge it into its left
        // neighbor when both fit in one page, otherwise split the pair
        // evenly (total > capacity, so each half reaches the minimum).
        if leaves.len() > 1 {
            let last_count = pool.read(leaves[leaves.len() - 1].1, node::count);
            let min = leaf_cap / 2;
            if last_count < min {
                let (l_pid, r_pid) = (leaves[leaves.len() - 2].1, leaves[leaves.len() - 1].1);
                let l_count = pool.read(l_pid, node::count);
                let total = l_count + last_count;
                if total <= leaf_cap {
                    // Absorb the tail into the left leaf; drop the last one.
                    let bytes: Vec<u8> =
                        pool.read(r_pid, |p| p.bytes(node::HEADER, last_count * stride).to_vec());
                    pool.write(l_pid, |p| {
                        p.bytes_mut(node::leaf_entry_off(l_count, vsize), bytes.len())
                            .copy_from_slice(&bytes);
                        node::set_count(p, total);
                        node::set_right_sibling(p, PageId::INVALID);
                    });
                    leaves.pop(); // r_pid leaks on the simulated disk
                } else {
                    // Even split: both halves are >= leaf_cap / 2.
                    let keep = total / 2 + (total % 2);
                    let move_n = l_count - keep;
                    let bytes: Vec<u8> = pool.read(l_pid, |p| {
                        p.bytes(node::leaf_entry_off(keep, vsize), move_n * stride).to_vec()
                    });
                    pool.write(r_pid, |p| {
                        p.shift(node::HEADER, node::HEADER + move_n * stride, last_count * stride);
                        p.bytes_mut(node::HEADER, bytes.len()).copy_from_slice(&bytes);
                        node::set_count(p, last_count + move_n);
                    });
                    pool.write(l_pid, |p| node::set_count(p, keep));
                    let new_first = pool.read(r_pid, |p| node::leaf_key(p, 0, vsize));
                    let last = leaves.len() - 1;
                    leaves[last].0 = new_first;
                }
            }
        }

        // ---- branch levels ----
        let leaf_pages = leaves.len();
        let mut total_pages = leaf_pages;
        let mut level: Vec<(u128, PageId)> = leaves;
        let mut height = 1u32;
        let branch_target = ((branch_capacity() as f64 * fill).floor() as usize).max(2);

        while level.len() > 1 {
            height += 1;
            let mut next: Vec<(u128, PageId)> = Vec::new();
            let mut i = 0usize;
            // A branch with `c` entries has `c + 1` children; non-root
            // nodes need at least `min_children`.
            let max_children = branch_capacity() + 1;
            let min_children = branch_capacity() / 2 + 1;
            while i < level.len() {
                let rest = level.len() - i;
                let take = if rest <= branch_target + 1 {
                    rest // final node
                } else if rest - (branch_target + 1) >= min_children {
                    branch_target + 1 // a full-target node leaves a healthy tail
                } else if rest <= max_children {
                    rest // absorb the awkward tail into one over-target node
                } else {
                    rest - min_children // leave the tail exactly the minimum
                };
                debug_assert!(take <= max_children);
                let group = &level[i..i + take];
                let pid = pool.allocate();
                total_pages += 1;
                pool.write(pid, |p| {
                    node::init_branch(p, group[0].1);
                    for (slot, (key, child)) in group[1..].iter().enumerate() {
                        node::branch_insert_entry(p, slot, *key, *child);
                    }
                });
                next.push((group[0].0, pid));
                i += take;
            }
            level = next;
        }

        let root = level[0].1;
        BTree::from_raw(pool, root, height, len, leaf_pages, total_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(n: u128, fill: f64) -> BTree<u64> {
        BTree::bulk_load(Arc::new(BufferPool::new(128)), (0..n).map(|k| (k * 3, k as u64)), fill)
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let t = load(0, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate().expect("empty bulk-loaded tree valid");
    }

    #[test]
    fn single_leaf_worth_of_entries() {
        let t = load(100, 1.0);
        assert_eq!(t.len(), 100);
        assert_eq!(t.height(), 1);
        t.validate().expect("valid");
        assert_eq!(t.get(3 * 42), Some(42));
    }

    #[test]
    fn multi_level_loads_are_valid_and_complete() {
        for n in [171u128, 1_000, 50_000] {
            for fill in [0.6, 0.9, 1.0] {
                let t = load(n, fill);
                t.validate().unwrap_or_else(|e| panic!("n={n} fill={fill}: {e}"));
                assert_eq!(t.len(), n as usize);
                assert_eq!(t.range(0, u128::MAX).len(), n as usize);
                // Spot lookups.
                for k in (0..n).step_by((n as usize / 17).max(1)) {
                    assert_eq!(t.get(k * 3), Some(k as u64));
                    assert_eq!(t.get(k * 3 + 1), None);
                }
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_deletes() {
        let mut t = load(10_000, 1.0);
        for k in 0..10_000u128 {
            t.insert(k * 3 + 1, 999);
        }
        t.validate().expect("valid after post-load inserts");
        assert_eq!(t.len(), 20_000);
        for k in 0..10_000u128 {
            assert_eq!(t.delete(k * 3), Some(k as u64));
        }
        t.validate().expect("valid after interleaved deletes");
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn full_fill_uses_fewer_pages_than_incremental_build() {
        let n = 30_000u128;
        let bulk = load(n, 1.0);
        let mut incremental: BTree<u64> = BTree::new(Arc::new(BufferPool::new(128)));
        for k in 0..n {
            incremental.insert(k * 3, k as u64);
        }
        assert!(
            bulk.leaf_page_count() < incremental.leaf_page_count(),
            "bulk {} vs incremental {}",
            bulk.leaf_page_count(),
            incremental.leaf_page_count()
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_input_panics() {
        let _ = BTree::<u64>::bulk_load(
            Arc::new(BufferPool::new(16)),
            vec![(5u128, 0u64), (3, 0)],
            1.0,
        );
    }

    #[test]
    fn sibling_chain_is_complete_after_bulk_load() {
        let t = load(20_000, 0.8);
        // validate() already walks the chain; assert the count again via a
        // full range scan that must traverse only sibling links.
        let mut seen = 0usize;
        t.range_scan(0, u128::MAX, |_, _| {
            seen += 1;
            true
        });
        assert_eq!(seen, 20_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn bulk_load_equals_incremental(
            keys in proptest::collection::btree_set(0u128..100_000, 0..800),
            fill in 0.5f64..1.0,
        ) {
            let sorted: Vec<(u128, u64)> =
                keys.iter().map(|&k| (k, (k % 251) as u64)).collect();
            let bulk = BTree::bulk_load(
                Arc::new(BufferPool::new(64)),
                sorted.clone(),
                fill,
            );
            bulk.validate().map_err(TestCaseError::fail)?;
            let mut inc: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
            for (k, v) in &sorted {
                inc.insert(*k, *v);
            }
            prop_assert_eq!(bulk.range(0, u128::MAX), inc.range(0, u128::MAX));
        }
    }
}
