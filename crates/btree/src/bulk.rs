//! Bottom-up bulk loading.
//!
//! Building an index over an existing user base one insert at a time costs
//! `O(n log n)` page touches and leaves pages ~69% full. Bulk loading packs
//! sorted entries into leaves at a chosen fill factor and builds the branch
//! levels bottom-up in one pass — the standard way real systems create an
//! index over existing data.
//!
//! The loader keeps every B+-tree invariant that [`crate::tree::BTree::validate`]
//! checks, including minimum occupancy of the rightmost node at each level
//! (fixed up by rebalancing the last two nodes when the tail would
//! underflow).

use std::sync::Arc;

use peb_storage::{BufferPool, PageId};

use crate::node::{self, branch_capacity, leaf_capacity};
use crate::tree::BTree;
use crate::value::RecordValue;

impl<V: RecordValue> BTree<V> {
    /// Build a tree from entries **sorted by strictly increasing key**.
    ///
    /// `fill` is the target fraction of each node's capacity (clamped to
    /// `[0.5, 1.0]`); the paper-era default of 1.0 maximizes leaf density,
    /// while lower values leave room for subsequent inserts.
    ///
    /// # Panics
    /// Panics if keys are not strictly increasing.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        entries: impl IntoIterator<Item = (u128, V)>,
        fill: f64,
    ) -> Self {
        let fill = fill.clamp(0.5, 1.0);
        let leaf_cap = leaf_capacity(V::SIZE);
        let leaf_target = ((leaf_cap as f64 * fill).floor() as usize).max(1);
        let vsize = V::SIZE;
        let stride = 16 + vsize;
        // Leaf-page writes of this load, carried onto the finished tree's
        // write ledger (a Cell because `seal` borrows it immutably).
        let leaf_writes = std::cell::Cell::new(0u64);

        // ---- leaf level ----
        // Entries for the leaf being assembled are buffered in memory and
        // written with a single page access when the leaf seals, so bulk
        // loading costs O(1) page touches per page, not per entry.
        let mut leaves: Vec<(u128, PageId)> = Vec::new(); // (first key, pid)
        let mut len = 0usize;
        let mut buf: Vec<(u128, V)> = Vec::with_capacity(leaf_target);
        let mut prev_key: Option<u128> = None;

        let seal = |buf: &mut Vec<(u128, V)>, leaves: &mut Vec<(u128, PageId)>| {
            if buf.is_empty() {
                return;
            }
            let pid = pool.allocate();
            pool.write(pid, |p| {
                node::init_leaf(p);
                for (i, (key, value)) in buf.iter().enumerate() {
                    let off = node::leaf_entry_off(i, vsize);
                    p.put_u128(off, *key);
                    value.write(p.bytes_mut(off + 16, vsize));
                }
                node::set_count(p, buf.len());
            });
            leaf_writes.set(leaf_writes.get() + 1);
            if let Some(&(_, prev_pid)) = leaves.last() {
                pool.write(prev_pid, |p| node::set_right_sibling(p, pid));
                leaf_writes.set(leaf_writes.get() + 1);
            }
            leaves.push((buf[0].0, pid));
            buf.clear();
        };

        for (key, value) in entries {
            if let Some(pk) = prev_key {
                assert!(pk < key, "bulk_load requires strictly increasing keys");
            }
            prev_key = Some(key);
            buf.push((key, value));
            len += 1;
            if buf.len() == leaf_target {
                seal(&mut buf, &mut leaves);
            }
        }
        seal(&mut buf, &mut leaves);

        // An empty input still needs a root leaf.
        if leaves.is_empty() {
            let root = pool.allocate();
            pool.write(root, node::init_leaf);
            let t = BTree::from_raw(pool, root, 1, 0, 1, 1);
            t.writes.bump_leaf_writes(1);
            return t;
        }

        // Fix a potentially underfull last leaf: merge it into its left
        // neighbor when both fit in one page, otherwise split the pair
        // evenly (total > capacity, so each half reaches the minimum).
        if leaves.len() > 1 {
            let last_count = pool.read(leaves[leaves.len() - 1].1, node::count);
            let min = leaf_cap / 2;
            if last_count < min {
                let (l_pid, r_pid) = (leaves[leaves.len() - 2].1, leaves[leaves.len() - 1].1);
                let l_count = pool.read(l_pid, node::count);
                let total = l_count + last_count;
                if total <= leaf_cap {
                    // Absorb the tail into the left leaf; drop the last one.
                    let bytes: Vec<u8> =
                        pool.read(r_pid, |p| p.bytes(node::HEADER, last_count * stride).to_vec());
                    pool.write(l_pid, |p| {
                        p.bytes_mut(node::leaf_entry_off(l_count, vsize), bytes.len())
                            .copy_from_slice(&bytes);
                        node::set_count(p, total);
                        node::set_right_sibling(p, PageId::INVALID);
                    });
                    leaf_writes.set(leaf_writes.get() + 1);
                    leaves.pop(); // r_pid leaks on the simulated disk
                } else {
                    // Even split: both halves are >= leaf_cap / 2.
                    let keep = total / 2 + (total % 2);
                    let move_n = l_count - keep;
                    let bytes: Vec<u8> = pool.read(l_pid, |p| {
                        p.bytes(node::leaf_entry_off(keep, vsize), move_n * stride).to_vec()
                    });
                    pool.write(r_pid, |p| {
                        p.shift(node::HEADER, node::HEADER + move_n * stride, last_count * stride);
                        p.bytes_mut(node::HEADER, bytes.len()).copy_from_slice(&bytes);
                        node::set_count(p, last_count + move_n);
                    });
                    pool.write(l_pid, |p| node::set_count(p, keep));
                    leaf_writes.set(leaf_writes.get() + 2);
                    let new_first = pool.read(r_pid, |p| node::leaf_key(p, 0, vsize));
                    let last = leaves.len() - 1;
                    leaves[last].0 = new_first;
                }
            }
        }

        // ---- branch levels ----
        let leaf_pages = leaves.len();
        let mut total_pages = leaf_pages;
        let mut level: Vec<(u128, PageId)> = leaves;
        let mut height = 1u32;
        let branch_target = ((branch_capacity() as f64 * fill).floor() as usize).max(2);

        while level.len() > 1 {
            height += 1;
            let mut next: Vec<(u128, PageId)> = Vec::new();
            let mut i = 0usize;
            // A branch with `c` entries has `c + 1` children; non-root
            // nodes need at least `min_children`.
            let max_children = branch_capacity() + 1;
            let min_children = branch_capacity() / 2 + 1;
            while i < level.len() {
                let rest = level.len() - i;
                let take = if rest <= branch_target + 1 {
                    rest // final node
                } else if rest - (branch_target + 1) >= min_children {
                    branch_target + 1 // a full-target node leaves a healthy tail
                } else if rest <= max_children {
                    rest // absorb the awkward tail into one over-target node
                } else {
                    rest - min_children // leave the tail exactly the minimum
                };
                debug_assert!(take <= max_children);
                let group = &level[i..i + take];
                let pid = pool.allocate();
                total_pages += 1;
                pool.write(pid, |p| {
                    node::init_branch(p, group[0].1);
                    for (slot, (key, child)) in group[1..].iter().enumerate() {
                        node::branch_insert_entry(p, slot, *key, *child);
                    }
                });
                next.push((group[0].0, pid));
                i += take;
            }
            level = next;
        }

        let root = level[0].1;
        let t = BTree::from_raw(pool, root, height, len, leaf_pages, total_pages);
        t.writes.bump_leaf_writes(leaf_writes.get());
        t
    }
}

/// Batches at least this fraction of the tree's size are merged by
/// rebuilding the tree through [`BTree::bulk_load`] instead of one
/// root-to-leaf descent per entry (see [`BTree::merge_sorted`]; the
/// message-buffer flush applies the same regime split).
pub(crate) const MERGE_REBUILD_RATIO: usize = 4;

/// Leaf fill factor used when a merge rebuilds the tree: slightly below
/// full so the next few single-key inserts do not split immediately.
pub(crate) const MERGE_FILL: f64 = 0.9;

impl<V: RecordValue> BTree<V> {
    /// Merge a batch of entries **sorted by strictly increasing key** into
    /// the tree, replacing the values of keys already present. Returns the
    /// number of *new* keys inserted (replacements are not counted).
    ///
    /// This is the batched-update entry point the sharded moving index
    /// builds on. Two regimes:
    ///
    /// * **Small batch** (less than `1/4` of the tree): one ordinary
    ///   insert per entry — the batch is too small for a rebuild to pay
    ///   off.
    /// * **Large batch**: the existing entries are read out in one
    ///   sequential leaf scan, two-way merged with the batch, and the tree
    ///   is rebuilt bottom-up with [`BTree::bulk_load`]. This touches each
    ///   leaf page once instead of doing `O(batch · height)` descents, and
    ///   leaves the tree densely packed. The old pages leak on the
    ///   simulated disk (it has no free list); leaked pages cost no I/O.
    ///
    /// # Panics
    /// Panics if the batch keys are not strictly increasing.
    pub fn merge_sorted(&mut self, entries: Vec<(u128, V)>) -> usize {
        // A merge is a structural operation: anything still in the message
        // buffer must reach the leaves first so the batch is ordered after
        // it (no-op when buffering is off or drained).
        self.flush_messages();
        if entries.is_empty() {
            return 0;
        }
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "merge_sorted requires strictly increasing keys"
        );

        if entries.len() * MERGE_REBUILD_RATIO < self.len() {
            let mut added = 0usize;
            for (k, v) in entries {
                if self.insert(k, v).is_none() {
                    added += 1;
                }
            }
            return added;
        }

        // Rebuild regime: sequential scan + two-way merge + bulk load.
        let old = self.range(0, u128::MAX);
        let old_len = old.len();
        let mut merged: Vec<(u128, V)> = Vec::with_capacity(old_len + entries.len());
        let mut new_it = entries.into_iter().peekable();
        for (k, v) in old {
            while let Some(&(nk, _)) = new_it.peek() {
                if nk < k {
                    merged.push(new_it.next().unwrap());
                } else {
                    break;
                }
            }
            if let Some(&(nk, _)) = new_it.peek() {
                if nk == k {
                    // Batch wins on a duplicate key: value replacement.
                    merged.push(new_it.next().unwrap());
                    continue;
                }
            }
            merged.push((k, v));
        }
        merged.extend(new_it);
        let added = merged.len() - old_len;
        let scans = self.scan_stats();
        let writes = self.write_stats();
        let buffered = self.msgs.buffered;
        let seq = self.msgs.seq;
        let tree_id = self.tree_id;
        let olc = self.olc_enabled();
        *self = BTree::bulk_load(Arc::clone(self.pool()), merged, MERGE_FILL);
        // The rebuild replaced `self` wholesale; the scan and write
        // ledgers outlive structural maintenance like every other counter
        // does (the rebuild's own leaf writes are part of this merge's
        // cost), and the buffering knob, sequence counter, and WAL
        // identity carry over (with the moved root logged for recovery).
        self.restore_scan_stats(scans);
        self.restore_write_stats(writes.merged(&self.write_stats()));
        self.msgs.buffered = buffered;
        self.msgs.seq = seq;
        self.tree_id = tree_id;
        if olc {
            self.set_olc_writes(true);
        }
        self.log_meta();
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(n: u128, fill: f64) -> BTree<u64> {
        BTree::bulk_load(Arc::new(BufferPool::new(128)), (0..n).map(|k| (k * 3, k as u64)), fill)
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let t = load(0, 1.0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.validate().expect("empty bulk-loaded tree valid");
    }

    #[test]
    fn single_leaf_worth_of_entries() {
        let t = load(100, 1.0);
        assert_eq!(t.len(), 100);
        assert_eq!(t.height(), 1);
        t.validate().expect("valid");
        assert_eq!(t.get(3 * 42), Some(42));
    }

    #[test]
    fn multi_level_loads_are_valid_and_complete() {
        for n in [171u128, 1_000, 50_000] {
            for fill in [0.6, 0.9, 1.0] {
                let t = load(n, fill);
                t.validate().unwrap_or_else(|e| panic!("n={n} fill={fill}: {e}"));
                assert_eq!(t.len(), n as usize);
                assert_eq!(t.range(0, u128::MAX).len(), n as usize);
                // Spot lookups.
                for k in (0..n).step_by((n as usize / 17).max(1)) {
                    assert_eq!(t.get(k * 3), Some(k as u64));
                    assert_eq!(t.get(k * 3 + 1), None);
                }
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_deletes() {
        let mut t = load(10_000, 1.0);
        for k in 0..10_000u128 {
            t.insert(k * 3 + 1, 999);
        }
        t.validate().expect("valid after post-load inserts");
        assert_eq!(t.len(), 20_000);
        for k in 0..10_000u128 {
            assert_eq!(t.delete(k * 3), Some(k as u64));
        }
        t.validate().expect("valid after interleaved deletes");
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn full_fill_uses_fewer_pages_than_incremental_build() {
        let n = 30_000u128;
        let bulk = load(n, 1.0);
        let mut incremental: BTree<u64> = BTree::new(Arc::new(BufferPool::new(128)));
        for k in 0..n {
            incremental.insert(k * 3, k as u64);
        }
        assert!(
            bulk.leaf_page_count() < incremental.leaf_page_count(),
            "bulk {} vs incremental {}",
            bulk.leaf_page_count(),
            incremental.leaf_page_count()
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_input_panics() {
        let _ = BTree::<u64>::bulk_load(
            Arc::new(BufferPool::new(16)),
            vec![(5u128, 0u64), (3, 0)],
            1.0,
        );
    }

    #[test]
    fn sibling_chain_is_complete_after_bulk_load() {
        let t = load(20_000, 0.8);
        // validate() already walks the chain; assert the count again via a
        // full range scan that must traverse only sibling links.
        let mut seen = 0usize;
        t.range_scan(0, u128::MAX, |_, _| {
            seen += 1;
            true
        });
        assert_eq!(seen, 20_000);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;

    #[test]
    fn merge_into_empty_tree() {
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
        let added = t.merge_sorted((0..500u128).map(|k| (k * 2, k as u64)).collect());
        assert_eq!(added, 500);
        assert_eq!(t.len(), 500);
        t.validate().expect("valid after merge into empty tree");
        assert_eq!(t.get(400), Some(200));
    }

    #[test]
    fn merge_interleaves_and_replaces() {
        // Evens pre-loaded; merge a mix of odds (new) and evens (replaced).
        let mut t = BTree::bulk_load(
            Arc::new(BufferPool::new(64)),
            (0..2_000u128).map(|k| (k * 2, 1u64)),
            1.0,
        );
        let batch: Vec<(u128, u64)> = (0..2_000u128).map(|k| (k * 2 + k % 2, 2u64)).collect();
        let news = batch.iter().filter(|(k, _)| k % 2 == 1).count();
        let added = t.merge_sorted(batch);
        assert_eq!(added, news);
        assert_eq!(t.len(), 2_000 + news);
        t.validate().expect("valid after interleaved merge");
        assert_eq!(t.get(0), Some(2), "replaced value");
        assert_eq!(t.get(3), Some(2), "inserted value");
        assert_eq!(t.get(2), Some(1), "untouched value");
    }

    #[test]
    fn small_batch_takes_insert_path_large_batch_rebuilds() {
        let mut t = BTree::bulk_load(
            Arc::new(BufferPool::new(64)),
            (0..10_000u128).map(|k| (k * 3, 0u64)),
            1.0,
        );
        // Small batch: < len/4 -> per-key inserts, tree stays valid.
        assert_eq!(t.merge_sorted((0..100u128).map(|k| (k * 3 + 1, 1u64)).collect()), 100);
        t.validate().expect("valid after small merge");
        // Large batch: rebuild path.
        let before_pages = t.leaf_page_count();
        assert_eq!(t.merge_sorted((0..9_000u128).map(|k| (k * 3 + 2, 2u64)).collect()), 9_000);
        t.validate().expect("valid after rebuild merge");
        assert_eq!(t.len(), 19_100);
        assert!(t.leaf_page_count() > before_pages);
        assert!(t.stats().avg_leaf_fill > 0.8, "rebuild packs leaves densely");
    }

    #[test]
    fn merge_equals_insert_loop() {
        let keys: Vec<u128> = (0..4_000u128).map(|k| (k * 2_654_435_761) % 100_000).collect();
        let sorted: Vec<(u128, u64)> = {
            let mut s: Vec<u128> = keys.clone();
            s.sort_unstable();
            s.dedup();
            s.into_iter().map(|k| (k, (k % 97) as u64)).collect()
        };
        let mut merged = BTree::bulk_load(
            Arc::new(BufferPool::new(64)),
            (0..1_000u128).map(|k| (k * 7, 5u64)),
            1.0,
        );
        let mut looped = BTree::bulk_load(
            Arc::new(BufferPool::new(64)),
            (0..1_000u128).map(|k| (k * 7, 5u64)),
            1.0,
        );
        merged.merge_sorted(sorted.clone());
        for (k, v) in sorted {
            looped.insert(k, v);
        }
        assert_eq!(merged.len(), looped.len());
        assert_eq!(merged.range(0, u128::MAX), looped.range(0, u128::MAX));
    }

    #[test]
    fn merge_costs_fewer_page_touches_than_insert_loop() {
        // The whole point of the batched path: same final contents, fewer
        // logical page accesses (deterministic, unlike wall-clock).
        let n = 8_000u128;
        let build = |cap| {
            BTree::bulk_load(Arc::new(BufferPool::new(cap)), (0..n).map(|k| (k * 2, 0u64)), 1.0)
        };
        let batch: Vec<(u128, u64)> = (0..n).map(|k| (k * 2 + 1, 1u64)).collect();

        let mut merged = build(64);
        merged.pool().reset_stats();
        merged.merge_sorted(batch.clone());
        let merged_io = merged.pool().stats().logical_reads;

        let mut looped = build(64);
        looped.pool().reset_stats();
        for (k, v) in batch {
            looped.insert(k, v);
        }
        let looped_io = looped.pool().stats().logical_reads;
        assert!(
            merged_io < looped_io / 2,
            "merge {merged_io} accesses vs loop {looped_io}: batched path must be cheaper"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn bulk_load_equals_incremental(
            keys in proptest::collection::btree_set(0u128..100_000, 0..800),
            fill in 0.5f64..1.0,
        ) {
            let sorted: Vec<(u128, u64)> =
                keys.iter().map(|&k| (k, (k % 251) as u64)).collect();
            let bulk = BTree::bulk_load(
                Arc::new(BufferPool::new(64)),
                sorted.clone(),
                fill,
            );
            bulk.validate().map_err(TestCaseError::fail)?;
            let mut inc: BTree<u64> = BTree::new(Arc::new(BufferPool::new(64)));
            for (k, v) in &sorted {
                inc.insert(*k, *v);
            }
            prop_assert_eq!(bulk.range(0, u128::MAX), inc.range(0, u128::MAX));
        }
    }
}
