//! Interval coalescing and scan-path counters for the fused
//! multi-interval read path ([`BTree::multi_range_scan`]).
//!
//! The Bx/PEB query algorithms decompose one query into many key
//! intervals — (partition × SV group × Z-range) — and the per-interval
//! path pays one root-to-leaf descent per interval. The fused path sorts
//! and coalesces the whole interval set once ([`coalesce_intervals`]),
//! descends once, and walks the leaf sibling chain across intervals,
//! re-descending through a cached path only when the next interval lies
//! beyond the current leaf's fence key. [`ScanStats`] is the
//! deterministic ledger of that difference: descents performed and branch
//! pages served from the descent cache instead of the buffer pool.
//!
//! [`BTree::multi_range_scan`]: crate::BTree::multi_range_scan

use std::sync::atomic::{AtomicU64, Ordering};

/// How a deadline-aware scan ended — the typed answer of
/// [`BTree::try_multi_range_scan_deadline`], which must distinguish "the
/// tree ran out of entries" from "the visitor had enough" from "the
/// budget ran out" (the caller's partial-result tagging depends on it).
///
/// [`BTree::try_multi_range_scan_deadline`]: crate::BTree::try_multi_range_scan_deadline
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanTermination {
    /// Every in-union entry was visited.
    Complete,
    /// The visitor returned `false` — a voluntary early exit (enough
    /// candidates resolved), not an overload symptom.
    Stopped,
    /// The deadline expired at a checkpoint: a leaf-page boundary or an
    /// entry visit. Entries already emitted stand (the scan emits in key
    /// order, so the prefix is exact); everything beyond is unvisited.
    Expired,
}

impl ScanTermination {
    /// Whether the scan visited everything.
    pub fn is_complete(&self) -> bool {
        matches!(self, ScanTermination::Complete)
    }
}

/// Deterministic counters of a B+-tree's scan read path, the companion of
/// the buffer pool's [`peb_storage::IoStats`] for the fused-scan
/// experiment: `descents` tells how often the tree was entered by
/// fetching the **root page through the pool** (once per
/// [`BTree::range_scan`] call; on the fused path only when the cached
/// root snapshot went stale — a re-route served from the descent cache is
/// not a descent, it is the saving), and `cached_branch_pages` how many
/// branch-page consultations the fused path served from its still-valid
/// descent cache — page touches that never reached the pool and
/// therefore never landed on the I/O ledger.
///
/// [`BTree::range_scan`]: crate::BTree::range_scan
/// [`BTree::multi_range_scan`]: crate::BTree::multi_range_scan
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Root-to-leaf descents performed by the scan API.
    pub descents: u64,
    /// Branch-page consultations served from the fused path's descent
    /// cache (validated against the pool's page versions, costing no pool
    /// traffic).
    pub cached_branch_pages: u64,
}

impl ScanStats {
    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &ScanStats) -> ScanStats {
        ScanStats {
            descents: self.descents + other.descents,
            cached_branch_pages: self.cached_branch_pages + other.cached_branch_pages,
        }
    }
}

/// The tree-resident atomic half of [`ScanStats`] (scans take `&self`).
#[derive(Default)]
pub(crate) struct ScanCounters {
    descents: AtomicU64,
    cached_pages: AtomicU64,
}

impl ScanCounters {
    pub(crate) fn bump_descent(&self) {
        self.descents.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_cached(&self) {
        self.cached_pages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ScanStats {
        ScanStats {
            descents: self.descents.load(Ordering::Relaxed),
            cached_branch_pages: self.cached_pages.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn restore(&self, s: ScanStats) {
        self.descents.store(s.descents, Ordering::Relaxed);
        self.cached_pages.store(s.cached_branch_pages, Ordering::Relaxed);
    }
}

/// Sort an inclusive interval list and merge overlapping or adjacent
/// pairs; reversed pairs (`lo > hi`) are dropped. The result is the
/// canonical form [`BTree::multi_range_scan`] executes: sorted, pairwise
/// disjoint, non-adjacent intervals covering exactly the input's union —
/// so the fused scan visits every key of the union once, in ascending
/// order, no matter how redundantly the caller assembled the set.
///
/// [`BTree::multi_range_scan`]: crate::BTree::multi_range_scan
///
/// ```
/// use peb_btree::coalesce_intervals;
///
/// let runs = coalesce_intervals(&[(40, 50), (10, 20), (21, 30), (45, 60), (9, 3)]);
/// assert_eq!(runs, vec![(10, 30), (40, 60)]);
/// ```
pub fn coalesce_intervals(intervals: &[(u128, u128)]) -> Vec<(u128, u128)> {
    let mut runs: Vec<(u128, u128)> =
        intervals.iter().copied().filter(|(lo, hi)| lo <= hi).collect();
    runs.sort_unstable();
    let mut out: Vec<(u128, u128)> = Vec::with_capacity(runs.len());
    for (lo, hi) in runs {
        match out.last_mut() {
            Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_merges_overlap_adjacency_and_drops_reversed() {
        assert!(coalesce_intervals(&[]).is_empty());
        assert!(coalesce_intervals(&[(5, 1)]).is_empty());
        assert_eq!(coalesce_intervals(&[(1, 5)]), vec![(1, 5)]);
        // Overlap, containment, adjacency, and a genuine gap.
        assert_eq!(
            coalesce_intervals(&[(10, 20), (15, 18), (21, 25), (40, 41), (0, 0)]),
            vec![(0, 0), (10, 25), (40, 41)]
        );
        // Full-domain edge: no overflow at u128::MAX.
        assert_eq!(coalesce_intervals(&[(0, u128::MAX), (5, 10)]), vec![(0, u128::MAX)]);
        assert_eq!(
            coalesce_intervals(&[(u128::MAX, u128::MAX), (0, 1)]),
            vec![(0, 1), (u128::MAX, u128::MAX)]
        );
    }

    #[test]
    fn scan_stats_merge_and_counters_roundtrip() {
        let a = ScanStats { descents: 3, cached_branch_pages: 7 };
        let b = ScanStats { descents: 1, cached_branch_pages: 2 };
        assert_eq!(a.merged(&b), ScanStats { descents: 4, cached_branch_pages: 9 });
        let c = ScanCounters::default();
        c.bump_descent();
        c.bump_cached();
        c.bump_cached();
        assert_eq!(c.snapshot(), ScanStats { descents: 1, cached_branch_pages: 2 });
        c.restore(a);
        assert_eq!(c.snapshot(), a);
    }
}

#[cfg(test)]
mod fused_tests {
    use super::*;
    use crate::BTree;
    use peb_storage::BufferPool;
    use std::sync::Arc;

    fn tree_with(cap: usize, n: u128) -> BTree<u64> {
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(cap)));
        for i in 0..n {
            // Multiplicative shuffle, stride-3 keys: gaps everywhere.
            let k = ((i * 2_654_435_761) % (1 << 22)) * 3;
            t.insert(k, i as u64);
        }
        t
    }

    /// The per-interval reference: one `range_scan` per coalesced run.
    fn per_interval(t: &BTree<u64>, runs: &[(u128, u128)]) -> Vec<(u128, u64)> {
        let mut out = Vec::new();
        for (lo, hi) in runs {
            t.range_scan(*lo, *hi, |k, v| {
                out.push((k, v));
                true
            });
        }
        out
    }

    #[test]
    fn fused_matches_per_interval_and_spends_less_io() {
        // The deterministic acceptance check at unit scale: same visit
        // sequence, fewer logical page accesses, >= 2x fewer descents.
        let t = tree_with(4096, 30_000);
        assert!(t.height() >= 3, "height {}", t.height());
        // A realistic interval set: many short runs, some overlapping,
        // unsorted — like (SV group x Z-range) products.
        let intervals: Vec<(u128, u128)> = (0..120u128)
            .map(|j| {
                let base = (j * 97_003) % (3 << 22);
                (base, base + 400 + (j % 7) * 150)
            })
            .collect();
        let runs = coalesce_intervals(&intervals);
        assert!(runs.len() > 40, "coalescing must leave a real multi-interval set");

        // Warm both paths once so the measurement window is hit-only and
        // deterministic, then measure per-interval.
        let pool = Arc::clone(t.pool());
        per_interval(&t, &runs);
        pool.reset_stats();
        t.reset_scan_stats();
        let want = per_interval(&t, &runs);
        let per_io = pool.stats();
        let per_scans = t.scan_stats();
        assert_eq!(per_scans.descents as usize, runs.len(), "one descent per interval");

        // Measure fused on the identical warm pool.
        pool.reset_stats();
        t.reset_scan_stats();
        let mut got = Vec::new();
        assert!(t.multi_range_scan(&intervals, |k, v| {
            got.push((k, v));
            true
        }));
        let fused_io = pool.stats();
        let fused_scans = t.scan_stats();

        assert_eq!(got, want, "fused scan must visit the identical (key, record) sequence");
        assert!(
            fused_io.logical_reads <= per_io.logical_reads,
            "fused logical I/O {} exceeds per-interval {}",
            fused_io.logical_reads,
            per_io.logical_reads
        );
        assert!(
            fused_io.total_io() <= per_io.total_io(),
            "fused physical I/O {} exceeds per-interval {}",
            fused_io.total_io(),
            per_io.total_io()
        );
        assert!(
            fused_scans.descents * 2 <= per_scans.descents,
            "descents {} not halved vs {}",
            fused_scans.descents,
            per_scans.descents
        );
        assert!(
            fused_scans.cached_branch_pages > 0,
            "re-routes must reuse the cached descent path"
        );
        // The headline claim: strictly fewer page touches, not a tie.
        assert!(
            fused_io.logical_reads < per_io.logical_reads,
            "fusing must actually shrink the ledger ({} vs {})",
            fused_io.logical_reads,
            per_io.logical_reads
        );
    }

    #[test]
    fn fused_scan_runs_lock_free_on_a_warm_pool() {
        let t = tree_with(4096, 20_000);
        let pool = Arc::clone(t.pool());
        let intervals: Vec<(u128, u128)> =
            (0..40u128).map(|j| (j * 200_003, j * 200_003 + 2_000)).collect();
        t.multi_range_scan(&intervals, |_, _| true); // warm + publish
        pool.reset_stats();
        let mut n = 0usize;
        t.multi_range_scan(&intervals, |_, _| {
            n += 1;
            true
        });
        assert!(n > 0, "the interval set must hit stored keys");
        let locks = pool.lock_stats();
        assert_eq!(locks.lock_acquisitions, 0, "warm fused scan must not touch a pool mutex");
        assert!(locks.optimistic_hits > 0);
        assert!(pool.stats().logical_reads > 0, "touches still land on the I/O ledger");
    }

    #[test]
    fn early_exit_and_degenerate_sets() {
        let t = tree_with(256, 2_000);
        // Empty set, reversed-only set: complete immediately.
        assert!(t.multi_range_scan(&[], |_, _| true));
        assert!(t.multi_range_scan(&[(9, 3)], |_, _| true));
        // Early exit propagates.
        let mut seen = 0usize;
        let completed = t.multi_range_scan(&[(0, u128::MAX)], |_, _| {
            seen += 1;
            seen < 5
        });
        assert!(!completed);
        assert_eq!(seen, 5);
        // Single interval behaves exactly like range_scan.
        let a = t.range(1_000, 500_000);
        let mut b = Vec::new();
        t.multi_range_scan(&[(1_000, 500_000)], |k, v| {
            b.push((k, v));
            true
        });
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_single_leaf_trees() {
        let empty: BTree<u64> = BTree::new(Arc::new(BufferPool::new(8)));
        assert!(empty.multi_range_scan(&[(0, u128::MAX), (5, 10)], |_, _| true));
        let mut tiny: BTree<u64> = BTree::new(Arc::new(BufferPool::new(8)));
        for k in [4u128, 8, 15, 16, 23, 42] {
            tiny.insert(k, k as u64);
        }
        assert_eq!(tiny.height(), 1);
        let mut got = Vec::new();
        tiny.multi_range_scan(&[(40, 100), (0, 5), (15, 16)], |k, _| {
            got.push(k);
            true
        });
        assert_eq!(got, vec![4, 15, 16, 42]);
    }

    #[test]
    fn thrashing_pool_stays_correct_with_locked_fallbacks() {
        // A 2-frame pool cannot keep the descent path resident: cached
        // snapshots go stale (evicted pages fail validation) and leaves
        // read through the locked path. Results must not change.
        let t = tree_with(2, 8_000);
        let intervals: Vec<(u128, u128)> =
            (0..25u128).map(|j| (j * 480_007, j * 480_007 + 9_000)).collect();
        let runs = coalesce_intervals(&intervals);
        let want = per_interval(&t, &runs);
        let mut got = Vec::new();
        t.multi_range_scan(&intervals, |k, v| {
            got.push((k, v));
            true
        });
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use crate::BTree;
    use peb_common::Deadline;
    use peb_storage::BufferPool;
    use std::sync::Arc;

    fn tree_with(cap: usize, n: u128) -> BTree<u64> {
        let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(cap)));
        for i in 0..n {
            let k = ((i * 2_654_435_761) % (1 << 20)) * 3;
            t.insert(k, i as u64);
        }
        t
    }

    fn full(t: &BTree<u64>, intervals: &[(u128, u128)]) -> Vec<(u128, u64)> {
        let mut out = Vec::new();
        t.multi_range_scan(intervals, |k, v| {
            out.push((k, v));
            true
        });
        out
    }

    #[test]
    fn unbounded_deadline_is_a_complete_scan() {
        let t = tree_with(4096, 10_000);
        let intervals = [(0u128, 300_000), (900_000, 1_200_000)];
        let want = full(&t, &intervals);
        let clock = t.pool().clock().clone();
        let mut got = Vec::new();
        let term = t
            .try_multi_range_scan_deadline(&intervals, &Deadline::unbounded(&clock), |k, v| {
                got.push((k, v));
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Complete);
        assert!(term.is_complete());
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn voluntary_stop_is_not_an_expiry() {
        let t = tree_with(4096, 10_000);
        let clock = t.pool().clock().clone();
        let mut seen = 0usize;
        let term = t
            .try_multi_range_scan_deadline(
                &[(0, u128::MAX)],
                &Deadline::unbounded(&clock),
                |_, _| {
                    seen += 1;
                    seen < 7
                },
            )
            .unwrap();
        assert_eq!(term, ScanTermination::Stopped);
        assert_eq!(seen, 7);
    }

    #[test]
    fn expiry_yields_an_exact_prefix_with_bounded_overshoot() {
        let t = tree_with(4096, 10_000);
        let intervals = [(0u128, u128::MAX)];
        let want = full(&t, &intervals); // also warms the pool
        let clock = t.pool().clock().clone();
        let deadline = Deadline::after(&clock, 6);
        let mut got = Vec::new();
        let term = t
            .try_multi_range_scan_deadline(&intervals, &deadline, |k, v| {
                got.push((k, v));
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Expired);
        assert!(deadline.expired());
        // The served prefix is exact: same order, same records, truncated.
        assert!(!got.is_empty(), "a 6-tick budget must visit some pages");
        assert!(got.len() < want.len(), "budget must bite before the scan ends");
        assert_eq!(got[..], want[..got.len()]);
        // Cooperative cancellation epsilon: checkpoints fire at every
        // leaf boundary and entry visit, so the clock runs at most one
        // page visit past the deadline (two logical accesses when the
        // versioned read falls back to the locked path).
        assert!(deadline.overshoot() <= 2, "overshoot {} ticks", deadline.overshoot());
    }

    #[test]
    fn zero_budget_expires_before_any_page_is_read() {
        let t = tree_with(4096, 5_000);
        let clock = t.pool().clock().clone();
        let deadline = Deadline::after(&clock, 0);
        let before = t.pool().stats().logical_reads;
        let mut seen = 0usize;
        let term = t
            .try_multi_range_scan_deadline(&[(0, u128::MAX)], &deadline, |_, _| {
                seen += 1;
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Expired);
        assert_eq!(seen, 0);
        assert_eq!(t.pool().stats().logical_reads, before, "checkpoint precedes the first read");
    }

    #[test]
    fn overlay_path_honors_deadlines_and_completes_unbounded() {
        // Pending buffered messages route the scan through the overlay
        // merge; both termination kinds must survive that composition.
        let mut t = tree_with(512, 4_000);
        t.set_buffered_writes(true);
        for i in 0..30u128 {
            t.buffered_insert(i * 3 + 1, 0xBEEF + i as u64);
        }
        assert!(t.pending_messages() > 0, "messages must still be parked");
        let intervals = [(0u128, u128::MAX)];
        let mut want = Vec::new();
        assert!(t
            .try_multi_range_scan(&intervals, |k, v| {
                want.push((k, v));
                true
            })
            .unwrap());
        let clock = t.pool().clock().clone();
        let mut got = Vec::new();
        let term = t
            .try_multi_range_scan_deadline(&intervals, &Deadline::unbounded(&clock), |k, v| {
                got.push((k, v));
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Complete);
        assert_eq!(got, want);

        let deadline = Deadline::after(&clock, 4);
        let mut part = Vec::new();
        let term = t
            .try_multi_range_scan_deadline(&intervals, &deadline, |k, v| {
                part.push((k, v));
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Expired);
        assert!(part.len() < want.len());
        assert_eq!(part[..], want[..part.len()]);
    }

    #[test]
    fn olc_scan_path_checks_deadlines_between_runs() {
        let mut t = tree_with(1024, 6_000);
        t.set_olc_writes(true);
        let intervals: Vec<(u128, u128)> =
            (0..30u128).map(|j| (j * 100_003, j * 100_003 + 4_000)).collect();
        let want = full(&t, &intervals);
        assert!(!want.is_empty());
        let clock = t.pool().clock().clone();
        let deadline = Deadline::after(&clock, 5);
        let mut got = Vec::new();
        let term = t
            .try_multi_range_scan_deadline(&intervals, &deadline, |k, v| {
                got.push((k, v));
                true
            })
            .unwrap();
        assert_eq!(term, ScanTermination::Expired);
        assert!(got.len() < want.len());
        assert_eq!(got[..], want[..got.len()]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn coalesced_union_matches_model(
            ivs in proptest::collection::vec((0u128..120, 0u128..120), 0..24)
        ) {
            let runs = coalesce_intervals(&ivs);
            // Sorted, disjoint, non-adjacent.
            for w in runs.windows(2) {
                prop_assert!(w[0].1 + 1 < w[1].0, "not maximal: {runs:?}");
            }
            // Exact same covered set as the naive union.
            let mut model = [false; 121];
            for (lo, hi) in &ivs {
                for v in (*lo)..=(*hi).min(120) {
                    if lo <= hi { model[v as usize] = true; }
                }
            }
            for v in 0u128..=120 {
                let covered = runs.iter().any(|(lo, hi)| v >= *lo && v <= *hi);
                prop_assert_eq!(covered, model[v as usize], "value {}", v);
            }
        }

        /// The tentpole equivalence property: over random trees and
        /// random interval sets, the fused scan visits exactly the
        /// (key, record) sequence the per-interval scans of the coalesced
        /// set visit — and never spends more logical page reads.
        #[test]
        fn fused_equals_per_interval_over_random_trees(
            keys in proptest::collection::btree_set(0u128..6_000, 0..400),
            ivs in proptest::collection::vec((0u128..6_000, 0u128..400), 1..30),
            cap in 2usize..64,
        ) {
            use crate::BTree;
            use peb_storage::BufferPool;
            use std::sync::Arc;

            let mut t: BTree<u64> = BTree::new(Arc::new(BufferPool::new(cap)));
            for &k in &keys {
                t.insert(k, (k as u64) ^ 0xABCD);
            }
            let intervals: Vec<(u128, u128)> =
                ivs.iter().map(|(lo, len)| (*lo, lo + len)).collect();
            let runs = coalesce_intervals(&intervals);

            t.pool().reset_stats();
            let mut want = Vec::new();
            for (lo, hi) in &runs {
                t.range_scan(*lo, *hi, |k, v| {
                    want.push((k, v));
                    true
                });
            }
            let per_logical = t.pool().stats().logical_reads;

            t.pool().reset_stats();
            let mut got = Vec::new();
            prop_assert!(t.multi_range_scan(&intervals, |k, v| {
                got.push((k, v));
                true
            }));
            let fused_logical = t.pool().stats().logical_reads;

            prop_assert_eq!(got, want);
            // Warmth differs between the passes (per-interval ran first on
            // a colder pool), but logical reads are residency-independent:
            // the fused bound must hold for any tree, pool, interval set.
            prop_assert!(
                fused_logical <= per_logical,
                "fused {} > per-interval {} logical reads", fused_logical, per_logical
            );
            // Oracle cross-check against the key set itself.
            let oracle: Vec<u128> = keys
                .iter()
                .copied()
                .filter(|k| runs.iter().any(|(lo, hi)| k >= lo && k <= hi))
                .collect();
            let got_keys: Vec<u128> = got.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(got_keys, oracle);
        }
    }
}
