//! The query I/O cost model of Sec 6 (Eq. 6 and Eq. 7).
//!
//! The model focuses on the sequence-value assignment, the dominant factor
//! of PEB-tree query cost. With `Np` policies per user, grouping factor θ,
//! `Nl` leaf pages, `N` users and space side `L`:
//!
//! ```text
//! C1 = 1 + min(Np, Nl) − Np^θ                                   (Eq. 6)
//! C  = 1 + (a1·N/L² + a2) · (min(Np, Nl) − Np^θ)                (Eq. 7)
//! ```
//!
//! `Np^θ` captures the benefit of grouping: at θ = 1 the friends of any
//! issuer live in a handful of co-located leaves, while at θ = 0 each of
//! the `Np` related users may cost its own leaf access. The linear density
//! term `(a1·N/L² + a2)` captures how larger populations spread related
//! users across more leaves. `a1`/`a2` are obtained from two sample
//! measurements on datasets with the same location distribution
//! ("for example, a1 = 10 and a2 = 0.3 for uniform data").

#![warn(missing_docs)]

/// Calibrated linear-density coefficients of Eq. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModelParams {
    /// Density slope `a1`: how fast cost grows with users per unit area.
    pub a1: f64,
    /// Density intercept `a2`: the residual per-leaf spread at density 0.
    pub a2: f64,
}

impl Default for CostModelParams {
    /// The paper's example calibration for uniform data.
    fn default() -> Self {
        CostModelParams { a1: 10.0, a2: 0.3 }
    }
}

/// Inputs of the cost model for one workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct CostInputs {
    /// Total number of users `N`.
    pub num_users: usize,
    /// Policies per user `Np`.
    pub policies_per_user: usize,
    /// Grouping factor θ ∈ [0, 1].
    pub theta: f64,
    /// Number of leaf pages `Nl` in the index.
    pub leaf_pages: usize,
    /// Side length `L` of the space.
    pub side: f64,
}

/// Eq. 6: the grouping-only estimate `C1`.
pub fn c1(inputs: &CostInputs) -> f64 {
    let np = inputs.policies_per_user as f64;
    let nl = inputs.leaf_pages as f64;
    let benefit = np.powf(inputs.theta);
    1.0 + np.min(nl) - benefit
}

/// Eq. 7: the full estimate `C`, with the density-scaled linear term.
pub fn cost(inputs: &CostInputs, params: &CostModelParams) -> f64 {
    let np = inputs.policies_per_user as f64;
    let nl = inputs.leaf_pages as f64;
    let density = inputs.num_users as f64 / (inputs.side * inputs.side);
    let benefit = np.powf(inputs.theta);
    1.0 + (params.a1 * density + params.a2) * (np.min(nl) - benefit)
}

/// Fewest Z-intervals a fused query keeps per partition regardless of the
/// cost-model estimate (very coarse decompositions over-approximate the
/// window too aggressively).
pub const MIN_QUERY_INTERVALS: usize = 4;

/// Most Z-intervals a fused query keeps per partition: beyond this the
/// interval set itself (candidates × SV groups × partitions) dominates
/// query setup cost without adding distinct candidate leaves.
pub const MAX_QUERY_INTERVALS: usize = 64;

/// The cost-model pick for how many Z-intervals a fused query scan
/// should keep per partition (the `max_ranges` handed to
/// `peb_zorder::coarsen`).
///
/// Eq. 6's `min(Np, Nl)` clamp is the rationale: a query's candidates
/// occupy at most `min(candidates, leaf_pages)` distinct leaves, so
/// probing more intervals than that adds interval bookkeeping and leaf
/// probes without ever adding a candidate leaf — coarsening down to the
/// clamp trades those extra probes for a few false-positive records that
/// refinement discards anyway. The result is clamped to
/// [[`MIN_QUERY_INTERVALS`], [`MAX_QUERY_INTERVALS`]].
///
/// ```
/// use peb_costmodel::interval_budget;
///
/// // 20 friends over a 130-leaf tree: the friends bound the budget.
/// assert_eq!(interval_budget(20, 130), 20);
/// // A tiny tree bounds it the other way (floored at the minimum).
/// assert_eq!(interval_budget(500, 2), 4);
/// // Huge on both axes: capped.
/// assert_eq!(interval_budget(10_000, 9_000), 64);
/// ```
pub fn interval_budget(candidates: usize, leaf_pages: usize) -> usize {
    candidates.min(leaf_pages).clamp(MIN_QUERY_INTERVALS, MAX_QUERY_INTERVALS)
}

/// Calibrate `a1`/`a2` from two measured sample points `(inputs, observed
/// I/O)` that share `Np`, θ and the location distribution but differ in `N`
/// (the procedure the paper describes). Returns `None` if the system is
/// degenerate (same density or zero base term).
pub fn calibrate(
    (in1, c1_obs): (&CostInputs, f64),
    (in2, c2_obs): (&CostInputs, f64),
) -> Option<CostModelParams> {
    let base = |i: &CostInputs| {
        let np = i.policies_per_user as f64;
        (np.min(i.leaf_pages as f64)) - np.powf(i.theta)
    };
    let (b1, b2) = (base(in1), base(in2));
    if b1 == 0.0 || b2 == 0.0 {
        return None;
    }
    let d1 = in1.num_users as f64 / (in1.side * in1.side);
    let d2 = in2.num_users as f64 / (in2.side * in2.side);
    if (d1 - d2).abs() < f64::EPSILON {
        return None;
    }
    // (c_obs − 1) / b = a1·d + a2 — two linear equations in (a1, a2).
    let y1 = (c1_obs - 1.0) / b1;
    let y2 = (c2_obs - 1.0) / b2;
    let a1 = (y1 - y2) / (d1 - d2);
    let a2 = y1 - a1 * d1;
    Some(CostModelParams { a1, a2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize, np: usize, theta: f64) -> CostInputs {
        CostInputs { num_users: n, policies_per_user: np, theta, leaf_pages: 800, side: 1000.0 }
    }

    #[test]
    fn c1_perfect_grouping_costs_one_page() {
        // θ = 1: Np − Np^1 = 0, so the model predicts the minimum cost of a
        // single leaf access.
        assert_eq!(c1(&inputs(60_000, 50, 1.0)), 1.0);
    }

    #[test]
    fn c1_no_grouping_upper_bounds_at_np() {
        // θ = 0: Np^0 = 1 -> C1 = Np, every related user in its own leaf.
        assert_eq!(c1(&inputs(60_000, 50, 0.0)), 50.0);
    }

    #[test]
    fn c1_clamps_by_leaf_count() {
        // More policies than leaves: the index itself bounds the cost.
        let mut i = inputs(60_000, 5_000, 0.0);
        i.leaf_pages = 700;
        assert_eq!(c1(&i), 1.0 + 700.0 - 1.0);
    }

    #[test]
    fn cost_decreases_with_theta() {
        let p = CostModelParams::default();
        let costs: Vec<f64> =
            [0.0, 0.3, 0.5, 0.7, 1.0].iter().map(|t| cost(&inputs(60_000, 50, *t), &p)).collect();
        assert!(costs.windows(2).all(|w| w[0] >= w[1]), "θ up ⇒ cost down: {costs:?}");
    }

    #[test]
    fn cost_increases_linearly_with_n() {
        let p = CostModelParams::default();
        let c10 = cost(&inputs(10_000, 50, 0.7), &p);
        let c50 = cost(&inputs(50_000, 50, 0.7), &p);
        let c90 = cost(&inputs(90_000, 50, 0.7), &p);
        assert!(c10 < c50 && c50 < c90);
        // Linear: equal N-steps give equal cost-steps.
        assert!(((c50 - c10) - (c90 - c50)).abs() < 1e-9);
    }

    #[test]
    fn cost_increases_with_np() {
        let p = CostModelParams::default();
        let a = cost(&inputs(60_000, 10, 0.7), &p);
        let b = cost(&inputs(60_000, 100, 0.7), &p);
        assert!(a < b);
    }

    #[test]
    fn calibration_recovers_known_coefficients() {
        let truth = CostModelParams { a1: 7.5, a2: 0.42 };
        let i1 = inputs(20_000, 50, 0.7);
        let i2 = inputs(80_000, 50, 0.7);
        let c1_obs = cost(&i1, &truth);
        let c2_obs = cost(&i2, &truth);
        let got = calibrate((&i1, c1_obs), (&i2, c2_obs)).unwrap();
        assert!((got.a1 - truth.a1).abs() < 1e-9);
        assert!((got.a2 - truth.a2).abs() < 1e-9);
    }

    #[test]
    fn interval_budget_follows_the_eq6_clamp() {
        // Monotone in both axes inside the clamp window...
        assert!(interval_budget(10, 800) <= interval_budget(30, 800));
        assert!(interval_budget(200, 10) <= interval_budget(200, 40));
        // ...equal to min(candidates, leaves) there...
        assert_eq!(interval_budget(33, 800), 33);
        assert_eq!(interval_budget(800, 33), 33);
        // ...and clamped outside it.
        assert_eq!(interval_budget(0, 0), MIN_QUERY_INTERVALS);
        assert_eq!(interval_budget(usize::MAX, usize::MAX), MAX_QUERY_INTERVALS);
    }

    #[test]
    fn calibration_rejects_degenerate_samples() {
        let i1 = inputs(60_000, 50, 0.7);
        assert!(calibrate((&i1, 5.0), (&i1, 5.0)).is_none(), "same density");
        let j1 = inputs(10_000, 1, 0.0); // Np − Np^0 = 0
        let j2 = inputs(20_000, 1, 0.0);
        assert!(calibrate((&j1, 5.0), (&j2, 6.0)).is_none(), "zero base term");
    }
}
