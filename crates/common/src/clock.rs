//! Virtual time for deterministic overload experiments.
//!
//! Wall clocks make overload behavior a property of the machine: a loaded
//! CI runner "slows the disk down" in a way no test can assert on. The
//! serving layer instead measures work on a **tick clock** — a shared
//! monotone counter advanced by the storage layer (one tick per logical
//! page access, plus whatever latency the [`DiskSim`] injector arms for a
//! physical read) and read by [`Deadline`] handles threaded through query
//! execution. Two runs of the same seeded workload advance the clock
//! identically, so deadline expiry, shed decisions, and goodput curves are
//! reproducible to the tick.
//!
//! The clock deliberately has no notion of "now" outside the work it
//! counts: an idle system does not age, and a deadline can only expire
//! because pages were visited or injected latency fired. That is exactly
//! the cooperative-cancellation contract — checks happen at instrumented
//! boundaries, and overshoot is bounded by the work between two checks
//! (one page visit on the scan paths).
//!
//! [`DiskSim`]: ../../peb_storage/struct.DiskSim.html

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotone virtual clock. Cheap to clone (an `Arc` of one
/// atomic); relaxed ordering everywhere because the clock is a counter,
/// not a synchronization primitive — readers only need *some* recent
/// value, and the deterministic single-driver harnesses that assert
/// exact ticks run on one thread.
#[derive(Debug, Clone, Default)]
pub struct TickClock {
    ticks: Arc<AtomicU64>,
}

impl TickClock {
    /// A fresh clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    #[inline]
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Advance the clock by `n` ticks and return the new time.
    #[inline]
    pub fn advance(&self, n: u64) -> u64 {
        self.ticks.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Whether two handles observe the same underlying clock.
    pub fn same_clock(&self, other: &TickClock) -> bool {
        Arc::ptr_eq(&self.ticks, &other.ticks)
    }
}

/// A cooperative per-query time budget on a [`TickClock`].
///
/// A deadline is a *handle*, not a timer: nothing fires when it expires.
/// Execution paths check it at instrumented boundaries (the multi-range
/// scan's leaf visits, the sharded index's per-shard spans) and unwind
/// with an explicitly partial result. Overshoot is therefore bounded by
/// the work between two checks — one page visit on the scan paths.
///
/// ```
/// use peb_common::clock::{Deadline, TickClock};
///
/// let clock = TickClock::new();
/// let d = Deadline::after(&clock, 10);
/// assert!(!d.expired());
/// assert_eq!(d.remaining(), 10);
/// clock.advance(10);
/// assert!(d.expired());
/// assert_eq!(d.remaining(), 0);
///
/// // The unbounded deadline never expires, no matter the clock.
/// let never = Deadline::unbounded(&clock);
/// clock.advance(u64::MAX / 2);
/// assert!(!never.expired());
/// ```
#[derive(Debug, Clone)]
pub struct Deadline {
    clock: TickClock,
    /// Absolute expiry tick; `u64::MAX` means unbounded.
    expires_at: u64,
}

impl Deadline {
    /// A deadline expiring `budget` ticks from the clock's current time.
    pub fn after(clock: &TickClock, budget: u64) -> Self {
        Deadline { clock: clock.clone(), expires_at: clock.now().saturating_add(budget) }
    }

    /// A deadline at an absolute tick (what an admission queue stamps at
    /// enqueue time, so queueing delay counts against the budget).
    pub fn at(clock: &TickClock, expires_at: u64) -> Self {
        Deadline { clock: clock.clone(), expires_at }
    }

    /// A deadline that never expires (the non-serving call paths).
    pub fn unbounded(clock: &TickClock) -> Self {
        Deadline { clock: clock.clone(), expires_at: u64::MAX }
    }

    /// Whether the budget is spent.
    #[inline]
    pub fn expired(&self) -> bool {
        self.clock.now() >= self.expires_at
    }

    /// Ticks left before expiry (0 once expired; `u64::MAX`-ish for the
    /// unbounded deadline).
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.expires_at.saturating_sub(self.clock.now())
    }

    /// The absolute expiry tick (`u64::MAX` when unbounded).
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// The clock this deadline reads.
    pub fn clock(&self) -> &TickClock {
        &self.clock
    }

    /// How far past the deadline the clock has run (0 before expiry).
    /// The chaos harness asserts this stays within one page-visit epsilon
    /// of the instrumented checkpoints.
    pub fn overshoot(&self) -> u64 {
        self.clock.now().saturating_sub(self.expires_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = TickClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(3), 3);
        assert_eq!(c.advance(2), 5);
        assert_eq!(c.now(), 5);
    }

    #[test]
    fn clones_share_the_clock() {
        let c = TickClock::new();
        let d = c.clone();
        c.advance(7);
        assert_eq!(d.now(), 7);
        assert!(c.same_clock(&d));
        assert!(!c.same_clock(&TickClock::new()));
    }

    #[test]
    fn deadline_expiry_and_overshoot() {
        let c = TickClock::new();
        let d = Deadline::after(&c, 4);
        assert!(!d.expired());
        assert_eq!(d.remaining(), 4);
        assert_eq!(d.overshoot(), 0);
        c.advance(6);
        assert!(d.expired());
        assert_eq!(d.remaining(), 0);
        assert_eq!(d.overshoot(), 2);
    }

    #[test]
    fn absolute_deadlines_count_queueing_delay() {
        let c = TickClock::new();
        c.advance(10);
        let stamped = Deadline::at(&c, 15); // admitted at tick 10, 5-tick budget
        c.advance(4);
        assert!(!stamped.expired());
        c.advance(1);
        assert!(stamped.expired());
    }

    #[test]
    fn unbounded_never_expires() {
        let c = TickClock::new();
        let d = Deadline::unbounded(&c);
        c.advance(1 << 40);
        assert!(!d.expired());
        assert_eq!(d.expires_at(), u64::MAX);
    }
}
