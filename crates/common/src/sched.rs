//! Deterministic schedule-perturbation hooks for concurrency tests.
//!
//! Interleaving bugs in the latch/seqlock protocols depend on *where*
//! threads get preempted, which an OS scheduler chooses arbitrarily. This
//! module gives tests two handles on that choice without adding any cost
//! to production runs:
//!
//! * a **seeded yield injector** — [`enable_seeded`] makes every
//!   instrumented site ([`probe`]) decide from `hash(seed, site, per-site
//!   counter)` whether to spin-yield there, so a seed reproduces the same
//!   *decision sequence* run after run and different seeds explore
//!   different interleavings;
//! * **gates** — [`gate`] blocks a thread at a named site until the test
//!   calls [`open`], letting a test freeze a writer mid-protocol (say,
//!   between latching a leaf and publishing its split) and prove readers
//!   still make progress. This is what turns a race that "usually" shows
//!   up into a named, always-failing-before-the-fix regression test.
//!
//! Instrumented code calls [`probe`] at protocol boundaries (latch
//! acquire/release, version publication). Disabled — the default — a
//! probe is one relaxed atomic load and a predicted branch; no allocation,
//! no lock, nothing on the I/O or lock ledgers. The hooks live in
//! `peb_common` so every crate (storage latches, btree descents, index
//! entry points) can share one schedule controller.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// An instrumented protocol boundary. The variants are deliberately
/// coarse — schedules perturb *classes* of sites; precise single-point
/// control uses [`gate`] with a site name instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// A page latch was just acquired (blocking or try — successful only).
    LatchAcquire,
    /// A page latch is about to be released.
    LatchRelease,
    /// A page image is about to be (re)published at a bumped version.
    Publish,
    /// One step of an optimistic descent validated a parent version.
    Descend,
    /// Inside a migration span: the epoch's `started` edge is bumped and
    /// the re-keyed object is mid-flight (evicted from its old shard,
    /// not yet inserted into its new one). Tests park a writer here to
    /// race scans and cancellations against an in-flight migration.
    MigSpan,
}

/// Global on/off for the yield injector. Relaxed everywhere: schedules
/// only need determinism *per thread*, which the per-thread counters
/// below provide; cross-thread ordering is exactly what is being fuzzed.
static ENABLED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);

struct Gates {
    /// Gate name → remaining number of threads to block (0 = open).
    closed: Mutex<HashMap<&'static str, usize>>,
    cv: Condvar,
}

fn gates() -> &'static Gates {
    static GATES: OnceLock<Gates> = OnceLock::new();
    GATES.get_or_init(|| Gates { closed: Mutex::new(HashMap::new()), cv: Condvar::new() })
}

thread_local! {
    /// Per-site decision counters: the injector's choice at the n-th
    /// occurrence of a site on this thread depends only on (seed, site, n),
    /// never on wall-clock time or other threads.
    static COUNTS: std::cell::RefCell<HashMap<Site, u64>> =
        std::cell::RefCell::new(HashMap::new());
}

/// Turn the seeded yield injector on. Every [`probe`] call from any
/// thread now consults the deterministic decision stream for `seed`.
/// Tests must pair this with [`disable`] (ideally via a guard) because
/// the switch is process-global.
pub fn enable_seeded(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    COUNTS.with(|c| c.borrow_mut().clear());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the yield injector off and open every gate (so a panicking test
/// cannot leave a worker thread blocked forever).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut closed = gates().closed.lock().unwrap();
    closed.clear();
    gates().cv.notify_all();
}

/// Whether the injector is currently on (used by tests to avoid nesting
/// two seeded sections).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// SplitMix64 — a tiny, well-distributed mixer; good enough to turn
/// (seed, site, counter) into an unbiased yield decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The instrumented-site hook. Disabled: one relaxed load. Enabled: a
/// deterministic fraction of occurrences yield the thread (between one
/// and four `yield_now`s, also seed-determined) so the OS interleaves
/// the racing threads at protocol boundaries instead of timeslice edges.
#[inline]
pub fn probe(site: Site) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    probe_slow(site);
}

/// The gate name [`probe`] routes `site` through while the injector is
/// enabled, so a test can park threads at a site *class* — "the next
/// publish", "the third latch acquisition" — with [`close`] alone,
/// without bespoke [`gate`] calls in the instrumented code.
pub const fn site_name(site: Site) -> &'static str {
    match site {
        Site::LatchAcquire => "site:latch-acquire",
        Site::LatchRelease => "site:latch-release",
        Site::Publish => "site:publish",
        Site::Descend => "site:descend",
        Site::MigSpan => "site:mig-span",
    }
}

#[cold]
fn probe_slow(site: Site) {
    gate(site_name(site));
    let n = COUNTS.with(|c| {
        let mut c = c.borrow_mut();
        let e = c.entry(site).or_insert(0);
        *e += 1;
        *e
    });
    let h = mix(SEED.load(Ordering::Relaxed) ^ mix(site as u64) ^ n);
    // Yield at roughly 3 of 8 site occurrences; vary the yield count so
    // the preempted thread sometimes loses more than one slice.
    if h % 8 < 3 {
        for _ in 0..(1 + (h >> 8) % 4) {
            std::thread::yield_now();
        }
    }
}

/// Close `name`: the next [`gate`] arrivals block until [`open`] (each
/// [`open`] releases every currently and subsequently arriving thread).
/// `permits` threads may *pass* before blocking starts — `0` blocks the
/// first arrival, `1` lets one through and blocks the second, and so on;
/// this is how a test stops a writer at its *n*-th latch acquisition
/// rather than its first.
pub fn close(name: &'static str, permits: usize) {
    let mut closed = gates().closed.lock().unwrap();
    closed.insert(name, permits);
}

/// Open `name`, waking every thread blocked on it.
pub fn open(name: &'static str) {
    let mut closed = gates().closed.lock().unwrap();
    closed.remove(name);
    gates().cv.notify_all();
}

/// A named synchronization point. No-op unless a test [`close`]d `name`;
/// then the first arrivals consume the gate's permits and later arrivals
/// block until [`open`]. Instrumented code places these at the exact
/// protocol step a regression test needs to freeze.
pub fn gate(name: &'static str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let g = gates();
    let mut closed = g.closed.lock().unwrap();
    match closed.get_mut(name) {
        None => {}
        Some(permits) if *permits > 0 => *permits -= 1,
        Some(_) => {
            *waiters().lock().unwrap().entry(name).or_insert(0) += 1;
            while closed.contains_key(name) {
                closed = g.cv.wait(closed).unwrap();
            }
            *waiters().lock().unwrap().get_mut(name).expect("waiter registered") -= 1;
        }
    }
}

/// Whether at least one thread is currently blocked on `name`. Polled by
/// tests to know the frozen thread has actually reached its gate. This is
/// conservative: it returns `true` only once a waiter is inside the wait
/// loop's critical section or parked on the condvar.
pub fn is_blocked(name: &'static str) -> bool {
    // A blocked waiter holds no lock while parked, so the observable
    // signal is "the gate is closed with zero permits and some thread has
    // re-entered the wait loop". We approximate with a flag map updated by
    // the waiters themselves.
    waiters().lock().unwrap().get(name).copied().unwrap_or(0) > 0
}

fn waiters() -> &'static Mutex<HashMap<&'static str, usize>> {
    static WAITERS: OnceLock<Mutex<HashMap<&'static str, usize>>> = OnceLock::new();
    WAITERS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// RAII guard: enables the seeded injector on construction, disables it
/// (and opens all gates) on drop — including on panic, so one failing
/// seed never wedges the rest of the test binary.
pub struct SeededSection;

impl SeededSection {
    /// Enable the injector for this scope.
    pub fn new(seed: u64) -> Self {
        enable_seeded(seed);
        SeededSection
    }
}

impl Drop for SeededSection {
    fn drop(&mut self) {
        disable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_probe_is_a_noop() {
        disable();
        probe(Site::LatchAcquire);
        gate("never-closed");
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let stream = |seed: u64| -> Vec<u64> {
            (0..64).map(|n| mix(seed ^ mix(Site::Publish as u64) ^ n) % 8).collect()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8), "different seeds must explore differently");
    }

    #[test]
    fn gates_block_and_release() {
        let _s = SeededSection::new(1);
        close("t-gate", 1);
        // First arrival consumes the permit and passes immediately.
        gate("t-gate");
        let th = std::thread::spawn(|| {
            gate("t-gate"); // second arrival blocks until open()
            true
        });
        // Give the thread a moment to park, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!th.is_finished(), "second arrival must be parked on the gate");
        open("t-gate");
        assert!(th.join().unwrap());
    }

    #[test]
    fn disable_opens_leftover_gates() {
        enable_seeded(2);
        close("leak-gate", 0);
        let th = std::thread::spawn(|| gate("leak-gate"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        disable();
        th.join().unwrap();
    }

    #[test]
    fn seeded_yields_do_not_break_progress() {
        let _s = SeededSection::new(0xC0FFEE);
        let done = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        probe(Site::LatchAcquire);
                        probe(Site::Publish);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::Relaxed), 4);
    }
}
