//! Timestamps and time intervals.
//!
//! Time is continuous (`f64` time units; think minutes). The Bx-tree
//! partitions the axis into intervals of `∆tmu / n` and indexes each update
//! as of the *nearest future label timestamp*; that arithmetic lives in
//! `peb-bx`, while this module provides the raw types plus the closed
//! interval used by privacy policies (`tint`).

/// A point on the time axis, in time units since the epoch of the simulation.
pub type Timestamp = f64;

/// A closed interval `[start, end]` of the time domain, used as the `tint`
/// component of a location-privacy policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    pub start: Timestamp,
    pub end: Timestamp,
}

impl TimeInterval {
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start <= end, "degenerate time interval: [{start},{end}]");
        TimeInterval { start, end }
    }

    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t <= self.end
    }

    /// Duration of the overlap with another interval (`D(tint1, tint2)` in
    /// the paper's α formula); zero when disjoint.
    pub fn overlap(&self, other: &TimeInterval) -> f64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0.0)
    }

    pub fn intersects(&self, other: &TimeInterval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_endpoints() {
        let i = TimeInterval::new(8.0, 17.0);
        assert!(i.contains(8.0));
        assert!(i.contains(17.0));
        assert!(!i.contains(17.5));
        assert_eq!(i.duration(), 9.0);
    }

    #[test]
    fn interval_overlap() {
        let a = TimeInterval::new(0.0, 10.0);
        let b = TimeInterval::new(5.0, 20.0);
        assert_eq!(a.overlap(&b), 5.0);
        let c = TimeInterval::new(11.0, 12.0);
        assert_eq!(a.overlap(&c), 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic]
    fn reversed_interval_panics() {
        TimeInterval::new(5.0, 1.0);
    }
}
