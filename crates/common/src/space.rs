//! The space/time domain configuration shared by both indexes and the
//! policy encoder.
//!
//! The paper's experiments use a 1000 × 1000 space and normalize policy
//! regions by the space area `S` and policy intervals by the time-domain
//! duration `T` (Sec 5.1). The Z-order grid resolution decides how many bits
//! the ZV component of an index key occupies.

use crate::geometry::{Point, Rect};
use crate::time::TimeInterval;

/// Global domain configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceConfig {
    /// Side length `L` of the square space domain `[0, L] × [0, L]`.
    pub side: f64,
    /// Bits per axis of the Z-order grid (grid is `2^grid_bits` cells wide).
    pub grid_bits: u32,
    /// Duration `T` of the time domain used to normalize policy intervals.
    pub time_domain: f64,
}

impl Default for SpaceConfig {
    /// The paper's defaults: 1000 × 1000 space; a 1024 × 1024 Z-grid
    /// (cell ≈ 0.98 space units); a one-day time domain at one-minute
    /// granularity (1440 time units).
    fn default() -> Self {
        SpaceConfig { side: 1000.0, grid_bits: 10, time_domain: 1440.0 }
    }
}

impl SpaceConfig {
    pub fn new(side: f64, grid_bits: u32, time_domain: f64) -> Self {
        assert!(side > 0.0 && time_domain > 0.0);
        assert!((1..=16).contains(&grid_bits), "grid_bits must be in 1..=16");
        SpaceConfig { side, grid_bits, time_domain }
    }

    /// The full space rectangle `[0, L] × [0, L]`.
    pub fn bounds(&self) -> Rect {
        Rect::new(0.0, self.side, 0.0, self.side)
    }

    /// Area `S` of the space domain.
    pub fn area(&self) -> f64 {
        self.side * self.side
    }

    /// The whole time domain as an interval `[0, T]`.
    pub fn time_bounds(&self) -> TimeInterval {
        TimeInterval::new(0.0, self.time_domain)
    }

    /// Number of grid cells per axis.
    pub fn grid_cells(&self) -> u32 {
        1u32 << self.grid_bits
    }

    /// Side length of one grid cell in space units.
    pub fn cell_size(&self) -> f64 {
        self.side / self.grid_cells() as f64
    }

    /// Quantize a point to integer grid coordinates, clamping into the
    /// domain so that slightly out-of-bounds predicted positions still map
    /// to a valid cell.
    pub fn to_grid(&self, p: &Point) -> (u32, u32) {
        let max = self.grid_cells() - 1;
        let gx = ((p.x / self.cell_size()).floor() as i64).clamp(0, max as i64) as u32;
        let gy = ((p.y / self.cell_size()).floor() as i64).clamp(0, max as i64) as u32;
        (gx, gy)
    }

    /// The rectangle of space covered by grid cell `(gx, gy)`.
    pub fn cell_rect(&self, gx: u32, gy: u32) -> Rect {
        let cs = self.cell_size();
        Rect::new(gx as f64 * cs, (gx + 1) as f64 * cs, gy as f64 * cs, (gy + 1) as f64 * cs)
    }

    /// Quantize a rectangle to the inclusive grid-cell range it touches.
    pub fn to_grid_rect(&self, r: &Rect) -> (u32, u32, u32, u32) {
        let (x0, y0) = self.to_grid(&Point::new(r.xl, r.yl));
        let (x1, y1) = self.to_grid(&Point::new(r.xu, r.yu));
        (x0, x1, y0, y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SpaceConfig::default();
        assert_eq!(c.side, 1000.0);
        assert_eq!(c.area(), 1_000_000.0);
        assert_eq!(c.grid_cells(), 1024);
    }

    #[test]
    fn grid_quantization_clamps() {
        let c = SpaceConfig::new(1000.0, 3, 100.0); // 8x8 grid, 125-unit cells
        assert_eq!(c.to_grid(&Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(c.to_grid(&Point::new(999.9, 999.9)), (7, 7));
        assert_eq!(c.to_grid(&Point::new(-5.0, 1200.0)), (0, 7));
        assert_eq!(c.to_grid(&Point::new(125.0, 249.9)), (1, 1));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let c = SpaceConfig::new(1000.0, 3, 100.0);
        let r = c.cell_rect(2, 5);
        assert_eq!(r, Rect::new(250.0, 375.0, 625.0, 750.0));
        let mid = r.center();
        assert_eq!(c.to_grid(&mid), (2, 5));
    }

    #[test]
    fn grid_rect_is_inclusive() {
        let c = SpaceConfig::new(1000.0, 3, 100.0);
        let (x0, x1, y0, y1) = c.to_grid_rect(&Rect::new(100.0, 500.0, 0.0, 130.0));
        assert_eq!((x0, x1, y0, y1), (0, 4, 0, 1));
    }
}
