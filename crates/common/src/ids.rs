//! Identifier newtypes.

use std::fmt;

/// Identity of a service user (a moving object). The paper writes `u1`,
/// `u12`, `qID` etc.; we use a dense `u64` so ids double as array indices in
/// the policy encoder and workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

impl UserId {
    pub fn as_index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u64> for UserId {
    fn from(v: u64) -> Self {
        UserId(v)
    }
}

impl From<usize> for UserId {
    fn from(v: usize) -> Self {
        UserId(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(UserId(12).to_string(), "u12");
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(UserId(3) < UserId(10));
        assert_eq!(UserId::from(7usize).as_index(), 7);
    }
}
