//! Shared primitives for the PEB-tree reproduction: two-dimensional geometry,
//! timestamps and time intervals, user identifiers, and the space/time domain
//! configuration used throughout the paper's experiments.
//!
//! The paper models users as linear motions in a `L × L` Euclidean space
//! (default 1000 × 1000) and time as a continuous axis partitioned by the
//! Bx-tree into label timestamps. Everything downstream (Z-order encoding,
//! Bx keys, PEB keys, policies) builds on these types.

pub mod clock;
pub mod geometry;
pub mod ids;
pub mod motion;
pub mod sched;
pub mod space;
pub mod time;

pub use clock::{Deadline, TickClock};
pub use geometry::{Point, Rect, Vec2};
pub use ids::UserId;
pub use motion::MovingPoint;
pub use space::SpaceConfig;
pub use time::{TimeInterval, Timestamp};
