//! Linear motion model for moving objects.
//!
//! Following the paper (and the Bx-/TPR-tree literature), an object is the
//! triple `(x⃗, v⃗, tu)`: position and velocity as of the latest update time
//! `tu`, with predicted position `x⃗(t) = x⃗ + v⃗·(t − tu)`.

use crate::geometry::{Point, Vec2};
use crate::ids::UserId;
use crate::time::Timestamp;

/// A moving object / user: `(x⃗, v⃗, tu)` plus its identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingPoint {
    pub uid: UserId,
    /// Position as of `t_update`.
    pub pos: Point,
    /// Velocity vector, space units per time unit.
    pub vel: Vec2,
    /// Time of the most recent update (`tu`).
    pub t_update: Timestamp,
}

impl MovingPoint {
    pub fn new(uid: UserId, pos: Point, vel: Vec2, t_update: Timestamp) -> Self {
        MovingPoint { uid, pos, vel, t_update }
    }

    /// Predicted position at time `t` under the linear motion model.
    /// `t` may lie before `t_update` (extrapolation backwards), which the
    /// Bx-tree query algorithms rely on.
    pub fn position_at(&self, t: Timestamp) -> Point {
        self.pos.advance(self.vel, t - self.t_update)
    }

    pub fn speed(&self) -> f64 {
        self.vel.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolates_forward_and_backward() {
        let m = MovingPoint::new(UserId(1), Point::new(10.0, 10.0), Vec2::new(1.0, -2.0), 5.0);
        assert_eq!(m.position_at(7.0), Point::new(12.0, 6.0));
        assert_eq!(m.position_at(4.0), Point::new(9.0, 12.0));
        assert_eq!(m.position_at(5.0), m.pos);
    }

    #[test]
    fn speed_is_velocity_norm() {
        let m = MovingPoint::new(UserId(1), Point::default(), Vec2::new(3.0, 4.0), 0.0);
        assert_eq!(m.speed(), 5.0);
    }
}
