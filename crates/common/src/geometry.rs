//! Planar geometry: points, vectors and axis-aligned rectangles.
//!
//! Rectangles are closed on all sides (`[xl, xu] × [yl, yu]`), matching the
//! paper's range-query definition `R = ([xl1, xu1], [xl2, xu2])`.

/// A location in two-dimensional Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt in comparisons).
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Translate by a velocity vector over `dt` time units.
    pub fn advance(&self, v: Vec2, dt: f64) -> Point {
        Point::new(self.x + v.x * dt, self.y + v.y * dt)
    }
}

/// A velocity (or displacement) vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Vector magnitude (speed, for velocity vectors).
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Scale to a new magnitude; the zero vector stays zero.
    pub fn with_norm(&self, target: f64) -> Vec2 {
        let n = self.norm();
        if n == 0.0 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n * target, self.y / n * target)
        }
    }
}

/// A closed axis-aligned rectangle `[xl, xu] × [yl, yu]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xl: f64,
    pub xu: f64,
    pub yl: f64,
    pub yu: f64,
}

impl Rect {
    /// Build a rectangle from its lower/upper bounds on both axes.
    ///
    /// # Panics
    /// Panics if a lower bound exceeds the matching upper bound.
    pub fn new(xl: f64, xu: f64, yl: f64, yu: f64) -> Self {
        assert!(xl <= xu && yl <= yu, "degenerate rect: [{xl},{xu}]x[{yl},{yu}]");
        Rect { xl, xu, yl, yu }
    }

    /// Axis-aligned square centered at `c` with the given side length.
    pub fn square(c: Point, side: f64) -> Self {
        let h = side / 2.0;
        Rect::new(c.x - h, c.x + h, c.y - h, c.y + h)
    }

    pub fn width(&self) -> f64 {
        self.xu - self.xl
    }

    pub fn height(&self) -> f64 {
        self.yu - self.yl
    }

    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    pub fn center(&self) -> Point {
        Point::new((self.xl + self.xu) / 2.0, (self.yl + self.yu) / 2.0)
    }

    /// Closed-interval containment test.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.xl && p.x <= self.xu && p.y >= self.yl && p.y <= self.yu
    }

    /// Overlap area with another rectangle (`O(locr1, locr2)` in the paper's
    /// policy-compatibility formula); zero when disjoint.
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.xu.min(other.xu) - self.xl.max(other.xl)).max(0.0);
        let h = (self.yu.min(other.yu) - self.yl.max(other.yl)).max(0.0);
        w * h
    }

    pub fn intersects(&self, other: &Rect) -> bool {
        self.xl <= other.xu && other.xl <= self.xu && self.yl <= other.yu && other.yl <= self.yu
    }

    /// Grow the rectangle by `dx`/`dy` on each side (Bx query enlargement),
    /// clamping to `bounds`.
    pub fn enlarged(&self, dx: f64, dy: f64, bounds: &Rect) -> Rect {
        Rect::new(
            (self.xl - dx).max(bounds.xl),
            (self.xu + dx).min(bounds.xu),
            (self.yl - dy).max(bounds.yl),
            (self.yu + dy).min(bounds.yu),
        )
    }

    /// The largest circle inscribed in the rectangle: (center, radius).
    /// Used by the kNN termination test.
    pub fn inscribed_circle(&self) -> (Point, f64) {
        (self.center(), self.width().min(self.height()) / 2.0)
    }

    /// Clamp a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.xl, self.xu), p.y.clamp(self.yl, self.yu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn point_advance_follows_velocity() {
        let p = Point::new(1.0, 2.0).advance(Vec2::new(0.5, -1.0), 4.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }

    #[test]
    fn vec_norm_and_rescale() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        let u = v.with_norm(10.0);
        assert!((u.norm() - 10.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.with_norm(7.0), Vec2::ZERO);
    }

    #[test]
    fn rect_contains_is_closed() {
        let r = Rect::new(0.0, 10.0, 0.0, 10.0);
        assert!(r.contains(&Point::new(0.0, 0.0)));
        assert!(r.contains(&Point::new(10.0, 10.0)));
        assert!(!r.contains(&Point::new(10.000001, 5.0)));
    }

    #[test]
    fn rect_overlap_area() {
        let a = Rect::new(0.0, 4.0, 0.0, 4.0);
        let b = Rect::new(2.0, 6.0, 2.0, 6.0);
        assert_eq!(a.overlap_area(&b), 4.0);
        let c = Rect::new(5.0, 6.0, 5.0, 6.0);
        assert_eq!(a.overlap_area(&c), 0.0);
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
    }

    #[test]
    fn rect_enlarge_clamps_to_bounds() {
        let bounds = Rect::new(0.0, 100.0, 0.0, 100.0);
        let r = Rect::new(1.0, 10.0, 90.0, 99.0).enlarged(5.0, 5.0, &bounds);
        assert_eq!(r, Rect::new(0.0, 15.0, 85.0, 100.0));
    }

    #[test]
    fn inscribed_circle_of_square() {
        let (c, r) = Rect::square(Point::new(5.0, 5.0), 8.0).inscribed_circle();
        assert_eq!(c, Point::new(5.0, 5.0));
        assert_eq!(r, 4.0);
    }

    #[test]
    #[should_panic]
    fn degenerate_rect_panics() {
        Rect::new(5.0, 1.0, 0.0, 1.0);
    }
}
