//! The Bx-tree proper: a [`ShardedMovingIndex`] with the Bx key layout,
//! plus the privacy-unaware range and kNN query algorithms.

use std::collections::HashMap;
use std::sync::Arc;

use peb_common::{MovingPoint, Point, Rect, SpaceConfig, Timestamp, UserId};
use peb_index::{IndexError, IndexStats, ShardedMovingIndex, TimePartitioning};
use peb_storage::BufferPool;
use peb_zorder::{coarsen, decompose, IntervalSet};

use crate::keys::BxKeyLayout;

/// A B+-tree based moving-object index: the update/storage machinery is
/// the shared [`ShardedMovingIndex`] (one tree per rotating time
/// partition); this type adds the Bx query algorithms.
pub struct BxTree {
    idx: ShardedMovingIndex<BxKeyLayout>,
    /// Whether candidate retrieval runs through the fused multi-interval
    /// scan pipeline (on by default; see [`BxTree::set_fused_scans`]).
    fused_scans: bool,
}

impl BxTree {
    /// An empty Bx-tree over the given space, partitioning and speed
    /// bound, performing all I/O through `pool`.
    pub fn new(
        pool: Arc<BufferPool>,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
    ) -> Self {
        let layout = BxKeyLayout::new(space.grid_bits);
        BxTree {
            idx: ShardedMovingIndex::new(pool, layout, space, part, max_speed),
            fused_scans: true,
        }
    }

    /// Opt into the fused multi-interval query pipeline:
    /// [`BxTree::for_each_candidate`] (and the incremental kNN variant)
    /// build the full key-interval set — partitions × Z-ranges, coarsened
    /// to [`peb_costmodel::interval_budget`] — and execute it through
    /// [`ShardedMovingIndex::scan_keys_multi`]: one descent plus a
    /// leaf-chain walk per partition instead of one descent per Z-range.
    /// Query results are identical either way (refinement discards the
    /// coarsening's extra candidates); only page accesses differ. On by
    /// default since the post-soak promotion; the knob stays for A/B
    /// against the legacy per-interval plan.
    pub fn set_fused_scans(&mut self, enabled: bool) {
        self.fused_scans = enabled;
    }

    /// Whether the fused multi-interval query pipeline is active.
    pub fn fused_scans(&self) -> bool {
        self.fused_scans
    }

    /// Switch the write path between direct leaf updates (off, the
    /// default) and B-epsilon-style buffered writes (on): upserts and
    /// deletes append messages to per-partition buffer chains that flush
    /// downward in sorted batches (see
    /// [`ShardedMovingIndex::set_buffered_writes`]). Query results are
    /// identical either way; turning the knob off flushes everything.
    pub fn set_buffered_writes(&mut self, enabled: bool) {
        self.idx.set_buffered_writes(enabled);
    }

    /// Whether buffered writes are active.
    pub fn buffered_writes(&self) -> bool {
        self.idx.buffered_writes()
    }

    /// Switch the write path between whole-shard exclusion (off, the
    /// default) and optimistic lock coupling (on): same-partition
    /// refreshes and removals run under the shard read lock with
    /// per-page latches, overlapping concurrent queries (see
    /// [`ShardedMovingIndex::set_olc_writes`]). Results are identical;
    /// mutually exclusive with buffered writes.
    pub fn set_olc_writes(&mut self, enabled: bool) {
        self.idx.set_olc_writes(enabled);
    }

    /// Whether OLC writes are active.
    pub fn olc_writes(&self) -> bool {
        self.idx.olc_writes()
    }

    /// OLC contention counters summed across partitions (restarts and
    /// gate escalations; see [`peb_btree::OlcStats`]).
    pub fn olc_stats(&self) -> peb_btree::OlcStats {
        self.idx.olc_stats()
    }

    /// Switch write-ahead logging on or off (see
    /// [`ShardedMovingIndex::set_durable`]): on enrollment every
    /// partition tree is registered in the log and an initial checkpoint
    /// makes the current state the recovery floor.
    pub fn set_durable(&mut self, on: bool) {
        self.idx.set_durable(on);
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        self.idx.is_durable()
    }

    /// Take a fuzzy checkpoint ([`ShardedMovingIndex::checkpoint`]);
    /// returns the number of pages flushed (0 when not durable).
    pub fn checkpoint(&self) -> usize {
        self.idx.checkpoint()
    }

    /// Cumulative committed mutation calls (0 while not durable).
    pub fn committed_ops(&self) -> u64 {
        self.idx.committed_ops()
    }

    /// Rebuild a Bx-tree from a recovered pool after a crash (see
    /// [`ShardedMovingIndex::recover`]); `fused_scans` starts on, as in
    /// [`BxTree::new`].
    pub fn recover(
        pool: Arc<BufferPool>,
        recovery: &peb_storage::WalRecovery,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
    ) -> Self {
        let layout = BxKeyLayout::new(space.grid_bits);
        BxTree {
            idx: ShardedMovingIndex::recover(pool, recovery, layout, space, part, max_speed),
            fused_scans: true,
        }
    }

    /// Deterministic write-path counters summed across shard trees (see
    /// [`peb_btree::WriteStats`]).
    pub fn write_stats(&self) -> peb_btree::WriteStats {
        self.idx.write_stats()
    }

    /// Zero the write-path counters (measurement windows).
    pub fn reset_write_stats(&self) {
        self.idx.reset_write_stats()
    }

    /// Flush any pending buffered messages down to the leaves without
    /// changing the buffering knob. A no-op when nothing is pending.
    pub fn flush_messages(&self) {
        self.idx.flush_messages()
    }

    /// Deterministic scan-path counters summed across shard trees (see
    /// [`peb_btree::ScanStats`]).
    pub fn scan_stats(&self) -> peb_btree::ScanStats {
        self.idx.scan_stats()
    }

    /// Zero the scan-path counters (measurement windows).
    pub fn reset_scan_stats(&self) {
        self.idx.reset_scan_stats()
    }

    /// Bulk-load an initial user population (each user must appear once).
    /// Equivalent to upserting every user, but builds each partition's
    /// B+-tree bottom-up at the given fill factor.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        users: &[MovingPoint],
        fill: f64,
    ) -> Self {
        let layout = BxKeyLayout::new(space.grid_bits);
        BxTree {
            idx: ShardedMovingIndex::bulk_load(pool, layout, space, part, max_speed, users, fill),
            fused_scans: true,
        }
    }

    /// The shared moving-object index core.
    pub fn index(&self) -> &ShardedMovingIndex<BxKeyLayout> {
        &self.idx
    }

    /// The space configuration keys are quantized against.
    pub fn space(&self) -> &SpaceConfig {
        self.idx.space()
    }

    /// The rotating time-partitioning parameters.
    pub fn partitioning(&self) -> &TimePartitioning {
        self.idx.partitioning()
    }

    /// The declared maximum object speed (drives query enlargement).
    pub fn max_speed(&self) -> f64 {
        self.idx.max_speed()
    }

    /// Objects currently indexed.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether no object is indexed.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The buffer pool all partitions perform I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.idx.pool()
    }

    /// Locking counters of the shared pool: optimistic hits vs shard-mutex
    /// acquisitions on the read path (see [`peb_storage::LockStats`]).
    pub fn lock_stats(&self) -> peb_storage::LockStats {
        self.idx.lock_stats()
    }

    /// Number of leaf pages, `Nl` in the paper's cost model.
    pub fn leaf_page_count(&self) -> usize {
        self.idx.leaf_page_count()
    }

    /// O(1) diagnostics: B+-tree shape, live partitions, object count.
    pub fn stats(&self) -> IndexStats {
        self.idx.stats()
    }

    /// The Bx key an object updated at `m.t_update` is indexed under.
    pub fn key_for(&self, m: &MovingPoint) -> u128 {
        self.idx.key_for(m)
    }

    /// Insert or update an object (an update is an exact delete of the old
    /// key followed by an insert, as in the Bx-tree).
    pub fn upsert(&mut self, m: MovingPoint) {
        self.idx.upsert(m);
    }

    /// Fallible twin of [`BxTree::upsert`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking (see
    /// [`ShardedMovingIndex::try_upsert`] for the partial-state contract
    /// on `Err`).
    pub fn try_upsert(&mut self, m: MovingPoint) -> Result<(), IndexError> {
        self.idx.try_upsert(m)
    }

    /// Apply a batch of updates: grouped by target partition, each group
    /// merged into its partition's leaves as one sorted run. Takes `&self`
    /// — batches bound for different partitions may be applied from
    /// different threads concurrently (see
    /// [`ShardedMovingIndex::upsert_batch`]). Returns the number of
    /// distinct objects applied.
    pub fn upsert_batch(&self, updates: &[MovingPoint]) -> usize {
        self.idx.upsert_batch(updates)
    }

    /// Remove an object entirely.
    pub fn remove(&mut self, uid: UserId) -> bool {
        self.idx.remove(uid)
    }

    /// Fallible twin of [`BxTree::remove`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking.
    pub fn try_remove(&mut self, uid: UserId) -> Result<bool, IndexError> {
        self.idx.try_remove(uid)
    }

    /// Fetch an object's current record by id (point lookup through disk).
    pub fn get(&self, uid: UserId) -> Option<MovingPoint> {
        self.idx.get(uid)
    }

    /// Fallible twin of [`BxTree::get`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking.
    pub fn try_get(&self, uid: UserId) -> Result<Option<MovingPoint>, IndexError> {
        self.idx.try_get(uid)
    }

    /// The live `(tid, label timestamp)` pairs, sorted by tid.
    pub fn live_partitions(&self) -> Vec<(u8, Timestamp)> {
        self.idx.live_partitions()
    }

    /// Bx query-window enlargement (Fig 2 of the paper).
    pub fn enlarge(&self, r: &Rect, t_lab: Timestamp, tq: Timestamp) -> Rect {
        self.idx.enlarge(r, t_lab, tq)
    }

    /// Garbage-collect expired partitions; see
    /// [`ShardedMovingIndex::expire_stale`]. Each stale partition's whole
    /// shard tree is dropped in O(1).
    pub fn expire_stale(&mut self, now: Timestamp) -> usize {
        self.idx.expire_stale(now)
    }

    /// Privacy-unaware predictive range query: all objects whose predicted
    /// position at `tq` falls inside `r`.
    pub fn range_query(&self, r: &Rect, tq: Timestamp) -> Vec<MovingPoint> {
        self.try_range_query(r, tq).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`BxTree::range_query`]: an unresolvable media
    /// fault anywhere in the interval scans surfaces as
    /// [`IndexError::Io`] instead of panicking.
    pub fn try_range_query(&self, r: &Rect, tq: Timestamp) -> Result<Vec<MovingPoint>, IndexError> {
        let mut out = Vec::new();
        self.try_for_each_candidate(r, tq, |m| {
            if r.contains(&m.position_at(tq)) {
                out.push(m);
            }
        })?;
        Ok(out)
    }

    /// Run the Bx search (enlarge → Z-decompose → B+-tree interval scans)
    /// and hand every *candidate* (pre-refinement) to the callback. On
    /// the fused plan ([`BxTree::set_fused_scans`]) the whole interval
    /// set executes as one coalesced multi-interval scan; candidates may
    /// then include the coarsened-in extras every caller already refines
    /// away.
    /// Walk the coarsened Z-ranges of `r`'s enlargement in every live
    /// partition — the shared front half of both fused interval builders.
    /// The coarsening budget clamps against the whole population: every
    /// object is a candidate for a privacy-unaware query (unlike the PEB
    /// side, whose candidates are the issuer's friends).
    fn for_each_fused_zrange(
        &self,
        r: &Rect,
        tq: Timestamp,
        mut f: impl FnMut(u8, peb_zorder::ZRange),
    ) {
        let space = self.idx.space();
        let budget = peb_costmodel::interval_budget(self.idx.len(), self.idx.leaf_page_count());
        for (tid, t_lab) in self.idx.live_partitions() {
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = space.to_grid_rect(&enlarged);
            for zr in coarsen(decompose(x0, x1, y0, y1, space.grid_bits), budget) {
                f(tid, zr);
            }
        }
    }

    /// Hand every candidate of the enlarged window `r` at `tq` to `f`:
    /// the raw retrieval step both query algorithms refine (per-interval
    /// scans by default, one fused multi-interval scan per partition with
    /// [`BxTree::set_fused_scans`] on).
    pub fn for_each_candidate(&self, r: &Rect, tq: Timestamp, f: impl FnMut(MovingPoint)) {
        self.try_for_each_candidate(r, tq, f)
            .unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"));
    }

    /// Fallible twin of [`BxTree::for_each_candidate`]: an unresolvable
    /// media fault surfaces as [`IndexError::Io`] instead of panicking
    /// (candidates already handed to `f` stay delivered).
    pub fn try_for_each_candidate(
        &self,
        r: &Rect,
        tq: Timestamp,
        mut f: impl FnMut(MovingPoint),
    ) -> Result<(), IndexError> {
        let layout = *self.idx.layout();
        let space = self.idx.space();
        if self.fused_scans {
            let mut intervals: Vec<(u128, u128)> = Vec::new();
            self.for_each_fused_zrange(r, tq, |tid, zr| {
                intervals.push((layout.range_start(tid, zr.lo), layout.range_end(tid, zr.hi)));
            });
            self.idx.try_scan_keys_multi(&intervals, |_, rec| {
                f(rec.to_moving_point());
                true
            })?;
            return Ok(());
        }
        for (tid, t_lab) in self.idx.live_partitions() {
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = space.to_grid_rect(&enlarged);
            for zr in decompose(x0, x1, y0, y1, space.grid_bits) {
                let lo = layout.range_start(tid, zr.lo);
                let hi = layout.range_end(tid, zr.hi);
                self.idx.try_scan_keys(lo, hi, |_, rec| {
                    f(rec.to_moving_point());
                    true
                })?;
            }
        }
        Ok(())
    }

    /// Incremental variant for iterative enlargement (the kNN loops): scan
    /// only the Z-interval parts not yet covered by `scanned` (one
    /// [`IntervalSet`] per time partition), so consecutive rounds search
    /// `R'_qi − R'_q(i−1)` as in the paper instead of rescanning the whole
    /// window.
    pub fn for_each_new_candidate(
        &self,
        r: &Rect,
        tq: Timestamp,
        scanned: &mut HashMap<u8, IntervalSet>,
        f: impl FnMut(MovingPoint),
    ) {
        self.try_for_each_new_candidate(r, tq, scanned, f)
            .unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"));
    }

    /// Fallible twin of [`BxTree::for_each_new_candidate`]: an
    /// unresolvable media fault surfaces as [`IndexError::Io`] instead of
    /// panicking. Intervals recorded in `scanned` before the fault stay
    /// recorded — a retried round rescans only what the failed round had
    /// not yet covered.
    pub fn try_for_each_new_candidate(
        &self,
        r: &Rect,
        tq: Timestamp,
        scanned: &mut HashMap<u8, IntervalSet>,
        mut f: impl FnMut(MovingPoint),
    ) -> Result<(), IndexError> {
        let layout = *self.idx.layout();
        let space = self.idx.space();
        if self.fused_scans {
            // One multi-interval scan over every partition's fresh
            // flanks (coarsened like `for_each_candidate`; the covered
            // bookkeeping keeps later rounds from rescanning the extras).
            let mut intervals: Vec<(u128, u128)> = Vec::new();
            self.for_each_fused_zrange(r, tq, |tid, zr| {
                let set = scanned.entry(tid).or_default();
                for (zlo, zhi) in set.add_and_return_new(zr.lo, zr.hi) {
                    intervals.push((layout.range_start(tid, zlo), layout.range_end(tid, zhi)));
                }
            });
            self.idx.try_scan_keys_multi(&intervals, |_, rec| {
                f(rec.to_moving_point());
                true
            })?;
            return Ok(());
        }
        for (tid, t_lab) in self.idx.live_partitions() {
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = space.to_grid_rect(&enlarged);
            let set = scanned.entry(tid).or_default();
            for zr in decompose(x0, x1, y0, y1, space.grid_bits) {
                for (zlo, zhi) in set.add_and_return_new(zr.lo, zr.hi) {
                    let lo = layout.range_start(tid, zlo);
                    let hi = layout.range_end(tid, zhi);
                    self.idx.try_scan_keys(lo, hi, |_, rec| {
                        f(rec.to_moving_point());
                        true
                    })?;
                }
            }
        }
        Ok(())
    }

    /// Tao et al.'s estimate of the distance to the k'th nearest neighbor
    /// among `n` uniform objects, scaled to the space side length.
    pub fn estimated_knn_distance(&self, k: usize, n: usize) -> f64 {
        estimated_knn_distance(k, n, self.idx.space().side)
    }

    /// Privacy-unaware predictive kNN: iteratively enlarged range queries
    /// until k objects fall inside the inscribed circle of the window.
    pub fn knn(&self, q: Point, k: usize, tq: Timestamp) -> Vec<(MovingPoint, f64)> {
        self.try_knn(q, k, tq).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`BxTree::knn`]: an unresolvable media fault
    /// anywhere in the enlargement rounds surfaces as [`IndexError::Io`]
    /// instead of panicking.
    pub fn try_knn(
        &self,
        q: Point,
        k: usize,
        tq: Timestamp,
    ) -> Result<Vec<(MovingPoint, f64)>, IndexError> {
        if k == 0 || self.idx.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.idx.len();
        // The ring step r_q = D_k/k of the paper can be a fraction of a grid
        // cell; flooring it at a few cells bounds the number of enlargement
        // rounds without affecting correctness (an implementation parameter
        // the paper leaves open).
        let rq = (self.estimated_knn_distance(k, n) / k as f64)
            .max(self.idx.space().cell_size() * KNN_STEP_FLOOR_CELLS);
        // Objects may drift past the space bounds between updates, so the
        // terminal radius allows a generous margin beyond the diagonal.
        let max_radius = self.idx.space().side * 4.0;

        // Candidates accumulate across rounds; each round only scans the
        // newly uncovered ring.
        let mut scanned: HashMap<u8, IntervalSet> = HashMap::new();
        let mut seen: HashMap<UserId, (MovingPoint, f64)> = HashMap::new();
        let mut radius = rq;
        loop {
            let window = Rect::square(q, 2.0 * radius);
            self.try_for_each_new_candidate(&window, tq, &mut scanned, |m| {
                let d = m.position_at(tq).dist(&q);
                seen.entry(m.uid).or_insert((m, d));
            })?;
            let mut hits: Vec<(MovingPoint, f64)> =
                seen.values().filter(|(_, d)| *d <= radius).cloned().collect();
            if hits.len() >= k || radius >= max_radius {
                hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
                hits.truncate(k);
                return Ok(hits);
            }
            radius += rq;
        }
    }
}

/// Minimum kNN ring step, in grid cells (see `BxTree::knn`).
pub const KNN_STEP_FLOOR_CELLS: f64 = 12.0;

/// `Dk = (2/√π)·(1 − √(1 − √(k/n)))·L` (Tao, Zhang, Papadias, Mamoulis,
/// TKDE 2004), as used by the paper's PkNN initial radius.
pub fn estimated_knn_distance(k: usize, n: usize, side: f64) -> f64 {
    assert!(n > 0 && k > 0);
    let ratio = (k as f64 / n as f64).min(1.0);
    (2.0 / std::f64::consts::PI.sqrt()) * (1.0 - (1.0 - ratio.sqrt()).sqrt()) * side
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::Vec2;

    fn space() -> SpaceConfig {
        SpaceConfig::new(1000.0, 10, 1440.0)
    }

    fn tree(cap: usize) -> BxTree {
        BxTree::new(Arc::new(BufferPool::new(cap)), space(), TimePartitioning::default(), 3.0)
    }

    fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut t = tree(64);
        t.upsert(still(1, 100.0, 100.0, 0.0));
        t.upsert(still(2, 500.0, 500.0, 0.0));
        assert_eq!(t.len(), 2);
        let m = t.get(UserId(1)).unwrap();
        assert_eq!(m.pos, Point::new(100.0, 100.0));
        assert!(t.get(UserId(3)).is_none());
    }

    #[test]
    fn upsert_replaces_old_position() {
        let mut t = tree(64);
        t.upsert(still(1, 100.0, 100.0, 0.0));
        t.upsert(still(1, 800.0, 800.0, 10.0));
        assert_eq!(t.len(), 1, "update must not duplicate the object");
        let r = t.range_query(&Rect::new(700.0, 900.0, 700.0, 900.0), 10.0);
        assert_eq!(r.len(), 1);
        let r = t.range_query(&Rect::new(0.0, 200.0, 0.0, 200.0), 10.0);
        assert!(r.is_empty(), "old position must be gone");
    }

    #[test]
    fn remove_deletes_object() {
        let mut t = tree(64);
        t.upsert(still(1, 100.0, 100.0, 0.0));
        assert!(t.remove(UserId(1)));
        assert!(!t.remove(UserId(1)));
        assert!(t.is_empty());
    }

    #[test]
    fn static_range_query_exact() {
        let mut t = tree(128);
        for i in 0..20u64 {
            t.upsert(still(i, 50.0 * i as f64 + 25.0, 500.0, 0.0));
        }
        // Window covering x in [100, 300].
        let r = t.range_query(&Rect::new(100.0, 300.0, 400.0, 600.0), 10.0);
        let mut ids: Vec<u64> = r.iter().map(|m| m.uid.0).collect();
        ids.sort_unstable();
        // Objects at x = 125, 175, 225, 275 (i = 2..=5).
        assert_eq!(ids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn moving_object_found_at_predicted_position() {
        let mut t = tree(64);
        // Moving right at speed 2 from x=100: at tq=50 it is at x=200.
        let m = MovingPoint::new(UserId(1), Point::new(100.0, 500.0), Vec2::new(2.0, 0.0), 0.0);
        t.upsert(m);
        let hit = t.range_query(&Rect::new(180.0, 220.0, 480.0, 520.0), 50.0);
        assert_eq!(hit.len(), 1);
        // And NOT at its update-time position once it has moved on.
        let miss = t.range_query(&Rect::new(80.0, 120.0, 480.0, 520.0), 50.0);
        assert!(miss.is_empty());
    }

    #[test]
    fn query_window_enlargement_matches_fig2() {
        let t = tree(64);
        let r = Rect::new(400.0, 500.0, 400.0, 500.0);
        // t_lab one time unit after tq, max speed 3 -> grow by 3 on each side.
        let e = t.enlarge(&r, 6.0, 5.0);
        assert_eq!(e, Rect::new(397.0, 503.0, 397.0, 503.0));
        // Symmetric for labels before the query time.
        assert_eq!(t.enlarge(&r, 4.0, 5.0), e);
    }

    #[test]
    fn objects_in_different_partitions_are_all_found() {
        let mut t = tree(128);
        // Updates in three different phases land in three partitions.
        t.upsert(still(1, 100.0, 100.0, 10.0));
        t.upsert(still(2, 110.0, 110.0, 70.0));
        t.upsert(still(3, 120.0, 120.0, 130.0));
        assert_eq!(t.live_partitions().len(), 3);
        let r = t.range_query(&Rect::new(90.0, 130.0, 90.0, 130.0), 130.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn knn_basics() {
        let mut t = tree(128);
        for i in 0..50u64 {
            t.upsert(still(i, 20.0 * i as f64 + 10.0, 500.0, 0.0));
        }
        let q = Point::new(500.0, 500.0);
        let res = t.knn(q, 3, 10.0);
        assert_eq!(res.len(), 3);
        // Nearest are at x=490 (i=24), then x=510 (i=25), then x=470 (i=23).
        assert_eq!(res[0].0.uid.0, 24);
        assert!(res.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by distance");
    }

    #[test]
    fn knn_with_fewer_objects_than_k() {
        let mut t = tree(64);
        t.upsert(still(1, 100.0, 100.0, 0.0));
        t.upsert(still(2, 200.0, 200.0, 0.0));
        let res = t.knn(Point::new(0.0, 0.0), 5, 1.0);
        assert_eq!(res.len(), 2, "returns all objects when k exceeds population");
    }

    #[test]
    fn knn_distance_estimate_monotone() {
        assert!(estimated_knn_distance(1, 1000, 1000.0) < estimated_knn_distance(5, 1000, 1000.0));
        assert!(
            estimated_knn_distance(5, 10_000, 1000.0) < estimated_knn_distance(5, 1000, 1000.0),
            "denser data -> closer neighbors"
        );
        // k = n degenerates to the full-space constant.
        let d = estimated_knn_distance(100, 100, 1000.0);
        assert!((d - 2.0 / std::f64::consts::PI.sqrt() * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn query_io_is_measured_through_pool() {
        let mut t = tree(8);
        for i in 0..5_000u64 {
            t.upsert(still(i, (i % 100) as f64 * 10.0 + 5.0, (i / 100) as f64 * 19.0 + 5.0, 0.0));
        }
        let pool = Arc::clone(t.pool());
        pool.clear();
        pool.reset_stats();
        let _ = t.range_query(&Rect::new(0.0, 250.0, 0.0, 250.0), 10.0);
        let io = pool.stats().physical_reads;
        assert!(io > 0, "cold query must do I/O");
        assert!(
            (io as usize) < t.index().page_count(),
            "range query touches a fraction of the tree ({io} pages)"
        );
    }

    #[test]
    fn fused_range_query_and_knn_match_per_interval() {
        let mut per = tree(256);
        for i in 0..600u64 {
            let t = if i % 3 == 0 { 70.0 } else { 10.0 }; // two partitions
            per.upsert(still(i, (i % 60) as f64 * 16.0 + 3.0, (i / 60) as f64 * 95.0 + 3.0, t));
        }
        let pool = Arc::clone(per.pool());
        let r = Rect::new(120.0, 640.0, 80.0, 700.0);

        per.set_fused_scans(false); // measure the legacy per-interval plan first
        let _ = per.range_query(&r, 80.0); // warm
        pool.reset_stats();
        per.reset_scan_stats();
        let want = per.range_query(&r, 80.0);
        let want_knn = per.knn(Point::new(500.0, 480.0), 7, 80.0);
        let per_logical = pool.stats().logical_reads;
        let per_descents = per.scan_stats().descents;

        per.set_fused_scans(true);
        assert!(per.fused_scans());
        let _ = per.range_query(&r, 80.0);
        let _ = per.knn(Point::new(500.0, 480.0), 7, 80.0);
        pool.reset_stats();
        per.reset_scan_stats();
        let got = per.range_query(&r, 80.0);
        let got_knn = per.knn(Point::new(500.0, 480.0), 7, 80.0);
        let fused_logical = pool.stats().logical_reads;
        let fused_descents = per.scan_stats().descents;

        assert_eq!(got, want, "fused range query must return identical results");
        assert_eq!(got_knn, want_knn, "fused kNN must return the identical ranking");
        assert!(!want.is_empty());
        assert!(
            fused_logical < per_logical,
            "fused logical reads {fused_logical} not below per-interval {per_logical}"
        );
        assert!(
            fused_descents * 2 <= per_descents,
            "fused descents {fused_descents} vs per-interval {per_descents}"
        );
    }

    #[test]
    fn expire_removes_only_stale_partitions() {
        let space = SpaceConfig::new(1000.0, 10, 1440.0);
        let mut t =
            BxTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::new(120.0, 2), 3.0);
        // u1 updated at t=10 -> label 120; u2 updated at t=130 -> label 240.
        t.upsert(MovingPoint::new(UserId(1), Point::new(100.0, 100.0), Vec2::ZERO, 10.0));
        t.upsert(MovingPoint::new(UserId(2), Point::new(200.0, 200.0), Vec2::ZERO, 130.0));
        assert_eq!(t.live_partitions().len(), 2);

        // At now=200 the label-120 partition has expired; u1 never updated.
        let dropped = t.expire_stale(200.0);
        assert_eq!(dropped, 1);
        assert_eq!(t.len(), 1);
        assert!(t.get(UserId(1)).is_none());
        assert!(t.get(UserId(2)).is_some());
        assert_eq!(t.live_partitions().len(), 1);

        // Nothing more to expire.
        assert_eq!(t.expire_stale(200.0), 0);
    }

    #[test]
    fn expiry_does_not_unlink_freshly_updated_objects() {
        let space = SpaceConfig::new(1000.0, 10, 1440.0);
        let mut t =
            BxTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::new(120.0, 2), 3.0);
        t.upsert(MovingPoint::new(UserId(1), Point::new(100.0, 100.0), Vec2::ZERO, 10.0));
        // u1 updates in time: moves to the label-240 partition.
        t.upsert(MovingPoint::new(UserId(1), Point::new(150.0, 150.0), Vec2::ZERO, 130.0));
        assert_eq!(t.expire_stale(200.0), 0, "old entry was already replaced by the update");
        assert!(t.get(UserId(1)).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use peb_common::Vec2;
    use proptest::prelude::*;

    /// f32-representable coordinates so the on-disk record is lossless.
    fn coord() -> impl Strategy<Value = f64> {
        (0u32..4000).prop_map(|v| v as f64 * 0.25)
    }

    fn vel() -> impl Strategy<Value = f64> {
        (-8i32..=8).prop_map(|v| v as f64 * 0.25)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn range_query_matches_linear_scan_oracle(
            objs in proptest::collection::vec((coord(), coord(), vel(), vel(), 0u32..100), 1..120),
            qx in coord(), qy in coord(),
            w in 10u32..400, h in 10u32..400,
            tq_off in 0u32..120,
        ) {
            let space = SpaceConfig::new(1000.0, 10, 1440.0);
            let mut t = BxTree::new(
                Arc::new(BufferPool::new(256)),
                space,
                TimePartitioning::default(),
                3.0,
            );
            let mut oracle = Vec::new();
            for (i, (x, y, vx, vy, tu)) in objs.iter().enumerate() {
                let m = MovingPoint::new(
                    UserId(i as u64),
                    Point::new(*x, *y),
                    Vec2::new(*vx, *vy),
                    *tu as f64,
                );
                t.upsert(m);
                oracle.push(m);
            }
            let tq = 100.0 + tq_off as f64;
            let r = Rect::new(qx, (qx + w as f64).min(1000.0), qy, (qy + h as f64).min(1000.0));

            let mut got: Vec<u64> = t.range_query(&r, tq).iter().map(|m| m.uid.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = oracle
                .iter()
                .filter(|m| r.contains(&m.position_at(tq)))
                .map(|m| m.uid.0)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn knn_matches_brute_force(
            objs in proptest::collection::vec((coord(), coord(), vel(), vel()), 5..80),
            qx in coord(), qy in coord(),
            k in 1usize..6,
        ) {
            let space = SpaceConfig::new(1000.0, 10, 1440.0);
            let mut t = BxTree::new(
                Arc::new(BufferPool::new(256)),
                space,
                TimePartitioning::default(),
                3.0,
            );
            let mut oracle = Vec::new();
            for (i, (x, y, vx, vy)) in objs.iter().enumerate() {
                let m = MovingPoint::new(UserId(i as u64), Point::new(*x, *y), Vec2::new(*vx, *vy), 0.0);
                t.upsert(m);
                oracle.push(m);
            }
            let tq = 30.0;
            let q = Point::new(qx, qy);
            let got: Vec<u64> = t.knn(q, k, tq).iter().map(|(m, _)| m.uid.0).collect();

            let mut dists: Vec<(f64, u64)> = oracle
                .iter()
                .map(|m| (m.position_at(tq).dist(&q), m.uid.0))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let want: Vec<u64> = dists.iter().take(k).map(|(_, id)| *id).collect();
            prop_assert_eq!(got, want);
        }
    }
}
