//! Bx key packing: `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂`.

use peb_index::KeyLayout;

/// Bit layout of Bx-tree keys for a given Z-grid resolution.
#[derive(Debug, Clone, Copy)]
pub struct BxKeyLayout {
    /// Bits of the Z-curve value (2 × grid bits per axis).
    pub zv_bits: u32,
}

impl KeyLayout for BxKeyLayout {
    fn zv_bits(&self) -> u32 {
        self.zv_bits
    }

    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        BxKeyLayout::key(self, tid, zv, uid)
    }

    fn partition_range(&self, tid: u8) -> (u128, u128) {
        (self.range_start(tid, 0), self.range_end(tid, (1u64 << self.zv_bits) - 1))
    }
}

/// Bits reserved for the user id in the key's low end.
pub const UID_BITS: u32 = 32;
/// Bits reserved for the time-partition id.
pub const TID_BITS: u32 = 8;

impl BxKeyLayout {
    /// The layout for a `2^grid_bits × 2^grid_bits` Z-order grid.
    pub fn new(grid_bits: u32) -> Self {
        assert!((1..=16).contains(&grid_bits));
        BxKeyLayout { zv_bits: 2 * grid_bits }
    }

    /// Compose a full key.
    #[inline]
    pub fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        debug_assert!(zv < (1u64 << self.zv_bits));
        debug_assert!(uid < (1u64 << UID_BITS));
        ((tid as u128) << (self.zv_bits + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
    }

    /// The smallest key of the interval `(tid, zv_lo..=zv_hi)` over all uids.
    #[inline]
    pub fn range_start(&self, tid: u8, zv_lo: u64) -> u128 {
        self.key(tid, zv_lo, 0)
    }

    /// The largest key of the interval `(tid, zv_lo..=zv_hi)` over all uids.
    #[inline]
    pub fn range_end(&self, tid: u8, zv_hi: u64) -> u128 {
        self.key(tid, zv_hi, (1u64 << UID_BITS) - 1)
    }

    /// The time-partition id packed into `key`.
    #[inline]
    pub fn tid_of(&self, key: u128) -> u8 {
        (key >> (self.zv_bits + UID_BITS)) as u8
    }

    /// The Z-curve value packed into `key`.
    #[inline]
    pub fn zv_of(&self, key: u128) -> u64 {
        ((key >> UID_BITS) & ((1u128 << self.zv_bits) - 1)) as u64
    }

    /// The user id packed into `key`.
    #[inline]
    pub fn uid_of(&self, key: u128) -> u64 {
        (key & ((1u128 << UID_BITS) - 1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let l = BxKeyLayout::new(10);
        let k = l.key(3, 0xABCDE, 42);
        assert_eq!(l.tid_of(k), 3);
        assert_eq!(l.zv_of(k), 0xABCDE);
        assert_eq!(l.uid_of(k), 42);
    }

    #[test]
    fn ordering_tid_dominates_then_zv_then_uid() {
        let l = BxKeyLayout::new(10);
        assert!(l.key(0, (1 << 20) - 1, 99) < l.key(1, 0, 0), "TID dominates");
        assert!(l.key(1, 5, u32::MAX as u64) < l.key(1, 6, 0), "ZV beats UID");
        assert!(l.key(1, 5, 1) < l.key(1, 5, 2));
    }

    #[test]
    fn range_bounds_cover_all_uids() {
        let l = BxKeyLayout::new(8);
        let lo = l.range_start(2, 100);
        let hi = l.range_end(2, 100);
        let some = l.key(2, 100, 12345);
        assert!(lo <= some && some <= hi);
        assert!(l.key(2, 99, u32::MAX as u64) < lo);
        assert!(l.key(2, 101, 0) > hi);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn oversized_zv_rejected_in_debug() {
        let l = BxKeyLayout::new(4);
        l.key(0, 1 << 8, 0);
    }

    #[test]
    fn trait_partition_range_spans_every_key() {
        use peb_index::KeyLayout as _;
        let l = BxKeyLayout::new(10);
        let (lo, hi) = l.partition_range(3);
        assert_eq!(lo, l.key(3, 0, 0));
        assert_eq!(hi, l.key(3, (1 << 20) - 1, u32::MAX as u64));
        let (lo4, _) = l.partition_range(4);
        assert!(hi < lo4, "partition ranges must be disjoint");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn pack_unpack_identity(
            grid_bits in 1u32..=16,
            tid in 0u8..=255,
            zv_raw in any::<u64>(),
            uid in 0u64..(1 << 32),
        ) {
            let l = BxKeyLayout::new(grid_bits);
            let zv = zv_raw & ((1u64 << l.zv_bits) - 1);
            let k = l.key(tid, zv, uid);
            prop_assert_eq!(l.tid_of(k), tid);
            prop_assert_eq!(l.zv_of(k), zv);
            prop_assert_eq!(l.uid_of(k), uid);
        }

        #[test]
        fn key_order_is_lexicographic_tid_zv_uid(
            a in (0u8..8, 0u64..(1 << 20), 0u64..(1 << 32)),
            b in (0u8..8, 0u64..(1 << 20), 0u64..(1 << 32)),
        ) {
            let l = BxKeyLayout::new(10);
            let ka = l.key(a.0, a.1, a.2);
            let kb = l.key(b.0, b.1, b.2);
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "key order must equal tuple order");
        }
    }
}
