//! Bx key packing: `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂`.

/// Bit layout of Bx-tree keys for a given Z-grid resolution.
#[derive(Debug, Clone, Copy)]
pub struct BxKeyLayout {
    /// Bits of the Z-curve value (2 × grid bits per axis).
    pub zv_bits: u32,
}

/// Bits reserved for the user id in the key's low end.
pub const UID_BITS: u32 = 32;
/// Bits reserved for the time-partition id.
pub const TID_BITS: u32 = 8;

impl BxKeyLayout {
    pub fn new(grid_bits: u32) -> Self {
        assert!((1..=16).contains(&grid_bits));
        BxKeyLayout { zv_bits: 2 * grid_bits }
    }

    /// Compose a full key.
    #[inline]
    pub fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        debug_assert!(zv < (1u64 << self.zv_bits));
        debug_assert!(uid < (1u64 << UID_BITS));
        ((tid as u128) << (self.zv_bits + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
    }

    /// The smallest key of the interval `(tid, zv_lo..=zv_hi)` over all uids.
    #[inline]
    pub fn range_start(&self, tid: u8, zv_lo: u64) -> u128 {
        self.key(tid, zv_lo, 0)
    }

    /// The largest key of the interval `(tid, zv_lo..=zv_hi)` over all uids.
    #[inline]
    pub fn range_end(&self, tid: u8, zv_hi: u64) -> u128 {
        self.key(tid, zv_hi, (1u64 << UID_BITS) - 1)
    }

    #[inline]
    pub fn tid_of(&self, key: u128) -> u8 {
        (key >> (self.zv_bits + UID_BITS)) as u8
    }

    #[inline]
    pub fn zv_of(&self, key: u128) -> u64 {
        ((key >> UID_BITS) & ((1u128 << self.zv_bits) - 1)) as u64
    }

    #[inline]
    pub fn uid_of(&self, key: u128) -> u64 {
        (key & ((1u128 << UID_BITS) - 1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let l = BxKeyLayout::new(10);
        let k = l.key(3, 0xABCDE, 42);
        assert_eq!(l.tid_of(k), 3);
        assert_eq!(l.zv_of(k), 0xABCDE);
        assert_eq!(l.uid_of(k), 42);
    }

    #[test]
    fn ordering_tid_dominates_then_zv_then_uid() {
        let l = BxKeyLayout::new(10);
        assert!(l.key(0, (1 << 20) - 1, 99) < l.key(1, 0, 0), "TID dominates");
        assert!(l.key(1, 5, u32::MAX as u64) < l.key(1, 6, 0), "ZV beats UID");
        assert!(l.key(1, 5, 1) < l.key(1, 5, 2));
    }

    #[test]
    fn range_bounds_cover_all_uids() {
        let l = BxKeyLayout::new(8);
        let lo = l.range_start(2, 100);
        let hi = l.range_end(2, 100);
        let some = l.key(2, 100, 12345);
        assert!(lo <= some && some <= hi);
        assert!(l.key(2, 99, u32::MAX as u64) < lo);
        assert!(l.key(2, 101, 0) > hi);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn oversized_zv_rejected_in_debug() {
        let l = BxKeyLayout::new(4);
        l.key(0, 1 << 8, 0);
    }
}
