//! The Bx-tree: a B+-tree based moving-object index (Jensen, Lin, Ooi,
//! VLDB 2004), reproduced here both as the substrate the PEB-tree extends
//! and as the **spatial-index baseline** of the paper's evaluation (Sec 4).
//!
//! The Bx-tree linearizes moving objects: each update is indexed as of the
//! nearest *future label timestamp* of its partition (Fig 1 of the paper),
//! and the object's predicted position at that label timestamp is mapped to
//! a one-dimensional value with the Z-curve. Queries enlarge their window
//! by the maximum object speed times the time gap between query time and
//! label timestamp, convert the window to Z-intervals, and refine candidates
//! with their exact linear motion.
//!
//! Key layout (one `u128` per object):
//!
//! ```text
//! [ TID : 8 bits ][ ZV : 2·grid_bits ][ UID : 32 bits ]
//! ```
//!
//! Embedding the uid makes keys unique, so the underlying B+-tree never
//! sees duplicates and updates are exact delete+insert pairs.
//!
//! All of the engine-independent machinery (updates — single-object and
//! batched, bulk load, partition expiry, I/O accounting) lives in
//! [`peb_index::ShardedMovingIndex`], which keeps one B+-tree per rotating
//! time partition behind its own lock; this crate contributes the Bx key
//! layout and the privacy-unaware query algorithms.

#![warn(missing_docs)]

pub mod keys;
pub mod tree;

pub use keys::BxKeyLayout;
pub use tree::{estimated_knn_distance, BxTree};

// Re-exported from the generic index core for backwards compatibility:
// these types started life in this crate and half the workspace imports
// them through it.
pub use peb_index::{ObjectRecord, TimePartitioning};
