//! Policy comparison: the α score and the compatibility degree `C(u1, u2)`
//! of Eq. 4.
//!
//! Two cases (Sec 5.1):
//!
//! * **Mutual** (`P1→2 ↔ P2→1`): both policies exist and their `locr`/`tint`
//!   overlap, i.e. the users can sometimes see each other *simultaneously*.
//!   `α = O(locr1, locr2)/S · D(tint1, tint2)/T`, and `C = (1 + α)/2 > 0.5`.
//! * **Non-mutual** (`P1→2 = P2→1`): disjoint conditions, or only one
//!   policy exists. `α = ½(|locr1|/S·|tint1|/T + |locr2|/S·|tint2|/T)`
//!   (missing terms omitted), never exceeding 0.5, and `C = α`.
//!
//! With no policy at all, `α = 0` and `C = 0`: the users are *unrelated*.

use peb_common::{SpaceConfig, UserId};

use crate::lpp::Policy;
use crate::store::PolicyStore;

/// Multi-policy classification (Sec 8's extension): the pair is mutual if
/// *any* cross pair of their policies overlaps in both region and time.
fn classify_multi(p12: &[Policy], p21: &[Policy]) -> Relation {
    if p12.is_empty() && p21.is_empty() {
        return Relation::Unrelated;
    }
    for a in p12 {
        for b in p21 {
            if a.locr.overlap_area(&b.locr) > 0.0 && a.tint.overlap(&b.tint) > 0.0 {
                return Relation::Mutual;
            }
        }
    }
    Relation::NonMutual
}

/// The α score over multi-policy pairs: mutual pairs take the largest
/// simultaneous-disclosure overlap across policy combinations; non-mutual
/// pairs take half the sum of each side's largest normalized volume, so the
/// ≤ 0.5 bound of the single-policy case carries over.
pub fn alpha_multi(p12: &[Policy], p21: &[Policy], space: &SpaceConfig) -> f64 {
    let s = space.area();
    let t = space.time_domain;
    match classify_multi(p12, p21) {
        Relation::Mutual => {
            let mut best = 0.0f64;
            for a in p12 {
                for b in p21 {
                    let o = (a.locr.overlap_area(&b.locr) / s) * (a.tint.overlap(&b.tint) / t);
                    best = best.max(o);
                }
            }
            best
        }
        Relation::NonMutual => {
            let va = p12.iter().map(|p| p.normalized_volume(s, t)).fold(0.0, f64::max);
            let vb = p21.iter().map(|p| p.normalized_volume(s, t)).fold(0.0, f64::max);
            0.5 * (va + vb)
        }
        Relation::Unrelated => 0.0,
    }
}

/// How a pair of users relates through their policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Policies in both directions with overlapping region and interval.
    Mutual,
    /// Some policy exists but never discloses both users simultaneously.
    NonMutual,
    /// No policy in either direction.
    Unrelated,
}

fn classify(p12: Option<&Policy>, p21: Option<&Policy>) -> Relation {
    match (p12, p21) {
        (Some(a), Some(b))
            if a.locr.overlap_area(&b.locr) > 0.0 && a.tint.overlap(&b.tint) > 0.0 =>
        {
            Relation::Mutual
        }
        (None, None) => Relation::Unrelated,
        _ => Relation::NonMutual,
    }
}

/// The α score for a pair of (optional) directed policies.
pub fn alpha(p12: Option<&Policy>, p21: Option<&Policy>, space: &SpaceConfig) -> f64 {
    let s = space.area();
    let t = space.time_domain;
    match classify(p12, p21) {
        Relation::Mutual => {
            let (a, b) = (p12.unwrap(), p21.unwrap());
            (a.locr.overlap_area(&b.locr) / s) * (a.tint.overlap(&b.tint) / t)
        }
        Relation::NonMutual => {
            let va = p12.map_or(0.0, |p| p.normalized_volume(s, t));
            let vb = p21.map_or(0.0, |p| p.normalized_volume(s, t));
            0.5 * (va + vb)
        }
        Relation::Unrelated => 0.0,
    }
}

/// Eq. 4: the degree of compatibility `C(u1, u2) ∈ [0, 1]`.
///
/// Mutual pairs land strictly above 0.5 (they are "more likely to be
/// included in each other's query results"); non-mutual pairs at or below
/// 0.5; unrelated pairs at exactly 0.
pub fn compatibility(store: &PolicyStore, space: &SpaceConfig, u1: UserId, u2: UserId) -> f64 {
    let p12 = store.policies(u1, u2);
    let p21 = store.policies(u2, u1);
    let a = alpha_multi(p12, p21, space);
    match classify_multi(p12, p21) {
        Relation::Mutual => 0.5 * (1.0 + a),
        Relation::NonMutual => a,
        Relation::Unrelated => 0.0,
    }
}

/// The relation classification for a pair, exposed for diagnostics.
pub fn relation(store: &PolicyStore, u1: UserId, u2: UserId) -> Relation {
    classify_multi(store.policies(u1, u2), store.policies(u2, u1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpp::RoleId;
    use peb_common::{Rect, TimeInterval};

    fn space() -> SpaceConfig {
        SpaceConfig::new(1000.0, 10, 1000.0)
    }

    fn pol(owner: u64, locr: Rect, tint: TimeInterval) -> Policy {
        Policy::new(UserId(owner), RoleId::FRIEND, locr, tint)
    }

    #[test]
    fn mutual_pair_scores_above_half() {
        let mut s = PolicyStore::new();
        // Overlap area 100x100 of 1000x1000 => 0.01; time overlap 100/1000 => 0.1.
        s.add(UserId(2), pol(1, Rect::new(0.0, 200.0, 0.0, 200.0), TimeInterval::new(0.0, 200.0)));
        s.add(
            UserId(1),
            pol(2, Rect::new(100.0, 300.0, 100.0, 300.0), TimeInterval::new(100.0, 300.0)),
        );
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::Mutual);
        let a = alpha(s.policy(UserId(1), UserId(2)), s.policy(UserId(2), UserId(1)), &space());
        assert!((a - 0.01 * 0.1).abs() < 1e-12);
        let c = compatibility(&s, &space(), UserId(1), UserId(2));
        assert!((c - 0.5 * (1.0 + 0.001)).abs() < 1e-12);
        assert!(c > 0.5);
        // Symmetric.
        assert_eq!(c, compatibility(&s, &space(), UserId(2), UserId(1)));
    }

    #[test]
    fn disjoint_policies_are_non_mutual() {
        let mut s = PolicyStore::new();
        // Regions overlap but intervals do not -> non-mutual.
        s.add(UserId(2), pol(1, Rect::new(0.0, 100.0, 0.0, 100.0), TimeInterval::new(0.0, 100.0)));
        s.add(
            UserId(1),
            pol(2, Rect::new(0.0, 100.0, 0.0, 100.0), TimeInterval::new(200.0, 300.0)),
        );
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::NonMutual);
        let c = compatibility(&s, &space(), UserId(1), UserId(2));
        // Each volume: 0.01 * 0.1 = 0.001; alpha = (0.001+0.001)/2 = 0.001.
        assert!((c - 0.001).abs() < 1e-12);
        assert!(c <= 0.5);
    }

    #[test]
    fn one_sided_policy_halves_the_volume() {
        let mut s = PolicyStore::new();
        s.add(
            UserId(2),
            pol(1, Rect::new(0.0, 1000.0, 0.0, 1000.0), TimeInterval::new(0.0, 1000.0)),
        );
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::NonMutual);
        let c = compatibility(&s, &space(), UserId(1), UserId(2));
        // "If P2→1 does not exist, the second term is omitted": α = 1/2 · 1.
        assert!((c - 0.5).abs() < 1e-12, "non-mutual never exceeds 0.5, got {c}");
    }

    #[test]
    fn unrelated_users_score_zero() {
        let s = PolicyStore::new();
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::Unrelated);
        assert_eq!(compatibility(&s, &space(), UserId(1), UserId(2)), 0.0);
    }

    #[test]
    fn mutual_dominates_non_mutual_priority() {
        // "Users who can sometimes see each other simultaneously" must rank
        // above any pair that cannot, whatever the volumes involved.
        let mut s1 = PolicyStore::new();
        let tiny = Rect::new(0.0, 10.0, 0.0, 10.0);
        s1.add(UserId(2), pol(1, tiny, TimeInterval::new(0.0, 10.0)));
        s1.add(UserId(1), pol(2, tiny, TimeInterval::new(5.0, 15.0)));
        let mutual_c = compatibility(&s1, &space(), UserId(1), UserId(2));

        let mut s2 = PolicyStore::new();
        let huge = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        s2.add(UserId(2), pol(1, huge, TimeInterval::new(0.0, 1000.0)));
        s2.add(UserId(1), pol(2, huge, TimeInterval::new(0.0, 0.0)));
        // Second policy has zero duration -> no simultaneous disclosure.
        let nonmutual_c = compatibility(&s2, &space(), UserId(1), UserId(2));

        assert!(mutual_c > 0.5);
        assert!(nonmutual_c <= 0.5);
        assert!(mutual_c > nonmutual_c);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lpp::RoleId;
    use peb_common::{Rect, TimeInterval};
    use proptest::prelude::*;

    fn arb_policy(owner: u64) -> impl Strategy<Value = Policy> {
        (0.0f64..900.0, 1.0f64..100.0, 0.0f64..900.0, 1.0f64..100.0, 0.0f64..900.0, 1.0f64..100.0)
            .prop_map(move |(x, w, y, h, t, d)| {
                Policy::new(
                    UserId(owner),
                    RoleId::FRIEND,
                    Rect::new(x, x + w, y, y + h),
                    TimeInterval::new(t, t + d),
                )
            })
    }

    proptest! {
        #[test]
        fn compatibility_bounded_and_symmetric(p12 in arb_policy(1), p21 in arb_policy(2)) {
            let mut s = PolicyStore::new();
            s.add(UserId(2), p12);
            s.add(UserId(1), p21);
            let space = SpaceConfig::new(1000.0, 10, 1000.0);
            let c12 = compatibility(&s, &space, UserId(1), UserId(2));
            let c21 = compatibility(&s, &space, UserId(2), UserId(1));
            prop_assert!((0.0..=1.0).contains(&c12));
            prop_assert_eq!(c12, c21);
            // Case separation around 0.5.
            match relation(&s, UserId(1), UserId(2)) {
                Relation::Mutual => prop_assert!(c12 > 0.5),
                Relation::NonMutual => prop_assert!(c12 <= 0.5),
                Relation::Unrelated => prop_assert_eq!(c12, 0.0),
            }
        }
    }
}

#[cfg(test)]
mod multi_policy_tests {
    use super::*;
    use crate::lpp::RoleId;
    use peb_common::{Rect, TimeInterval};

    fn space() -> SpaceConfig {
        SpaceConfig::new(1000.0, 10, 1000.0)
    }

    fn pol(owner: u64, locr: Rect, tint: TimeInterval) -> Policy {
        Policy::new(UserId(owner), RoleId::FRIEND, locr, tint)
    }

    #[test]
    fn additional_policy_can_upgrade_to_mutual() {
        let mut s = PolicyStore::new();
        let region = Rect::new(0.0, 200.0, 0.0, 200.0);
        // First policies: disjoint times -> non-mutual.
        s.add(UserId(2), pol(1, region, TimeInterval::new(0.0, 100.0)));
        s.add(UserId(1), pol(2, region, TimeInterval::new(200.0, 300.0)));
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::NonMutual);
        let c_before = compatibility(&s, &space(), UserId(1), UserId(2));
        // u1 adds a second, overlapping policy -> pair becomes mutual.
        s.add_additional(UserId(2), pol(1, region, TimeInterval::new(250.0, 350.0)));
        assert_eq!(relation(&s, UserId(1), UserId(2)), Relation::Mutual);
        let c_after = compatibility(&s, &space(), UserId(1), UserId(2));
        assert!(c_after > 0.5 && c_after > c_before);
    }

    #[test]
    fn mutual_alpha_takes_best_combination() {
        let mut s = PolicyStore::new();
        let big = Rect::new(0.0, 500.0, 0.0, 500.0);
        let small = Rect::new(0.0, 50.0, 0.0, 50.0);
        let when = TimeInterval::new(0.0, 500.0);
        s.add(UserId(2), pol(1, small, when));
        s.add_additional(UserId(2), pol(1, big, when));
        s.add(UserId(1), pol(2, big, when));
        let a = alpha_multi(
            s.policies(UserId(1), UserId(2)),
            s.policies(UserId(2), UserId(1)),
            &space(),
        );
        // Best combination is big x big: (0.25) * (0.5) = 0.125.
        assert!((a - 0.125).abs() < 1e-12);
    }

    #[test]
    fn non_mutual_alpha_stays_bounded_with_many_policies() {
        let mut s = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        for i in 0..5 {
            let start = i as f64 * 10.0;
            let p = pol(1, whole, TimeInterval::new(start, start + 5.0));
            if i == 0 {
                s.add(UserId(2), p);
            } else {
                s.add_additional(UserId(2), p);
            }
        }
        let c = compatibility(&s, &space(), UserId(1), UserId(2));
        assert!(c <= 0.5, "non-mutual compatibility must stay at or below 0.5, got {c}");
        assert!(c > 0.0);
    }

    #[test]
    fn permits_accepts_any_of_the_pairs_policies() {
        let mut s = PolicyStore::new();
        let region = Rect::new(0.0, 100.0, 0.0, 100.0);
        s.add(UserId(2), pol(1, region, TimeInterval::new(0.0, 100.0)));
        s.add_additional(UserId(2), pol(1, region, TimeInterval::new(500.0, 600.0)));
        let inside = peb_common::Point::new(50.0, 50.0);
        assert!(s.permits(UserId(1), UserId(2), &inside, 50.0), "first policy window");
        assert!(s.permits(UserId(1), UserId(2), &inside, 550.0), "second policy window");
        assert!(!s.permits(UserId(1), UserId(2), &inside, 300.0), "between windows");
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_pairs(), 1);
    }

    #[test]
    fn single_policy_semantics_unchanged() {
        // With exactly one policy per direction, the multi-policy formulas
        // reduce to the paper's originals.
        let mut s = PolicyStore::new();
        let r1 = Rect::new(0.0, 200.0, 0.0, 200.0);
        let r2 = Rect::new(100.0, 300.0, 100.0, 300.0);
        s.add(UserId(2), pol(1, r1, TimeInterval::new(0.0, 200.0)));
        s.add(UserId(1), pol(2, r2, TimeInterval::new(100.0, 300.0)));
        let single =
            alpha(s.policy(UserId(1), UserId(2)), s.policy(UserId(2), UserId(1)), &space());
        let multi = alpha_multi(
            s.policies(UserId(1), UserId(2)),
            s.policies(UserId(2), UserId(1)),
            &space(),
        );
        assert_eq!(single, multi);
    }
}
