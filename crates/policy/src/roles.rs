//! Role management (the RBAC side of Definition 1).
//!
//! A policy's `role` component "avoids writing the same policy for multiple
//! people with the same relationship" to the owner. This module provides
//! the registry that backs that semantics: owners assign named roles to
//! peers, and role-scoped policies resolve to the concrete pair-wise
//! policies the engine consumes via [`materialize`].
//!
//! The separation mirrors how a deployment would work: the *role layer* is
//! the user-facing policy administration surface; the *pair layer*
//! ([`crate::store::PolicyStore`]) is the flattened, query-optimized form
//! whose updates are rare and batched.

use std::collections::HashMap;

use peb_common::{Rect, TimeInterval, UserId};

use crate::lpp::{Policy, RoleId};
use crate::store::PolicyStore;

/// Maps role ids to human-readable names and tracks, per owner, which peers
/// hold which roles.
#[derive(Debug, Default)]
pub struct RoleRegistry {
    names: HashMap<RoleId, String>,
    /// `owner → (peer → roles held)`.
    memberships: HashMap<UserId, HashMap<UserId, Vec<RoleId>>>,
}

impl RoleRegistry {
    pub fn new() -> Self {
        let mut r = RoleRegistry::default();
        r.define(RoleId::FRIEND, "friend");
        r.define(RoleId::COLLEAGUE, "colleague");
        r.define(RoleId::FAMILY, "family member");
        r
    }

    /// Register (or rename) a role.
    pub fn define(&mut self, role: RoleId, name: &str) {
        self.names.insert(role, name.to_string());
    }

    pub fn name(&self, role: RoleId) -> Option<&str> {
        self.names.get(&role).map(String::as_str)
    }

    /// `owner` declares that `peer` holds `role` (e.g. Bob marks Carol as a
    /// colleague). Idempotent.
    pub fn assign(&mut self, owner: UserId, peer: UserId, role: RoleId) {
        assert_ne!(owner, peer, "roles describe relationships to other users");
        let roles = self.memberships.entry(owner).or_default().entry(peer).or_default();
        if !roles.contains(&role) {
            roles.push(role);
        }
    }

    /// Remove a role assignment; returns whether it existed.
    pub fn revoke(&mut self, owner: UserId, peer: UserId, role: RoleId) -> bool {
        let Some(peers) = self.memberships.get_mut(&owner) else { return false };
        let Some(roles) = peers.get_mut(&peer) else { return false };
        let before = roles.len();
        roles.retain(|r| *r != role);
        roles.len() != before
    }

    /// Definition 2's `qID ∈ role` test: does `peer` hold `role` with
    /// respect to `owner`?
    pub fn holds(&self, owner: UserId, peer: UserId, role: RoleId) -> bool {
        self.memberships
            .get(&owner)
            .and_then(|m| m.get(&peer))
            .is_some_and(|roles| roles.contains(&role))
    }

    /// All peers holding `role` with respect to `owner`.
    pub fn members(&self, owner: UserId, role: RoleId) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .memberships
            .get(&owner)
            .map(|m| {
                m.iter().filter(|(_, roles)| roles.contains(&role)).map(|(peer, _)| *peer).collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }
}

/// A role-scoped policy as a user would author it: one rule covering every
/// peer the owner has put in `role`.
#[derive(Debug, Clone)]
pub struct RolePolicy {
    pub owner: UserId,
    pub role: RoleId,
    pub locr: Rect,
    pub tint: TimeInterval,
}

/// Flatten role-scoped policies into the pair-wise [`PolicyStore`] the
/// query engine consumes. Later policies for the same `(owner, role)` pair
/// are appended as additional policies (multi-policy semantics).
pub fn materialize(registry: &RoleRegistry, role_policies: &[RolePolicy]) -> PolicyStore {
    let mut store = PolicyStore::new();
    for rp in role_policies {
        for peer in registry.members(rp.owner, rp.role) {
            store.add_additional(peer, Policy::new(rp.owner, rp.role, rp.locr, rp.tint));
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::Point;

    fn downtown() -> Rect {
        Rect::new(400.0, 600.0, 400.0, 600.0)
    }

    fn work_hours() -> TimeInterval {
        TimeInterval::new(480.0, 1020.0)
    }

    #[test]
    fn builtin_roles_have_names() {
        let r = RoleRegistry::new();
        assert_eq!(r.name(RoleId::FRIEND), Some("friend"));
        assert_eq!(r.name(RoleId::COLLEAGUE), Some("colleague"));
        assert_eq!(r.name(RoleId(99)), None);
    }

    #[test]
    fn assign_revoke_holds() {
        let mut r = RoleRegistry::new();
        r.assign(UserId(1), UserId(2), RoleId::COLLEAGUE);
        r.assign(UserId(1), UserId(2), RoleId::COLLEAGUE); // idempotent
        assert!(r.holds(UserId(1), UserId(2), RoleId::COLLEAGUE));
        assert!(!r.holds(UserId(1), UserId(2), RoleId::FRIEND));
        assert!(!r.holds(UserId(2), UserId(1), RoleId::COLLEAGUE), "relationships are directed");
        assert!(r.revoke(UserId(1), UserId(2), RoleId::COLLEAGUE));
        assert!(!r.revoke(UserId(1), UserId(2), RoleId::COLLEAGUE));
        assert!(!r.holds(UserId(1), UserId(2), RoleId::COLLEAGUE));
    }

    #[test]
    fn members_are_sorted_and_role_scoped() {
        let mut r = RoleRegistry::new();
        for peer in [5u64, 3, 9] {
            r.assign(UserId(1), UserId(peer), RoleId::FRIEND);
        }
        r.assign(UserId(1), UserId(7), RoleId::FAMILY);
        assert_eq!(r.members(UserId(1), RoleId::FRIEND), vec![UserId(3), UserId(5), UserId(9)]);
        assert_eq!(r.members(UserId(1), RoleId::FAMILY), vec![UserId(7)]);
        assert!(r.members(UserId(2), RoleId::FRIEND).is_empty());
    }

    #[test]
    fn materialize_expands_bobs_policy() {
        // The paper's example: "Bob lets his colleagues see his location
        // when he is in town during work hours."
        let bob = UserId(1);
        let mut reg = RoleRegistry::new();
        for colleague in [2u64, 3, 4] {
            reg.assign(bob, UserId(colleague), RoleId::COLLEAGUE);
        }
        reg.assign(bob, UserId(9), RoleId::FRIEND); // not a colleague

        let store = materialize(
            &reg,
            &[RolePolicy {
                owner: bob,
                role: RoleId::COLLEAGUE,
                locr: downtown(),
                tint: work_hours(),
            }],
        );
        let in_town = Point::new(500.0, 500.0);
        for colleague in [2u64, 3, 4] {
            assert!(store.permits(bob, UserId(colleague), &in_town, 600.0));
            assert!(!store.permits(bob, UserId(colleague), &in_town, 100.0), "outside work hours");
        }
        assert!(!store.permits(bob, UserId(9), &in_town, 600.0), "friends not covered");
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn materialize_stacks_multiple_role_policies() {
        let owner = UserId(1);
        let mut reg = RoleRegistry::new();
        reg.assign(owner, UserId(2), RoleId::FRIEND);
        reg.assign(owner, UserId(2), RoleId::COLLEAGUE);

        let store = materialize(
            &reg,
            &[
                RolePolicy {
                    owner,
                    role: RoleId::FRIEND,
                    locr: downtown(),
                    tint: TimeInterval::new(0.0, 100.0),
                },
                RolePolicy { owner, role: RoleId::COLLEAGUE, locr: downtown(), tint: work_hours() },
            ],
        );
        let p = Point::new(500.0, 500.0);
        // u2 holds both roles: visible in either window.
        assert!(store.permits(owner, UserId(2), &p, 50.0));
        assert!(store.permits(owner, UserId(2), &p, 600.0));
        assert!(!store.permits(owner, UserId(2), &p, 200.0));
    }
}
