//! Per-user friend lists sorted by sequence value.
//!
//! Sec 5.3: "we maintain a list for each user that stores the SV values of
//! users who have policies with respect to the list owner … in ascending
//! order of their SV values". These lists drive both query algorithms: PRQ
//! crosses every friend SV with the query's Z-intervals, and PkNN walks the
//! search matrix column-by-friend. They change only on policy updates, not
//! on location updates.

use peb_common::UserId;

use crate::seqval::SequenceValues;
use crate::store::PolicyStore;

/// One friend of a list owner: a user who has a policy mentioning the
/// owner, keyed by the friend's fixed-point SV code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FriendEntry {
    pub sv_code: u64,
    pub uid: UserId,
}

/// All friend lists, indexed by the dense user id space.
#[derive(Debug, Clone)]
pub struct FriendIndex {
    lists: Vec<Vec<FriendEntry>>,
}

impl FriendIndex {
    /// Build every user's friend list from the policy store: the friends of
    /// `q` are the *owners* of policies toward `q` (only they can ever
    /// appear in `q`'s query results).
    pub fn build(store: &PolicyStore, sv: &SequenceValues, num_users: usize) -> Self {
        let mut lists: Vec<Vec<FriendEntry>> = vec![Vec::new(); num_users];
        for (viewer, list) in lists.iter_mut().enumerate() {
            let viewer = UserId(viewer as u64);
            for &owner in store.granters_of(viewer) {
                list.push(FriendEntry { sv_code: sv.code(owner), uid: owner });
            }
            list.sort_by_key(|e| (e.sv_code, e.uid));
        }
        FriendIndex { lists }
    }

    /// The SV-ascending friend list of `uid`.
    pub fn friends(&self, uid: UserId) -> &[FriendEntry] {
        &self.lists[uid.as_index()]
    }

    /// `SVmin`/`SVmax` over the friend list, if non-empty.
    pub fn sv_bounds(&self, uid: UserId) -> Option<(u64, u64)> {
        let l = self.friends(uid);
        Some((l.first()?.sv_code, l.last()?.sv_code))
    }

    /// Re-derive one user's list after a policy update ("a user is blocked
    /// by a previous friend or adds a new friend").
    pub fn refresh_user(&mut self, store: &PolicyStore, sv: &SequenceValues, uid: UserId) {
        let list = &mut self.lists[uid.as_index()];
        list.clear();
        for &owner in store.granters_of(uid) {
            list.push(FriendEntry { sv_code: sv.code(owner), uid: owner });
        }
        list.sort_by_key(|e| (e.sv_code, e.uid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpp::{Policy, RoleId};
    use crate::seqval::SvAssignmentParams;
    use peb_common::{Rect, SpaceConfig, TimeInterval};

    fn fixture() -> (PolicyStore, SequenceValues) {
        let space = SpaceConfig::new(1000.0, 10, 1000.0);
        let mut store = PolicyStore::new();
        let region = Rect::new(0.0, 500.0, 0.0, 500.0);
        let when = TimeInterval::new(0.0, 500.0);
        // Owners 1, 2, 3 grant viewer 0; owner 3 also grants viewer 1.
        for owner in [1u64, 2, 3] {
            store.add(UserId(0), Policy::new(UserId(owner), RoleId::FRIEND, region, when));
        }
        store.add(UserId(1), Policy::new(UserId(3), RoleId::FRIEND, region, when));
        let sv = SequenceValues::assign(&store, &space, 4, SvAssignmentParams::default());
        (store, sv)
    }

    #[test]
    fn friends_are_policy_owners_sorted_by_sv() {
        let (store, sv) = fixture();
        let idx = FriendIndex::build(&store, &sv, 4);
        let f0 = idx.friends(UserId(0));
        assert_eq!(f0.len(), 3);
        let mut ids: Vec<u64> = f0.iter().map(|e| e.uid.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(f0.windows(2).all(|w| w[0].sv_code <= w[1].sv_code), "ascending SV");
        // Viewer 1's only granter is owner 3.
        assert_eq!(idx.friends(UserId(1)).iter().map(|e| e.uid.0).collect::<Vec<_>>(), vec![3]);
        // Owners don't gain friends by granting.
        assert!(idx.friends(UserId(2)).is_empty());
    }

    #[test]
    fn sv_bounds() {
        let (store, sv) = fixture();
        let idx = FriendIndex::build(&store, &sv, 4);
        let (lo, hi) = idx.sv_bounds(UserId(0)).unwrap();
        assert!(lo <= hi);
        assert_eq!(idx.sv_bounds(UserId(2)), None);
    }

    #[test]
    fn refresh_after_block() {
        let (mut store, sv) = fixture();
        let mut idx = FriendIndex::build(&store, &sv, 4);
        store.remove(UserId(3), UserId(0)); // u3 blocks u0
        idx.refresh_user(&store, &sv, UserId(0));
        let ids: Vec<u64> = idx.friends(UserId(0)).iter().map(|e| e.uid.0).collect();
        assert!(!ids.contains(&3));
        assert_eq!(ids.len(), 2);
    }
}
