//! Sequence-value assignment (Fig. 5).
//!
//! Users are sorted by descending number of related users (|G|, ties by
//! id), then values are assigned group-by-group: an unassigned user gets
//! its predecessor's value plus δ, and each of its still-unassigned group
//! members gets the leader's value plus `1 − C(leader, member)` — so higher
//! compatibility means a closer sequence value. δ > 1 separates groups and
//! leaves room for future policy updates.
//!
//! Encoding is an offline, one-time step ("policy encoding is conducted
//! largely off-line and does not add overhead at runtime").

use peb_common::{SpaceConfig, UserId};

use crate::compat::compatibility;
use crate::store::PolicyStore;

/// Tunables of the assignment: the paper's example uses `initial = 2`,
/// `delta = 2`.
#[derive(Debug, Clone, Copy)]
pub struct SvAssignmentParams {
    /// `sv` — the first user's sequence value (must be > 1).
    pub initial: f64,
    /// `δ` — spacing between group anchors (must be > 1).
    pub delta: f64,
    /// Fixed-point fractional bits used when embedding SVs in index keys.
    pub frac_bits: u32,
}

impl Default for SvAssignmentParams {
    fn default() -> Self {
        SvAssignmentParams { initial: 2.0, delta: 2.0, frac_bits: 10 }
    }
}

/// The computed sequence values for a dense id space `0..num_users`.
#[derive(Debug, Clone)]
pub struct SequenceValues {
    values: Vec<f64>,
    frac_bits: u32,
}

impl SequenceValues {
    /// Run Fig. 5 over the policy store: build the compatibility graph,
    /// sort by group size, and assign values.
    pub fn assign(
        store: &PolicyStore,
        space: &SpaceConfig,
        num_users: usize,
        params: SvAssignmentParams,
    ) -> Self {
        // Compatibility graph: only pairs connected by some policy can have
        // C > 0, so it suffices to score `connected_pairs`.
        let mut graph: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_users];
        for (a, b) in store.connected_pairs() {
            let c = compatibility(store, space, a, b);
            if c > 0.0 {
                graph[a.as_index()].push((b.as_index(), c));
                graph[b.as_index()].push((a.as_index(), c));
            }
        }
        Self::assign_from_graph(&graph, params)
    }

    /// The core of Fig. 5, operating on an explicit compatibility graph
    /// (`graph[i]` lists `(j, C(ui, uj))` with `C > 0`).
    pub fn assign_from_graph(graph: &[Vec<(usize, f64)>], params: SvAssignmentParams) -> Self {
        assert!(params.initial > 1.0, "paper requires sv > 1");
        assert!(params.delta > 1.0, "paper requires δ > 1");
        let n = graph.len();

        // Sort users in descending order of |G|; break ties by id so the
        // assignment is deterministic (matches the paper's worked example).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| graph[b].len().cmp(&graph[a].len()).then(a.cmp(&b)));

        let mut values = vec![f64::NAN; n];
        let mut prev_in_order: Option<usize> = None;
        for &uk in &order {
            if values[uk].is_nan() {
                values[uk] = match prev_in_order {
                    None => params.initial,
                    Some(prev) => values[prev] + params.delta,
                };
                for &(uj, c) in &graph[uk] {
                    if values[uj].is_nan() {
                        values[uj] = values[uk] + (1.0 - c);
                    }
                }
            }
            prev_in_order = Some(uk);
        }
        SequenceValues { values, frac_bits: params.frac_bits }
    }

    pub fn num_users(&self) -> usize {
        self.values.len()
    }

    /// The (fractional) sequence value of a user.
    pub fn value(&self, uid: UserId) -> f64 {
        self.values[uid.as_index()]
    }

    /// Fixed-point encoding of a user's SV, as embedded in PEB keys.
    pub fn code(&self, uid: UserId) -> u64 {
        self.encode(self.value(uid))
    }

    /// Fixed-point encoding of an arbitrary SV.
    pub fn encode(&self, sv: f64) -> u64 {
        debug_assert!(sv >= 0.0);
        (sv * (1u64 << self.frac_bits) as f64).round() as u64
    }

    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Largest code over all users (used to size key layouts).
    pub fn max_code(&self) -> u64 {
        (self.values.iter().copied().fold(0.0f64, f64::max).max(0.0) as u64 + 1) << self.frac_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's worked example (Sec 5.1): six users with
    /// C(u2,u1)=0.4, C(u4,u1)=0.9, C(u4,u3)=0.8, C(u5,u3)=0.2, C(u6,u3)=0.6;
    /// initial value 2, δ = 2.
    fn paper_example() -> SequenceValues {
        // ids 0..6; id 0 unused so u1 == index 1.
        let mut g: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 7];
        let mut edge = |a: usize, b: usize, c: f64| {
            g[a].push((b, c));
            g[b].push((a, c));
        };
        edge(2, 1, 0.4);
        edge(4, 1, 0.9);
        edge(4, 3, 0.8);
        edge(5, 3, 0.2);
        edge(6, 3, 0.6);
        // Exclude the unused id 0 from influencing the order by giving it
        // no edges; it simply gets an anchor value somewhere.
        SequenceValues::assign_from_graph(&g, SvAssignmentParams::default())
    }

    #[test]
    fn paper_example_values() {
        let sv = paper_example();
        // Sorted by |G| desc, ties by id: u3(3), u1(2), u4(2), u2, u5, u6, u0.
        assert_eq!(sv.value(UserId(3)), 2.0);
        assert!((sv.value(UserId(4)) - 2.2).abs() < 1e-12);
        assert!((sv.value(UserId(5)) - 2.8).abs() < 1e-12);
        assert!((sv.value(UserId(6)) - 2.4).abs() < 1e-12);
        assert_eq!(sv.value(UserId(1)), 4.0);
        assert!((sv.value(UserId(2)) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn related_users_get_closer_values_than_unrelated() {
        let sv = paper_example();
        // u4 is related to u3 (C=0.8): distance 0.2.
        // u1 is unrelated to u3: distance 2 (one δ).
        let d_related = (sv.value(UserId(4)) - sv.value(UserId(3))).abs();
        let d_unrelated = (sv.value(UserId(1)) - sv.value(UserId(3))).abs();
        assert!(d_related < d_unrelated);
        // Higher compatibility -> closer: C(u4,u3)=0.8 vs C(u5,u3)=0.2.
        let d_u5 = (sv.value(UserId(5)) - sv.value(UserId(3))).abs();
        assert!(d_related < d_u5);
    }

    #[test]
    fn all_users_receive_values() {
        let sv = paper_example();
        for i in 0..7u64 {
            assert!(!sv.value(UserId(i)).is_nan(), "u{i} missing an SV");
        }
    }

    #[test]
    fn isolated_users_are_delta_separated_anchors() {
        let g: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 4];
        let sv = SequenceValues::assign_from_graph(&g, SvAssignmentParams::default());
        let mut vals: Vec<f64> = (0..4).map(|i| sv.value(UserId(i))).collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn fixed_point_codes_preserve_order() {
        let sv = paper_example();
        let mut pairs: Vec<(f64, u64)> =
            (1..7u64).map(|i| (sv.value(UserId(i)), sv.code(UserId(i)))).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "codes must be monotone in SV");
        }
        // 10 fractional bits resolve the paper's 0.1-granular values.
        assert_eq!(sv.encode(2.0), 2048);
        assert_eq!(sv.encode(2.5), 2560);
    }

    #[test]
    #[should_panic]
    fn delta_must_exceed_one() {
        let g: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 2];
        SequenceValues::assign_from_graph(
            &g,
            SvAssignmentParams { initial: 2.0, delta: 0.5, frac_bits: 10 },
        );
    }

    #[test]
    fn assignment_from_store_matches_graph_path() {
        use crate::lpp::{Policy, RoleId};
        use peb_common::{Rect, TimeInterval};
        let space = SpaceConfig::new(1000.0, 10, 1000.0);
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1000.0);
        // Mutual full-volume pair: C = (1 + 1)/2 = 1 -> member offset 0.
        store.add(UserId(1), Policy::new(UserId(0), RoleId::FRIEND, whole, always));
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, whole, always));
        let sv = SequenceValues::assign(&store, &space, 3, SvAssignmentParams::default());
        assert_eq!(sv.value(UserId(0)), 2.0);
        assert_eq!(sv.value(UserId(1)), 2.0, "C=1 pair shares the anchor value");
        assert_eq!(sv.value(UserId(2)), 4.0, "isolated user lands one δ later");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn every_user_assigned_and_group_members_within_one(
            edges in proptest::collection::vec((0usize..30, 0usize..30, 0.01f64..1.0), 0..80),
        ) {
            let n = 30;
            let mut g: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
            let mut seen = std::collections::HashSet::new();
            for (a, b, c) in edges {
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    g[a].push((b, c));
                    g[b].push((a, c));
                }
            }
            let sv = SequenceValues::assign_from_graph(&g, SvAssignmentParams::default());
            for i in 0..n {
                let v = sv.value(UserId(i as u64));
                prop_assert!(v.is_finite() && v >= 2.0);
            }
            // A member assigned from leader uk sits within (0, 1] of uk, so
            // any two users in the same connected component assigned in one
            // group pass are within 1.0 of the leader. Weak global check:
            // values are at least spaced by construction rules.
            for (i, neighbors) in g.iter().enumerate() {
                for &(j, _) in neighbors {
                    let d = (sv.value(UserId(i as u64)) - sv.value(UserId(j as u64))).abs();
                    // Related users are never two full δ-groups apart unless
                    // assigned via different leaders; sanity-bound it.
                    prop_assert!(d <= (n as f64) * 2.0 + 1.0);
                }
            }
        }
    }
}
