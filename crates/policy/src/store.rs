//! Pair-wise policy storage with forward and reverse indexes.
//!
//! The engine needs two lookups: *"does `owner` have a policy toward
//! `viewer`?"* (query refinement) and *"who has a policy toward `viewer`?"*
//! (the friend list driving PRQ/PkNN search ranges). Both are O(1)/O(k)
//! here. Policy updates are rare in the paper's setting ("updated only
//! rarely, e.g., when a user is blocked by a previous friend"), so this
//! store optimizes reads.

use std::collections::HashMap;

use peb_common::{Point, Timestamp, UserId};

use crate::lpp::Policy;

/// All location-privacy policies in the system, indexed by ordered pair.
///
/// The paper's experiments assume one policy per ordered pair, but Sec 8
/// names multi-policy pairs as future work; this store supports both
/// ([`PolicyStore::add`] replaces, [`PolicyStore::add_additional`] appends,
/// and [`PolicyStore::permits`] grants if *any* of the pair's policies
/// does).
#[derive(Debug, Default)]
pub struct PolicyStore {
    /// `(owner, viewer) → policies`: `owner` grants `viewer` conditional
    /// visibility under any of these.
    by_pair: HashMap<(UserId, UserId), Vec<Policy>>,
    /// Forward index: users each owner has policies toward.
    granted_by: HashMap<UserId, Vec<UserId>>,
    /// Reverse index: owners who have a policy toward each viewer.
    granters_of: HashMap<UserId, Vec<UserId>>,
}

impl PolicyStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `policy` as governing what `viewer` may see of
    /// `policy.owner`. Replaces any previous policies for the pair.
    pub fn add(&mut self, viewer: UserId, policy: Policy) {
        let owner = policy.owner;
        assert_ne!(owner, viewer, "a policy toward oneself is meaningless");
        if self.by_pair.insert((owner, viewer), vec![policy]).is_none() {
            self.granted_by.entry(owner).or_default().push(viewer);
            self.granters_of.entry(viewer).or_default().push(owner);
        }
    }

    /// Append an additional policy for the pair (Sec 8's multi-policy
    /// extension): the owner is visible whenever *any* of the pair's
    /// policies permits.
    pub fn add_additional(&mut self, viewer: UserId, policy: Policy) {
        let owner = policy.owner;
        assert_ne!(owner, viewer, "a policy toward oneself is meaningless");
        match self.by_pair.get_mut(&(owner, viewer)) {
            Some(v) => v.push(policy),
            None => self.add(viewer, policy),
        }
    }

    /// Remove every policy of `owner` toward `viewer` ("blocking a
    /// previous friend").
    pub fn remove(&mut self, owner: UserId, viewer: UserId) -> Option<Vec<Policy>> {
        let removed = self.by_pair.remove(&(owner, viewer));
        if removed.is_some() {
            if let Some(v) = self.granted_by.get_mut(&owner) {
                v.retain(|u| *u != viewer);
            }
            if let Some(v) = self.granters_of.get_mut(&viewer) {
                v.retain(|u| *u != owner);
            }
        }
        removed
    }

    /// The first policy `owner` has toward `viewer`, if any (the paper's
    /// one-policy-per-pair view).
    pub fn policy(&self, owner: UserId, viewer: UserId) -> Option<&Policy> {
        self.by_pair.get(&(owner, viewer)).and_then(|v| v.first())
    }

    /// All policies `owner` has toward `viewer` (multi-policy extension).
    pub fn policies(&self, owner: UserId, viewer: UserId) -> &[Policy] {
        self.by_pair.get(&(owner, viewer)).map_or(&[], Vec::as_slice)
    }

    /// Definition 2's full policy check: may `viewer` see `owner`, located
    /// at `owner_pos`, at time `t`? With multiple policies for the pair,
    /// any one of them suffices.
    pub fn permits(&self, owner: UserId, viewer: UserId, owner_pos: &Point, t: Timestamp) -> bool {
        self.policies(owner, viewer).iter().any(|p| p.permits(owner_pos, t))
    }

    /// Users `owner` has a policy toward.
    pub fn granted_by(&self, owner: UserId) -> &[UserId] {
        self.granted_by.get(&owner).map_or(&[], Vec::as_slice)
    }

    /// Owners who have a policy toward `viewer` — the raw friend list of a
    /// query issuer.
    pub fn granters_of(&self, viewer: UserId) -> &[UserId] {
        self.granters_of.get(&viewer).map_or(&[], Vec::as_slice)
    }

    /// Whether any policy connects the unordered pair.
    pub fn are_connected(&self, a: UserId, b: UserId) -> bool {
        self.by_pair.contains_key(&(a, b)) || self.by_pair.contains_key(&(b, a))
    }

    /// Total number of (directed) policies across all pairs.
    pub fn len(&self) -> usize {
        self.by_pair.values().map(Vec::len).sum()
    }

    /// Number of connected ordered pairs.
    pub fn num_pairs(&self) -> usize {
        self.by_pair.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_pair.is_empty()
    }

    /// Iterate over every `(owner, viewer, policy)` triple.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, UserId, &Policy)> {
        self.by_pair.iter().flat_map(|((o, v), ps)| ps.iter().map(move |p| (*o, *v, p)))
    }

    /// All unordered pairs `{a, b}` connected by at least one policy, each
    /// reported once. Drives the pair-wise compatibility computation.
    pub fn connected_pairs(&self) -> Vec<(UserId, UserId)> {
        let mut pairs: Vec<(UserId, UserId)> =
            self.by_pair.keys().map(|&(o, v)| if o <= v { (o, v) } else { (v, o) }).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpp::RoleId;
    use peb_common::{Rect, TimeInterval};

    fn policy(owner: u64) -> Policy {
        Policy::new(
            UserId(owner),
            RoleId::FRIEND,
            Rect::new(0.0, 100.0, 0.0, 100.0),
            TimeInterval::new(0.0, 100.0),
        )
    }

    #[test]
    fn add_and_lookup() {
        let mut s = PolicyStore::new();
        s.add(UserId(2), policy(1));
        assert!(s.policy(UserId(1), UserId(2)).is_some());
        assert!(s.policy(UserId(2), UserId(1)).is_none(), "policies are directed");
        assert_eq!(s.granted_by(UserId(1)), &[UserId(2)]);
        assert_eq!(s.granters_of(UserId(2)), &[UserId(1)]);
        assert!(s.are_connected(UserId(1), UserId(2)));
        assert!(s.are_connected(UserId(2), UserId(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn replace_does_not_duplicate_indexes() {
        let mut s = PolicyStore::new();
        s.add(UserId(2), policy(1));
        s.add(UserId(2), policy(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.granted_by(UserId(1)).len(), 1);
    }

    #[test]
    fn remove_unlinks_both_indexes() {
        let mut s = PolicyStore::new();
        s.add(UserId(2), policy(1));
        assert!(s.remove(UserId(1), UserId(2)).is_some());
        assert!(s.remove(UserId(1), UserId(2)).is_none());
        assert!(s.granted_by(UserId(1)).is_empty());
        assert!(s.granters_of(UserId(2)).is_empty());
        assert!(!s.are_connected(UserId(1), UserId(2)));
    }

    #[test]
    fn permits_applies_policy_conditions() {
        let mut s = PolicyStore::new();
        s.add(UserId(2), policy(1));
        let inside = peb_common::Point::new(50.0, 50.0);
        let outside = peb_common::Point::new(500.0, 50.0);
        assert!(s.permits(UserId(1), UserId(2), &inside, 50.0));
        assert!(!s.permits(UserId(1), UserId(2), &outside, 50.0));
        assert!(!s.permits(UserId(1), UserId(2), &inside, 500.0));
        assert!(!s.permits(UserId(1), UserId(3), &inside, 50.0), "no policy, no access");
    }

    #[test]
    fn connected_pairs_dedupes_directions() {
        let mut s = PolicyStore::new();
        s.add(UserId(2), policy(1)); // 1 -> 2
        let mut p2 = policy(2);
        p2.owner = UserId(2);
        s.add(UserId(1), p2); // 2 -> 1
        s.add(UserId(3), policy(1)); // 1 -> 3
        assert_eq!(s.connected_pairs(), vec![(UserId(1), UserId(2)), (UserId(1), UserId(3))]);
    }

    #[test]
    #[should_panic]
    fn self_policy_rejected() {
        let mut s = PolicyStore::new();
        s.add(UserId(1), policy(1));
    }
}
