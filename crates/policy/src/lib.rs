//! Location-privacy policies (LPPs) and the paper's policy encoding.
//!
//! Section 5.1 of the paper proceeds in three phases, all implemented here:
//!
//! 1. **Policy translation** — semantic locations become Euclidean regions.
//!    Our [`Policy`] already stores a [`peb_common::Rect`] region plus a
//!    closed [`peb_common::TimeInterval`], together with the `role` label.
//! 2. **Policy comparison** — a score `α ∈ [0, 1]` quantifies how two
//!    users' policies relate, and Eq. 4 turns it into the compatibility
//!    degree `C(u1, u2)` ([`compat`]).
//! 3. **Policy encoding** — the sequence-value assignment of Fig. 5 maps
//!    every user to a *sequence value* `SV` such that users with compatible
//!    policies receive nearby values ([`seqval`]).
//!
//! [`store::PolicyStore`] holds the pair-wise policies (the paper's
//! experiments assume one policy per ordered user pair), and
//! [`friends::FriendIndex`] materializes, per user, the SV-sorted list of
//! users who have a policy mentioning them — the "friend list" every query
//! starts from.

pub mod compat;
pub mod friends;
pub mod lpp;
pub mod roles;
pub mod seqval;
pub mod store;

pub use compat::{alpha, alpha_multi, compatibility, Relation};
pub use friends::FriendIndex;
pub use lpp::{Policy, RoleId};
pub use roles::{materialize, RolePolicy, RoleRegistry};
pub use seqval::{SequenceValues, SvAssignmentParams};
pub use store::PolicyStore;
