//! The location-privacy policy (LPP) format of Definition 1.
//!
//! `P1→2 = ⟨role, locr, tint⟩`: user u2, related to u1 by `role`, may see
//! u1's location while u1 is inside `locr` during `tint`. The `role`
//! component follows RBAC practice — one label covers every peer with the
//! same relationship — while the engine resolves policies per ordered pair
//! (the paper's experiments assume one policy per pair).

use peb_common::{Point, Rect, TimeInterval, Timestamp, UserId};

/// A relationship label ("friend", "colleague", "family member", …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u16);

impl RoleId {
    pub const FRIEND: RoleId = RoleId(0);
    pub const COLLEAGUE: RoleId = RoleId(1);
    pub const FAMILY: RoleId = RoleId(2);
}

/// A location-privacy policy `⟨role, locr, tint⟩` owned by `owner`.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// The user whose location is being protected (u1 in `P1→2`).
    pub owner: UserId,
    /// The relationship under which disclosure is allowed.
    pub role: RoleId,
    /// Spatial region: the owner is visible only while inside it.
    pub locr: Rect,
    /// Time window during which disclosure is allowed.
    pub tint: TimeInterval,
}

impl Policy {
    pub fn new(owner: UserId, role: RoleId, locr: Rect, tint: TimeInterval) -> Self {
        Policy { owner, role, locr, tint }
    }

    /// Definition 2's policy condition: does this policy disclose the
    /// owner, located at `owner_pos`, at time `t`?
    pub fn permits(&self, owner_pos: &Point, t: Timestamp) -> bool {
        self.locr.contains(owner_pos) && self.tint.contains(t)
    }

    /// `|locr|/S · |tint|/T`: the policy's normalized spatio-temporal
    /// volume, the building block of the non-mutual α formula.
    pub fn normalized_volume(&self, space_area: f64, time_domain: f64) -> f64 {
        (self.locr.area() / space_area) * (self.tint.duration() / time_domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bob_policy() -> Policy {
        // "Bob lets his colleagues see his location when he is in town
        // during work hours": P = <colleague, Chicago, [8am, 5pm]>.
        Policy::new(
            UserId(1),
            RoleId::COLLEAGUE,
            Rect::new(100.0, 300.0, 100.0, 300.0),
            TimeInterval::new(480.0, 1020.0), // minutes of the day
        )
    }

    #[test]
    fn permits_inside_region_and_window() {
        let p = bob_policy();
        assert!(p.permits(&Point::new(200.0, 200.0), 600.0));
        assert!(!p.permits(&Point::new(50.0, 200.0), 600.0), "outside locr");
        assert!(!p.permits(&Point::new(200.0, 200.0), 1200.0), "outside tint");
    }

    #[test]
    fn boundary_is_inclusive() {
        let p = bob_policy();
        assert!(p.permits(&Point::new(100.0, 300.0), 480.0));
        assert!(p.permits(&Point::new(300.0, 100.0), 1020.0));
    }

    #[test]
    fn normalized_volume() {
        let p = bob_policy();
        // region 200x200 of a 1000x1000 space, 540 of 1440 minutes.
        let v = p.normalized_volume(1_000_000.0, 1440.0);
        assert!((v - 0.04 * 0.375).abs() < 1e-12);
    }
}
