//! The PEB-tree structure: a B+-tree over PEB keys with Bx-style time
//! partitioning (Sec 5.2).
//!
//! Leaf records are identical to the Bx-tree's (`⟨key, UID, x, y, vx, vy,
//! t⟩`, with the policy pointer `Pntp` implied by the dense uid). Insertion
//! and deletion are single-path B+-tree operations, so the PEB-tree keeps
//! the update performance that motivated building on the B+-tree.
//!
//! All engine-independent machinery is the shared
//! [`peb_index::ShardedMovingIndex`] (one B+-tree per rotating time
//! partition, each behind its own lock); this module contributes the PEB
//! key layout (which folds the privacy-policy sequence value into every
//! key) and the handle the privacy-aware query algorithms ([`crate::prq`],
//! [`crate::pknn`], [`crate::circle`]) hang off.

use std::sync::Arc;

use peb_common::{MovingPoint, Rect, SpaceConfig, Timestamp, UserId};
use peb_index::{
    IndexError, IndexStats, KeyLayout, ObjectRecord, ShardedMovingIndex, TimePartitioning,
};
use peb_storage::BufferPool;

use crate::context::PrivacyContext;
use crate::keys::{PebKeyLayout, SV_BITS};

/// The PEB key layout *bound to a privacy context*: key composition needs
/// the owner's sequence value, which [`PrivacyContext`] maps from the uid.
/// This is the [`KeyLayout`] the shared [`ShardedMovingIndex`] machinery
/// calls into; the pure bit packing lives in [`PebKeyLayout`].
pub struct PebIndexLayout {
    pub keys: PebKeyLayout,
    pub ctx: Arc<PrivacyContext>,
}

impl KeyLayout for PebIndexLayout {
    fn zv_bits(&self) -> u32 {
        self.keys.zv_bits
    }

    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        self.keys.key(tid, self.ctx.sv_code(UserId(uid)), zv, uid)
    }

    fn partition_range(&self, tid: u8) -> (u128, u128) {
        let max_sv = (1u64 << SV_BITS) - 1;
        let max_zv = (1u64 << self.keys.zv_bits) - 1;
        (self.keys.range_start(tid, 0, 0), self.keys.range_end(tid, max_sv, max_zv))
    }
}

/// The Policy-Embedded Bx-tree.
pub struct PebTree {
    idx: ShardedMovingIndex<PebIndexLayout>,
    /// Whether queries execute through the fused multi-interval scan
    /// pipeline (on by default; see [`PebTree::set_fused_scans`]).
    fused_scans: bool,
}

impl PebTree {
    pub fn new(
        pool: Arc<BufferPool>,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        ctx: Arc<PrivacyContext>,
    ) -> Self {
        let layout = PebIndexLayout { keys: PebKeyLayout::new(space.grid_bits), ctx };
        PebTree {
            idx: ShardedMovingIndex::new(pool, layout, space, part, max_speed),
            fused_scans: true,
        }
    }

    /// Bulk-load an initial user population (each user must appear once).
    /// Builds each partition's B+-tree bottom-up at the given fill factor;
    /// equivalent to upserting every user one by one.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        ctx: Arc<PrivacyContext>,
        users: &[MovingPoint],
        fill: f64,
    ) -> Self {
        let layout = PebIndexLayout { keys: PebKeyLayout::new(space.grid_bits), ctx };
        PebTree {
            idx: ShardedMovingIndex::bulk_load(pool, layout, space, part, max_speed, users, fill),
            fused_scans: true,
        }
    }

    /// Switch write-ahead logging on or off (see
    /// [`peb_index::ShardedMovingIndex::set_durable`]): on enrollment
    /// every partition tree is registered in the log and an initial
    /// checkpoint makes the current state the recovery floor.
    pub fn set_durable(&mut self, on: bool) {
        self.idx.set_durable(on);
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        self.idx.is_durable()
    }

    /// Take a fuzzy checkpoint
    /// ([`peb_index::ShardedMovingIndex::checkpoint`]); returns the
    /// number of pages flushed (0 when not durable).
    pub fn checkpoint(&self) -> usize {
        self.idx.checkpoint()
    }

    /// Cumulative committed mutation calls (0 while not durable).
    pub fn committed_ops(&self) -> u64 {
        self.idx.committed_ops()
    }

    /// Rebuild a PEB-tree from a recovered pool after a crash (see
    /// [`peb_index::ShardedMovingIndex::recover`]). The privacy context
    /// is not persisted by the index — the caller supplies the same
    /// context (or a rebuilt equivalent) that was live before the crash;
    /// a context whose SV codes drifted is tolerated exactly like any
    /// other stale-SV state (queries stay correct, keys refresh on the
    /// next [`PebTree::refresh_sequence_values`] pass). `fused_scans`
    /// starts on, as in [`PebTree::new`].
    pub fn recover(
        pool: Arc<BufferPool>,
        recovery: &peb_storage::WalRecovery,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        ctx: Arc<PrivacyContext>,
    ) -> Self {
        let layout = PebIndexLayout { keys: PebKeyLayout::new(space.grid_bits), ctx };
        PebTree {
            idx: ShardedMovingIndex::recover(pool, recovery, layout, space, part, max_speed),
            fused_scans: true,
        }
    }

    /// Opt into the fused multi-interval query pipeline: [`PebTree::prq`]
    /// and [`PebTree::pknn`] construct their whole key-interval set up
    /// front (partitions × friend-SV groups × Z-ranges, coarsened to the
    /// cost model's [`peb_costmodel::interval_budget`]) and execute it
    /// through [`peb_index::ShardedMovingIndex::scan_keys_multi`] — one
    /// descent plus a leaf-chain walk per partition instead of one
    /// descent per interval. Results are identical either way; only page
    /// accesses differ. On by default since the post-soak promotion (the
    /// frozen benchmarks pin the fused ledger; the knob stays for A/B
    /// against the legacy per-interval plan).
    pub fn set_fused_scans(&mut self, enabled: bool) {
        self.fused_scans = enabled;
    }

    /// Whether the fused multi-interval query pipeline is active.
    pub fn fused_scans(&self) -> bool {
        self.fused_scans
    }

    /// Switch the write path between direct leaf updates (off, the
    /// default) and B-epsilon-style buffered writes (on): upserts,
    /// deletes and re-keys append messages to per-partition buffer chains
    /// that flush downward in sorted batches, trading a bounded message
    /// backlog for far fewer leaf-page writes under sustained ingestion
    /// (see [`peb_index::ShardedMovingIndex::set_buffered_writes`]).
    /// Query results are identical either way — reads overlay pending
    /// messages. Turning the knob off flushes everything first.
    pub fn set_buffered_writes(&mut self, enabled: bool) {
        self.idx.set_buffered_writes(enabled);
    }

    /// Whether buffered writes are active.
    pub fn buffered_writes(&self) -> bool {
        self.idx.buffered_writes()
    }

    /// Switch the write path between whole-shard exclusion (off, the
    /// default) and optimistic lock coupling (on): same-partition
    /// refreshes and removals run under the shard read lock with
    /// per-page latches, so updaters overlap concurrent queries (see
    /// [`peb_index::ShardedMovingIndex::set_olc_writes`]). Results are
    /// identical; mutually exclusive with buffered writes.
    pub fn set_olc_writes(&mut self, enabled: bool) {
        self.idx.set_olc_writes(enabled);
    }

    /// Whether OLC writes are active.
    pub fn olc_writes(&self) -> bool {
        self.idx.olc_writes()
    }

    /// OLC contention counters summed across partitions (restarts and
    /// gate escalations; see [`peb_btree::OlcStats`]).
    pub fn olc_stats(&self) -> peb_btree::OlcStats {
        self.idx.olc_stats()
    }

    /// Deterministic write-path counters summed across shard trees:
    /// messages buffered, flushes/spills, leaf pages written (see
    /// [`peb_btree::WriteStats`]) — the ingestion experiment's companion
    /// to the I/O ledger.
    pub fn write_stats(&self) -> peb_btree::WriteStats {
        self.idx.write_stats()
    }

    /// Zero the write-path counters (measurement windows).
    pub fn reset_write_stats(&self) {
        self.idx.reset_write_stats()
    }

    /// Flush any pending buffered messages down to the leaves without
    /// changing the buffering knob. A no-op when nothing is pending.
    pub fn flush_messages(&self) {
        self.idx.flush_messages()
    }

    /// Swap in a rebuilt privacy context and re-key every live object
    /// whose sequence value changed, returning how many moved. This is
    /// the policy-churn maintenance pass: a policy grant/revoke reshuffles
    /// SV codes, and since the SV sits above ZV in every PEB key (Eq. 5),
    /// affected objects must move to new leaf neighborhoods. Only the SV
    /// component is rewritten — TID, ZV and UID are preserved — so the
    /// pass never crosses partition boundaries and runs shard-atomically
    /// ([`peb_index::ShardedMovingIndex::rekey_where`]). With buffered
    /// writes on, each move costs two buffer messages instead of a
    /// foreground delete+insert descent pair, which is where this pass is
    /// meant to live under sustained ingestion.
    pub fn refresh_sequence_values(&mut self, ctx: Arc<PrivacyContext>) -> usize {
        self.idx.layout_mut().ctx = ctx;
        let keys = self.idx.layout().keys;
        let ctx = Arc::clone(&self.idx.layout().ctx);
        self.idx.rekey_where(|uid, old| {
            let sv = ctx.sv_code(uid);
            (sv != keys.sv_of(old))
                .then(|| keys.key(keys.tid_of(old), sv, keys.zv_of(old), keys.uid_of(old)))
        })
    }

    /// The shared moving-object index core.
    pub fn index(&self) -> &ShardedMovingIndex<PebIndexLayout> {
        &self.idx
    }

    pub fn space(&self) -> &SpaceConfig {
        self.idx.space()
    }

    pub fn partitioning(&self) -> &TimePartitioning {
        self.idx.partitioning()
    }

    pub fn context(&self) -> &Arc<PrivacyContext> {
        &self.idx.layout().ctx
    }

    /// Mutable access to the privacy context for runtime policy updates.
    /// Callers use `Arc::get_mut` (exclusive contexts) or rebuild the
    /// context; stale sequence values are tolerated by design (DESIGN.md
    /// §11) — queries stay correct because refinement consults the live
    /// policy store.
    pub fn ctx_mut(&mut self) -> &mut Arc<PrivacyContext> {
        &mut self.idx.layout_mut().ctx
    }

    /// Shorthand used by the query algorithms in this crate.
    pub(crate) fn ctx(&self) -> &PrivacyContext {
        &self.idx.layout().ctx
    }

    /// The pure PEB key bit packing (for key introspection).
    pub fn key_layout(&self) -> &PebKeyLayout {
        &self.idx.layout().keys
    }

    pub fn max_speed(&self) -> f64 {
        self.idx.max_speed()
    }

    pub fn len(&self) -> usize {
        self.idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        self.idx.pool()
    }

    /// Locking counters of the shared pool: how much of the query read
    /// path (interval scans and the refinement lookups behind them) ran
    /// lock-free vs through a shard mutex (see
    /// [`peb_storage::LockStats`]). Deterministic for a fixed workload —
    /// the companion of [`PebTree::pool`]'s I/O ledger for the optimistic
    /// read path.
    pub fn lock_stats(&self) -> peb_storage::LockStats {
        self.idx.lock_stats()
    }

    /// Number of leaf pages — `Nl` in the paper's cost model (Sec 6).
    pub fn leaf_page_count(&self) -> usize {
        self.idx.leaf_page_count()
    }

    /// The PEB key an object updated at `m.t_update` is indexed under
    /// (Eq. 5 plus the uid suffix).
    pub fn key_for(&self, m: &MovingPoint) -> u128 {
        self.idx.key_for(m)
    }

    /// Insert or update an object: exact delete of the old key (if any)
    /// followed by a single-path insert.
    pub fn upsert(&mut self, m: MovingPoint) {
        self.idx.upsert(m);
    }

    /// Fallible twin of [`PebTree::upsert`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking (see
    /// [`peb_index::ShardedMovingIndex::try_upsert`] for the partial-state
    /// contract on `Err`).
    pub fn try_upsert(&mut self, m: MovingPoint) -> Result<(), IndexError> {
        self.idx.try_upsert(m)
    }

    /// Apply a batch of updates: grouped by target partition, each group
    /// merged into its partition's leaves as one sorted run. Takes `&self`
    /// — batches bound for different partitions may be applied from
    /// different threads concurrently (see
    /// [`ShardedMovingIndex::upsert_batch`]). Returns the number of
    /// distinct objects applied.
    pub fn upsert_batch(&self, updates: &[MovingPoint]) -> usize {
        self.idx.upsert_batch(updates)
    }

    /// Remove an object entirely.
    pub fn remove(&mut self, uid: UserId) -> bool {
        self.idx.remove(uid)
    }

    /// Fallible twin of [`PebTree::remove`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking.
    pub fn try_remove(&mut self, uid: UserId) -> Result<bool, IndexError> {
        self.idx.try_remove(uid)
    }

    /// Fetch an object's current record by id.
    pub fn get(&self, uid: UserId) -> Option<MovingPoint> {
        self.idx.get(uid)
    }

    /// Fallible twin of [`PebTree::get`]: an unresolvable media fault
    /// surfaces as [`IndexError::Io`] instead of panicking.
    pub fn try_get(&self, uid: UserId) -> Result<Option<MovingPoint>, IndexError> {
        self.idx.try_get(uid)
    }

    /// The live `(tid, label timestamp)` pairs, sorted by tid.
    pub fn live_partitions(&self) -> Vec<(u8, Timestamp)> {
        self.idx.live_partitions()
    }

    /// Bx query-window enlargement (shared with the Bx-tree, Fig 2).
    pub fn enlarge(&self, r: &Rect, t_lab: Timestamp, tq: Timestamp) -> Rect {
        self.idx.enlarge(r, t_lab, tq)
    }

    /// Garbage-collect expired partitions (see
    /// [`peb_index::ShardedMovingIndex::expire_stale`]): drops each stale
    /// partition's whole shard tree in O(1) and returns the number of
    /// dropped objects.
    pub fn expire_stale(&mut self, now: Timestamp) -> usize {
        self.idx.expire_stale(now)
    }

    /// O(1) diagnostics: B+-tree shape, live partitions, object count.
    pub fn stats(&self) -> PebTreeStats {
        self.idx.stats()
    }

    /// Deterministic scan-path counters summed across shard trees: root
    /// descents and cache-served branch pages (see
    /// [`peb_btree::ScanStats`]) — the fused-scan experiment's companion
    /// to the I/O ledger.
    pub fn scan_stats(&self) -> peb_btree::ScanStats {
        self.idx.scan_stats()
    }

    /// Zero the scan-path counters (measurement windows).
    pub fn reset_scan_stats(&self) {
        self.idx.reset_scan_stats()
    }

    /// Scan one `(tid, sv, zv_lo..=zv_hi)` PEB-key interval, handing every
    /// stored record to the callback. Returns `Ok(false)` if the callback
    /// stopped the scan; an unresolvable media fault surfaces as
    /// [`IndexError::Io`].
    pub(crate) fn try_scan_interval(
        &self,
        tid: u8,
        sv_code: u64,
        zv_lo: u64,
        zv_hi: u64,
        mut f: impl FnMut(ObjectRecord) -> bool,
    ) -> Result<bool, IndexError> {
        let keys = &self.idx.layout().keys;
        let lo = keys.range_start(tid, sv_code, zv_lo);
        let hi = keys.range_end(tid, sv_code, zv_hi);
        self.idx.try_scan_keys(lo, hi, |_, rec| f(rec))
    }

    /// Scan one pre-built PEB-key interval per-interval style (the
    /// frozen-ledger reference plan).
    pub(crate) fn try_scan_key_interval(
        &self,
        lo: u128,
        hi: u128,
        mut f: impl FnMut(ObjectRecord) -> bool,
    ) -> Result<bool, IndexError> {
        self.idx.try_scan_keys(lo, hi, |_, rec| f(rec))
    }

    /// Scan the union of pre-built PEB-key intervals through the fused
    /// multi-interval pipeline (see
    /// [`peb_index::ShardedMovingIndex::scan_keys_multi`]), handing every
    /// stored record to the callback once, in key order.
    pub(crate) fn try_scan_intervals_fused(
        &self,
        intervals: &[(u128, u128)],
        mut f: impl FnMut(ObjectRecord) -> bool,
    ) -> Result<bool, IndexError> {
        self.idx.try_scan_keys_multi(intervals, |_, rec| f(rec))
    }

    /// Deadline-bounded twin of [`PebTree::try_scan_intervals_fused`]: the
    /// scan checks `deadline` at every page visit and shard boundary (see
    /// [`peb_index::ShardedMovingIndex::try_scan_keys_multi_deadline`])
    /// and reports how it ended plus which partitions it finished.
    pub(crate) fn try_scan_intervals_deadline(
        &self,
        intervals: &[(u128, u128)],
        deadline: &peb_common::Deadline,
        mut f: impl FnMut(ObjectRecord) -> bool,
    ) -> Result<peb_index::ScanReport, IndexError> {
        self.idx.try_scan_keys_multi_deadline(intervals, deadline, |_, rec| f(rec))
    }

    /// The cost-model interval budget for this tree's current shape: how
    /// many Z-ranges per partition a fused query keeps
    /// ([`peb_costmodel::interval_budget`] over the issuer's friend count
    /// and the live leaf count).
    pub(crate) fn query_interval_budget(&self, candidates: usize) -> usize {
        peb_costmodel::interval_budget(candidates, self.leaf_page_count())
    }
}

/// Operational summary of a PEB-tree (the shared core's stats).
pub type PebTreeStats = IndexStats;

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::{Point, TimeInterval, Vec2};
    use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};

    fn simple_ctx(num_users: usize) -> Arc<PrivacyContext> {
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1440.0);
        // Everyone grants user 0.
        for o in 1..num_users as u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, whole, always));
        }
        Arc::new(PrivacyContext::build(store, space, num_users, SvAssignmentParams::default()))
    }

    fn tree(ctx: Arc<PrivacyContext>) -> PebTree {
        PebTree::new(
            Arc::new(BufferPool::new(64)),
            SpaceConfig::default(),
            TimePartitioning::default(),
            3.0,
            ctx,
        )
    }

    fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
    }

    #[test]
    fn upsert_get_remove_roundtrip() {
        let mut t = tree(simple_ctx(4));
        t.upsert(still(1, 100.0, 200.0, 0.0));
        t.upsert(still(2, 300.0, 400.0, 0.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(UserId(1)).unwrap().pos, Point::new(100.0, 200.0));
        t.upsert(still(1, 111.0, 222.0, 5.0));
        assert_eq!(t.len(), 2, "update must not duplicate");
        assert_eq!(t.get(UserId(1)).unwrap().pos, Point::new(111.0, 222.0));
        assert!(t.remove(UserId(1)));
        assert_eq!(t.len(), 1);
        assert!(t.get(UserId(1)).is_none());
    }

    #[test]
    fn key_embeds_sequence_value() {
        let ctx = simple_ctx(4);
        let t = tree(Arc::clone(&ctx));
        let m = still(2, 500.0, 500.0, 0.0);
        let key = t.key_for(&m);
        assert_eq!(t.key_layout().sv_of(key), ctx.sv_code(UserId(2)));
        assert_eq!(t.key_layout().uid_of(key), 2);
    }

    #[test]
    fn policy_compatible_users_cluster_on_disk() {
        // Two mutually-visible users far apart in space must still receive
        // adjacent keys, while an unrelated user between them sorts away —
        // the core claim behind Fig 6 vs Fig 4.
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1440.0);
        store.add(UserId(1), Policy::new(UserId(0), RoleId::FRIEND, whole, always));
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, whole, always));
        let ctx = Arc::new(PrivacyContext::build(store, space, 3, SvAssignmentParams::default()));
        let t = tree(Arc::clone(&ctx));
        let k0 = t.key_for(&still(0, 10.0, 10.0, 0.0));
        let k1 = t.key_for(&still(1, 990.0, 990.0, 0.0)); // same SV (C = 1)
        let k2 = t.key_for(&still(2, 500.0, 500.0, 0.0)); // unrelated
        let d01 = k0.abs_diff(k1);
        let d02 = k0.abs_diff(k2);
        assert!(d01 < d02, "related users must be closer in key space: d01 = {d01}, d02 = {d02}");
    }

    #[test]
    fn scan_interval_filters_by_sv_and_zv() {
        let ctx = simple_ctx(8);
        let mut t = tree(Arc::clone(&ctx));
        for i in 0..8u64 {
            t.upsert(still(i, 100.0 + i as f64, 100.0, 0.0));
        }
        // Scanning the full ZV range of user 3's SV group must find user 3.
        let sv3 = ctx.sv_code(UserId(3));
        let max_zv = (1u64 << t.key_layout().zv_bits) - 1;
        let mut seen = Vec::new();
        t.try_scan_interval(t.live_partitions()[0].0, sv3, 0, max_zv, |rec| {
            seen.push(rec.uid);
            true
        })
        .unwrap();
        assert!(seen.contains(&3));
        // And must not include users with different SV codes.
        for uid in &seen {
            assert_eq!(ctx.sv_code(UserId(*uid)), sv3);
        }
    }

    #[test]
    fn refresh_sequence_values_rekeys_changed_objects() {
        // A policy churn reshuffles SV codes; the refresh pass must move
        // exactly the affected objects to their new key neighborhoods —
        // through either write path — without disturbing the records.
        let space = SpaceConfig::default();
        let empty_ctx = Arc::new(PrivacyContext::build(
            PolicyStore::new(),
            space,
            8,
            SvAssignmentParams::default(),
        ));
        let friendly_ctx = simple_ctx(8);
        let changed: usize = (0..8u64)
            .filter(|&i| empty_ctx.sv_code(UserId(i)) != friendly_ctx.sv_code(UserId(i)))
            .count();
        assert!(changed > 0, "the two contexts must disagree for the test to bite");

        for buffered in [false, true] {
            let mut t = tree(Arc::clone(&empty_ctx));
            t.set_buffered_writes(buffered);
            for i in 0..8u64 {
                t.upsert(still(i, 100.0 + i as f64, 100.0, 0.0));
            }
            let before: Vec<_> = (0..8u64).map(|i| t.get(UserId(i)).unwrap()).collect();

            let moved = t.refresh_sequence_values(Arc::clone(&friendly_ctx));
            assert_eq!(moved, changed);
            for i in 0..8u64 {
                let k = t.index().current_key_of(UserId(i)).unwrap();
                assert_eq!(
                    t.key_layout().sv_of(k),
                    friendly_ctx.sv_code(UserId(i)),
                    "key must embed the refreshed SV"
                );
                assert_eq!(t.get(UserId(i)).unwrap(), before[i as usize], "records unchanged");
            }
            assert_eq!(t.refresh_sequence_values(Arc::clone(&friendly_ctx)), 0, "idempotent");
            if buffered {
                assert_eq!(t.write_stats().rekey_messages as usize, moved);
                t.set_buffered_writes(false);
            }
            // The refreshed tree answers queries with the new context.
            let got = t.prq(UserId(0), &Rect::new(0.0, 1000.0, 0.0, 1000.0), 10.0);
            assert_eq!(got.len(), 7, "all friends visible after the re-key");
        }
    }

    #[test]
    fn stats_track_population_and_partitions() {
        let space = SpaceConfig::default();
        let ctx = Arc::new(PrivacyContext::build(
            PolicyStore::new(),
            space,
            100,
            SvAssignmentParams::default(),
        ));
        let mut t = PebTree::new(
            Arc::new(BufferPool::new(64)),
            space,
            TimePartitioning::default(),
            3.0,
            ctx,
        );
        for i in 0..100u64 {
            let tu = if i % 2 == 0 { 10.0 } else { 70.0 }; // two phases
            t.upsert(MovingPoint::new(
                UserId(i),
                Point::new(i as f64 * 9.0, 500.0),
                Vec2::ZERO,
                tu,
            ));
        }
        let s = t.stats();
        assert_eq!(s.objects, 100);
        assert_eq!(s.tree.entries, 100);
        assert_eq!(s.partitions.len(), 2);
        assert!(s.tree.avg_leaf_fill > 0.0);
    }
}

#[cfg(test)]
mod bulk_tests {
    use super::*;
    use peb_common::{Point, Rect, TimeInterval, Vec2};
    use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};

    #[test]
    fn bulk_load_matches_incremental_build() {
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1440.0);
        for o in 1..200u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, whole, always));
        }
        let ctx = Arc::new(PrivacyContext::build(store, space, 200, SvAssignmentParams::default()));
        let users: Vec<MovingPoint> = (0..200u64)
            .map(|i| {
                MovingPoint::new(
                    UserId(i),
                    Point::new((i % 40) as f64 * 25.0 + 5.0, (i / 40) as f64 * 190.0 + 10.0),
                    Vec2::new(0.5, -0.5),
                    0.0,
                )
            })
            .collect();

        let part = TimePartitioning::default();
        let bulk = PebTree::bulk_load(
            Arc::new(BufferPool::new(64)),
            space,
            part,
            3.0,
            Arc::clone(&ctx),
            &users,
            1.0,
        );
        let mut inc =
            PebTree::new(Arc::new(BufferPool::new(64)), space, part, 3.0, Arc::clone(&ctx));
        for m in &users {
            inc.upsert(*m);
        }
        assert_eq!(bulk.len(), inc.len());
        let window = Rect::new(0.0, 600.0, 0.0, 600.0);
        let a: Vec<UserId> = bulk.prq(UserId(0), &window, 20.0).iter().map(|m| m.uid).collect();
        let b: Vec<UserId> = inc.prq(UserId(0), &window, 20.0).iter().map(|m| m.uid).collect();
        assert_eq!(a, b, "bulk-loaded PEB-tree answers queries identically");
        // Updates keep working on a bulk-loaded tree.
        let mut bulk = bulk;
        bulk.upsert(MovingPoint::new(UserId(5), Point::new(900.0, 900.0), Vec2::ZERO, 10.0));
        assert!(bulk.remove(UserId(7)));
        assert_eq!(bulk.len(), users.len() - 1);
    }
}

#[cfg(test)]
mod expiry_tests {
    use super::*;
    use peb_common::{Point, Rect, TimeInterval, Vec2};
    use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};

    #[test]
    fn stale_users_disappear_from_queries_after_expiry() {
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1440.0);
        for o in [1u64, 2] {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, whole, always));
        }
        let ctx = Arc::new(PrivacyContext::build(store, space, 3, SvAssignmentParams::default()));
        let mut t = PebTree::new(
            Arc::new(BufferPool::new(64)),
            space,
            TimePartitioning::new(120.0, 2),
            3.0,
            ctx,
        );
        t.upsert(MovingPoint::new(UserId(1), Point::new(100.0, 100.0), Vec2::ZERO, 10.0));
        t.upsert(MovingPoint::new(UserId(2), Point::new(110.0, 110.0), Vec2::ZERO, 130.0));

        let dropped = t.expire_stale(200.0);
        assert_eq!(dropped, 1);
        let got = t.prq(UserId(0), &Rect::new(0.0, 300.0, 0.0, 300.0), 200.0);
        assert_eq!(got.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![2]);
    }
}
