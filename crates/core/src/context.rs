//! The privacy context: everything the offline policy-encoding phase
//! produces, bundled for the index and the query algorithms.

use peb_common::{SpaceConfig, UserId};
use peb_policy::{FriendIndex, PolicyStore, SequenceValues, SvAssignmentParams};

/// Offline policy-encoding artifacts shared by the PEB-tree and its query
/// algorithms: the policy store itself, the sequence values of Fig 5, and
/// the SV-sorted per-user friend lists.
pub struct PrivacyContext {
    pub store: PolicyStore,
    pub seqvals: SequenceValues,
    pub friends: FriendIndex,
    pub space: SpaceConfig,
}

impl PrivacyContext {
    /// Run the full offline encoding pipeline (the preprocessing measured
    /// in Fig 11 of the paper).
    pub fn build(
        store: PolicyStore,
        space: SpaceConfig,
        num_users: usize,
        params: SvAssignmentParams,
    ) -> Self {
        let seqvals = SequenceValues::assign(&store, &space, num_users, params);
        let friends = FriendIndex::build(&store, &seqvals, num_users);
        PrivacyContext { store, seqvals, friends, space }
    }

    /// The fixed-point SV code of a user, as embedded in PEB keys.
    pub fn sv_code(&self, uid: UserId) -> u64 {
        self.seqvals.code(uid)
    }

    /// The query issuer's friend list grouped by distinct SV code, in
    /// ascending SV order — the row set of the PkNN search matrix and the
    /// SV range set of PRQ.
    pub fn friend_sv_groups(&self, issuer: UserId) -> Vec<(u64, Vec<UserId>)> {
        let mut groups: Vec<(u64, Vec<UserId>)> = Vec::new();
        for f in self.friends.friends(issuer) {
            match groups.last_mut() {
                Some((sv, members)) if *sv == f.sv_code => members.push(f.uid),
                _ => groups.push((f.sv_code, vec![f.uid])),
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::{Rect, TimeInterval};
    use peb_policy::{Policy, RoleId};

    #[test]
    fn groups_are_ascending_and_merge_equal_codes() {
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        let whole = Rect::new(0.0, 1000.0, 0.0, 1000.0);
        let always = TimeInterval::new(0.0, 1440.0);
        // Owners 1..=4 all grant user 0.
        for o in 1..=4u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, whole, always));
        }
        let ctx = PrivacyContext::build(store, space, 5, SvAssignmentParams::default());
        let groups = ctx.friend_sv_groups(UserId(0));
        let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 4);
        assert!(groups.windows(2).all(|w| w[0].0 < w[1].0), "strictly ascending SV codes");
        // No group is empty.
        assert!(groups.iter().all(|(_, m)| !m.is_empty()));
    }

    #[test]
    fn empty_friend_list_yields_no_groups() {
        let ctx = PrivacyContext::build(
            PolicyStore::new(),
            SpaceConfig::default(),
            3,
            SvAssignmentParams::default(),
        );
        assert!(ctx.friend_sv_groups(UserId(1)).is_empty());
    }
}
