//! The privacy-aware range query (PRQ) of Sec 5.3 / Fig 7.
//!
//! Four steps per live time partition:
//!
//! 1. **Location ranges** — enlarge the query rectangle Bx-style and
//!    convert it to Z-curve intervals (`ZVconvert`).
//! 2. **Policy ranges** — take the issuer's friend list, i.e. the SV codes
//!    of users who have a policy toward the issuer, ascending.
//! 3. **Key ranges** — cross every friend SV with every Z-interval: the
//!    interval `[TID ⊕ SV ⊕ ZVs ; TID ⊕ SV ⊕ ZVe]` (the paper's worked
//!    example enumerates exactly these). Equal SV codes are grouped so no
//!    interval is scanned twice.
//! 4. **Scan + refine** — walk the B+-tree leaves of each interval. The
//!    moment a friend is seen anywhere, its location is known ("a user has
//!    only one location"), so every remaining interval carrying that
//!    friend's SV is skipped once all friends of the group are resolved.
//!    Refinement checks the actual predicted position against `R` and the
//!    friend's policy against the issuer and query time.

use std::collections::HashSet;

use peb_btree::ScanTermination;
use peb_common::{Deadline, MovingPoint, Rect, Timestamp, UserId};
use peb_index::IndexError;
use peb_zorder::{coarsen, decompose};

use crate::partial::Partial;
use crate::tree::PebTree;

impl PebTree {
    /// Definition 2: all users inside `r` at `tq` whose policy lets
    /// `issuer` see them there and then. Results are sorted by uid.
    ///
    /// Two execution strategies produce the identical result set: the
    /// paper's per-interval plan (one B+-tree descent per partition × SV
    /// group × Z-range — the default, and the frozen-ledger reference)
    /// and, when [`PebTree::set_fused_scans`] opted in, the fused plan
    /// that builds the whole key-interval set up front and executes it as
    /// one coalesced multi-interval scan per partition (see
    /// docs/ARCHITECTURE.md, "Query execution").
    pub fn prq(&self, issuer: UserId, r: &Rect, tq: Timestamp) -> Vec<MovingPoint> {
        self.try_prq(issuer, r, tq).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`PebTree::prq`]: an unresolvable media fault
    /// anywhere in the interval scans surfaces as [`IndexError::Io`]
    /// instead of panicking. The result set of a completed query is
    /// identical to the infallible path's.
    pub fn try_prq(
        &self,
        issuer: UserId,
        r: &Rect,
        tq: Timestamp,
    ) -> Result<Vec<MovingPoint>, IndexError> {
        let groups = self.ctx().friend_sv_groups(issuer);
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        if self.fused_scans() {
            return self.prq_fused(issuer, &groups, r, tq);
        }

        let mut results: Vec<MovingPoint> = Vec::new();
        // Friends whose single location has been seen (qualified or not):
        // their SV intervals need no further scanning.
        let mut resolved: HashSet<UserId> = HashSet::new();

        for (tid, t_lab) in self.live_partitions() {
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = self.space().to_grid_rect(&enlarged);
            let zranges = decompose(x0, x1, y0, y1, self.space().grid_bits);

            for (sv_code, members) in &groups {
                if members.iter().all(|u| resolved.contains(u)) {
                    continue; // every friend at this SV already located
                }
                let mut outstanding = members.iter().filter(|u| !resolved.contains(u)).count();
                'intervals: for zr in &zranges {
                    self.try_scan_interval(tid, *sv_code, zr.lo, zr.hi, |rec| {
                        let uid = UserId(rec.uid);
                        if uid == issuer || resolved.contains(&uid) {
                            return true;
                        }
                        // Only friends can qualify; others sharing the SV
                        // code are skipped without policy evaluation.
                        if self.ctx().store.policy(uid, issuer).is_none() {
                            return true;
                        }
                        resolved.insert(uid);
                        outstanding -= 1;
                        let m = rec.to_moving_point();
                        let pos = m.position_at(tq);
                        if r.contains(&pos) && self.ctx().store.permits(uid, issuer, &pos, tq) {
                            results.push(m);
                        }
                        true
                    })?;
                    if outstanding == 0 {
                        break 'intervals; // skip remaining intervals of this SV
                    }
                }
            }
        }
        results.sort_by_key(|m| m.uid);
        Ok(results)
    }

    /// Deadline-bounded PRQ: the graceful-degradation entry point of the
    /// serving layer.
    ///
    /// Runs the fused plan partition by partition with `deadline` checked
    /// at every page visit and shard boundary. A query whose budget
    /// expires mid-flight returns early with whatever it has **proved** —
    /// every returned user passed the same `r.contains` + policy
    /// refinement as the unbounded query, so [`Partial::value`] is always
    /// an exact subset of [`PebTree::try_prq`]'s answer — and the
    /// [`Partial::partitions`] tags say which rotating time partitions
    /// were fully covered before the budget died. With an unbounded (or
    /// unexpired-throughout) deadline the answer equals the unbounded
    /// query's exactly and every partition is tagged complete.
    pub fn try_prq_deadline(
        &self,
        issuer: UserId,
        r: &Rect,
        tq: Timestamp,
        deadline: &Deadline,
    ) -> Result<Partial<Vec<MovingPoint>>, IndexError> {
        let parts = self.live_partitions();
        let groups = self.ctx().friend_sv_groups(issuer);
        if groups.is_empty() {
            // No friends means no I/O: the empty answer is complete even
            // on an already-expired budget.
            return Ok(Partial::complete(Vec::new(), parts.iter().map(|(t, _)| *t)));
        }
        let total_friends: usize = groups.iter().map(|(_, m)| m.len()).sum();
        let budget = self.query_interval_budget(total_friends);
        let keys = *self.key_layout();

        let mut results: Vec<MovingPoint> = Vec::new();
        let mut resolved: HashSet<UserId> = HashSet::new();
        let mut partitions: Vec<(u8, bool)> = Vec::with_capacity(parts.len());
        for (tid, t_lab) in parts {
            if deadline.expired() {
                partitions.push((tid, false));
                continue;
            }
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = self.space().to_grid_rect(&enlarged);
            let zranges = coarsen(decompose(x0, x1, y0, y1, self.space().grid_bits), budget);
            let mut covered = true;
            for (sv_code, members) in &groups {
                if members.iter().all(|u| resolved.contains(u)) {
                    continue; // every friend at this SV already located
                }
                let intervals: Vec<(u128, u128)> = zranges
                    .iter()
                    .map(|zr| {
                        (
                            keys.range_start(tid, *sv_code, zr.lo),
                            keys.range_end(tid, *sv_code, zr.hi),
                        )
                    })
                    .collect();
                let mut outstanding = members.iter().filter(|u| !resolved.contains(u)).count();
                let report = self.try_scan_intervals_deadline(&intervals, deadline, |rec| {
                    let uid = UserId(rec.uid);
                    if uid == issuer || resolved.contains(&uid) {
                        return true;
                    }
                    if self.ctx().store.policy(uid, issuer).is_none() {
                        return true;
                    }
                    resolved.insert(uid);
                    outstanding -= 1;
                    let m = rec.to_moving_point();
                    let pos = m.position_at(tq);
                    if r.contains(&pos) && self.ctx().store.permits(uid, issuer, &pos, tq) {
                        results.push(m);
                    }
                    outstanding > 0
                })?;
                if report.termination == ScanTermination::Expired {
                    covered = false;
                    break;
                }
            }
            // A partition whose every group scan ran to completion (or
            // voluntary resolve-all stop) is complete even if the budget
            // expired on its very last page.
            partitions.push((tid, covered));
        }
        results.sort_by_key(|m| m.uid);
        Ok(Partial { value: results, partitions })
    }

    /// The fused PRQ plan: per (partition × friend-SV group) leaf-chain
    /// segments, each a coalesced multi-interval scan.
    ///
    /// Per live partition the enlarged window is Z-decomposed once and
    /// coarsened to the cost model's interval budget
    /// ([`peb_costmodel::interval_budget`] — more ranges than the
    /// candidates' leaves cannot pay for themselves); each friend-SV
    /// group's crossing with the surviving Z-ranges then executes as one
    /// coalesced multi-interval scan — one descent plus a leaf-chain walk
    /// per segment instead of one descent per Z-range, so the shared
    /// root/branch pages the per-interval plan re-reads for every
    /// interval are touched once per segment. Before each segment the
    /// remaining intervals are intersected against the unresolved
    /// friends: a group whose members have all been located ("a user has
    /// only one location") is skipped outright, so a group resolved in an
    /// early partition contributes **zero** page touches in every later
    /// one — the same early exit the per-interval plan applies. Within a
    /// segment the scan stops the moment its own group resolves.
    /// Refinement is the per-interval plan's: candidates outside the
    /// coarsened-in cells fail the `r.contains` check exactly like any
    /// other enlargement false positive, so the result set is provably
    /// identical.
    fn prq_fused(
        &self,
        issuer: UserId,
        groups: &[(u64, Vec<UserId>)],
        r: &Rect,
        tq: Timestamp,
    ) -> Result<Vec<MovingPoint>, IndexError> {
        let total_friends: usize = groups.iter().map(|(_, m)| m.len()).sum();
        let budget = self.query_interval_budget(total_friends);
        let keys = *self.key_layout();

        let mut results: Vec<MovingPoint> = Vec::new();
        let mut resolved: HashSet<UserId> = HashSet::new();
        for (tid, t_lab) in self.live_partitions() {
            let enlarged = self.enlarge(r, t_lab, tq);
            let (x0, x1, y0, y1) = self.space().to_grid_rect(&enlarged);
            let zranges = coarsen(decompose(x0, x1, y0, y1, self.space().grid_bits), budget);
            for (sv_code, members) in groups {
                if members.iter().all(|u| resolved.contains(u)) {
                    continue; // every friend at this SV already located
                }
                let intervals: Vec<(u128, u128)> = zranges
                    .iter()
                    .map(|zr| {
                        (
                            keys.range_start(tid, *sv_code, zr.lo),
                            keys.range_end(tid, *sv_code, zr.hi),
                        )
                    })
                    .collect();
                let mut outstanding = members.iter().filter(|u| !resolved.contains(u)).count();
                self.try_scan_intervals_fused(&intervals, |rec| {
                    let uid = UserId(rec.uid);
                    if uid == issuer || resolved.contains(&uid) {
                        return true;
                    }
                    if self.ctx().store.policy(uid, issuer).is_none() {
                        return true;
                    }
                    resolved.insert(uid);
                    outstanding -= 1;
                    let m = rec.to_moving_point();
                    let pos = m.position_at(tq);
                    if r.contains(&pos) && self.ctx().store.permits(uid, issuer, &pos, tq) {
                        results.push(m);
                    }
                    outstanding > 0
                })?;
            }
        }
        results.sort_by_key(|m| m.uid);
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PrivacyContext;
    use peb_bx::TimePartitioning;
    use peb_common::{Point, SpaceConfig, TimeInterval, Vec2};
    use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
    use peb_storage::BufferPool;
    use std::sync::Arc;

    const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
    const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };

    fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 0.0)
    }

    fn build(store: PolicyStore, n: usize) -> PebTree {
        let space = SpaceConfig::default();
        let ctx = Arc::new(PrivacyContext::build(store, space, n, SvAssignmentParams::default()));
        PebTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::default(), 3.0, ctx)
    }

    #[test]
    fn returns_only_policy_qualified_users_in_range() {
        let mut store = PolicyStore::new();
        // u1 and u2 grant issuer u0 everywhere/always; u3 does not.
        for o in [1u64, 2] {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 4);
        t.upsert(still(1, 100.0, 100.0)); // friend, in range
        t.upsert(still(2, 900.0, 900.0)); // friend, out of range
        t.upsert(still(3, 105.0, 105.0)); // non-friend, in range
        let got = t.prq(UserId(0), &Rect::new(50.0, 150.0, 50.0, 150.0), 10.0);
        assert_eq!(got.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn policy_region_and_interval_are_enforced() {
        let mut store = PolicyStore::new();
        // u1 only visible inside [0,200]^2 during [0,100].
        store.add(
            UserId(0),
            Policy::new(
                UserId(1),
                RoleId::FRIEND,
                Rect::new(0.0, 200.0, 0.0, 200.0),
                TimeInterval::new(0.0, 100.0),
            ),
        );
        let mut t = build(store, 2);
        t.upsert(still(1, 100.0, 100.0));
        let window = Rect::new(0.0, 300.0, 0.0, 300.0);
        assert_eq!(t.prq(UserId(0), &window, 50.0).len(), 1, "inside locr and tint");
        assert_eq!(t.prq(UserId(0), &window, 150.0).len(), 0, "outside tint");

        // Move u1 outside its own policy region but inside the window.
        t.upsert(MovingPoint::new(UserId(1), Point::new(250.0, 250.0), Vec2::ZERO, 60.0));
        assert_eq!(t.prq(UserId(0), &window, 70.0).len(), 0, "outside locr");
    }

    #[test]
    fn empty_friend_list_short_circuits() {
        let mut t = build(PolicyStore::new(), 3);
        t.upsert(still(1, 100.0, 100.0));
        t.upsert(still(2, 110.0, 110.0));
        let pool = Arc::clone(t.pool());
        pool.clear();
        pool.reset_stats();
        assert!(t.prq(UserId(0), &WHOLE, 10.0).is_empty());
        assert_eq!(pool.stats().physical_reads, 0, "no friends means zero index I/O");
    }

    #[test]
    fn moving_friend_found_at_predicted_position() {
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut t = build(store, 2);
        // u1 moves right at speed 2 from x = 100; at tq = 50 it is at 200.
        t.upsert(MovingPoint::new(UserId(1), Point::new(100.0, 500.0), Vec2::new(2.0, 0.0), 0.0));
        let hit = t.prq(UserId(0), &Rect::new(180.0, 220.0, 480.0, 520.0), 50.0);
        assert_eq!(hit.len(), 1);
        let miss = t.prq(UserId(0), &Rect::new(80.0, 120.0, 480.0, 520.0), 50.0);
        assert!(miss.is_empty());
    }

    #[test]
    fn warm_prq_runs_lock_free() {
        // The point of the optimistic read path: a PRQ over a warm pool
        // answers without acquiring a single pool mutex, and the answer
        // matches the one produced while pages were still being faulted
        // in through the locked path.
        let mut store = PolicyStore::new();
        for o in 1..40u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 40);
        for o in 1..40u64 {
            t.upsert(still(o, (o as f64 * 131.0) % 1000.0, (o as f64 * 47.0) % 1000.0));
        }
        let pool = Arc::clone(t.pool());
        pool.flush_all();
        pool.clear(); // cold start: nothing resident, nothing published
        let cold = t.prq(UserId(0), &WHOLE, 10.0);
        assert!(pool.lock_stats().lock_acquisitions > 0, "cold pass faults pages in");

        pool.reset_stats();
        let warm = t.prq(UserId(0), &WHOLE, 10.0);
        assert_eq!(cold, warm, "read path must not change results");
        let locks = t.lock_stats();
        assert_eq!(locks.lock_acquisitions, 0, "warm PRQ must not touch a pool mutex");
        assert!(locks.optimistic_hits > 0, "page touches went through the lock-free path");
        assert!(t.pool().stats().logical_reads > 0, "touches still land on the I/O ledger");
    }

    #[test]
    fn fused_prq_is_identical_and_cheaper() {
        // The tentpole acceptance at unit scale: the fused plan returns
        // the identical result set while spending fewer logical page
        // accesses and at most half the descents.
        let mut store = PolicyStore::new();
        for o in 1..80u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 80);
        for o in 1..80u64 {
            t.upsert(still(o, (o as f64 * 131.0) % 1000.0, (o as f64 * 47.0) % 1000.0));
        }
        let window = Rect::new(150.0, 650.0, 100.0, 700.0);
        let pool = Arc::clone(t.pool());

        t.set_fused_scans(false); // measure the legacy per-interval plan first
        let _ = t.prq(UserId(0), &window, 10.0); // warm the pool
        pool.reset_stats();
        t.reset_scan_stats();
        let per = t.prq(UserId(0), &window, 10.0);
        let per_logical = pool.stats().logical_reads;
        let per_descents = t.scan_stats().descents;
        assert!(per_descents > 2, "the per-interval plan must issue many scans");

        t.set_fused_scans(true);
        assert!(t.fused_scans());
        let _ = t.prq(UserId(0), &window, 10.0); // warm any coarsened-in pages
        pool.reset_stats();
        t.reset_scan_stats();
        let fused = t.prq(UserId(0), &window, 10.0);
        let fused_logical = pool.stats().logical_reads;
        let fused_scans = t.scan_stats();

        assert_eq!(per, fused, "fused PRQ must return the identical result set");
        assert!(!fused.is_empty(), "the window must actually match friends");
        assert!(
            fused_logical < per_logical,
            "fused logical reads {fused_logical} not below per-interval {per_logical}"
        );
        assert!(
            fused_scans.descents * 2 <= per_descents,
            "fused descents {} vs per-interval {per_descents}",
            fused_scans.descents
        );
    }

    #[test]
    fn fused_prq_skips_groups_resolved_in_earlier_partitions() {
        // Two friends with different policies (distinct SV groups), living
        // in different time partitions. The fused plan scans per
        // (partition × group) segments; the group resolved in the first
        // partition must contribute zero segments — hence zero descents
        // and zero page touches — in the second.
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
        store.add(
            UserId(0),
            Policy::new(
                UserId(2),
                RoleId::FRIEND,
                Rect::new(0.0, 900.0, 0.0, 900.0),
                TimeInterval::new(0.0, 1000.0),
            ),
        );
        let mut t = build(store, 3);
        let groups = t.context().friend_sv_groups(UserId(0));
        assert_eq!(groups.len(), 2, "distinct policies must map to distinct SV groups");
        // One friend per rotation phase → two live partitions.
        t.upsert(MovingPoint::new(UserId(1), Point::new(100.0, 100.0), Vec2::ZERO, 10.0));
        t.upsert(MovingPoint::new(UserId(2), Point::new(120.0, 120.0), Vec2::ZERO, 70.0));
        assert_eq!(t.live_partitions().len(), 2);

        let window = Rect::new(0.0, 300.0, 0.0, 300.0);
        t.set_fused_scans(false);
        let per = t.prq(UserId(0), &window, 40.0);
        t.set_fused_scans(true);
        let _ = t.prq(UserId(0), &window, 40.0); // warm the pool
        t.reset_scan_stats();
        let fused = t.prq(UserId(0), &window, 40.0);
        assert_eq!(per, fused, "the early exit must not change results");
        assert_eq!(fused.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![1, 2]);

        // 2 partitions × 2 groups = 4 segments; whichever group resolved
        // in the first partition is skipped in the second, so exactly one
        // segment — one descent — is saved.
        assert_eq!(
            t.scan_stats().descents,
            3,
            "a group resolved in partition 1 must not be scanned in partition 2"
        );
    }

    #[test]
    fn unbounded_deadline_prq_is_the_plain_prq() {
        let mut store = PolicyStore::new();
        for o in 1..60u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 60);
        for o in 1..60u64 {
            let tu = if o % 2 == 0 { 10.0 } else { 70.0 }; // two live partitions
            t.upsert(MovingPoint::new(
                UserId(o),
                Point::new((o as f64 * 131.0) % 1000.0, (o as f64 * 47.0) % 1000.0),
                Vec2::ZERO,
                tu,
            ));
        }
        let full = t.try_prq(UserId(0), &WHOLE, 80.0).unwrap();
        assert!(!full.is_empty());
        let clock = t.pool().clock().clone();
        let part =
            t.try_prq_deadline(UserId(0), &WHOLE, 80.0, &Deadline::unbounded(&clock)).unwrap();
        assert!(part.is_complete());
        assert_eq!(part.partitions.len(), t.live_partitions().len());
        assert_eq!(part.value, full, "an unexpired deadline changes nothing");
    }

    #[test]
    fn expired_prq_returns_an_exact_subset_tagged_incomplete() {
        let mut store = PolicyStore::new();
        for o in 1..60u64 {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 60);
        for o in 1..60u64 {
            let tu = if o % 2 == 0 { 10.0 } else { 70.0 };
            t.upsert(MovingPoint::new(
                UserId(o),
                Point::new((o as f64 * 131.0) % 1000.0, (o as f64 * 47.0) % 1000.0),
                Vec2::ZERO,
                tu,
            ));
        }
        let full = t.try_prq(UserId(0), &WHOLE, 80.0).unwrap(); // also warms the pool
        assert!(full.len() > 10);
        let clock = t.pool().clock().clone();

        // Degradation is monotone in the budget: every partial answer is
        // an exact subset of the full one, and a complete tag means the
        // full answer verbatim.
        let mut prev_len = 0usize;
        let mut saw_incomplete = false;
        for budget in [0u64, 1, 2, 4, 8, 16, 32, 64, 128, 1 << 20] {
            let p = t
                .try_prq_deadline(UserId(0), &WHOLE, 80.0, &Deadline::after(&clock, budget))
                .unwrap();
            for m in &p.value {
                assert!(full.contains(m), "partial answers never fabricate: {:?}", m.uid);
            }
            if p.is_complete() {
                assert_eq!(p.value, full, "a complete tag must mean the complete answer");
            } else {
                saw_incomplete = true;
                assert!(p.complete_partitions() < p.partitions.len());
            }
            assert!(p.value.len() >= prev_len.min(full.len()), "more budget, no fewer answers");
            prev_len = p.value.len();
        }
        assert!(saw_incomplete, "tiny budgets must actually expire");

        // The generous budget at the end completed; zero budget serves
        // nothing but says so honestly.
        let p = t.try_prq_deadline(UserId(0), &WHOLE, 80.0, &Deadline::after(&clock, 0)).unwrap();
        assert!(!p.is_complete());
        assert!(p.value.is_empty());
        assert!(p.partitions.iter().all(|(_, c)| !*c));
    }

    #[test]
    fn issuer_never_appears_in_own_results() {
        let mut store = PolicyStore::new();
        // Mutual grants between 0 and 1 so both have friend lists.
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
        store.add(UserId(1), Policy::new(UserId(0), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut t = build(store, 2);
        t.upsert(still(0, 100.0, 100.0));
        t.upsert(still(1, 101.0, 101.0));
        let got = t.prq(UserId(0), &WHOLE, 10.0);
        assert_eq!(got.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![1]);
    }
}
