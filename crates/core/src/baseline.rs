//! The spatial-index baseline of Sec 4: answer the query as if it were
//! privacy-unaware using a Bx-tree, then filter the candidates by their
//! location-privacy policies. This is the approach the PEB-tree is
//! evaluated against throughout Sec 7.

use std::sync::Arc;

use peb_bx::BxTree;
use peb_common::{MovingPoint, Point, Rect, Timestamp, UserId};
use peb_policy::PolicyStore;

/// A Bx-tree with post-hoc policy filtering ("the commonly used filtering
/// approach to handle peer-wise privacy concerns").
pub struct SpatialBaseline {
    bx: BxTree,
}

impl SpatialBaseline {
    pub fn new(bx: BxTree) -> Self {
        SpatialBaseline { bx }
    }

    /// Access the underlying Bx-tree (updates go straight through).
    pub fn bx(&self) -> &BxTree {
        &self.bx
    }

    pub fn bx_mut(&mut self) -> &mut BxTree {
        &mut self.bx
    }

    pub fn upsert(&mut self, m: MovingPoint) {
        self.bx.upsert(m);
    }

    /// Batched update path (see [`BxTree::upsert_batch`]).
    pub fn upsert_batch(&self, updates: &[MovingPoint]) -> usize {
        self.bx.upsert_batch(updates)
    }

    pub fn remove(&mut self, uid: UserId) -> bool {
        self.bx.remove(uid)
    }

    pub fn len(&self) -> usize {
        self.bx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bx.is_empty()
    }

    pub fn pool(&self) -> &Arc<peb_storage::BufferPool> {
        self.bx.pool()
    }

    /// Locking counters of the underlying pool: how much of the read path
    /// ran lock-free (see [`peb_storage::LockStats`]).
    pub fn lock_stats(&self) -> peb_storage::LockStats {
        self.bx.lock_stats()
    }

    /// Opt the underlying Bx-tree into the fused multi-interval query
    /// pipeline (see [`BxTree::set_fused_scans`]); results are identical,
    /// only page accesses differ.
    pub fn set_fused_scans(&mut self, enabled: bool) {
        self.bx.set_fused_scans(enabled);
    }

    /// Whether the fused query pipeline is active.
    pub fn fused_scans(&self) -> bool {
        self.bx.fused_scans()
    }

    /// Switch the underlying Bx-tree between direct and B-epsilon-style
    /// buffered writes (see [`BxTree::set_buffered_writes`]); query
    /// results are identical, only write-path page accesses differ.
    pub fn set_buffered_writes(&mut self, enabled: bool) {
        self.bx.set_buffered_writes(enabled);
    }

    /// Whether buffered writes are active.
    pub fn buffered_writes(&self) -> bool {
        self.bx.buffered_writes()
    }

    /// Switch the underlying Bx-tree between whole-shard exclusion and
    /// optimistic-lock-coupling writes (see [`BxTree::set_olc_writes`]);
    /// results are identical, updaters overlap queries.
    pub fn set_olc_writes(&mut self, enabled: bool) {
        self.bx.set_olc_writes(enabled);
    }

    /// Whether OLC writes are active.
    pub fn olc_writes(&self) -> bool {
        self.bx.olc_writes()
    }

    /// OLC contention counters summed across partitions (restarts and
    /// gate escalations; see [`peb_btree::OlcStats`]).
    pub fn olc_stats(&self) -> peb_btree::OlcStats {
        self.bx.olc_stats()
    }

    /// Switch the underlying Bx-tree's write-ahead-log durability
    /// protocol (see [`BxTree::set_durable`]); query results and the
    /// logical ledger are identical, only log traffic is added.
    pub fn set_durable(&mut self, enabled: bool) {
        self.bx.set_durable(enabled);
    }

    /// Whether the durability protocol is active.
    pub fn is_durable(&self) -> bool {
        self.bx.is_durable()
    }

    /// Checkpoint the underlying Bx-tree (see [`BxTree::checkpoint`]).
    pub fn checkpoint(&self) -> usize {
        self.bx.checkpoint()
    }

    /// Deterministic write-path counters of the underlying Bx-tree (see
    /// [`peb_btree::WriteStats`]).
    pub fn write_stats(&self) -> peb_btree::WriteStats {
        self.bx.write_stats()
    }

    /// Zero the write-path counters (measurement windows).
    pub fn reset_write_stats(&self) {
        self.bx.reset_write_stats()
    }

    /// Deterministic scan-path counters of the underlying Bx-tree (see
    /// [`peb_btree::ScanStats`]).
    pub fn scan_stats(&self) -> peb_btree::ScanStats {
        self.bx.scan_stats()
    }

    /// Zero the scan-path counters (measurement windows).
    pub fn reset_scan_stats(&self) {
        self.bx.reset_scan_stats()
    }

    /// Privacy-aware range query, filtering style: spatial query first,
    /// policy evaluation on everything retrieved. Sorted by uid.
    pub fn prq(
        &self,
        store: &PolicyStore,
        issuer: UserId,
        r: &Rect,
        tq: Timestamp,
    ) -> Vec<MovingPoint> {
        let mut out: Vec<MovingPoint> = self
            .bx
            .range_query(r, tq)
            .into_iter()
            .filter(|m| m.uid != issuer && store.permits(m.uid, issuer, &m.position_at(tq), tq))
            .collect();
        out.sort_by_key(|m| m.uid);
        out
    }

    /// Privacy-aware kNN, filtering style: iteratively enlarged spatial
    /// range queries; after each round the candidates are policy-filtered,
    /// and the search widens until k *qualified* users fall inside the
    /// round's inscribed circle (mirroring the Bx kNN loop of Sec 2.1 with
    /// the filter applied to its intermediate results).
    pub fn pknn(
        &self,
        store: &PolicyStore,
        issuer: UserId,
        q: Point,
        k: usize,
        tq: Timestamp,
    ) -> Vec<(MovingPoint, f64)> {
        if k == 0 || self.bx.is_empty() {
            return Vec::new();
        }
        let n = self.bx.len();
        let rq = (self.bx.estimated_knn_distance(k, n) / k as f64)
            .max(self.bx.space().cell_size() * peb_bx::tree::KNN_STEP_FLOOR_CELLS);
        let max_radius = self.bx.space().side * 4.0;

        // Each round only scans the ring R'_qi − R'_q(i−1); candidates and
        // their policy verdicts accumulate across rounds.
        let mut scanned: std::collections::HashMap<u8, peb_zorder::IntervalSet> =
            std::collections::HashMap::new();
        let mut qualified: Vec<(MovingPoint, f64)> = Vec::new();
        let mut seen: std::collections::HashSet<UserId> = std::collections::HashSet::new();
        let mut radius = rq;
        loop {
            let window = Rect::square(q, 2.0 * radius);
            self.bx.for_each_new_candidate(&window, tq, &mut scanned, |m| {
                if m.uid == issuer || !seen.insert(m.uid) {
                    return;
                }
                let pos = m.position_at(tq);
                if store.permits(m.uid, issuer, &pos, tq) {
                    qualified.push((m, pos.dist(&q)));
                }
            });
            let in_circle = qualified.iter().filter(|(_, d)| *d <= radius).count();
            if in_circle >= k || radius >= max_radius {
                qualified.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
                qualified.truncate(k);
                return qualified;
            }
            radius += rq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_bx::TimePartitioning;
    use peb_common::{SpaceConfig, TimeInterval, Vec2};
    use peb_policy::{Policy, RoleId};
    use peb_storage::BufferPool;

    const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
    const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };

    fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 0.0)
    }

    fn baseline() -> SpatialBaseline {
        SpatialBaseline::new(BxTree::new(
            Arc::new(BufferPool::new(64)),
            SpaceConfig::default(),
            TimePartitioning::default(),
            3.0,
        ))
    }

    #[test]
    fn prq_filters_after_spatial_retrieval() {
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut b = baseline();
        b.upsert(still(1, 100.0, 100.0)); // friend in range
        b.upsert(still(2, 105.0, 105.0)); // stranger in range
        let got = b.prq(&store, UserId(0), &Rect::new(50.0, 150.0, 50.0, 150.0), 10.0);
        assert_eq!(got.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn pknn_keeps_searching_past_unqualified_neighbors() {
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(9), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut b = baseline();
        for i in 1..=8u64 {
            b.upsert(still(i, 500.0 + i as f64, 500.0)); // strangers nearby
        }
        b.upsert(still(9, 800.0, 800.0)); // far friend
        let res = b.pknn(&store, UserId(0), Point::new(500.0, 500.0), 1, 10.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.uid.0, 9);
    }

    #[test]
    fn pknn_empty_when_nobody_qualifies() {
        let store = PolicyStore::new();
        let mut b = baseline();
        b.upsert(still(1, 100.0, 100.0));
        assert!(b.pknn(&store, UserId(0), Point::new(0.0, 0.0), 2, 10.0).is_empty());
    }
}
