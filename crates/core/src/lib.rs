//! The PEB-tree (Policy-Embedded Bx-tree): the paper's primary contribution.
//!
//! The PEB-tree indexes moving users by a composite key
//!
//! ```text
//! PEB_key = [TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂   (⊕ = bit concatenation)
//! ```
//!
//! where `TID` is the Bx time partition, `SV` the privacy-policy sequence
//! value of Sec 5.1 (fixed-point encoded), and `ZV` the Z-curve value of
//! the user's position as of the partition's label timestamp. Giving `SV`
//! priority over `ZV` clusters users by *policy compatibility first,
//! location second*: "users related to the query issuer are usually much
//! fewer than the unrelated users within the vicinity of a query".
//!
//! On top of the key layout this crate implements:
//!
//! * [`tree::PebTree`] — insert/update/delete with B+-tree efficiency;
//! * [`prq`] — the privacy-aware range query of Fig 7 (per-friend SV × ZV
//!   key intervals, skip-once-found);
//! * [`pknn`] — the privacy-aware kNN query of Figs 8–10 (search matrix,
//!   triangular order, vertical-scan refinement);
//! * [`baseline::SpatialBaseline`] — Sec 4's compare-against approach: a
//!   plain Bx-tree plus post-hoc policy filtering;
//! * [`oracle`] — brute-force reference implementations used by tests and
//!   benches to assert all engines agree.

pub mod baseline;
pub mod circle;
pub mod context;
pub mod keys;
pub mod oracle;
pub mod partial;
pub mod pknn;
pub mod prq;
pub mod tree;

pub use baseline::SpatialBaseline;
pub use context::PrivacyContext;
pub use keys::PebKeyLayout;
pub use partial::Partial;
pub use tree::{PebIndexLayout, PebTree, PebTreeStats};
