//! The privacy-aware kNN query (PkNN) of Sec 5.4 / Figs 8–10.
//!
//! The search space in each time partition is an `m × n` matrix (Fig 8):
//! rows are the issuer's friends in ascending SV order, columns are rounds
//! of the incrementally enlarged query window. Per the paper's
//! modification, each round contributes a *single* Z-interval — the min and
//! max one-dimensional values of the (enlarged) window — and since windows
//! nest, each cell only scans the two fresh sub-intervals its round adds.
//!
//! Cells are visited in the triangular (anti-diagonal) order of Fig 9,
//! alternating between widening the spatial radius and descending the
//! friend list, until k policy-qualified candidates fall inside the
//! inscribed circle of the current round's window. A final vertical scan
//! (all rows, window shrunk to twice the current k'th candidate distance)
//! guarantees no closer qualified user was missed.

use std::collections::{HashMap, HashSet};

use peb_btree::ScanTermination;
use peb_bx::estimated_knn_distance;
use peb_common::{Deadline, MovingPoint, Point, Rect, Timestamp, UserId};
use peb_index::{IndexError, ObjectRecord};

use crate::partial::Partial;
use crate::tree::PebTree;

/// Per-(partition, SV-code) record of the Z-interval already scanned; round
/// windows nest, so one interval per cell key suffices.
type ScannedMap = HashMap<(u8, u64), (u64, u64)>;

impl PebTree {
    /// Definition 3: the k users nearest to `q` at `tq` among those whose
    /// policy lets `issuer` see them there and then. Sorted by distance
    /// (ties by uid); fewer than k are returned when fewer qualify.
    pub fn pknn(
        &self,
        issuer: UserId,
        q: Point,
        k: usize,
        tq: Timestamp,
    ) -> Vec<(MovingPoint, f64)> {
        self.try_pknn(issuer, q, k, tq).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`PebTree::pknn`]: an unresolvable media fault
    /// anywhere in the search-matrix scans surfaces as
    /// [`IndexError::Io`] instead of panicking. The result set of a
    /// completed query is identical to the infallible path's.
    pub fn try_pknn(
        &self,
        issuer: UserId,
        q: Point,
        k: usize,
        tq: Timestamp,
    ) -> Result<Vec<(MovingPoint, f64)>, IndexError> {
        let groups = self.ctx().friend_sv_groups(issuer);
        if groups.is_empty() || k == 0 || self.is_empty() {
            return Ok(Vec::new());
        }
        let m = groups.len();
        let n_objects = self.len();

        // Initial radius r_q = D_k / k (Fig 10 line 2), floored at one grid
        // cell so tiny estimates still make progress.
        let rq = (estimated_knn_distance(k, n_objects, self.space().side) / k as f64)
            .max(self.space().cell_size() * peb_bx::tree::KNN_STEP_FLOOR_CELLS);
        let max_radius = self.space().side * 4.0;
        let max_rounds = (max_radius / rq).ceil() as usize;

        let partitions = self.live_partitions();
        let mut scanned: ScannedMap = HashMap::new();
        let mut resolved: HashSet<UserId> = HashSet::new();
        let mut pool: Vec<(MovingPoint, f64)> = Vec::new();

        // Triangular order over the search matrix: anti-diagonal d visits
        // cells (row, round) with row + (round − 1) = d, starting from the
        // upper-left corner (nearest SV, smallest radius).
        let total_friends: usize = groups.iter().map(|(_, ms)| ms.len()).sum();
        let mut done = false;
        'diagonals: for d in 0..(m + max_rounds) {
            for (row, group) in groups.iter().enumerate().take(d.min(m - 1) + 1) {
                let round = d - row + 1;
                if round > max_rounds {
                    continue;
                }
                let radius = round as f64 * rq;
                self.scan_cell(
                    issuer,
                    q,
                    tq,
                    group,
                    radius,
                    &partitions,
                    &mut scanned,
                    &mut resolved,
                    &mut pool,
                )?;
                if pool.iter().filter(|(_, dist)| *dist <= radius).count() >= k {
                    done = true;
                    break 'diagonals;
                }
                if resolved.len() >= total_friends {
                    // Every friend has been located: no further cell can
                    // add candidates, so the matrix is effectively empty.
                    break 'diagonals;
                }
            }
        }

        pool.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        if !done {
            // The matrix is exhausted: fewer than k users qualify anywhere.
            pool.truncate(k);
            return Ok(pool);
        }

        // Vertical-scan refinement: make sure every friend row is covered
        // out to twice the current k'th candidate distance, then re-rank.
        // On the fused plan the whole column is one multi-interval scan
        // (every unresolved group's fresh intervals, all partitions)
        // instead of one cell — and therefore one descent — per row.
        let kth_dist = pool[k - 1].1;
        let radius = kth_dist.max(self.space().cell_size() * 0.5);
        if self.fused_scans() {
            let mut intervals: Vec<(u128, u128)> = Vec::new();
            for (sv_code, members) in &groups {
                if members.iter().all(|u| resolved.contains(u)) {
                    continue;
                }
                intervals.extend(self.cell_intervals(
                    *sv_code,
                    q,
                    tq,
                    radius,
                    &partitions,
                    &mut scanned,
                ));
            }
            self.try_scan_intervals_fused(&intervals, |rec| {
                self.pknn_refine(issuer, q, tq, rec, &mut resolved, &mut pool);
                // Once every friend is located no further record can
                // qualify; stop the column scan early.
                resolved.len() < total_friends
            })?;
        } else {
            for group in &groups {
                self.scan_cell(
                    issuer,
                    q,
                    tq,
                    group,
                    radius,
                    &partitions,
                    &mut scanned,
                    &mut resolved,
                    &mut pool,
                )?;
            }
        }
        pool.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        pool.truncate(k);
        Ok(pool)
    }

    /// Deadline-bounded PkNN: the graceful-degradation entry point of the
    /// serving layer.
    ///
    /// Walks the same search matrix as [`PebTree::try_pknn`] with
    /// `deadline` checked at every page visit and cell boundary. Expiry
    /// returns the best-`k` candidates refined so far — each one passed
    /// the same policy/distance checks as the unbounded query, but a
    /// closer qualified friend the budget never reached may be missing,
    /// so the ranking is a *candidate* ranking, not a proof. Because the
    /// matrix's cells interleave every live partition (each cell scans
    /// all of them at one radius), no single partition's coverage
    /// survives an expiry: a degraded PkNN tags **all** partitions
    /// incomplete, and a completed one tags all complete — the
    /// [`Partial::is_complete`] flag is the answer's integrity bit.
    pub fn try_pknn_deadline(
        &self,
        issuer: UserId,
        q: Point,
        k: usize,
        tq: Timestamp,
        deadline: &Deadline,
    ) -> Result<Partial<Vec<(MovingPoint, f64)>>, IndexError> {
        let partitions = self.live_partitions();
        let tids: Vec<u8> = partitions.iter().map(|(t, _)| *t).collect();
        let groups = self.ctx().friend_sv_groups(issuer);
        if groups.is_empty() || k == 0 || self.is_empty() {
            // No qualifying candidate exists anywhere: complete, no I/O.
            return Ok(Partial::complete(Vec::new(), tids));
        }
        let m = groups.len();
        let n_objects = self.len();

        let rq = (estimated_knn_distance(k, n_objects, self.space().side) / k as f64)
            .max(self.space().cell_size() * peb_bx::tree::KNN_STEP_FLOOR_CELLS);
        let max_radius = self.space().side * 4.0;
        let max_rounds = (max_radius / rq).ceil() as usize;

        let mut scanned: ScannedMap = HashMap::new();
        let mut resolved: HashSet<UserId> = HashSet::new();
        let mut pool: Vec<(MovingPoint, f64)> = Vec::new();

        let total_friends: usize = groups.iter().map(|(_, ms)| ms.len()).sum();
        let mut done = false;
        let mut expired = false;
        'diagonals: for d in 0..(m + max_rounds) {
            for (row, group) in groups.iter().enumerate().take(d.min(m - 1) + 1) {
                let round = d - row + 1;
                if round > max_rounds {
                    continue;
                }
                if deadline.expired() {
                    expired = true;
                    break 'diagonals;
                }
                let radius = round as f64 * rq;
                if self.scan_cell_deadline(
                    issuer,
                    q,
                    tq,
                    group,
                    radius,
                    &partitions,
                    &mut scanned,
                    &mut resolved,
                    &mut pool,
                    deadline,
                )? {
                    expired = true;
                    break 'diagonals;
                }
                if pool.iter().filter(|(_, dist)| *dist <= radius).count() >= k {
                    done = true;
                    break 'diagonals;
                }
                if resolved.len() >= total_friends {
                    break 'diagonals;
                }
            }
        }

        pool.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        if expired {
            pool.truncate(k);
            return Ok(Partial::degraded(pool, tids));
        }
        if !done {
            // The matrix is exhausted within budget: fewer than k users
            // qualify anywhere — a complete answer.
            pool.truncate(k);
            return Ok(Partial::complete(pool, tids));
        }

        // Vertical-scan refinement under the same deadline, as one fused
        // multi-interval column scan.
        let kth_dist = pool[k - 1].1;
        let radius = kth_dist.max(self.space().cell_size() * 0.5);
        let mut intervals: Vec<(u128, u128)> = Vec::new();
        for (sv_code, members) in &groups {
            if members.iter().all(|u| resolved.contains(u)) {
                continue;
            }
            intervals.extend(self.cell_intervals(
                *sv_code,
                q,
                tq,
                radius,
                &partitions,
                &mut scanned,
            ));
        }
        let report = self.try_scan_intervals_deadline(&intervals, deadline, |rec| {
            self.pknn_refine(issuer, q, tq, rec, &mut resolved, &mut pool);
            resolved.len() < total_friends
        })?;
        pool.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        pool.truncate(k);
        if report.termination == ScanTermination::Expired {
            // k candidates exist but the closer-friend sweep was cut off:
            // the ranking is unverified, so the answer stays degraded.
            return Ok(Partial::degraded(pool, tids));
        }
        Ok(Partial::complete(pool, tids))
    }

    /// Deadline-bounded twin of [`PebTree::scan_cell`]: the cell's fresh
    /// intervals execute as one deadline-checked multi-interval scan.
    /// Returns whether the deadline expired inside the cell.
    #[allow(clippy::too_many_arguments)]
    fn scan_cell_deadline(
        &self,
        issuer: UserId,
        q: Point,
        tq: Timestamp,
        group: &(u64, Vec<UserId>),
        radius: f64,
        partitions: &[(u8, Timestamp)],
        scanned: &mut ScannedMap,
        resolved: &mut HashSet<UserId>,
        pool: &mut Vec<(MovingPoint, f64)>,
        deadline: &Deadline,
    ) -> Result<bool, IndexError> {
        let (sv_code, members) = group;
        if members.iter().all(|u| resolved.contains(u)) {
            return Ok(false);
        }
        let intervals = self.cell_intervals(*sv_code, q, tq, radius, partitions, scanned);
        let report = self.try_scan_intervals_deadline(&intervals, deadline, |rec| {
            self.pknn_refine(issuer, q, tq, rec, resolved, pool);
            !members.iter().all(|u| resolved.contains(u))
        })?;
        Ok(report.termination == ScanTermination::Expired)
    }

    /// The fresh key intervals of one search-matrix cell: the single
    /// Z-interval of the window of half-side `radius` (the paper's
    /// modification — `[min ZV; max ZV]` of the enlarged window, i.e. its
    /// lower-left and upper-right cells), per live partition, minus
    /// whatever previous (smaller, nested) rounds already covered.
    /// Updates `scanned` to record the coverage.
    fn cell_intervals(
        &self,
        sv_code: u64,
        q: Point,
        tq: Timestamp,
        radius: f64,
        partitions: &[(u8, Timestamp)],
        scanned: &mut ScannedMap,
    ) -> Vec<(u128, u128)> {
        let keys = *self.key_layout();
        let window = Rect::square(q, 2.0 * radius);
        let mut out: Vec<(u128, u128)> = Vec::new();
        for (tid, t_lab) in partitions {
            let enlarged = self.enlarge(&window, *t_lab, tq);
            let (x0, x1, y0, y1) = self.space().to_grid_rect(&enlarged);
            let lo = peb_zorder::encode(x0, y0);
            let hi = peb_zorder::encode(x1, y1);

            // Subtract the nested interval scanned by earlier rounds.
            let fresh: Vec<(u64, u64)> = match scanned.get(&(*tid, sv_code)) {
                None => vec![(lo, hi)],
                Some(&(plo, phi)) => {
                    let mut v = Vec::new();
                    if lo < plo {
                        v.push((lo, plo - 1));
                    }
                    if hi > phi {
                        v.push((phi + 1, hi));
                    }
                    v
                }
            };
            let entry = scanned.entry((*tid, sv_code)).or_insert((lo, hi));
            entry.0 = entry.0.min(lo);
            entry.1 = entry.1.max(hi);

            for (zlo, zhi) in fresh {
                out.push((
                    keys.range_start(*tid, sv_code, zlo),
                    keys.range_end(*tid, sv_code, zhi),
                ));
            }
        }
        out
    }

    /// PkNN candidate refinement, shared by every scan plan: resolve the
    /// friend (a user has only one location), check the policy, and rank
    /// the qualified candidate by predicted distance.
    fn pknn_refine(
        &self,
        issuer: UserId,
        q: Point,
        tq: Timestamp,
        rec: ObjectRecord,
        resolved: &mut HashSet<UserId>,
        pool: &mut Vec<(MovingPoint, f64)>,
    ) {
        let uid = UserId(rec.uid);
        if uid == issuer || resolved.contains(&uid) {
            return;
        }
        if self.ctx().store.policy(uid, issuer).is_none() {
            return;
        }
        resolved.insert(uid);
        let mp = rec.to_moving_point();
        let pos = mp.position_at(tq);
        if self.ctx().store.permits(uid, issuer, &pos, tq) {
            pool.push((mp, pos.dist(&q)));
        }
    }

    /// Scan one search-matrix cell (one SV group at one radius, every
    /// live partition). On the per-interval plan each fresh interval is
    /// its own B+-tree scan; on the fused plan the cell's intervals
    /// execute as one multi-interval scan (one descent instead of one per
    /// partition × fresh flank).
    #[allow(clippy::too_many_arguments)]
    fn scan_cell(
        &self,
        issuer: UserId,
        q: Point,
        tq: Timestamp,
        group: &(u64, Vec<UserId>),
        radius: f64,
        partitions: &[(u8, Timestamp)],
        scanned: &mut ScannedMap,
        resolved: &mut HashSet<UserId>,
        pool: &mut Vec<(MovingPoint, f64)>,
    ) -> Result<(), IndexError> {
        let (sv_code, members) = group;
        if members.iter().all(|u| resolved.contains(u)) {
            return Ok(());
        }
        let intervals = self.cell_intervals(*sv_code, q, tq, radius, partitions, scanned);
        if self.fused_scans() {
            self.try_scan_intervals_fused(&intervals, |rec| {
                self.pknn_refine(issuer, q, tq, rec, resolved, pool);
                // Only this SV group's friends appear under this SV code;
                // once all of them are located the cell has nothing left.
                !members.iter().all(|u| resolved.contains(u))
            })?;
        } else {
            for (lo, hi) in intervals {
                self.try_scan_key_interval(lo, hi, |rec| {
                    self.pknn_refine(issuer, q, tq, rec, resolved, pool);
                    true
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PrivacyContext;
    use peb_bx::TimePartitioning;
    use peb_common::{SpaceConfig, TimeInterval, Vec2};
    use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
    use peb_storage::BufferPool;
    use std::sync::Arc;

    const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
    const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };

    fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 0.0)
    }

    fn build(store: PolicyStore, n: usize) -> PebTree {
        let space = SpaceConfig::default();
        let ctx = Arc::new(PrivacyContext::build(store, space, n, SvAssignmentParams::default()));
        PebTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::default(), 3.0, ctx)
    }

    #[test]
    fn running_example_only_willing_friend_wins() {
        // Fig 3: u1 queries for the nearest friend. Friends u12..u130 exist
        // but only u12 currently discloses; nearer non-friends and
        // unwilling friends must be passed over.
        let mut store = PolicyStore::new();
        let friends = [12u64, 30, 59, 100, 130];
        for f in friends {
            let (locr, tint) = if f == 12 {
                (WHOLE, ALWAYS)
            } else {
                // Policies that never apply at tq = 100.
                (WHOLE, TimeInterval::new(500.0, 600.0))
            };
            store.add(UserId(1), Policy::new(UserId(f), RoleId::FRIEND, locr, tint));
        }
        let mut t = build(store, 131);
        t.upsert(still(1, 500.0, 500.0));
        t.upsert(still(100, 505.0, 505.0)); // nearest friend, unwilling
        t.upsert(still(12, 600.0, 600.0)); // willing friend, farther
        t.upsert(still(30, 510.0, 510.0)); // unwilling
        t.upsert(still(59, 520.0, 520.0)); // unwilling
        t.upsert(still(130, 530.0, 530.0)); // unwilling
        t.upsert(still(77, 501.0, 501.0)); // non-friend right next door

        let res = t.pknn(UserId(1), Point::new(500.0, 500.0), 1, 100.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.uid.0, 12, "only the willing friend qualifies");
    }

    #[test]
    fn k_results_sorted_by_distance() {
        let mut store = PolicyStore::new();
        for f in 1..=10u64 {
            store.add(UserId(0), Policy::new(UserId(f), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 11);
        for f in 1..=10u64 {
            t.upsert(still(f, 500.0 + 10.0 * f as f64, 500.0));
        }
        let res = t.pknn(UserId(0), Point::new(500.0, 500.0), 3, 10.0);
        assert_eq!(res.iter().map(|(m, _)| m.uid.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(res.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn fewer_qualified_than_k() {
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut t = build(store, 3);
        t.upsert(still(1, 100.0, 100.0));
        t.upsert(still(2, 105.0, 105.0)); // non-friend
        let res = t.pknn(UserId(0), Point::new(0.0, 0.0), 5, 10.0);
        assert_eq!(res.len(), 1, "only the single friend qualifies");
    }

    #[test]
    fn no_friends_no_io() {
        let mut t = build(PolicyStore::new(), 3);
        t.upsert(still(1, 100.0, 100.0));
        let pool = Arc::clone(t.pool());
        pool.clear();
        pool.reset_stats();
        assert!(t.pknn(UserId(0), Point::new(0.0, 0.0), 3, 10.0).is_empty());
        assert_eq!(pool.stats().physical_reads, 0);
    }

    #[test]
    fn warm_pknn_runs_lock_free() {
        // PkNN's incremental window enlargement issues many small
        // interval scans; warm, every one of them must ride the
        // optimistic read path instead of serializing on pool mutexes.
        let mut store = PolicyStore::new();
        for f in 1..=20u64 {
            store.add(UserId(0), Policy::new(UserId(f), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 21);
        for f in 1..=20u64 {
            t.upsert(still(f, 500.0 + 11.0 * f as f64, 480.0 + 7.0 * f as f64));
        }
        let pool = Arc::clone(t.pool());
        pool.flush_all();
        pool.clear();
        let cold = t.pknn(UserId(0), Point::new(500.0, 500.0), 3, 10.0);
        pool.reset_stats();
        let warm = t.pknn(UserId(0), Point::new(500.0, 500.0), 3, 10.0);
        assert_eq!(cold, warm, "read path must not change results");
        let locks = t.lock_stats();
        assert_eq!(locks.lock_acquisitions, 0, "warm PkNN must not touch a pool mutex");
        assert!(locks.optimistic_hits > 0);
    }

    #[test]
    fn fused_pknn_is_identical_and_cheaper() {
        let mut store = PolicyStore::new();
        for f in 1..=40u64 {
            store.add(UserId(0), Policy::new(UserId(f), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 41);
        for f in 1..=40u64 {
            t.upsert(still(f, (f as f64 * 173.0) % 1000.0, (f as f64 * 59.0) % 1000.0));
        }
        let q = Point::new(480.0, 510.0);
        let pool = Arc::clone(t.pool());

        t.set_fused_scans(false); // measure the legacy per-interval plan first
        let _ = t.pknn(UserId(0), q, 5, 10.0); // warm
        pool.reset_stats();
        t.reset_scan_stats();
        let per = t.pknn(UserId(0), q, 5, 10.0);
        let per_logical = pool.stats().logical_reads;
        let per_descents = t.scan_stats().descents;

        t.set_fused_scans(true);
        let _ = t.pknn(UserId(0), q, 5, 10.0);
        pool.reset_stats();
        t.reset_scan_stats();
        let fused = t.pknn(UserId(0), q, 5, 10.0);
        let fused_logical = pool.stats().logical_reads;
        let fused_descents = t.scan_stats().descents;

        assert_eq!(per, fused, "fused PkNN must return the identical ranking");
        assert_eq!(fused.len(), 5);
        assert!(
            fused_logical <= per_logical,
            "fused logical reads {fused_logical} above per-interval {per_logical}"
        );
        // PkNN's incremental rounds keep one descent per visited cell, so
        // the reduction is bounded by the cell structure (the 2x bar is
        // PRQ's); it must still be a strict improvement.
        assert!(
            fused_descents < per_descents,
            "fused descents {fused_descents} vs per-interval {per_descents}"
        );
    }

    #[test]
    fn unbounded_deadline_pknn_is_the_plain_pknn() {
        let mut store = PolicyStore::new();
        for f in 1..=30u64 {
            store.add(UserId(0), Policy::new(UserId(f), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 31);
        for f in 1..=30u64 {
            t.upsert(still(f, (f as f64 * 173.0) % 1000.0, (f as f64 * 59.0) % 1000.0));
        }
        let q = Point::new(480.0, 510.0);
        let full = t.try_pknn(UserId(0), q, 5, 10.0).unwrap();
        assert_eq!(full.len(), 5);
        let clock = t.pool().clock().clone();
        let part =
            t.try_pknn_deadline(UserId(0), q, 5, 10.0, &Deadline::unbounded(&clock)).unwrap();
        assert!(part.is_complete());
        assert_eq!(part.partitions.len(), t.live_partitions().len());
        assert_eq!(part.value, full, "an unexpired deadline changes nothing");
    }

    #[test]
    fn expired_pknn_returns_refined_candidates_tagged_degraded() {
        let mut store = PolicyStore::new();
        for f in 1..=30u64 {
            store.add(UserId(0), Policy::new(UserId(f), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let mut t = build(store, 31);
        for f in 1..=30u64 {
            t.upsert(still(f, (f as f64 * 173.0) % 1000.0, (f as f64 * 59.0) % 1000.0));
        }
        let q = Point::new(480.0, 510.0);
        let _ = t.try_pknn(UserId(0), q, 5, 10.0).unwrap(); // warm the pool
        let clock = t.pool().clock().clone();

        // Zero budget: nothing served, every partition honestly incomplete.
        let p = t.try_pknn_deadline(UserId(0), q, 5, 10.0, &Deadline::after(&clock, 0)).unwrap();
        assert!(!p.is_complete());
        assert_eq!(p.complete_partitions(), 0);
        assert!(p.value.is_empty());

        // Small budgets: whatever is served is a genuinely qualified,
        // correctly ranked candidate set of at most k — never a guess.
        let mut saw_degraded_nonempty = false;
        let mut saw_complete = false;
        for budget in [1u64, 2, 4, 8, 16, 32, 64, 128, 1 << 20] {
            let p = t
                .try_pknn_deadline(UserId(0), q, 5, 10.0, &Deadline::after(&clock, budget))
                .unwrap();
            assert!(p.value.len() <= 5);
            assert!(p.value.windows(2).all(|w| w[0].1 <= w[1].1), "ranked by distance");
            for (m, d) in &p.value {
                assert!(m.uid.0 >= 1 && m.uid.0 <= 30, "only friends can appear");
                let pos = m.position_at(10.0);
                assert!((pos.dist(&q) - d).abs() < 1e-9, "distances are real, not guessed");
            }
            if p.is_complete() {
                saw_complete = true;
                assert_eq!(p.value, t.try_pknn(UserId(0), q, 5, 10.0).unwrap());
            } else if !p.value.is_empty() {
                saw_degraded_nonempty = true;
            }
        }
        assert!(saw_complete, "a generous budget must complete");
        assert!(saw_degraded_nonempty, "some budget must serve a nonempty degraded answer");
    }

    #[test]
    fn far_friend_beats_near_nonqualified_swarm() {
        // The scenario motivating the PEB-tree (Sec 4): many near users
        // that do not qualify must not drown out the one far friend.
        let mut store = PolicyStore::new();
        store.add(UserId(0), Policy::new(UserId(999), RoleId::FRIEND, WHOLE, ALWAYS));
        let mut t = build(store, 1_001);
        for i in 1..400u64 {
            let angle = i as f64 * 0.1;
            t.upsert(still(i, 500.0 + 20.0 * angle.cos(), 500.0 + 20.0 * angle.sin()));
        }
        t.upsert(still(999, 900.0, 900.0));
        let res = t.pknn(UserId(0), Point::new(500.0, 500.0), 1, 10.0);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0.uid.0, 999);
    }
}
