//! Privacy-aware within-distance query (PWD) — one of the "other types of
//! location-based queries" the paper's conclusion calls for.
//!
//! `PWD = (qID, qLoc, radius, tq)` retrieves every user within `radius` of
//! `qLoc` at `tq` whose policy lets `qID` see them there and then. It is
//! the circular counterpart of PRQ and the building block of proximity
//! alerts ("tell me when a friend is within 500 m").
//!
//! Implementation: the circle's bounding square runs through the PRQ
//! machinery (friend-SV × Z-interval key ranges), and the refinement step
//! additionally checks the Euclidean distance — so the privacy-first
//! pruning of the PEB-tree carries over unchanged.

use peb_common::{MovingPoint, Point, Rect, Timestamp, UserId};
use peb_index::IndexError;
use peb_policy::PolicyStore;

use crate::baseline::SpatialBaseline;
use crate::tree::PebTree;

impl PebTree {
    /// All users within `radius` of `center` at `tq` that `issuer` may
    /// see, sorted by distance (ties by uid).
    pub fn pwd(
        &self,
        issuer: UserId,
        center: Point,
        radius: f64,
        tq: Timestamp,
    ) -> Vec<(MovingPoint, f64)> {
        self.try_pwd(issuer, center, radius, tq)
            .unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`PebTree::pwd`]: an unresolvable media fault in
    /// the underlying range query surfaces as [`IndexError::Io`] instead
    /// of panicking.
    pub fn try_pwd(
        &self,
        issuer: UserId,
        center: Point,
        radius: f64,
        tq: Timestamp,
    ) -> Result<Vec<(MovingPoint, f64)>, IndexError> {
        assert!(radius >= 0.0);
        let bbox = Rect::square(center, 2.0 * radius);
        let mut out: Vec<(MovingPoint, f64)> = self
            .try_prq(issuer, &bbox, tq)?
            .into_iter()
            .filter_map(|m| {
                let d = m.position_at(tq).dist(&center);
                (d <= radius).then_some((m, d))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        Ok(out)
    }
}

impl SpatialBaseline {
    /// Filtering-style within-distance query, for comparison.
    pub fn pwd(
        &self,
        store: &PolicyStore,
        issuer: UserId,
        center: Point,
        radius: f64,
        tq: Timestamp,
    ) -> Vec<(MovingPoint, f64)> {
        assert!(radius >= 0.0);
        let bbox = Rect::square(center, 2.0 * radius);
        let mut out: Vec<(MovingPoint, f64)> = self
            .prq(store, issuer, &bbox, tq)
            .into_iter()
            .filter_map(|m| {
                let d = m.position_at(tq).dist(&center);
                (d <= radius).then_some((m, d))
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.uid.cmp(&b.0.uid)));
        out
    }
}

/// Brute-force reference for PWD.
pub fn oracle_pwd(
    users: &[MovingPoint],
    store: &PolicyStore,
    issuer: UserId,
    center: Point,
    radius: f64,
    tq: Timestamp,
) -> Vec<UserId> {
    let mut hits: Vec<(f64, UserId)> = users
        .iter()
        .filter(|m| m.uid != issuer)
        .filter_map(|m| {
            let pos = m.position_at(tq);
            let d = pos.dist(&center);
            (d <= radius && store.permits(m.uid, issuer, &pos, tq)).then_some((d, m.uid))
        })
        .collect();
    hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    hits.into_iter().map(|(_, uid)| uid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PrivacyContext;
    use peb_bx::TimePartitioning;
    use peb_common::{SpaceConfig, TimeInterval, Vec2};
    use peb_policy::{Policy, RoleId, SvAssignmentParams};
    use peb_storage::BufferPool;
    use std::sync::Arc;

    const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
    const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };

    fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 0.0)
    }

    fn build(n_friends: u64) -> PebTree {
        let space = SpaceConfig::default();
        let mut store = PolicyStore::new();
        for o in 1..=n_friends {
            store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
        }
        let ctx = Arc::new(PrivacyContext::build(
            store,
            space,
            n_friends as usize + 2,
            SvAssignmentParams::default(),
        ));
        PebTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::default(), 3.0, ctx)
    }

    #[test]
    fn circle_excludes_bounding_square_corners() {
        let mut t = build(4);
        t.upsert(still(1, 500.0, 500.0)); // center
        t.upsert(still(2, 570.0, 500.0)); // inside circle (d = 70)
        t.upsert(still(3, 565.0, 565.0)); // corner of square, d ≈ 92 > 80
        t.upsert(still(4, 700.0, 700.0)); // far outside
        let got = t.pwd(UserId(0), Point::new(500.0, 500.0), 80.0, 10.0);
        let ids: Vec<u64> = got.iter().map(|(m, _)| m.uid.0).collect();
        assert_eq!(ids, vec![1, 2], "corner point must be filtered by the circle");
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn zero_radius_matches_exact_position_only() {
        let mut t = build(2);
        t.upsert(still(1, 500.0, 500.0));
        t.upsert(still(2, 500.25, 500.0));
        let got = t.pwd(UserId(0), Point::new(500.0, 500.0), 0.0, 10.0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 0.0);
    }

    #[test]
    fn matches_oracle_on_small_world() {
        let mut t = build(30);
        let mut users = Vec::new();
        for i in 1..=30u64 {
            let m = MovingPoint::new(
                UserId(i),
                Point::new((i * 37 % 100) as f64 * 10.0, (i * 61 % 100) as f64 * 10.0),
                Vec2::new(0.5, -0.25),
                0.0,
            );
            t.upsert(m);
            users.push(m);
        }
        let center = Point::new(430.0, 510.0);
        for radius in [50.0, 150.0, 400.0] {
            let got: Vec<UserId> =
                t.pwd(UserId(0), center, radius, 25.0).iter().map(|(m, _)| m.uid).collect();
            let want = oracle_pwd(&users, &t.context().store, UserId(0), center, radius, 25.0);
            assert_eq!(got, want, "radius {radius}");
        }
    }
}
