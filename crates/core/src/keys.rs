//! PEB key packing: `[TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂ ⊕ [UID]₂` (Eq. 5, plus a uid
//! suffix that makes keys unique without changing the paper's ordering:
//! TID dominates, then the sequence value, then location).

/// Bits reserved for the fixed-point sequence value.
pub const SV_BITS: u32 = 48;
/// Bits reserved for the user id suffix.
pub const UID_BITS: u32 = 32;
/// Bits reserved for the time partition.
pub const TID_BITS: u32 = 8;

/// Bit layout of PEB keys for a given Z-grid resolution.
#[derive(Debug, Clone, Copy)]
pub struct PebKeyLayout {
    /// Bits of the Z-curve value (2 × grid bits per axis).
    pub zv_bits: u32,
}

impl PebKeyLayout {
    pub fn new(grid_bits: u32) -> Self {
        assert!((1..=16).contains(&grid_bits));
        PebKeyLayout { zv_bits: 2 * grid_bits }
    }

    /// Compose a full key: `TID ‖ SV ‖ ZV ‖ UID`.
    #[inline]
    pub fn key(&self, tid: u8, sv_code: u64, zv: u64, uid: u64) -> u128 {
        debug_assert!(sv_code < (1u64 << SV_BITS));
        debug_assert!(zv < (1u64 << self.zv_bits));
        debug_assert!(uid < (1u64 << UID_BITS));
        ((tid as u128) << (SV_BITS + self.zv_bits + UID_BITS))
            | ((sv_code as u128) << (self.zv_bits + UID_BITS))
            | ((zv as u128) << UID_BITS)
            | uid as u128
    }

    /// Smallest key of the search interval `(tid, sv, zv_lo ..= zv_hi)`.
    #[inline]
    pub fn range_start(&self, tid: u8, sv_code: u64, zv_lo: u64) -> u128 {
        self.key(tid, sv_code, zv_lo, 0)
    }

    /// Largest key of the search interval `(tid, sv, zv_lo ..= zv_hi)`.
    #[inline]
    pub fn range_end(&self, tid: u8, sv_code: u64, zv_hi: u64) -> u128 {
        self.key(tid, sv_code, zv_hi, (1u64 << UID_BITS) - 1)
    }

    #[inline]
    pub fn tid_of(&self, key: u128) -> u8 {
        (key >> (SV_BITS + self.zv_bits + UID_BITS)) as u8
    }

    #[inline]
    pub fn sv_of(&self, key: u128) -> u64 {
        ((key >> (self.zv_bits + UID_BITS)) & ((1u128 << SV_BITS) - 1)) as u64
    }

    #[inline]
    pub fn zv_of(&self, key: u128) -> u64 {
        ((key >> UID_BITS) & ((1u128 << self.zv_bits) - 1)) as u64
    }

    #[inline]
    pub fn uid_of(&self, key: u128) -> u64 {
        (key & ((1u128 << UID_BITS) - 1)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_components() {
        let l = PebKeyLayout::new(10);
        let k = l.key(2, 0xABCDEF, 0xFEDCB, 1234);
        assert_eq!(l.tid_of(k), 2);
        assert_eq!(l.sv_of(k), 0xABCDEF);
        assert_eq!(l.zv_of(k), 0xFEDCB);
        assert_eq!(l.uid_of(k), 1234);
    }

    #[test]
    fn sv_has_priority_over_location() {
        // "The construction of the PEB key gives higher priority to sequence
        // values than to location mapping values."
        let l = PebKeyLayout::new(10);
        let near_but_foreign = l.key(0, 900, 5, 1);
        let far_but_compatible = l.key(0, 100, (1 << 20) - 1, 2);
        assert!(far_but_compatible < near_but_foreign, "lower SV sorts first regardless of ZV");
        // TID still dominates everything.
        assert!(l.key(1, 0, 0, 0) > l.key(0, u32::MAX as u64, (1 << 20) - 1, 99));
    }

    #[test]
    fn range_bounds_enclose_exactly_one_sv_group() {
        let l = PebKeyLayout::new(8);
        let lo = l.range_start(1, 500, 10);
        let hi = l.range_end(1, 500, 20);
        assert!(l.key(1, 500, 10, 0) >= lo && l.key(1, 500, 20, u32::MAX as u64) <= hi);
        assert!(l.key(1, 499, 20, 0) < lo, "lower SV excluded");
        assert!(l.key(1, 501, 0, 0) > hi, "higher SV excluded");
        assert!(l.key(1, 500, 21, 0) > hi, "ZV above interval excluded");
        assert!(l.key(1, 500, 9, u32::MAX as u64) < lo, "ZV below interval excluded");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn pack_unpack_identity(
            grid_bits in 1u32..=16,
            tid in 0u8..=255,
            sv_raw in any::<u64>(),
            zv_raw in any::<u64>(),
            uid in 0u64..(1 << 32),
        ) {
            let l = PebKeyLayout::new(grid_bits);
            let sv = sv_raw & ((1u64 << SV_BITS) - 1);
            let zv = zv_raw & ((1u64 << l.zv_bits) - 1);
            let k = l.key(tid, sv, zv, uid);
            prop_assert_eq!(l.tid_of(k), tid);
            prop_assert_eq!(l.sv_of(k), sv);
            prop_assert_eq!(l.zv_of(k), zv);
            prop_assert_eq!(l.uid_of(k), uid);
        }

        #[test]
        fn sv_always_dominates_zv(
            tid in 0u8..8,
            sv_lo in 0u64..1000,
            sv_gap in 1u64..1000,
            zv_a in 0u64..(1 << 20),
            zv_b in 0u64..(1 << 20),
            uid_a in 0u64..(1 << 32),
            uid_b in 0u64..(1 << 32),
        ) {
            // The paper's Eq. 5 clustering claim: any key with a smaller SV
            // sorts before any key with a larger SV, regardless of where in
            // space (ZV) or who (UID) — policy compatibility first,
            // location second.
            let l = PebKeyLayout::new(10);
            let near_but_foreign = l.key(tid, sv_lo + sv_gap, zv_a, uid_a);
            let far_but_compatible = l.key(tid, sv_lo, zv_b, uid_b);
            prop_assert!(far_but_compatible < near_but_foreign);
        }

        #[test]
        fn key_order_is_lexicographic_tid_sv_zv_uid(
            a in (0u8..8, 0u64..4000, 0u64..(1 << 20), 0u64..(1 << 32)),
            b in (0u8..8, 0u64..4000, 0u64..(1 << 20), 0u64..(1 << 32)),
        ) {
            let l = PebKeyLayout::new(10);
            let ka = l.key(a.0, a.1, a.2, a.3);
            let kb = l.key(b.0, b.1, b.2, b.3);
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "key order must equal tuple order");
        }
    }
}
