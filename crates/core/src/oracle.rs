//! Brute-force reference implementations of PRQ and PkNN.
//!
//! These scan the full user table and apply Definitions 2 and 3 literally.
//! They are the ground truth that the PEB-tree, the spatial baseline, and
//! the integration tests all must agree with.

use peb_common::{MovingPoint, Point, Rect, Timestamp, UserId};
use peb_policy::PolicyStore;

/// Definition 2, by linear scan: ids of all users in `r` at `tq` visible to
/// `issuer`, sorted by uid.
pub fn oracle_prq(
    users: &[MovingPoint],
    store: &PolicyStore,
    issuer: UserId,
    r: &Rect,
    tq: Timestamp,
) -> Vec<UserId> {
    let mut out: Vec<UserId> = users
        .iter()
        .filter(|m| m.uid != issuer)
        .filter(|m| {
            let pos = m.position_at(tq);
            r.contains(&pos) && store.permits(m.uid, issuer, &pos, tq)
        })
        .map(|m| m.uid)
        .collect();
    out.sort();
    out
}

/// Definition 3, by linear scan: the k qualified users nearest `q` at `tq`,
/// sorted by distance with ties broken by uid.
pub fn oracle_pknn(
    users: &[MovingPoint],
    store: &PolicyStore,
    issuer: UserId,
    q: Point,
    k: usize,
    tq: Timestamp,
) -> Vec<UserId> {
    let mut qualified: Vec<(f64, UserId)> = users
        .iter()
        .filter(|m| m.uid != issuer)
        .filter_map(|m| {
            let pos = m.position_at(tq);
            store.permits(m.uid, issuer, &pos, tq).then(|| (pos.dist(&q), m.uid))
        })
        .collect();
    qualified.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    qualified.truncate(k);
    qualified.into_iter().map(|(_, uid)| uid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::{TimeInterval, Vec2};
    use peb_policy::{Policy, RoleId};

    #[test]
    fn oracle_prq_applies_both_conditions() {
        let mut store = PolicyStore::new();
        store.add(
            UserId(0),
            Policy::new(
                UserId(1),
                RoleId::FRIEND,
                Rect::new(0.0, 1000.0, 0.0, 1000.0),
                TimeInterval::new(0.0, 100.0),
            ),
        );
        let users = vec![
            MovingPoint::new(UserId(1), Point::new(50.0, 50.0), Vec2::ZERO, 0.0),
            MovingPoint::new(UserId(2), Point::new(60.0, 60.0), Vec2::ZERO, 0.0),
        ];
        let r = Rect::new(0.0, 100.0, 0.0, 100.0);
        assert_eq!(oracle_prq(&users, &store, UserId(0), &r, 50.0), vec![UserId(1)]);
        assert!(oracle_prq(&users, &store, UserId(0), &r, 150.0).is_empty(), "tint expired");
    }

    #[test]
    fn oracle_pknn_orders_by_distance() {
        let mut store = PolicyStore::new();
        for u in [1u64, 2, 3] {
            store.add(
                UserId(0),
                Policy::new(
                    UserId(u),
                    RoleId::FRIEND,
                    Rect::new(0.0, 1000.0, 0.0, 1000.0),
                    TimeInterval::new(0.0, 1000.0),
                ),
            );
        }
        let users = vec![
            MovingPoint::new(UserId(1), Point::new(30.0, 0.0), Vec2::ZERO, 0.0),
            MovingPoint::new(UserId(2), Point::new(10.0, 0.0), Vec2::ZERO, 0.0),
            MovingPoint::new(UserId(3), Point::new(20.0, 0.0), Vec2::ZERO, 0.0),
        ];
        let got = oracle_pknn(&users, &store, UserId(0), Point::new(0.0, 0.0), 2, 5.0);
        assert_eq!(got, vec![UserId(2), UserId(3)]);
    }
}
