//! Typed degraded answers for deadline-bounded queries.
//!
//! When a query's [`peb_common::Deadline`] fires mid-flight the engine does
//! not guess, pad, or silently truncate: it returns everything it *proved*
//! wrapped in a [`Partial`] that says exactly which rotating time
//! partitions were fully covered. A caller (the serving layer, a client
//! willing to retry) can distinguish "these are all the answers" from
//! "these are the answers from the partitions the budget reached" without
//! parsing anything — the tag is the type.

/// A query answer that may be deadline-degraded.
///
/// `value` is always *exact as far as it goes*: every element was refined
/// through the same policy/containment checks the unbounded query applies,
/// and no element is fabricated. What expiry costs is **coverage**, and
/// `partitions` accounts for it per rotating time partition: `(tid, true)`
/// means every qualifying record of that partition is in `value`,
/// `(tid, false)` means the budget died before that partition was fully
/// scanned (its answers may be present, partially present, or absent).
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<T> {
    /// The (exact, possibly incomplete) answer.
    pub value: T,
    /// Per-partition completeness, sorted by partition id: `true` iff the
    /// partition's whole search range was delivered before expiry.
    pub partitions: Vec<(u8, bool)>,
}

impl<T> Partial<T> {
    /// Wrap a fully-delivered answer: every partition tagged complete.
    pub fn complete(value: T, tids: impl IntoIterator<Item = u8>) -> Self {
        Partial { value, partitions: tids.into_iter().map(|t| (t, true)).collect() }
    }

    /// Wrap a degraded answer: every partition tagged incomplete. Used
    /// when expiry strikes a plan whose scans interleave partitions (PkNN's
    /// search matrix), where no single partition's coverage survives.
    pub fn degraded(value: T, tids: impl IntoIterator<Item = u8>) -> Self {
        Partial { value, partitions: tids.into_iter().map(|t| (t, false)).collect() }
    }

    /// Whether the answer is the complete one — the unbounded query would
    /// have returned exactly `value`.
    pub fn is_complete(&self) -> bool {
        self.partitions.iter().all(|(_, c)| *c)
    }

    /// How many partitions were fully covered.
    pub fn complete_partitions(&self) -> usize {
        self.partitions.iter().filter(|(_, c)| *c).count()
    }

    /// Map the payload, preserving the coverage tags.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Partial<U> {
        Partial { value: f(self.value), partitions: self.partitions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_distinguish_complete_from_degraded() {
        let full = Partial::complete(vec![1, 2, 3], [0u8, 1, 2]);
        assert!(full.is_complete());
        assert_eq!(full.complete_partitions(), 3);

        let part = Partial { value: vec![1], partitions: vec![(0, true), (1, false), (2, false)] };
        assert!(!part.is_complete());
        assert_eq!(part.complete_partitions(), 1);

        let none = Partial::degraded(Vec::<i32>::new(), [0u8, 1]);
        assert!(!none.is_complete());
        assert_eq!(none.complete_partitions(), 0);
    }

    #[test]
    fn map_preserves_coverage() {
        let p = Partial { value: 7usize, partitions: vec![(0, true), (1, false)] };
        let q = p.map(|n| n * 2);
        assert_eq!(q.value, 14);
        assert_eq!(q.partitions, vec![(0, true), (1, false)]);
    }
}
