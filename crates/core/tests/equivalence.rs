//! The reproduction's central correctness invariant: for every workload,
//! the PEB-tree's PRQ/PkNN, the spatial baseline's filter-style PRQ/PkNN,
//! and the brute-force oracle all return exactly the same users.

use std::sync::Arc;

use pebtree::oracle::{oracle_pknn, oracle_prq};
use pebtree::{PebTree, PrivacyContext, SpatialBaseline};

use peb_bx::{BxTree, TimePartitioning};
use peb_common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
use peb_storage::BufferPool;

use proptest::prelude::*;

const MAX_SPEED: f64 = 3.0;

struct World {
    users: Vec<MovingPoint>,
    peb: PebTree,
    baseline: SpatialBaseline,
}

/// owner, viewer, rect, interval
type PolicyTuple = (u64, u64, (f64, f64, f64, f64), (f64, f64));

fn build_world(
    positions: Vec<(f64, f64, f64, f64, f64)>, // x, y, vx, vy, tu
    policies: Vec<PolicyTuple>,
) -> World {
    let space = SpaceConfig::default();
    let n = positions.len();
    let mut store = PolicyStore::new();
    for (owner, viewer, (xl, xu, yl, yu), (ts, te)) in policies {
        let owner = owner % n as u64;
        let viewer = viewer % n as u64;
        if owner == viewer {
            continue;
        }
        store.add(
            UserId(viewer),
            Policy::new(
                UserId(owner),
                RoleId::FRIEND,
                Rect::new(xl.min(xu), xl.max(xu), yl.min(yu), yl.max(yu)),
                TimeInterval::new(ts.min(te), ts.max(te)),
            ),
        );
    }
    let ctx = Arc::new(PrivacyContext::build(store, space, n, SvAssignmentParams::default()));

    let mut peb = PebTree::new(
        Arc::new(BufferPool::new(50)),
        space,
        TimePartitioning::default(),
        MAX_SPEED,
        Arc::clone(&ctx),
    );
    let mut baseline = SpatialBaseline::new(BxTree::new(
        Arc::new(BufferPool::new(50)),
        space,
        TimePartitioning::default(),
        MAX_SPEED,
    ));

    let mut users = Vec::with_capacity(n);
    for (i, (x, y, vx, vy, tu)) in positions.into_iter().enumerate() {
        let m = MovingPoint::new(UserId(i as u64), Point::new(x, y), Vec2::new(vx, vy), tu);
        peb.upsert(m);
        baseline.upsert(m);
        users.push(m);
    }
    World { users, peb, baseline }
}

/// f32-representable values so the on-disk record is lossless.
fn coord() -> impl Strategy<Value = f64> {
    (0u32..4000).prop_map(|v| v as f64 * 0.25)
}

fn vel() -> impl Strategy<Value = f64> {
    (-8i32..=8).prop_map(|v| v as f64 * 0.25)
}

fn update_time() -> impl Strategy<Value = f64> {
    (0u32..480).prop_map(|v| v as f64 * 0.25) // 0 .. 120 (one ∆tmu)
}

fn arb_policy_tuple() -> impl Strategy<Value = PolicyTuple> {
    (
        any::<u64>(),
        any::<u64>(),
        (coord(), coord(), coord(), coord()),
        ((0u32..1440).prop_map(f64::from), (0u32..1440).prop_map(f64::from)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn prq_peb_equals_baseline_equals_oracle(
        positions in proptest::collection::vec((coord(), coord(), vel(), vel(), update_time()), 2..60),
        policies in proptest::collection::vec(arb_policy_tuple(), 0..120),
        issuer_pick in any::<u64>(),
        qx in coord(), qy in coord(),
        w in 20u32..800, h in 20u32..800,
        tq_off in 0u32..200,
    ) {
        let world = build_world(positions, policies);
        let issuer = UserId(issuer_pick % world.users.len() as u64);
        let tq = 120.0 + tq_off as f64 * 0.5;
        let r = Rect::new(qx, (qx + w as f64).min(1000.0), qy, (qy + h as f64).min(1000.0));

        let want = oracle_prq(&world.users, &world.peb.context().store, issuer, &r, tq);
        let peb: Vec<UserId> = world.peb.prq(issuer, &r, tq).iter().map(|m| m.uid).collect();
        let base: Vec<UserId> = world
            .baseline
            .prq(&world.peb.context().store, issuer, &r, tq)
            .iter()
            .map(|m| m.uid)
            .collect();
        prop_assert_eq!(&peb, &want, "PEB PRQ diverged from oracle");
        prop_assert_eq!(&base, &want, "baseline PRQ diverged from oracle");
    }

    #[test]
    fn pknn_peb_equals_baseline_equals_oracle(
        positions in proptest::collection::vec((coord(), coord(), vel(), vel(), update_time()), 2..60),
        policies in proptest::collection::vec(arb_policy_tuple(), 0..120),
        issuer_pick in any::<u64>(),
        qx in coord(), qy in coord(),
        k in 1usize..8,
        tq_off in 0u32..200,
    ) {
        let world = build_world(positions, policies);
        let issuer = UserId(issuer_pick % world.users.len() as u64);
        let tq = 120.0 + tq_off as f64 * 0.5;
        let q = Point::new(qx, qy);

        let want = oracle_pknn(&world.users, &world.peb.context().store, issuer, q, k, tq);
        let peb: Vec<UserId> =
            world.peb.pknn(issuer, q, k, tq).iter().map(|(m, _)| m.uid).collect();
        let base: Vec<UserId> = world
            .baseline
            .pknn(&world.peb.context().store, issuer, q, k, tq)
            .iter()
            .map(|(m, _)| m.uid)
            .collect();
        prop_assert_eq!(&peb, &want, "PEB PkNN diverged from oracle");
        prop_assert_eq!(&base, &want, "baseline PkNN diverged from oracle");
    }

    #[test]
    fn equivalence_survives_updates(
        positions in proptest::collection::vec((coord(), coord(), vel(), vel(), update_time()), 4..40),
        policies in proptest::collection::vec(arb_policy_tuple(), 10..80),
        moves in proptest::collection::vec((any::<u64>(), coord(), coord(), vel(), vel()), 1..60),
        issuer_pick in any::<u64>(),
        qx in coord(), qy in coord(),
    ) {
        let mut world = build_world(positions, policies);
        let n = world.users.len() as u64;
        // Apply a stream of position updates at increasing times.
        for (i, (pick, x, y, vx, vy)) in moves.into_iter().enumerate() {
            let uid = UserId(pick % n);
            let tu = 60.0 + i as f64; // strictly increasing update times
            let m = MovingPoint::new(uid, Point::new(x, y), Vec2::new(vx, vy), tu);
            world.peb.upsert(m);
            world.baseline.upsert(m);
            world.users[uid.as_index()] = m;
        }
        let issuer = UserId(issuer_pick % n);
        let tq = 200.0;
        let r = Rect::new(qx, (qx + 300.0).min(1000.0), qy, (qy + 300.0).min(1000.0));

        let want = oracle_prq(&world.users, &world.peb.context().store, issuer, &r, tq);
        let peb: Vec<UserId> = world.peb.prq(issuer, &r, tq).iter().map(|m| m.uid).collect();
        prop_assert_eq!(&peb, &want, "PEB PRQ diverged after updates");

        let want_knn = oracle_pknn(&world.users, &world.peb.context().store, issuer, Point::new(qx, qy), 3, tq);
        let got_knn: Vec<UserId> =
            world.peb.pknn(issuer, Point::new(qx, qy), 3, tq).iter().map(|(m, _)| m.uid).collect();
        prop_assert_eq!(&got_knn, &want_knn, "PEB PkNN diverged after updates");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The multi-policy extension (several policies per ordered pair) must
    /// preserve the three-way agreement: `permits` is "any policy grants",
    /// used identically by the PEB refinement, the baseline filter and the
    /// oracle.
    #[test]
    fn equivalence_with_multi_policy_pairs(
        positions in proptest::collection::vec((coord(), coord(), vel(), vel(), update_time()), 2..40),
        policies in proptest::collection::vec(arb_policy_tuple(), 0..60),
        extras in proptest::collection::vec(arb_policy_tuple(), 0..40),
        issuer_pick in any::<u64>(),
        qx in coord(), qy in coord(),
        k in 1usize..6,
    ) {
        let n = positions.len();
        let mut world = build_world(positions, policies);
        // Layer additional policies onto (possibly existing) pairs in the
        // shared store used by all three engines.
        {
            let ctx = Arc::get_mut(world.peb.ctx_mut()).expect("unshared during setup");
            for (owner, viewer, (xl, xu, yl, yu), (ts, te)) in extras {
                let owner = owner % n as u64;
                let viewer = viewer % n as u64;
                if owner == viewer {
                    continue;
                }
                ctx.store.add_additional(
                    UserId(viewer),
                    Policy::new(
                        UserId(owner),
                        RoleId::FAMILY,
                        Rect::new(xl.min(xu), xl.max(xu), yl.min(yu), yl.max(yu)),
                        TimeInterval::new(ts.min(te), ts.max(te)),
                    ),
                );
                // Friend lists may gain members; refresh the viewer's list.
                let (store, seqvals, friends) = (&ctx.store, &ctx.seqvals, &mut ctx.friends);
                friends.refresh_user(store, seqvals, UserId(viewer));
            }
        }
        let tq = 150.0;
        let issuer = UserId(issuer_pick % n as u64);
        let r = Rect::new(qx, (qx + 400.0).min(1000.0), qy, (qy + 400.0).min(1000.0));

        let want = oracle_prq(&world.users, &world.peb.context().store, issuer, &r, tq);
        let got: Vec<UserId> = world.peb.prq(issuer, &r, tq).iter().map(|m| m.uid).collect();
        prop_assert_eq!(&got, &want, "multi-policy PRQ diverged");

        let want_knn = oracle_pknn(&world.users, &world.peb.context().store, issuer, Point::new(qx, qy), k, tq);
        let got_knn: Vec<UserId> =
            world.peb.pknn(issuer, Point::new(qx, qy), k, tq).iter().map(|(m, _)| m.uid).collect();
        prop_assert_eq!(&got_knn, &want_knn, "multi-policy PkNN diverged");
    }
}
