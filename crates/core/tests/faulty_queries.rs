//! Faulty media at the engine layer: both query engines degrade
//! gracefully instead of panicking.
//!
//! The PEB-tree (privacy-aware PRQ / PkNN / PWD) and the Bx baseline
//! (range / kNN) run their full query surface over a pool whose medium
//! is permanently unreadable: every operation must surface a typed
//! [`IndexError::Io`] — and once the media heals, the same handles must
//! answer every query exactly as a never-faulted run would.

use std::sync::Arc;

use peb_bx::{BxTree, TimePartitioning};
use peb_common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_index::IndexError;
use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
use peb_storage::{BufferPool, IoFault, PageId};
use pebtree::{PebTree, PrivacyContext};

const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };
const USERS: u64 = 120;

fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 10.0)
}

fn grid_point(i: u64) -> MovingPoint {
    still(i, (i % 16) as f64 * 60.0 + 5.0, (i / 16) as f64 * 120.0 + 5.0)
}

/// Every sector (allocated or not) becomes permanently unreadable.
fn scorch(pool: &BufferPool) {
    pool.with_fault_injector(|f| {
        for p in 0..4096 {
            f.mark_bad_sector(PageId(p));
        }
    });
}

fn heal(pool: &BufferPool) {
    pool.with_fault_injector(|f| f.clear());
}

fn typed(e: IndexError) -> bool {
    matches!(e, IndexError::Io(IoFault::BadSector { .. }))
}

fn build_peb() -> PebTree {
    let space = SpaceConfig::default();
    let mut store = PolicyStore::new();
    for o in 1..=USERS {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let ctx = Arc::new(PrivacyContext::build(
        store,
        space,
        USERS as usize + 2,
        SvAssignmentParams::default(),
    ));
    let mut t =
        PebTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::default(), 3.0, ctx);
    for i in 1..=USERS {
        t.upsert(grid_point(i));
    }
    t
}

#[test]
fn peb_tree_queries_surface_typed_errors_then_recover_exactly() {
    let t = build_peb();
    let issuer = UserId(0);
    let bbox = Rect { xl: 100.0, xu: 700.0, yl: 50.0, yu: 800.0 };

    // Fault-free answers, gathered cold (flush + clear first so the
    // faulted attempt below replays the identical fetch pattern).
    t.pool().flush_all();
    t.pool().clear();
    let want_prq = t.try_prq(issuer, &bbox, 20.0).expect("clean media");
    let want_knn = t.try_pknn(issuer, Point::new(420.0, 510.0), 7, 20.0).expect("clean media");
    let want_pwd = t.try_pwd(issuer, Point::new(500.0, 500.0), 250.0, 20.0).expect("clean media");
    let want_get = t.try_get(UserId(17)).expect("clean media");
    assert!(!want_prq.is_empty() && !want_knn.is_empty());

    t.pool().clear();
    scorch(t.pool());
    assert!(t.try_prq(issuer, &bbox, 20.0).is_err_and(typed));
    assert!(t.try_pknn(issuer, Point::new(420.0, 510.0), 7, 20.0).is_err_and(typed));
    assert!(t.try_pwd(issuer, Point::new(500.0, 500.0), 250.0, 20.0).is_err_and(typed));
    assert!(t.try_get(UserId(17)).is_err_and(typed));
    assert!(
        t.pool().fault_stats().surfaced_errors >= 4,
        "every failed query is on the fault ledger"
    );

    heal(t.pool());
    assert_eq!(t.try_prq(issuer, &bbox, 20.0).expect("healed"), want_prq);
    assert_eq!(t.try_pknn(issuer, Point::new(420.0, 510.0), 7, 20.0).expect("healed"), want_knn);
    assert_eq!(t.try_pwd(issuer, Point::new(500.0, 500.0), 250.0, 20.0).expect("healed"), want_pwd);
    assert_eq!(t.try_get(UserId(17)).expect("healed"), want_get);
}

#[test]
fn peb_tree_writes_fail_typed_on_dead_media() {
    let mut t = build_peb();
    t.pool().flush_all();
    t.pool().clear();
    scorch(t.pool());
    assert!(t.try_upsert(still(5, 321.0, 321.0)).is_err_and(typed));
    assert!(t.try_remove(UserId(9)).is_err_and(typed));
    // Heal and restore the two uids the failed calls may have unmapped
    // (documented partial state), then prove full service.
    heal(t.pool());
    t.try_upsert(grid_point(5)).expect("healed media accepts writes");
    t.try_upsert(grid_point(9)).expect("healed media accepts writes");
    assert!(t.try_get(UserId(5)).expect("healed").is_some());
    assert!(t.try_get(UserId(9)).expect("healed").is_some());
}

#[test]
fn bx_tree_queries_surface_typed_errors_then_recover_exactly() {
    let mut t = BxTree::new(
        Arc::new(BufferPool::new(64)),
        SpaceConfig::default(),
        TimePartitioning::default(),
        3.0,
    );
    for i in 1..=USERS {
        t.upsert(grid_point(i));
    }
    let bbox = Rect { xl: 100.0, xu: 700.0, yl: 50.0, yu: 800.0 };

    t.pool().flush_all();
    t.pool().clear();
    let want_range = t.try_range_query(&bbox, 20.0).expect("clean media");
    let want_knn = t.try_knn(Point::new(420.0, 510.0), 7, 20.0).expect("clean media");
    let want_get = t.try_get(UserId(17)).expect("clean media");
    assert!(!want_range.is_empty() && want_knn.len() == 7);

    t.pool().clear();
    scorch(t.pool());
    assert!(t.try_range_query(&bbox, 20.0).is_err_and(typed));
    assert!(t.try_knn(Point::new(420.0, 510.0), 7, 20.0).is_err_and(typed));
    assert!(t.try_get(UserId(17)).is_err_and(typed));
    assert!(t.try_upsert(still(3, 50.0, 50.0)).is_err_and(typed));

    heal(t.pool());
    t.try_upsert(grid_point(3)).expect("healed media accepts writes");
    assert_eq!(t.try_range_query(&bbox, 20.0).expect("healed"), want_range);
    assert_eq!(t.try_knn(Point::new(420.0, 510.0), 7, 20.0).expect("healed"), want_knn);
    assert_eq!(t.try_get(UserId(17)).expect("healed"), want_get);
}
