//! Adversarial boundary cases for the PEB-tree query algorithms: values
//! exactly on window/policy/time edges, SV-code collisions, and grid-cell
//! straddling — the places where off-by-one bugs live.

use std::sync::Arc;

use pebtree::{PebTree, PrivacyContext};

use peb_bx::TimePartitioning;
use peb_common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
use peb_storage::BufferPool;

const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };

fn still(uid: u64, x: f64, y: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, 0.0)
}

fn tree_with(store: PolicyStore, n: usize) -> PebTree {
    let space = SpaceConfig::default();
    let ctx = Arc::new(PrivacyContext::build(store, space, n, SvAssignmentParams::default()));
    PebTree::new(Arc::new(BufferPool::new(50)), space, TimePartitioning::default(), 3.0, ctx)
}

#[test]
fn user_exactly_on_window_edges_is_included() {
    let mut store = PolicyStore::new();
    for o in 1..=4u64 {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let mut t = tree_with(store, 5);
    // Friends parked precisely on each edge of the closed query window.
    t.upsert(still(1, 200.0, 300.0)); // left edge
    t.upsert(still(2, 400.0, 500.0)); // right edge
    t.upsert(still(3, 300.0, 300.0)); // bottom edge
    t.upsert(still(4, 300.0, 500.0)); // top edge
    let w = Rect::new(200.0, 400.0, 300.0, 500.0);
    let got = t.prq(UserId(0), &w, 10.0);
    assert_eq!(got.len(), 4, "closed window must include all edge positions");
}

#[test]
fn policy_boundary_instants_and_positions() {
    let mut store = PolicyStore::new();
    let region = Rect::new(100.0, 200.0, 100.0, 200.0);
    store.add(
        UserId(0),
        Policy::new(UserId(1), RoleId::FRIEND, region, TimeInterval::new(50.0, 60.0)),
    );
    let mut t = tree_with(store, 2);
    // Exactly on the policy region's corner.
    t.upsert(still(1, 200.0, 200.0));
    let w = Rect::new(0.0, 500.0, 0.0, 500.0);
    assert_eq!(t.prq(UserId(0), &w, 60.0).len(), 1, "tint end instant is inclusive");
    assert_eq!(t.prq(UserId(0), &w, 60.0001).len(), 0, "just past tint end");
    assert_eq!(t.prq(UserId(0), &w, 50.0).len(), 1, "tint start instant");
}

#[test]
fn sv_code_collisions_do_not_hide_friends() {
    // Users in one tight group with identical pairwise compatibility get
    // identical sequence values; the uid suffix must keep them separable.
    let mut store = PolicyStore::new();
    for o in 1..=6u64 {
        // All six friends grant user 0 under identical full-volume policies
        // and also each other (mutual, C identical).
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let mut t = tree_with(store, 7);
    let ctx = Arc::clone(t.context());
    // Verify the collision actually exists (otherwise the test is vacuous).
    let codes: std::collections::HashSet<u64> =
        (1..=6u64).map(|o| ctx.sv_code(UserId(o))).collect();
    assert!(codes.len() < 6, "expected at least one shared SV code, got {codes:?}");

    for o in 1..=6u64 {
        t.upsert(still(o, 100.0 + 10.0 * o as f64, 400.0));
    }
    let got = t.prq(UserId(0), &Rect::new(0.0, 1000.0, 0.0, 1000.0), 10.0);
    assert_eq!(got.len(), 6, "every friend sharing an SV code must be found");
}

#[test]
fn friends_straddling_grid_cell_boundaries() {
    let mut store = PolicyStore::new();
    for o in 1..=2u64 {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let mut t = tree_with(store, 3);
    // cell ≈ 0.9766: one friend just below a cell boundary, one just above.
    let cell = SpaceConfig::default().cell_size();
    t.upsert(still(1, cell * 512.0 - 1e-9, 500.0));
    t.upsert(still(2, cell * 512.0 + 1e-9, 500.0));
    let w = Rect::new(cell * 511.0, cell * 513.0, 400.0, 600.0);
    let got = t.prq(UserId(0), &w, 10.0);
    assert_eq!(got.len(), 2);
}

#[test]
fn pknn_with_k_equal_to_friend_count_and_beyond() {
    let mut store = PolicyStore::new();
    for o in 1..=3u64 {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let mut t = tree_with(store, 4);
    for o in 1..=3u64 {
        t.upsert(still(o, 100.0 * o as f64, 500.0));
    }
    let q = Point::new(0.0, 500.0);
    assert_eq!(t.pknn(UserId(0), q, 3, 10.0).len(), 3, "k == qualified count");
    assert_eq!(t.pknn(UserId(0), q, 10, 10.0).len(), 3, "k > qualified count");
    assert_eq!(t.pknn(UserId(0), q, 0, 10.0).len(), 0, "k == 0");
}

#[test]
fn pknn_ties_break_deterministically() {
    let mut store = PolicyStore::new();
    for o in 1..=4u64 {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let mut t = tree_with(store, 5);
    // Four friends at identical distance from the query point.
    t.upsert(still(1, 600.0, 500.0));
    t.upsert(still(2, 400.0, 500.0));
    t.upsert(still(3, 500.0, 600.0));
    t.upsert(still(4, 500.0, 400.0));
    let got: Vec<u64> =
        t.pknn(UserId(0), Point::new(500.0, 500.0), 2, 10.0).iter().map(|(m, _)| m.uid.0).collect();
    assert_eq!(got, vec![1, 2], "equal distances break ties by uid");
}

#[test]
fn query_window_larger_than_space() {
    let mut store = PolicyStore::new();
    store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
    let mut t = tree_with(store, 2);
    t.upsert(still(1, 999.0, 999.0));
    let w = Rect::new(-500.0, 1500.0, -500.0, 1500.0);
    assert_eq!(t.prq(UserId(0), &w, 10.0).len(), 1);
}

#[test]
fn issuer_present_in_multiple_partitions_is_never_returned() {
    let mut store = PolicyStore::new();
    store.add(UserId(1), Policy::new(UserId(0), RoleId::FRIEND, WHOLE, ALWAYS));
    store.add(UserId(0), Policy::new(UserId(1), RoleId::FRIEND, WHOLE, ALWAYS));
    let mut t = tree_with(store, 2);
    t.upsert(MovingPoint::new(UserId(0), Point::new(500.0, 500.0), Vec2::ZERO, 10.0));
    t.upsert(MovingPoint::new(UserId(1), Point::new(501.0, 501.0), Vec2::ZERO, 70.0));
    // Issuer and friend sit in different time partitions.
    let got = t.prq(UserId(0), &WHOLE, 80.0);
    assert_eq!(got.iter().map(|m| m.uid.0).collect::<Vec<_>>(), vec![1]);
    let knn = t.pknn(UserId(0), Point::new(500.0, 500.0), 2, 80.0);
    assert_eq!(knn.len(), 1);
    assert_eq!(knn[0].0.uid.0, 1);
}
