//! The deterministic chaos harness for the serving layer.
//!
//! A stratified matrix of overload points — drop policy × deadline budget
//! × fault plan, every point seeded — drives the full pipeline and checks
//! the serving invariants on every single completion:
//!
//! 1. **Typed rejections** — every query the server refuses or sheds gets
//!    a typed [`Rejected`] (queue-full at submit, shed / circuit-open as
//!    a completion); nothing is silently dropped and the stats counters
//!    reconcile exactly with the submission ledger.
//! 2. **Exact or explicitly partial** — every served answer is compared
//!    against an unloaded twin tree: complete answers are byte-equal to
//!    the twin's, partial answers are exact subsets tagged incomplete.
//! 3. **Bounded overshoot** — a Served event never lands more than a
//!    page-visit epsilon past `max(deadline, execution start, last retry
//!    resume)` on the virtual clock (fault plans get a documented larger
//!    allowance for in-flight pool backoff and latency spikes).
//! 4. **Goodput recovers after a burst** — a dedicated scenario overloads
//!    the queue 4x, then shows the next normal phase serves everything
//!    with zero rejections.
//! 5. **Determinism** — every matrix point is rebuilt and re-run from
//!    scratch; the event ledger must be byte-identical across the runs.
//!
//! The sixth ISSUE invariant — the migration epoch always rebalances when
//! a deadline fires mid-multi-shard-scan — lives at the index layer in
//! `crates/index/tests/deadline_migration.rs`, where migration can be
//! driven directly. Here the matrix closes the loop from the outside:
//! after every point the media heals and the served tree must answer a
//! full-space PRQ exactly like the never-faulted twin.

use std::collections::BTreeMap;
use std::sync::Arc;

use peb_common::{MovingPoint, Point, Rect, SpaceConfig, TimeInterval, UserId, Vec2};
use peb_index::TimePartitioning;
use peb_policy::{Policy, PolicyStore, RoleId, SvAssignmentParams};
use peb_serve::{
    BreakerConfig, DropPolicy, Event, Priority, QueryServer, Rejected, Request, Response,
    RetryPolicy, ServeError, ServeStats, ServerConfig,
};
use peb_storage::{BufferPool, PageId};
use pebtree::{PebTree, PrivacyContext};

const WHOLE: Rect = Rect { xl: 0.0, xu: 1000.0, yl: 0.0, yu: 1000.0 };
const ALWAYS: TimeInterval = TimeInterval { start: 0.0, end: 1440.0 };
const USERS: u64 = 80;
const TQ: f64 = 80.0;
const QUEUE_CAP: usize = 8;

/// The identical world every point (and its unloaded twin) is built
/// from: one issuer with `USERS` friends spread over a grid, half the
/// updates in each of two live time partitions so every query is a
/// multi-shard scan.
fn build_world() -> PebTree {
    let space = SpaceConfig::default();
    let mut store = PolicyStore::new();
    for o in 1..=USERS {
        store.add(UserId(0), Policy::new(UserId(o), RoleId::FRIEND, WHOLE, ALWAYS));
    }
    let ctx = Arc::new(PrivacyContext::build(
        store,
        space,
        USERS as usize + 2,
        SvAssignmentParams::default(),
    ));
    let mut t =
        PebTree::new(Arc::new(BufferPool::new(64)), space, TimePartitioning::default(), 3.0, ctx);
    for i in 1..=USERS {
        let tu = if i % 2 == 0 { 10.0 } else { 70.0 };
        let x = (i as f64 * 131.0) % 950.0;
        let y = (i as f64 * 67.0) % 950.0;
        t.upsert(MovingPoint::new(UserId(i), Point::new(x, y), Vec2::ZERO, tu));
    }
    t
}

/// SplitMix64, for deriving a deterministic workload from a point seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded request mix: two PRQs then a PkNN, windows and k drawn
/// deterministically from the seed, priorities alternating by hash bit.
fn requests(seed: u64, n: usize) -> Vec<(Request, Priority)> {
    (0..n)
        .map(|i| {
            let h = mix(seed ^ i as u64);
            let x = (h % 700) as f64;
            let y = ((h >> 16) % 700) as f64;
            let side = 120.0 + ((h >> 24) % 180) as f64;
            let prio = if h & 1 == 0 { Priority::High } else { Priority::Low };
            let req = if i % 3 == 2 {
                Request::Pknn {
                    issuer: UserId(0),
                    center: Point::new(x + 50.0, y + 50.0),
                    k: 2 + ((h >> 8) % 5) as usize,
                    tq: TQ,
                }
            } else {
                Request::Prq {
                    issuer: UserId(0),
                    window: Rect::new(x, x + side, y, y + side),
                    tq: TQ,
                }
            };
            (req, prio)
        })
        .collect()
}

/// The chaos a point injects before serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// No faults: the strict-overshoot and exactness baseline.
    Clean,
    /// Seeded read-fault schedule (transient / bit-flip / bad-sector mix)
    /// over a durable pool — retries and repair absorb most of it, the
    /// rest surfaces typed.
    Transient,
    /// Seeded slow-read burst: no errors, just injected ticks that eat
    /// deadline budgets mid-page-visit.
    Latency,
    /// Every sector permanently unreadable on a non-durable pool: hard
    /// typed failures that feed the circuit breaker.
    BadSector,
}

#[derive(Debug, Clone, Copy)]
struct PointCfg {
    policy: DropPolicy,
    budget: u64,
    plan: Plan,
    seed: u64,
}

/// Everything a re-run must reproduce byte-for-byte.
struct PointRun {
    ledger: String,
    stats: ServeStats,
    completions_dbg: String,
}

/// The allowed Served-past-deadline overshoot for a plan: one page-visit
/// epsilon (2 ticks: versioned-read fallback) when clean; fault plans add
/// the pool's worst in-flight transient backoff (2+4+8 ticks) and up to
/// four latency spikes of 6 ticks landing inside the final page visit.
fn overshoot_eps(plan: Plan) -> u64 {
    match plan {
        Plan::Clean => 2,
        _ => 2 + 14 + 4 * 6,
    }
}

fn arm(plan: Plan, seed: u64, pool: &BufferPool) {
    match plan {
        Plan::Clean => {}
        Plan::Transient => {
            pool.with_fault_injector(|f| f.arm_seeded_read_schedule(seed, 64, 48));
        }
        Plan::Latency => {
            pool.with_latency_injector(|l| l.arm_seeded_read_burst(seed, 32, 64, 6));
        }
        Plan::BadSector => {
            pool.with_fault_injector(|f| {
                for p in 0..4096u32 {
                    f.mark_bad_sector(PageId(p));
                }
            });
        }
    }
}

/// Build a fresh world, inject the point's chaos, serve its seeded
/// workload in waves, and (when `verify`) check every invariant against
/// an unloaded twin. Returns the replay-diffable artifacts.
fn run_point(cfg: &PointCfg, verify: bool) -> PointRun {
    let tree = build_world();
    let pool = Arc::clone(tree.pool());
    if cfg.plan == Plan::Transient {
        // Enroll durability while the world's frames are still dirty and
        // resident: adoption logs a full image of every page, which is
        // what read-repair rewrites when a scheduled bit flip rots the
        // medium (the rot persists until rewritten — clearing the
        // injector alone cannot heal it).
        pool.set_durable(true);
    }
    pool.flush_all();
    pool.clear();
    arm(cfg.plan, cfg.seed, &pool);

    let server = QueryServer::new(
        Arc::new(tree),
        ServerConfig {
            queue_capacity: QUEUE_CAP,
            drop_policy: cfg.policy,
            deadline_budget: cfg.budget,
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            seed: cfg.seed,
        },
    );

    // Two waves of 12 against a queue of 8: every wave both overflows the
    // queue (typed rejections) and serves (goodput), with fresh deadlines
    // stamped at each wave's submission instant.
    let mut admitted: BTreeMap<u64, Request> = BTreeMap::new();
    let mut queue_full_submits = 0u64;
    for wave in requests(cfg.seed, 24).chunks(12) {
        for (req, prio) in wave {
            match server.submit_with(*req, *prio) {
                Ok(ticket) => {
                    admitted.insert(ticket, *req);
                }
                Err(Rejected::QueueFull { capacity }) => {
                    assert_eq!(capacity, QUEUE_CAP, "typed rejection carries the real capacity");
                    queue_full_submits += 1;
                }
                Err(Rejected::CircuitOpen { .. }) => {
                    assert!(
                        matches!(cfg.plan, Plan::Transient | Plan::BadSector),
                        "breakers only open under injected faults"
                    );
                }
                Err(r) => panic!("submit returned unexpected rejection {r:?}"),
            }
        }
        server.drain();
    }

    let completions = server.take_completions();
    let stats = server.stats();

    // Bookkeeping reconciles exactly: one completion per admitted ticket,
    // none for refused submissions, and the counters agree with both.
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.admitted as usize, admitted.len());
    assert_eq!(stats.queue_full, queue_full_submits);
    assert_eq!(completions.len(), admitted.len(), "every admitted ticket completes exactly once");
    {
        let mut seen: Vec<u64> = completions.iter().map(|c| c.ticket).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = admitted.keys().copied().collect();
        assert_eq!(seen, expect, "completions cover the admitted tickets, no dupes");
    }

    if verify {
        verify_against_twin(cfg, &server, &admitted, &completions);
    }

    // Heal everything and prove the served tree was never corrupted: the
    // full-space answer must match the never-faulted twin's exactly.
    pool.with_fault_injector(|f| f.clear());
    pool.with_latency_injector(|l| l.clear());
    if verify {
        let twin = build_world();
        let want = twin.try_prq(UserId(0), &WHOLE, TQ).expect("clean twin");
        let got = server.tree().try_prq(UserId(0), &WHOLE, TQ).expect("healed media");
        assert_eq!(got, want, "after healing, the chaos tree answers exactly");
        assert_eq!(want.len() as u64, USERS, "the world must be fully visible");
    }

    PointRun { ledger: server.ledger_text(), stats, completions_dbg: format!("{completions:?}") }
}

fn verify_against_twin(
    cfg: &PointCfg,
    server: &QueryServer,
    admitted: &BTreeMap<u64, Request>,
    completions: &[peb_serve::Completion],
) {
    let twin = build_world();
    let visible = twin.try_prq(UserId(0), &WHOLE, TQ).expect("clean twin");

    let mut shed = 0u64;
    let mut circuit = 0u64;
    let mut failed = 0u64;
    for c in completions {
        match &c.result {
            Ok(resp) => {
                let req = admitted[&c.ticket];
                match (req, resp) {
                    (Request::Prq { issuer, window, tq }, Response::Prq(p)) => {
                        let want = twin.try_prq(issuer, &window, tq).expect("clean twin");
                        if p.is_complete() {
                            assert_eq!(p.value, want, "complete PRQ must equal the twin's");
                        } else {
                            for m in &p.value {
                                assert!(
                                    want.contains(m),
                                    "partial PRQ row {m:?} is not in the twin answer"
                                );
                            }
                        }
                    }
                    (Request::Pknn { issuer, center, k, tq }, Response::Pknn(p)) => {
                        if p.is_complete() {
                            let want = twin.try_pknn(issuer, center, k, tq).expect("clean twin");
                            assert_eq!(p.value, want, "complete PkNN must equal the twin's");
                        } else {
                            assert!(p.value.len() <= k, "degraded PkNN never over-delivers");
                            assert!(
                                p.value.windows(2).all(|w| w[0].1 <= w[1].1),
                                "degraded PkNN stays distance-sorted"
                            );
                            for (m, _) in &p.value {
                                assert!(
                                    visible.contains(m),
                                    "degraded PkNN candidate {m:?} is not policy-visible"
                                );
                            }
                        }
                    }
                    _ => panic!("response kind does not match the request"),
                }
            }
            Err(ServeError::Rejected(Rejected::Shed)) => {
                assert!(
                    !matches!(cfg.policy, DropPolicy::RejectNew),
                    "RejectNew never sheds admitted queries"
                );
                shed += 1;
            }
            Err(ServeError::Rejected(Rejected::CircuitOpen { .. })) => {
                assert!(
                    matches!(cfg.plan, Plan::Transient | Plan::BadSector),
                    "breakers only open under injected faults"
                );
                circuit += 1;
            }
            Err(ServeError::Rejected(r)) => panic!("unexpected rejection completion {r:?}"),
            Err(ServeError::Query(e)) => {
                assert!(
                    matches!(cfg.plan, Plan::Transient | Plan::BadSector),
                    "clean/latency plans must never fail a query, got {e}"
                );
                failed += 1;
            }
            Err(e) => panic!("unexpected completion error {e:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.shed, shed, "every shed victim has a typed completion");
    assert_eq!(stats.failed, failed);
    assert_eq!(
        stats.goodput() + shed + circuit + failed,
        completions.len() as u64,
        "served + shed + circuit-rejected + failed account for every completion"
    );

    // Bounded overshoot: a Served event never lands past
    // max(deadline, start, last retry resume) + epsilon.
    if cfg.budget != u64::MAX {
        let eps = overshoot_eps(cfg.plan);
        let mut deadline: BTreeMap<u64, u64> = BTreeMap::new();
        let mut floor: BTreeMap<u64, u64> = BTreeMap::new();
        for e in server.ledger() {
            match e.event {
                Event::Admitted { ticket, deadline_at, .. } => {
                    deadline.insert(ticket, deadline_at);
                }
                Event::Started { ticket } | Event::Retried { ticket, .. } => {
                    floor.insert(ticket, e.tick);
                }
                Event::Served { ticket, .. } => {
                    let d = deadline[&ticket];
                    let f = floor[&ticket];
                    let allowed = d.max(f) + eps;
                    assert!(
                        e.tick <= allowed,
                        "ticket {ticket} served at {} past deadline {d} (floor {f}, eps {eps})",
                        e.tick
                    );
                }
                _ => {}
            }
        }
    }
}

/// The matrix: 3 drop policies x 3 deadline budgets x 4 fault plans = 36
/// stratified points, each with its own seed, each rebuilt and re-run to
/// prove the ledger is byte-identical.
#[test]
fn chaos_matrix_holds_every_invariant_across_36_points() {
    let policies = [DropPolicy::RejectNew, DropPolicy::ShedOldest, DropPolicy::Priority];
    let budgets = [10u64, 400, u64::MAX];
    let plans = [Plan::Clean, Plan::Transient, Plan::Latency, Plan::BadSector];

    let mut idx = 0u64;
    let mut agg = ServeStats::default();
    for &policy in &policies {
        for &budget in &budgets {
            for &plan in &plans {
                let cfg = PointCfg {
                    policy,
                    budget,
                    plan,
                    seed: 0xC4A0_5EED ^ idx.wrapping_mul(0x9E37_79B9),
                };
                let one = run_point(&cfg, true);
                let two = run_point(&cfg, false);
                assert_eq!(
                    one.ledger, two.ledger,
                    "point {idx} ({policy:?}/{budget}/{plan:?}): ledger must be byte-identical"
                );
                assert_eq!(one.stats, two.stats, "point {idx}: stats must replay exactly");
                assert_eq!(
                    one.completions_dbg, two.completions_dbg,
                    "point {idx}: completions must replay exactly"
                );
                agg.submitted += one.stats.submitted;
                agg.admitted += one.stats.admitted;
                agg.queue_full += one.stats.queue_full;
                agg.shed += one.stats.shed;
                agg.circuit_rejected += one.stats.circuit_rejected;
                agg.served_complete += one.stats.served_complete;
                agg.served_partial += one.stats.served_partial;
                agg.failed += one.stats.failed;
                agg.retries += one.stats.retries;
                idx += 1;
            }
        }
    }
    assert_eq!(idx, 36, "the matrix must cover all 36 stratified points");

    // The matrix must actually exercise every behavior it claims to: full
    // queues, shedding, complete and partial service.
    assert!(agg.served_complete > 0, "some queries must complete ({agg:?})");
    assert!(agg.served_partial > 0, "tiny budgets must force partial answers ({agg:?})");
    assert!(agg.queue_full > 0, "overflowing waves must trip queue-full ({agg:?})");
    assert!(agg.shed > 0, "shed policies must evict under overflow ({agg:?})");
    assert!(agg.failed > 0, "bad sectors must surface typed failures ({agg:?})");
}

/// Seeded soak for the CI `--ignored` lane: 48 extra points with policy,
/// budget, and fault plan drawn deterministically from a soak seed —
/// wider seed diversity than the stratified matrix, every point fully
/// verified against its twin and replayed for ledger identity. Run with
/// `cargo test --release -p peb_serve --test chaos -- --ignored`.
#[test]
#[ignore = "seeded soak: run explicitly in the release --ignored CI lane"]
fn seeded_overload_soak_holds_invariants_on_sampled_points() {
    let policies = [DropPolicy::RejectNew, DropPolicy::ShedOldest, DropPolicy::Priority];
    let budgets = [10u64, 120, 400, u64::MAX];
    let plans = [Plan::Clean, Plan::Transient, Plan::Latency, Plan::BadSector];

    let mut agg = ServeStats::default();
    for i in 0..48u64 {
        let h = mix(0xD05E_50AC ^ i);
        let cfg = PointCfg {
            policy: policies[(h % 3) as usize],
            budget: budgets[((h >> 8) % 4) as usize],
            plan: plans[((h >> 16) % 4) as usize],
            seed: mix(h),
        };
        let one = run_point(&cfg, true);
        let two = run_point(&cfg, false);
        assert_eq!(
            one.ledger, two.ledger,
            "soak point {i} ({cfg:?}): ledger must be byte-identical"
        );
        assert_eq!(one.stats, two.stats, "soak point {i}: stats must replay exactly");
        agg.served_complete += one.stats.served_complete;
        agg.served_partial += one.stats.served_partial;
        agg.queue_full += one.stats.queue_full;
        agg.shed += one.stats.shed;
        agg.failed += one.stats.failed;
    }
    assert!(agg.served_complete > 0, "the soak must serve complete answers ({agg:?})");
    assert!(agg.served_partial > 0, "sampled tiny budgets must force partials ({agg:?})");
    assert!(agg.queue_full > 0, "sampled waves must trip queue-full ({agg:?})");
    assert!(agg.shed > 0, "sampled shed policies must evict ({agg:?})");
    assert!(agg.failed > 0, "sampled bad sectors must surface typed failures ({agg:?})");
}

/// Invariant 4: a 4x burst degrades service only while it lasts — the
/// next normal phase serves everything again with zero rejections.
#[test]
fn goodput_recovers_after_a_burst() {
    let tree = Arc::new(build_world());
    let server = QueryServer::new(
        Arc::clone(&tree),
        ServerConfig {
            queue_capacity: QUEUE_CAP,
            drop_policy: DropPolicy::ShedOldest,
            deadline_budget: u64::MAX,
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            seed: 0xB025_7EED,
        },
    );

    let normal: Vec<(Request, Priority)> = requests(0x90_0D, 6);
    let burst: Vec<(Request, Priority)> = requests(0x000B_0257, 32);

    // Normal phase: everything fits, everything serves.
    for (req, prio) in &normal {
        server.submit_with(*req, *prio).expect("normal load is admitted");
    }
    server.drain();
    let s1 = server.stats();
    assert_eq!(s1.goodput(), 6, "normal phase serves everything");
    assert_eq!(s1.queue_full + s1.shed, 0, "normal phase rejects nothing");

    // Burst: 32 arrivals against a queue of 8. ShedOldest admits every
    // arrival, so exactly 32 - 8 admitted queries are shed — all typed.
    for (req, prio) in &burst {
        server.submit_with(*req, *prio).expect("ShedOldest admits every arrival");
    }
    server.drain();
    let s2 = server.stats();
    assert_eq!(s2.shed, 32 - QUEUE_CAP as u64, "the burst sheds the overflow, typed");
    assert_eq!(s2.goodput() - s1.goodput(), QUEUE_CAP as u64, "the queue's worth still serves");
    let shed_completions = server
        .take_completions()
        .into_iter()
        .filter(|c| matches!(c.result, Err(ServeError::Rejected(Rejected::Shed))))
        .count();
    assert_eq!(shed_completions as u64, s2.shed, "every shed victim got its typed completion");

    // Recovery: the same normal load serves in full again, zero rejections.
    for (req, prio) in &normal {
        server.submit_with(*req, *prio).expect("post-burst load is admitted");
    }
    server.drain();
    let s3 = server.stats();
    assert_eq!(s3.goodput() - s2.goodput(), 6, "goodput is back to the pre-burst rate");
    assert_eq!(s3.queue_full, s2.queue_full, "no queue-full after the burst subsides");
    assert_eq!(s3.shed, s2.shed, "no shedding after the burst subsides");
}

/// The breaker lifecycle end to end: hard faults trip it, it fast-fails
/// typed, the cooldown admits one probe, and a healthy probe closes it.
#[test]
fn circuit_breaker_opens_fast_fails_probes_and_closes() {
    let tree = build_world();
    let pool = Arc::clone(tree.pool());
    pool.flush_all();
    pool.clear();
    // Scorch the whole medium: every query fails typed until healed.
    pool.with_fault_injector(|f| {
        for p in 0..4096u32 {
            f.mark_bad_sector(PageId(p));
        }
    });

    let server = QueryServer::new(
        Arc::new(tree),
        ServerConfig {
            queue_capacity: 16,
            drop_policy: DropPolicy::RejectNew,
            deadline_budget: u64::MAX,
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig { window: 4, failure_threshold: 0.5, cooldown: 500 }),
            seed: 0xB12E_AC3E,
        },
    );
    let probe_req = Request::Prq { issuer: UserId(0), window: WHOLE, tq: TQ };

    // Six doomed queries: four fill the window and trip the breaker, the
    // remaining two fast-fail typed at execution time.
    for _ in 0..6 {
        server.submit(probe_req).expect("queue has room");
    }
    server.drain();
    let shard = server.tree().partitioning().partition_of_update(TQ);
    let ledger = server.ledger();
    assert!(
        ledger
            .iter()
            .any(|e| matches!(e.event, Event::BreakerOpened { shard: s, .. } if s == shard)),
        "four straight failures must open shard {shard}'s breaker"
    );
    let completions = server.take_completions();
    let failed =
        completions.iter().filter(|c| matches!(c.result, Err(ServeError::Query(_)))).count();
    let fast_failed = completions
        .iter()
        .filter(|c| {
            matches!(c.result, Err(ServeError::Rejected(Rejected::CircuitOpen { shard: s, .. })) if s == shard)
        })
        .count();
    assert_eq!(failed, 4, "exactly the breaker window fails the hard way");
    assert_eq!(fast_failed, 2, "everything after the trip fast-fails typed");

    // While open, submission itself refuses the query.
    match server.submit(probe_req) {
        Err(Rejected::CircuitOpen { shard: s, retry_at }) => {
            assert_eq!(s, shard);
            assert!(retry_at > server.clock().now(), "the rejection says when to come back");
        }
        other => panic!("open breaker must refuse at submit, got {other:?}"),
    }

    // Heal the medium, wait out the cooldown: one probe goes through,
    // serves, and closes the breaker.
    pool.with_fault_injector(|f| f.clear());
    server.clock().advance(600);
    server.submit(probe_req).expect("cooldown elapsed: the probe is admitted");
    server.drain();
    let ledger = server.ledger();
    assert!(
        ledger.iter().any(|e| matches!(e.event, Event::BreakerHalfOpen { shard: s } if s == shard)),
        "the probe must be ledgered half-open"
    );
    assert!(
        ledger.iter().any(|e| matches!(e.event, Event::BreakerClosed { shard: s } if s == shard)),
        "a healthy probe must close the breaker"
    );
    let probe = server.take_completions();
    assert!(
        matches!(&probe[..], [c] if matches!(&c.result, Ok(r) if r.is_complete())),
        "the probe serves a complete answer off the healed medium"
    );

    // Closed again: normal service, no new breaker events.
    server.submit(probe_req).expect("closed breaker admits normally");
    server.drain();
    assert!(matches!(
        &server.take_completions()[..],
        [c] if matches!(&c.result, Ok(r) if r.is_complete())
    ));
}

/// Thread-pool smoke: concurrent workers over the shared queue complete
/// every admitted ticket exactly once with a typed outcome, and served
/// answers still verify against the twin (deadlines may fire at different
/// ticks than the drain path — that only moves answers between complete
/// and partial, never outside the typed contract).
#[test]
fn concurrent_serving_completes_every_ticket_typed() {
    let tree = Arc::new(build_world());
    let server = QueryServer::new(
        Arc::clone(&tree),
        ServerConfig {
            queue_capacity: 32,
            drop_policy: DropPolicy::RejectNew,
            deadline_budget: 400,
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            seed: 0xC0C2_27ED,
        },
    );
    let twin = build_world();
    let visible = twin.try_prq(UserId(0), &WHOLE, TQ).expect("clean twin");

    let mut admitted: BTreeMap<u64, Request> = BTreeMap::new();
    for (req, prio) in requests(0xC0_2C, 20) {
        let ticket = server.submit_with(req, prio).expect("capacity 32 fits 20");
        admitted.insert(ticket, req);
    }
    server.serve_concurrently(4);

    let completions = server.take_completions();
    assert_eq!(completions.len(), 20, "every ticket completes exactly once");
    for c in &completions {
        let resp = c.result.as_ref().expect("no faults: nothing may fail");
        match (admitted[&c.ticket], resp) {
            (Request::Prq { issuer, window, tq }, Response::Prq(p)) => {
                let want = twin.try_prq(issuer, &window, tq).expect("clean twin");
                if p.is_complete() {
                    assert_eq!(p.value, want);
                } else {
                    for m in &p.value {
                        assert!(want.contains(m), "partial rows stay exact under concurrency");
                    }
                }
            }
            (Request::Pknn { issuer, center, k, tq }, Response::Pknn(p)) => {
                if p.is_complete() {
                    assert_eq!(p.value, twin.try_pknn(issuer, center, k, tq).expect("clean twin"));
                } else {
                    assert!(p.value.len() <= k);
                    for (m, _) in &p.value {
                        assert!(visible.contains(m));
                    }
                }
            }
            _ => panic!("response kind does not match the request"),
        }
    }
}
