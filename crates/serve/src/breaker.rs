//! Per-shard circuit breakers driven by the fault ledger.
//!
//! A shard whose medium is failing makes every query routed at it pay the
//! full retry/repair toll before failing anyway. The breaker watches each
//! shard's recent outcomes — query failures and the
//! [`peb_storage::FaultStats`] deltas the executor samples around every
//! execution — and, once the failure rate over a full observation window
//! crosses the threshold, **opens**: further queries for that shard
//! fast-fail with the typed [`crate::Rejected::CircuitOpen`] instead of
//! queueing doomed work. After a cooldown on the virtual clock the breaker
//! goes **half-open** and lets exactly one probe through; the probe's
//! outcome closes the breaker (healthy again) or re-opens it for another
//! cooldown. All transitions are value-typed ([`Transition`]) so the
//! ledger can record them deterministically.

use std::collections::HashMap;
use std::sync::Mutex;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Outcomes per shard the failure rate is computed over. The breaker
    /// never opens before a full window of observations exists.
    pub window: usize,
    /// Open when `failures / window >= failure_threshold` (0..=1).
    pub failure_threshold: f64,
    /// Virtual-clock ticks an open breaker waits before allowing its
    /// half-open probe.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { window: 8, failure_threshold: 0.5, cooldown: 64 }
    }
}

/// A state change worth a ledger line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Failure rate crossed the threshold: fast-fail until `probe_at`.
    Opened {
        /// The tripped shard.
        shard: u8,
        /// When the half-open probe becomes admissible.
        probe_at: u64,
    },
    /// Cooldown elapsed; one probe query is in flight.
    HalfOpened {
        /// The probing shard.
        shard: u8,
    },
    /// The probe succeeded; normal admission resumes with a clean window.
    Closed {
        /// The recovered shard.
        shard: u8,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { probe_at: u64 },
    HalfOpen,
}

#[derive(Debug)]
struct Shard {
    state: State,
    /// Ring of recent outcomes, `true` = failure.
    outcomes: Vec<bool>,
    next: usize,
    filled: bool,
}

impl Shard {
    fn new() -> Self {
        Shard { state: State::Closed, outcomes: Vec::new(), next: 0, filled: false }
    }

    fn record_outcome(&mut self, window: usize, failed: bool) {
        if self.outcomes.len() < window {
            self.outcomes.push(failed);
            self.filled = self.outcomes.len() == window;
        } else {
            self.outcomes[self.next] = failed;
            self.next = (self.next + 1) % window;
            self.filled = true;
        }
    }

    fn failure_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|f| **f).count() as f64 / self.outcomes.len() as f64
    }
}

/// The breaker bank: one independent breaker per shard id.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    shards: Mutex<HashMap<u8, Shard>>,
}

/// Verdict of [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the query normally.
    Proceed,
    /// Run the query as the shard's single half-open probe (the caller
    /// should ledger the transition).
    Probe,
    /// Fast-fail: the breaker is open until `probe_at`.
    FastFail {
        /// When the next probe becomes admissible.
        probe_at: u64,
    },
}

impl CircuitBreaker {
    /// A bank with no observations; every shard starts closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker { cfg, shards: Mutex::new(HashMap::new()) }
    }

    /// The tuning in force.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Gate one query against `shard` at virtual time `now`.
    pub fn admit(&self, shard: u8, now: u64) -> Admission {
        let mut shards = self.shards.lock().unwrap();
        let s = shards.entry(shard).or_insert_with(Shard::new);
        match s.state {
            State::Closed => Admission::Proceed,
            State::HalfOpen => {
                // A probe is already in flight; everyone else still
                // fast-fails (probe_at is now — retry immediately after
                // the probe resolves).
                Admission::FastFail { probe_at: now }
            }
            State::Open { probe_at } => {
                if now >= probe_at {
                    s.state = State::HalfOpen;
                    Admission::Probe
                } else {
                    Admission::FastFail { probe_at }
                }
            }
        }
    }

    /// Record one executed query's outcome for `shard` (`failed` covers
    /// both a typed query failure and a nonzero surfaced-fault delta in
    /// the pool's [`peb_storage::FaultStats`]). Returns the transition to
    /// ledger, if any.
    pub fn record(&self, shard: u8, now: u64, failed: bool) -> Option<Transition> {
        let mut shards = self.shards.lock().unwrap();
        let s = shards.entry(shard).or_insert_with(Shard::new);
        match s.state {
            State::HalfOpen => {
                if failed {
                    let probe_at = now + self.cfg.cooldown;
                    s.state = State::Open { probe_at };
                    Some(Transition::Opened { shard, probe_at })
                } else {
                    s.state = State::Closed;
                    s.outcomes.clear();
                    s.next = 0;
                    s.filled = false;
                    Some(Transition::Closed { shard })
                }
            }
            State::Open { .. } => None, // stray completion while open
            State::Closed => {
                s.record_outcome(self.cfg.window, failed);
                if s.filled && s.failure_rate() >= self.cfg.failure_threshold {
                    let probe_at = now + self.cfg.cooldown;
                    s.state = State::Open { probe_at };
                    Some(Transition::Opened { shard, probe_at })
                } else {
                    None
                }
            }
        }
    }

    /// Read-only gate for submission time: `Some(probe_at)` iff the
    /// breaker is open and the cooldown has not elapsed at `now`. Unlike
    /// [`CircuitBreaker::admit`] this never transitions state, so a
    /// submit-time fast-fail cannot consume the half-open probe slot.
    pub fn peek_open(&self, shard: u8, now: u64) -> Option<u64> {
        let shards = self.shards.lock().unwrap();
        match shards.get(&shard).map(|s| s.state) {
            Some(State::Open { probe_at }) if now < probe_at => Some(probe_at),
            _ => None,
        }
    }

    /// Whether `shard`'s breaker is currently open (for tests/metrics).
    pub fn is_open(&self, shard: u8) -> bool {
        let shards = self.shards.lock().unwrap();
        matches!(shards.get(&shard).map(|s| s.state), Some(State::Open { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { window: 4, failure_threshold: 0.5, cooldown: 10 }
    }

    #[test]
    fn stays_closed_below_threshold_and_before_full_window() {
        let b = CircuitBreaker::new(cfg());
        // Three straight failures: window not full yet, still closed.
        for _ in 0..3 {
            assert_eq!(b.record(0, 0, true), None);
        }
        assert_eq!(b.admit(0, 1), Admission::Proceed);
        // Fourth outcome a success: rate 3/4 >= 0.5 -> opens.
        let t = b.record(0, 5, false);
        assert_eq!(t, Some(Transition::Opened { shard: 0, probe_at: 15 }));
        assert!(b.is_open(0));
    }

    #[test]
    fn open_fast_fails_until_cooldown_then_probes_once() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.record(1, 0, true);
        }
        assert_eq!(b.admit(1, 5), Admission::FastFail { probe_at: 10 });
        // Cooldown elapsed: exactly one probe; the next caller still fails.
        assert_eq!(b.admit(1, 10), Admission::Probe);
        assert_eq!(b.admit(1, 11), Admission::FastFail { probe_at: 11 });
        // Probe succeeds: closed, window cleared.
        assert_eq!(b.record(1, 12, false), Some(Transition::Closed { shard: 1 }));
        assert_eq!(b.admit(1, 13), Admission::Proceed);
        // A single new failure does not re-open (window restarted).
        assert_eq!(b.record(1, 14, true), None);
    }

    #[test]
    fn failed_probe_reopens_for_another_cooldown() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.record(2, 0, true);
        }
        assert_eq!(b.admit(2, 10), Admission::Probe);
        assert_eq!(b.record(2, 10, true), Some(Transition::Opened { shard: 2, probe_at: 20 }));
        assert_eq!(b.admit(2, 15), Admission::FastFail { probe_at: 20 });
        assert_eq!(b.admit(2, 20), Admission::Probe);
    }

    #[test]
    fn shards_trip_independently() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..4 {
            b.record(3, 0, true);
        }
        assert!(b.is_open(3));
        assert!(!b.is_open(4));
        assert_eq!(b.admit(4, 1), Admission::Proceed);
    }
}
