//! The overload-robust serving layer for the PEB-tree.
//!
//! An index that is correct at one query per second and wedged at a
//! thousand is not a serving system. This crate turns the deadline-checked
//! query engines of [`pebtree`] into one that **degrades on purpose**,
//! with every degradation typed and every decision on a replayable ledger:
//!
//! * **Admission control** ([`AdmissionQueue`], [`DropPolicy`]) — a
//!   bounded queue whose overflow verdicts are typed
//!   ([`Rejected::QueueFull`], [`Rejected::Shed`]), with reject-new,
//!   shed-oldest and two-class priority policies.
//! * **Deadline budgets** ([`ServerConfig::deadline_budget`]) — stamped at
//!   admission on the virtual [`peb_common::TickClock`] the buffer pool
//!   advances per page access, threaded cooperatively through every scan;
//!   an expired query returns a typed-partial answer
//!   ([`pebtree::Partial`]) with per-partition completeness, not an error
//!   and not a lie.
//! * **Retries** ([`RetryPolicy`]) — transiently-failed queries re-run
//!   after deterministic jittered backoff; permanent faults fail fast.
//! * **Circuit breakers** ([`CircuitBreaker`]) — per-shard failure-rate
//!   tracking with open/half-open/closed transitions and typed fast-fail
//!   ([`Rejected::CircuitOpen`]).
//! * **Determinism** — under [`QueryServer::drain`] the whole pipeline is
//!   a pure function of (tree, seed, submission sequence): the ledger is
//!   byte-identical across runs, which is what the chaos harness diffs.
//!
//! See docs/ARCHITECTURE.md, "Serving and overload".

#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod error;
pub mod retry;
pub mod server;

pub use admission::{AdmissionQueue, Admit, DropPolicy, Priority};
pub use breaker::{Admission, BreakerConfig, CircuitBreaker, Transition};
pub use error::{Rejected, ServeError};
pub use retry::RetryPolicy;
pub use server::{
    Completion, Event, Ledger, LedgerEntry, QueryServer, Request, Response, ServeStats,
    ServerConfig,
};
