//! The bounded admission queue and its drop policies.
//!
//! Admission control is the first overload defense: a server that queues
//! unboundedly converts overload into unbounded latency for *everyone*,
//! while a bounded queue converts it into typed rejections for *some* —
//! which queries lose is the [`DropPolicy`] knob. The queue itself is a
//! pure data structure (no clock, no threads) so every policy decision is
//! unit-testable and deterministic; the executor in [`crate::server`]
//! wraps it in a lock.

use std::collections::VecDeque;

/// What to do with arrivals when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Refuse the new arrival ([`crate::Rejected::QueueFull`]); everything
    /// already admitted keeps its place. Favors queries that have waited.
    #[default]
    RejectNew,
    /// Evict the oldest queued query ([`crate::Rejected::Shed`]) and admit
    /// the new one. Favors fresh queries — the oldest is the most likely
    /// to blow its deadline anyway.
    ShedOldest,
    /// Two-class priority: a full queue sheds its oldest *low-priority*
    /// entry to make room. A new arrival that finds the queue full of
    /// its-or-higher priority is rejected; dequeue order serves high
    /// before low (FIFO within a class).
    Priority,
}

/// Admission priority class. Under [`DropPolicy::Priority`], `High`
/// arrivals displace queued `Low` ones when the queue is full; with the
/// other policies the class only breaks no ties (pure FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Interactive / latency-sensitive.
    #[default]
    High,
    /// Background / best-effort.
    Low,
}

/// Outcome of offering one item to the queue.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit<T> {
    /// The item was admitted; nothing was displaced.
    Admitted,
    /// The item was admitted and this previously-queued victim was shed
    /// to make room. The caller owes the victim a typed
    /// [`crate::Rejected::Shed`].
    AdmittedShedding(T),
    /// The queue refused the item ([`crate::Rejected::QueueFull`]).
    Rejected,
}

/// A bounded FIFO with a pluggable overflow policy. `T` is the queued
/// work item (the executor queues admitted tickets).
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    policy: DropPolicy,
    items: VecDeque<(Priority, T)>,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize, policy: DropPolicy) -> Self {
        AdmissionQueue { capacity: capacity.max(1), policy, items: VecDeque::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured drop policy.
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Queued items right now.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer one item. On a full queue the [`DropPolicy`] decides who
    /// loses; the decision is returned, never logged-and-forgotten.
    pub fn offer(&mut self, prio: Priority, item: T) -> Admit<T> {
        if self.items.len() < self.capacity {
            self.items.push_back((prio, item));
            return Admit::Admitted;
        }
        match self.policy {
            DropPolicy::RejectNew => Admit::Rejected,
            DropPolicy::ShedOldest => {
                let (_, victim) = self.items.pop_front().expect("full queue is nonempty");
                self.items.push_back((prio, item));
                Admit::AdmittedShedding(victim)
            }
            DropPolicy::Priority => {
                // Shed the oldest entry of strictly lower priority than
                // the arrival, if any; otherwise the arrival loses.
                match self.items.iter().position(|(p, _)| *p > prio) {
                    Some(i) => {
                        let (_, victim) = self.items.remove(i).expect("position is in range");
                        self.items.push_back((prio, item));
                        Admit::AdmittedShedding(victim)
                    }
                    None => Admit::Rejected,
                }
            }
        }
    }

    /// Dequeue the next item to execute: FIFO, except under
    /// [`DropPolicy::Priority`] where high-priority entries go first
    /// (FIFO within a class).
    pub fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let i = match self.policy {
            DropPolicy::Priority => {
                let best = self.items.iter().map(|(p, _)| *p).min().expect("nonempty");
                self.items.iter().position(|(p, _)| *p == best).expect("a best exists")
            }
            _ => 0,
        };
        self.items.remove(i).map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_new_refuses_overflow() {
        let mut q = AdmissionQueue::new(2, DropPolicy::RejectNew);
        assert_eq!(q.offer(Priority::High, 1), Admit::Admitted);
        assert_eq!(q.offer(Priority::High, 2), Admit::Admitted);
        assert_eq!(q.offer(Priority::High, 3), Admit::Rejected);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shed_oldest_evicts_the_front() {
        let mut q = AdmissionQueue::new(2, DropPolicy::ShedOldest);
        q.offer(Priority::High, 1);
        q.offer(Priority::High, 2);
        assert_eq!(q.offer(Priority::High, 3), Admit::AdmittedShedding(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn priority_sheds_low_to_admit_high() {
        let mut q = AdmissionQueue::new(2, DropPolicy::Priority);
        q.offer(Priority::Low, 10);
        q.offer(Priority::High, 20);
        // High arrival displaces the oldest queued Low.
        assert_eq!(q.offer(Priority::High, 30), Admit::AdmittedShedding(10));
        // Another High finds only High queued: rejected.
        assert_eq!(q.offer(Priority::High, 40), Admit::Rejected);
        // A Low arrival can never displace anyone.
        assert_eq!(q.offer(Priority::Low, 50), Admit::Rejected);
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(30));
    }

    #[test]
    fn priority_dequeues_high_before_older_low() {
        let mut q = AdmissionQueue::new(4, DropPolicy::Priority);
        q.offer(Priority::Low, 1);
        q.offer(Priority::High, 2);
        q.offer(Priority::Low, 3);
        q.offer(Priority::High, 4);
        assert_eq!(q.pop(), Some(2), "high first, FIFO within class");
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(1), "then low, FIFO within class");
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = AdmissionQueue::new(0, DropPolicy::RejectNew);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.offer(Priority::High, 1), Admit::Admitted);
        assert_eq!(q.offer(Priority::High, 2), Admit::Rejected);
    }
}
