//! Query-level retry with deterministic jittered exponential backoff.
//!
//! The buffer pool already absorbs most transient read errors with its own
//! bounded in-place retries; what reaches the serving layer is a query
//! that *failed* — its retry budget exhausted mid-scan. Re-running the
//! whole query a moment later often succeeds (the fault schedule has moved
//! on), so the executor retries transient failures a bounded number of
//! times, sleeping on the **virtual clock** between attempts. The sleep is
//! exponential with full deterministic jitter: `hash(seed, ticket,
//! attempt)` picks the jitter, so a fixed seed replays the exact same
//! backoff schedule tick for tick — retries never make an overload
//! experiment unreproducible.

use peb_index::IndexError;
use peb_storage::IoFault;

/// SplitMix64 — the same mixer the seeded schedulers use; here it turns
/// (seed, ticket, attempt) into an unbiased jitter draw.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the executor retries transiently-failed queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-executions after the first failure (0 disables retry).
    pub max_retries: u32,
    /// Backoff before retry `a` starts from `base_backoff << a` ticks.
    pub base_backoff: u64,
    /// Cap on the exponential term, so a long retry chain cannot overflow
    /// or sleep past any plausible deadline.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, base_backoff: 4, max_backoff: 64 }
    }
}

impl RetryPolicy {
    /// Whether `err` is worth re-running the query for. Only transient
    /// faults qualify: bad sectors and detected corruption are properties
    /// of the medium, not the moment, and re-running the query replays
    /// the same failure.
    pub fn is_transient(err: &IndexError) -> bool {
        matches!(err, IndexError::Io(IoFault::Transient { .. }))
    }

    /// The virtual-clock ticks to back off before retry `attempt`
    /// (0-based): the capped exponential term plus a deterministic jitter
    /// in `[0, term/2]` drawn from `(seed, ticket, attempt)`. Same seed,
    /// same schedule — byte for byte.
    pub fn backoff_ticks(&self, seed: u64, ticket: u64, attempt: u32) -> u64 {
        let term = self.base_backoff.saturating_shl(attempt.min(32)).min(self.max_backoff).max(1);
        let jitter = mix(seed ^ mix(ticket) ^ u64::from(attempt)) % (term / 2 + 1);
        term + jitter
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — a backoff of
/// `base << 40` is "the cap", not an overflow panic.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_storage::PageId;

    #[test]
    fn only_transient_faults_are_retryable() {
        let pid = PageId(5);
        assert!(RetryPolicy::is_transient(&IndexError::Io(IoFault::Transient { pid })));
        assert!(!RetryPolicy::is_transient(&IndexError::Io(IoFault::BadSector { pid })));
        assert!(!RetryPolicy::is_transient(&IndexError::Io(IoFault::Corrupt {
            pid,
            expected: 1,
            found: 2
        })));
    }

    #[test]
    fn backoff_is_deterministic_and_seed_sensitive() {
        let p = RetryPolicy::default();
        let schedule = |seed: u64| -> Vec<u64> {
            (0..6)
                .flat_map(|t| (0..3).map(move |a| (t, a)))
                .map(|(t, a)| p.backoff_ticks(seed, t, a))
                .collect()
        };
        assert_eq!(schedule(0xAB), schedule(0xAB), "same seed, same schedule");
        assert_ne!(schedule(0xAB), schedule(0xCD), "different seeds must differ");
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy { max_retries: 10, base_backoff: 4, max_backoff: 64 };
        for a in 0..10u32 {
            let b = p.backoff_ticks(1, 1, a);
            let term = (4u64 << a.min(32)).min(64);
            assert!(b >= term && b <= term + term / 2, "attempt {a}: {b} outside [{term}, 1.5x]");
        }
        // Far attempts stay at the cap (plus jitter), no overflow.
        let far = p.backoff_ticks(1, 1, 63);
        assert!((64..=96).contains(&far));
    }

    #[test]
    fn jitter_varies_across_tickets() {
        let p = RetryPolicy { max_retries: 3, base_backoff: 16, max_backoff: 1024 };
        let draws: Vec<u64> = (0..32).map(|t| p.backoff_ticks(7, t, 0)).collect();
        assert!(draws.iter().any(|d| d != &draws[0]), "jitter must decorrelate tickets");
        assert!(draws.iter().all(|&d| (16..=24).contains(&d)));
    }
}
