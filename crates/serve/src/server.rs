//! The query executor: bounded admission, deadline stamping, retries,
//! breakers, and a deterministic event ledger.
//!
//! [`QueryServer`] wraps an [`Arc<PebTree>`] and serves PRQ / PkNN
//! requests through the overload pipeline:
//!
//! 1. **Admission** — [`QueryServer::submit`] offers the request to the
//!    bounded [`AdmissionQueue`]; the [`DropPolicy`] decides who loses
//!    when it is full, and every loss is a typed [`Rejected`], never a
//!    silent drop. The query's deadline is stamped **here**: budget ticks
//!    from the submission instant, so time spent queued behind other work
//!    eats the budget exactly like time spent scanning — that is what
//!    makes shedding matter.
//! 2. **Execution** — [`QueryServer::drain`] (deterministic, caller
//!    thread, admission order) or [`QueryServer::serve_concurrently`]
//!    (a thread pool over the same queue) pops queries and runs them
//!    through the deadline-checked engines ([`PebTree::try_prq_deadline`]
//!    / [`PebTree::try_pknn_deadline`]). Expired budgets degrade to
//!    typed [`Partial`] answers; they do not fail.
//! 3. **Retry** — a query that dies on a *transient* fault re-runs after
//!    a deterministic jittered backoff on the virtual clock
//!    ([`RetryPolicy`]); permanent faults fail immediately.
//! 4. **Breakers** — per-shard [`CircuitBreaker`]s fed by query outcomes
//!    and the pool's [`FaultStats`] delta fast-fail queries aimed at a
//!    failing shard ([`Rejected::CircuitOpen`]).
//!
//! Everything observable lands on the [`Ledger`]: admission, shedding,
//! retries, breaker transitions, completions — each stamped with the
//! virtual-clock tick. Under [`QueryServer::drain`] the ledger is
//! **byte-identical across runs** for a fixed seed and workload, which is
//! what the chaos harness diffs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use peb_common::{clock::TickClock, Deadline, MovingPoint, Point, Rect, Timestamp, UserId};
use peb_index::IndexError;
use pebtree::{Partial, PebTree};

use crate::admission::{AdmissionQueue, Admit, DropPolicy, Priority};
use crate::breaker::{Admission, BreakerConfig, CircuitBreaker, Transition};
use crate::error::{Rejected, ServeError};
use crate::retry::RetryPolicy;

/// A query to serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Privacy-aware range query: who inside `window` at `tq` is visible
    /// to `issuer`?
    Prq {
        /// The querying user.
        issuer: UserId,
        /// The spatial window.
        window: Rect,
        /// The query time.
        tq: Timestamp,
    },
    /// Privacy-aware k-nearest-neighbors: the `k` users nearest `center`
    /// at `tq` visible to `issuer`.
    Pknn {
        /// The querying user.
        issuer: UserId,
        /// The query point.
        center: Point,
        /// How many neighbors.
        k: usize,
        /// The query time.
        tq: Timestamp,
    },
}

impl Request {
    /// The query timestamp (shard attribution and ledger lines).
    pub fn tq(&self) -> Timestamp {
        match self {
            Request::Prq { tq, .. } | Request::Pknn { tq, .. } => *tq,
        }
    }
}

/// A served answer: always typed-complete or typed-partial, never
/// silently truncated.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Range-query answer.
    Prq(Partial<Vec<MovingPoint>>),
    /// kNN answer (candidates with distances).
    Pknn(Partial<Vec<(MovingPoint, f64)>>),
}

impl Response {
    /// Whether the answer is exactly what the unloaded query would return.
    pub fn is_complete(&self) -> bool {
        match self {
            Response::Prq(p) => p.is_complete(),
            Response::Pknn(p) => p.is_complete(),
        }
    }

    /// Result rows delivered.
    pub fn rows(&self) -> usize {
        match self {
            Response::Prq(p) => p.value.len(),
            Response::Pknn(p) => p.value.len(),
        }
    }

    /// Per-partition completeness tags.
    pub fn partitions(&self) -> &[(u8, bool)] {
        match self {
            Response::Prq(p) => &p.partitions,
            Response::Pknn(p) => &p.partitions,
        }
    }
}

/// One finished submission: the ticket [`QueryServer::submit`] returned
/// and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The ticket of the submission.
    pub ticket: u64,
    /// Served answer or typed failure.
    pub result: Result<Response, ServeError>,
}

/// Executor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Who loses when the queue is full.
    pub drop_policy: DropPolicy,
    /// Deadline budget in virtual-clock ticks stamped at admission
    /// (`u64::MAX` = effectively unbounded).
    pub deadline_budget: u64,
    /// Query-level retry for transient faults.
    pub retry: RetryPolicy,
    /// Per-shard circuit breakers (`None` disables them).
    pub breaker: Option<BreakerConfig>,
    /// Seed for the deterministic retry jitter.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            drop_policy: DropPolicy::RejectNew,
            deadline_budget: u64::MAX,
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            seed: 0x5EED,
        }
    }
}

/// Aggregate outcome counters (deterministic for a fixed seed + workload
/// under [`QueryServer::drain`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions offered to the queue.
    pub submitted: u64,
    /// Admissions (including ones later shed).
    pub admitted: u64,
    /// New arrivals refused with [`Rejected::QueueFull`].
    pub queue_full: u64,
    /// Admitted queries later evicted with [`Rejected::Shed`].
    pub shed: u64,
    /// Queries fast-failed with [`Rejected::CircuitOpen`].
    pub circuit_rejected: u64,
    /// Queries served with a complete answer.
    pub served_complete: u64,
    /// Queries served with an explicitly partial answer.
    pub served_partial: u64,
    /// Queries that failed on an unresolvable fault (after retries).
    pub failed: u64,
    /// Query-level retry attempts executed.
    pub retries: u64,
}

impl ServeStats {
    /// Completed useful work: complete plus explicitly-partial answers.
    pub fn goodput(&self) -> u64 {
        self.served_complete + self.served_partial
    }
}

/// One ledger line: a typed event at a virtual-clock tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Virtual-clock tick the event was recorded at.
    pub tick: u64,
    /// What happened.
    pub event: Event,
}

/// Everything the serving layer does that is worth replay-diffing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A submission entered the queue.
    Admitted {
        /// Ticket of the submission.
        ticket: u64,
        /// Its priority class.
        class: Priority,
        /// Its home shard (rotating time partition id).
        shard: u8,
        /// Absolute expiry tick stamped at admission.
        deadline_at: u64,
    },
    /// A submission was refused outright.
    QueueFull {
        /// Ticket of the refused submission.
        ticket: u64,
    },
    /// A queued query was evicted to admit a newer one.
    Shed {
        /// Ticket of the victim.
        ticket: u64,
    },
    /// A query fast-failed on an open breaker.
    CircuitRejected {
        /// Ticket of the fast-failed query.
        ticket: u64,
        /// The open shard.
        shard: u8,
        /// When the next probe becomes admissible.
        retry_at: u64,
    },
    /// Execution began.
    Started {
        /// Ticket now executing.
        ticket: u64,
    },
    /// A transient failure triggered a backed-off re-run.
    Retried {
        /// Ticket being retried.
        ticket: u64,
        /// 0-based retry attempt.
        attempt: u32,
        /// Backoff ticks slept on the virtual clock.
        backoff: u64,
    },
    /// A query completed with an answer.
    Served {
        /// Ticket served.
        ticket: u64,
        /// Whether the answer is complete.
        complete: bool,
        /// Result rows delivered.
        rows: usize,
    },
    /// A query failed after exhausting its options.
    Failed {
        /// Ticket that failed.
        ticket: u64,
        /// The error it failed with.
        error: IndexError,
    },
    /// A shard's breaker opened.
    BreakerOpened {
        /// The tripped shard.
        shard: u8,
        /// When its probe becomes admissible.
        probe_at: u64,
    },
    /// A shard's breaker let its half-open probe through.
    BreakerHalfOpen {
        /// The probing shard.
        shard: u8,
    },
    /// A shard's breaker closed after a successful probe.
    BreakerClosed {
        /// The recovered shard.
        shard: u8,
    },
}

impl std::fmt::Display for LedgerEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>10}] ", self.tick)?;
        match self.event {
            Event::Admitted { ticket, class, shard, deadline_at } => {
                write!(
                    f,
                    "t{ticket:05} admitted class={class:?} shard={shard} deadline={deadline_at}"
                )
            }
            Event::QueueFull { ticket } => write!(f, "t{ticket:05} rejected queue-full"),
            Event::Shed { ticket } => write!(f, "t{ticket:05} shed"),
            Event::CircuitRejected { ticket, shard, retry_at } => {
                write!(f, "t{ticket:05} rejected circuit-open shard={shard} retry-at={retry_at}")
            }
            Event::Started { ticket } => write!(f, "t{ticket:05} started"),
            Event::Retried { ticket, attempt, backoff } => {
                write!(f, "t{ticket:05} retry attempt={attempt} backoff={backoff}")
            }
            Event::Served { ticket, complete, rows } => {
                write!(f, "t{ticket:05} served complete={complete} rows={rows}")
            }
            Event::Failed { ticket, error } => write!(f, "t{ticket:05} failed: {error}"),
            Event::BreakerOpened { shard, probe_at } => {
                write!(f, "breaker shard={shard} opened probe-at={probe_at}")
            }
            Event::BreakerHalfOpen { shard } => write!(f, "breaker shard={shard} half-open"),
            Event::BreakerClosed { shard } => write!(f, "breaker shard={shard} closed"),
        }
    }
}

/// The append-only event history.
pub type Ledger = Vec<LedgerEntry>;

/// One admitted work item.
#[derive(Debug)]
struct Admitted {
    ticket: u64,
    req: Request,
    shard: u8,
    deadline_at: u64,
}

/// The overload-robust query executor. See the module docs for the
/// pipeline.
pub struct QueryServer {
    tree: Arc<PebTree>,
    cfg: ServerConfig,
    clock: TickClock,
    queue: Mutex<AdmissionQueue<Admitted>>,
    breaker: Option<CircuitBreaker>,
    ledger: Mutex<Ledger>,
    completions: Mutex<Vec<Completion>>,
    stats: Mutex<ServeStats>,
    next_ticket: AtomicU64,
}

impl QueryServer {
    /// A server over `tree`, sharing the tree's virtual clock (the one
    /// the buffer pool advances per page access and the latency injector
    /// adds bursts to).
    pub fn new(tree: Arc<PebTree>, cfg: ServerConfig) -> Self {
        let clock = tree.pool().clock().clone();
        QueryServer {
            tree,
            cfg,
            clock,
            queue: Mutex::new(AdmissionQueue::new(cfg.queue_capacity, cfg.drop_policy)),
            breaker: cfg.breaker.map(CircuitBreaker::new),
            ledger: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            stats: Mutex::new(ServeStats::default()),
            next_ticket: AtomicU64::new(0),
        }
    }

    /// The virtual clock deadlines and backoffs run on.
    pub fn clock(&self) -> &TickClock {
        &self.clock
    }

    /// The tree being served.
    pub fn tree(&self) -> &Arc<PebTree> {
        &self.tree
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    fn log(&self, event: Event) {
        self.ledger.lock().unwrap().push(LedgerEntry { tick: self.clock.now(), event });
    }

    /// Submit at default ([`Priority::High`]) priority.
    pub fn submit(&self, req: Request) -> Result<u64, Rejected> {
        self.submit_with(req, Priority::High)
    }

    /// Offer one query. `Ok(ticket)` means admitted — its completion will
    /// eventually appear under that ticket (possibly as a later
    /// [`Rejected::Shed`]). `Err` is immediate typed backpressure; no
    /// completion record is produced for it.
    pub fn submit_with(&self, req: Request, class: Priority) -> Result<u64, Rejected> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let shard = self.tree.partitioning().partition_of_update(req.tq());
        {
            let mut stats = self.stats.lock().unwrap();
            stats.submitted += 1;
        }

        // Submission-time fast-fail: an open breaker inside its cooldown
        // refuses the query before it occupies a queue slot.
        if let Some(b) = &self.breaker {
            if let Some(retry_at) = b.peek_open(shard, now) {
                self.log(Event::CircuitRejected { ticket, shard, retry_at });
                self.stats.lock().unwrap().circuit_rejected += 1;
                return Err(Rejected::CircuitOpen { shard, retry_at });
            }
        }

        let deadline_at = now.saturating_add(self.cfg.deadline_budget);
        let item = Admitted { ticket, req, shard, deadline_at };
        let verdict = self.queue.lock().unwrap().offer(class, item);
        match verdict {
            Admit::Admitted => {
                self.log(Event::Admitted { ticket, class, shard, deadline_at });
                self.stats.lock().unwrap().admitted += 1;
                Ok(ticket)
            }
            Admit::AdmittedShedding(victim) => {
                self.log(Event::Shed { ticket: victim.ticket });
                self.log(Event::Admitted { ticket, class, shard, deadline_at });
                {
                    let mut stats = self.stats.lock().unwrap();
                    stats.admitted += 1;
                    stats.shed += 1;
                }
                self.completions.lock().unwrap().push(Completion {
                    ticket: victim.ticket,
                    result: Err(ServeError::Rejected(Rejected::Shed)),
                });
                Ok(ticket)
            }
            Admit::Rejected => {
                self.log(Event::QueueFull { ticket });
                self.stats.lock().unwrap().queue_full += 1;
                Err(Rejected::QueueFull { capacity: self.cfg.queue_capacity })
            }
        }
    }

    /// Execute everything queued on the **caller's** thread, in admission
    /// (or priority) order. This is the deterministic mode: for a fixed
    /// seed and submission sequence the resulting ledger is byte-identical
    /// across runs.
    pub fn drain(&self) {
        self.drain_n(usize::MAX);
    }

    /// Execute at most `quantum` queued queries on the caller's thread,
    /// in admission (or priority) order — one scheduling round of a
    /// server that interleaves service with new arrivals. Returns how
    /// many queries actually ran. [`QueryServer::drain`] is
    /// `drain_n(usize::MAX)`; the same determinism guarantee applies.
    pub fn drain_n(&self, quantum: usize) -> usize {
        let mut served = 0usize;
        while served < quantum {
            let next = self.queue.lock().unwrap().pop();
            match next {
                Some(adm) => {
                    self.run_one(adm);
                    served += 1;
                }
                None => break,
            }
        }
        served
    }

    /// Execute everything queued on `workers` pool threads sharing the
    /// queue. Returns when the queue is empty and all in-flight queries
    /// finished. Outcomes are the same set as [`QueryServer::drain`]
    /// would produce query-by-query; only interleaving (and therefore
    /// ledger order) varies.
    pub fn serve_concurrently(&self, workers: usize) {
        let workers = workers.max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let next = self.queue.lock().unwrap().pop();
                    match next {
                        Some(adm) => self.run_one(adm),
                        None => break,
                    }
                });
            }
        });
    }

    fn run_one(&self, adm: Admitted) {
        // Execution-time breaker gate: transitions (probe admission)
        // happen here, where the outcome that resolves them is guaranteed
        // to follow.
        if let Some(b) = &self.breaker {
            match b.admit(adm.shard, self.clock.now()) {
                Admission::FastFail { probe_at } => {
                    self.log(Event::CircuitRejected {
                        ticket: adm.ticket,
                        shard: adm.shard,
                        retry_at: probe_at,
                    });
                    self.stats.lock().unwrap().circuit_rejected += 1;
                    self.completions.lock().unwrap().push(Completion {
                        ticket: adm.ticket,
                        result: Err(ServeError::Rejected(Rejected::CircuitOpen {
                            shard: adm.shard,
                            retry_at: probe_at,
                        })),
                    });
                    return;
                }
                Admission::Probe => self.log(Event::BreakerHalfOpen { shard: adm.shard }),
                Admission::Proceed => {}
            }
        }

        self.log(Event::Started { ticket: adm.ticket });
        let deadline = Deadline::at(&self.clock, adm.deadline_at);
        let mut attempt = 0u32;
        let result = loop {
            let faults_before = self.tree.pool().fault_stats().surfaced_errors;
            let res = match adm.req {
                Request::Prq { issuer, window, tq } => {
                    self.tree.try_prq_deadline(issuer, &window, tq, &deadline).map(Response::Prq)
                }
                Request::Pknn { issuer, center, k, tq } => self
                    .tree
                    .try_pknn_deadline(issuer, center, k, tq, &deadline)
                    .map(Response::Pknn),
            };
            match res {
                Ok(resp) => {
                    // A query that succeeded *after* surfacing faults to
                    // retries still counts against the shard's health.
                    let surfaced = self.tree.pool().fault_stats().surfaced_errors > faults_before;
                    self.record_breaker(adm.shard, surfaced);
                    break Ok(resp);
                }
                Err(e) => {
                    if RetryPolicy::is_transient(&e)
                        && attempt < self.cfg.retry.max_retries
                        && !deadline.expired()
                    {
                        let backoff =
                            self.cfg.retry.backoff_ticks(self.cfg.seed, adm.ticket, attempt);
                        self.clock.advance(backoff);
                        self.log(Event::Retried { ticket: adm.ticket, attempt, backoff });
                        self.stats.lock().unwrap().retries += 1;
                        attempt += 1;
                        continue;
                    }
                    self.record_breaker(adm.shard, true);
                    break Err(e);
                }
            }
        };

        match result {
            Ok(resp) => {
                let complete = resp.is_complete();
                self.log(Event::Served { ticket: adm.ticket, complete, rows: resp.rows() });
                {
                    let mut stats = self.stats.lock().unwrap();
                    if complete {
                        stats.served_complete += 1;
                    } else {
                        stats.served_partial += 1;
                    }
                }
                self.completions
                    .lock()
                    .unwrap()
                    .push(Completion { ticket: adm.ticket, result: Ok(resp) });
            }
            Err(e) => {
                self.log(Event::Failed { ticket: adm.ticket, error: e });
                self.stats.lock().unwrap().failed += 1;
                self.completions
                    .lock()
                    .unwrap()
                    .push(Completion { ticket: adm.ticket, result: Err(ServeError::Query(e)) });
            }
        }
    }

    fn record_breaker(&self, shard: u8, failed: bool) {
        if let Some(b) = &self.breaker {
            if let Some(t) = b.record(shard, self.clock.now(), failed) {
                self.log(match t {
                    Transition::Opened { shard, probe_at } => {
                        Event::BreakerOpened { shard, probe_at }
                    }
                    Transition::HalfOpened { shard } => Event::BreakerHalfOpen { shard },
                    Transition::Closed { shard } => Event::BreakerClosed { shard },
                });
            }
        }
    }

    /// Take (and clear) the accumulated completions.
    pub fn take_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut self.completions.lock().unwrap())
    }

    /// Snapshot the outcome counters.
    pub fn stats(&self) -> ServeStats {
        *self.stats.lock().unwrap()
    }

    /// Snapshot the event ledger.
    pub fn ledger(&self) -> Ledger {
        self.ledger.lock().unwrap().clone()
    }

    /// Render the ledger as text — one line per event, stable format.
    /// Under [`QueryServer::drain`] this is byte-identical across runs
    /// for a fixed seed and submission sequence.
    pub fn ledger_text(&self) -> String {
        let ledger = self.ledger.lock().unwrap();
        let mut out = String::new();
        for entry in ledger.iter() {
            out.push_str(&entry.to_string());
            out.push('\n');
        }
        out
    }

    /// Queued-but-not-yet-executed queries.
    pub fn queued(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}
