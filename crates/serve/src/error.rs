//! Typed serving-layer failures.
//!
//! Every way a query can fail to produce an answer is a value, not a log
//! line: overload rejections ([`Rejected`]) are separate from execution
//! failures ([`ServeError::Query`]), and execution failures chain all the
//! way down to the physical fault through [`std::error::Error::source`] —
//! `ServeError` → [`peb_index::IndexError`] → [`peb_storage::IoFault`].
//! Callers route on the variant (retry? back off? surface?) without
//! parsing any message, and the `Display` strings are stable enough to
//! grep in a ledger.

use peb_index::IndexError;

/// Why the serving layer refused to *run* a query. These are overload
/// signals — backpressure the caller is supposed to react to — not
/// failures of the query itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The admission queue was full and the drop policy refused the new
    /// arrival (policy [`crate::DropPolicy::RejectNew`], or a priority
    /// policy with no lower-priority victim to shed).
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The query was admitted but then evicted from the queue to make
    /// room for a newer arrival (policy [`crate::DropPolicy::ShedOldest`]
    /// or a priority shed).
    Shed,
    /// The per-shard circuit breaker is open: the query's home shard has
    /// been failing at or above the configured rate, and the serving
    /// layer fails fast instead of queueing doomed work.
    CircuitOpen {
        /// The shard (rotating time partition id) whose breaker tripped.
        shard: u8,
        /// Virtual-clock tick at which the breaker will allow its next
        /// half-open probe.
        retry_at: u64,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            Rejected::Shed => write!(f, "shed from the admission queue under overload"),
            Rejected::CircuitOpen { shard, retry_at } => {
                write!(f, "circuit open for shard {shard} (probe at tick {retry_at})")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Why a submitted query produced no (complete or partial) answer.
///
/// The error chain is fully typed: a query that died on an unresolvable
/// media fault carries the [`IndexError`] it failed with, whose
/// [`source`](std::error::Error::source) is the underlying
/// [`peb_storage::IoFault`] naming the exact page.
///
/// ```
/// use std::error::Error;
/// use peb_index::IndexError;
/// use peb_serve::ServeError;
/// use peb_storage::{IoFault, PageId};
///
/// // The chain a caller can walk, from serving layer to platter:
/// let err = ServeError::Query(IndexError::Io(IoFault::BadSector { pid: PageId(7) }));
/// let index_err = err.source().expect("ServeError chains to IndexError");
/// assert!(index_err.to_string().contains("index I/O error"));
/// let io = index_err.source().expect("IndexError chains to IoFault");
/// assert_eq!(io.to_string(), "bad sector at page 7");
/// assert!(io.source().is_none(), "IoFault is the root cause");
///
/// // Rejections carry no cause: they are the serving layer's own verdict.
/// let rej = ServeError::Rejected(peb_serve::Rejected::QueueFull { capacity: 4 });
/// assert!(rej.source().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The serving layer refused to run the query (overload backpressure).
    Rejected(Rejected),
    /// The query ran and failed: an unresolvable fault survived both the
    /// buffer pool's retry/repair machinery and the serving layer's own
    /// query-level retries.
    Query(IndexError),
}

impl ServeError {
    /// Whether this is an overload rejection (as opposed to an execution
    /// failure) — the caller's cue to back off rather than report.
    pub fn is_rejection(&self) -> bool {
        matches!(self, ServeError::Rejected(_))
    }
}

impl From<Rejected> for ServeError {
    fn from(r: Rejected) -> Self {
        ServeError::Rejected(r)
    }
}

impl From<IndexError> for ServeError {
    fn from(e: IndexError) -> Self {
        ServeError::Query(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "query rejected: {r}"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(_) => None,
            ServeError::Query(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_storage::{IoFault, PageId};

    #[test]
    fn displays_are_stable_and_greppable() {
        assert_eq!(
            Rejected::QueueFull { capacity: 8 }.to_string(),
            "admission queue full (capacity 8)"
        );
        assert_eq!(Rejected::Shed.to_string(), "shed from the admission queue under overload");
        assert_eq!(
            Rejected::CircuitOpen { shard: 2, retry_at: 100 }.to_string(),
            "circuit open for shard 2 (probe at tick 100)"
        );
        let q = ServeError::Query(IndexError::Io(IoFault::Transient { pid: PageId(3) }));
        assert_eq!(q.to_string(), "query failed: index I/O error: transient read error on page 3");
    }

    #[test]
    fn source_chain_reaches_the_io_fault() {
        use std::error::Error;
        let fault = IoFault::Corrupt { pid: PageId(1), expected: 2, found: 3 };
        let err = ServeError::Query(IndexError::Io(fault));
        let mut depth = 0;
        let mut cur: &dyn Error = &err;
        while let Some(next) = cur.source() {
            cur = next;
            depth += 1;
        }
        assert_eq!(depth, 2, "ServeError -> IndexError -> IoFault");
        assert!(cur.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn rejections_classify_as_rejections() {
        assert!(ServeError::from(Rejected::Shed).is_rejection());
        let e = ServeError::from(IndexError::Io(IoFault::Transient { pid: PageId(0) }));
        assert!(!e.is_rejection());
    }
}
