//! Morton-code bit interleaving.
//!
//! `encode` interleaves the bits of the two grid coordinates, x in the even
//! bit positions and y in the odd ones, so that curve order visits the plane
//! in the familiar "Z" pattern. Coordinates up to 32 bits are supported
//! (curve values use up to 64 bits), which comfortably covers the 16-bit
//! grids allowed by `SpaceConfig`.

/// Spread the low 32 bits of `v` so that bit i moves to bit 2i.
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collect every second bit back into the low half.
#[inline]
fn squash(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Interleave grid coordinates into a Z-curve value (x in even bits).
#[inline]
pub fn encode(gx: u32, gy: u32) -> u64 {
    spread(gx) | (spread(gy) << 1)
}

/// Recover the grid coordinates from a Z-curve value.
#[inline]
pub fn decode(z: u64) -> (u32, u32) {
    (squash(z), squash(z >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_values() {
        // Classic 2x2 Z pattern: (0,0)=0, (1,0)=1, (0,1)=2, (1,1)=3.
        assert_eq!(encode(0, 0), 0);
        assert_eq!(encode(1, 0), 1);
        assert_eq!(encode(0, 1), 2);
        assert_eq!(encode(1, 1), 3);
        // Next block starts at (2,0) -> 4.
        assert_eq!(encode(2, 0), 4);
        assert_eq!(encode(3, 3), 15);
    }

    #[test]
    fn roundtrip_exhaustive_small_grid() {
        for gx in 0..64u32 {
            for gy in 0..64u32 {
                assert_eq!(decode(encode(gx, gy)), (gx, gy));
            }
        }
    }

    #[test]
    fn roundtrip_max_coordinates() {
        let (gx, gy) = (u32::MAX, u32::MAX);
        assert_eq!(decode(encode(gx, gy)), (gx, gy));
        assert_eq!(encode(gx, gy), u64::MAX);
    }

    #[test]
    fn z_value_monotone_in_block_address() {
        // The value of the top-left cell of each 2x2 block increases in
        // Z-order of the blocks themselves (self-similarity).
        let block = |bx: u32, by: u32| encode(bx * 2, by * 2);
        assert!(block(0, 0) < block(1, 0));
        assert!(block(1, 0) < block(0, 1));
        assert!(block(0, 1) < block(1, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip(gx in any::<u32>(), gy in any::<u32>()) {
            prop_assert_eq!(decode(encode(gx, gy)), (gx, gy));
        }

        #[test]
        fn shared_prefix_locality(gx in 0u32..1024, gy in 0u32..1024, bits in 1u32..10) {
            // Two cells in the same 2^bits-aligned block share the Z prefix.
            let mask = !((1u32 << bits) - 1);
            let z1 = encode(gx, gy);
            let z2 = encode(gx & mask, gy & mask);
            prop_assert_eq!(z1 >> (2 * bits), z2 >> (2 * bits));
        }
    }
}
