//! A set of disjoint inclusive `u64` intervals with "add and report what
//! was new" semantics.
//!
//! Used by the incremental kNN searches: each enlargement round only scans
//! the parts of its Z-intervals that earlier rounds have not covered (the
//! paper's `R'_qi − R'_q(i−1)` region search), so no leaf is visited twice.

/// Sorted, disjoint, inclusive interval set.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// Sorted by `lo`; pairwise disjoint and non-adjacent.
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// An empty set covering nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the set covers nothing.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of disjoint runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Total count of covered integers.
    pub fn covered(&self) -> u128 {
        self.runs.iter().map(|(lo, hi)| (hi - lo) as u128 + 1).sum()
    }

    /// Whether `v` is covered by some run.
    pub fn contains(&self, v: u64) -> bool {
        // Last run starting at or before v.
        match self.runs.partition_point(|r| r.0 <= v).checked_sub(1) {
            Some(i) => self.runs[i].1 >= v,
            None => false,
        }
    }

    /// Insert `[lo, hi]`, returning the sub-intervals that were *not*
    /// previously covered (possibly empty). Afterwards the whole interval
    /// is covered.
    pub fn add_and_return_new(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        assert!(lo <= hi);
        // Gather the gaps of [lo, hi] not covered by existing runs.
        let mut fresh = Vec::new();
        let mut cursor = lo;
        let start = self.runs.partition_point(|r| r.1 < lo);
        for &(rlo, rhi) in &self.runs[start..] {
            if rlo > hi {
                break;
            }
            if rlo > cursor {
                fresh.push((cursor, rlo - 1));
            }
            cursor = cursor.max(rhi.saturating_add(1));
            if cursor > hi {
                break;
            }
        }
        if cursor <= hi {
            fresh.push((cursor, hi));
        }

        // Merge [lo, hi] into the run list: replace all overlapping or
        // adjacent runs with one combined run.
        let mut new_lo = lo;
        let mut new_hi = hi;
        let first = self.runs.partition_point(|r| r.1 + 1 < lo.max(1)); // adjacency-aware
        let mut last = first;
        while last < self.runs.len() && self.runs[last].0 <= hi.saturating_add(1) {
            new_lo = new_lo.min(self.runs[last].0);
            new_hi = new_hi.max(self.runs[last].1);
            last += 1;
        }
        self.runs.splice(first..last, [(new_lo, new_hi)]);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_add_returns_everything() {
        let mut s = IntervalSet::new();
        assert_eq!(s.add_and_return_new(10, 20), vec![(10, 20)]);
        assert!(s.contains(10) && s.contains(20) && !s.contains(21));
        assert_eq!(s.covered(), 11);
    }

    #[test]
    fn nested_add_returns_nothing() {
        let mut s = IntervalSet::new();
        s.add_and_return_new(10, 20);
        assert!(s.add_and_return_new(12, 18).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn growing_window_returns_flanks() {
        let mut s = IntervalSet::new();
        s.add_and_return_new(10, 20);
        let fresh = s.add_and_return_new(5, 25);
        assert_eq!(fresh, vec![(5, 9), (21, 25)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.covered(), 21);
    }

    #[test]
    fn bridging_two_runs() {
        let mut s = IntervalSet::new();
        s.add_and_return_new(0, 5);
        s.add_and_return_new(20, 25);
        let fresh = s.add_and_return_new(3, 22);
        assert_eq!(fresh, vec![(6, 19)]);
        assert_eq!(s.len(), 1);
        assert!(s.contains(0) && s.contains(25));
    }

    #[test]
    fn adjacent_runs_merge() {
        let mut s = IntervalSet::new();
        s.add_and_return_new(0, 9);
        let fresh = s.add_and_return_new(10, 19);
        assert_eq!(fresh, vec![(10, 19)]);
        assert_eq!(s.len(), 1, "adjacent runs must coalesce");
    }

    #[test]
    fn disjoint_adds_stay_separate() {
        let mut s = IntervalSet::new();
        s.add_and_return_new(0, 5);
        s.add_and_return_new(100, 105);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(50));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_bitset_model(ops in proptest::collection::vec((0u64..200, 0u64..60), 1..40)) {
            let mut s = IntervalSet::new();
            let mut model = vec![false; 300];
            for (lo, len) in ops {
                let hi = lo + len;
                let fresh = s.add_and_return_new(lo, hi);
                // Fresh parts must be exactly the previously-uncovered cells.
                let mut fresh_cells = vec![];
                for (a, b) in &fresh {
                    prop_assert!(*a >= lo && *b <= hi && a <= b);
                    fresh_cells.extend(*a..=*b);
                }
                let expect: Vec<u64> =
                    (lo..=hi).filter(|v| !model[*v as usize]).collect();
                prop_assert_eq!(fresh_cells, expect);
                for v in lo..=hi {
                    model[v as usize] = true;
                }
                // Invariants: sorted, disjoint, non-adjacent.
                for w in s.runs.windows(2) {
                    prop_assert!(w[0].1 + 1 < w[1].0);
                }
                // Contains agrees with the model.
                for v in (0..300).step_by(7) {
                    prop_assert_eq!(s.contains(v as u64), model[v as usize]);
                }
            }
        }
    }
}
