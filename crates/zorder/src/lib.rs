//! Z-order (Morton) space-filling curve.
//!
//! The Bx-tree and PEB-tree both map a (grid-quantized) position to a
//! one-dimensional value `ZV` with a proximity-preserving space-filling
//! curve; the paper uses the Z-curve [Moon et al., TKDE 2001]. This crate
//! provides:
//!
//! * [`morton::encode`] / [`morton::decode`] — bit interleaving between
//!   grid coordinates and curve values, and
//! * [`ranges::decompose`] — the `ZVconvert()` step of the paper's query
//!   algorithms: turning a grid-aligned query rectangle into the minimal
//!   set of maximal intervals of consecutive Z-values that exactly cover it.

#![warn(missing_docs)]

pub mod intervals;
pub mod morton;
pub mod ranges;

pub use intervals::IntervalSet;
pub use morton::{decode, encode};
pub use ranges::{coarsen, decompose, ZRange};
