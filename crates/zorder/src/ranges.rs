//! Rectangle → Z-interval decomposition (the paper's `ZVconvert()`).
//!
//! A query rectangle, quantized to grid cells, covers a set of cells whose
//! Z-values form several runs of consecutive integers. The decomposition
//! recurses over the quadtree implied by the curve: a quad block fully
//! inside the rectangle contributes one whole interval, a disjoint block is
//! pruned, and a partially overlapping block is split into its four
//! children. Adjacent intervals are merged, so the result is the minimal
//! sorted set of maximal intervals exactly covering the rectangle.

use crate::morton::encode;

/// An inclusive interval `[lo, hi]` of consecutive Z-curve values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZRange {
    /// First Z-value covered.
    pub lo: u64,
    /// Last Z-value covered (inclusive).
    pub hi: u64,
}

impl ZRange {
    /// An inclusive range; `lo` must not exceed `hi` (debug-asserted).
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo <= hi);
        ZRange { lo, hi }
    }

    /// Whether `z` falls inside the range.
    pub fn contains(&self, z: u64) -> bool {
        z >= self.lo && z <= self.hi
    }

    /// Number of cells covered, saturating at `u64::MAX`.
    ///
    /// The full-domain range `[0, u64::MAX]` covers `2^64` cells — one
    /// more than `u64` can hold — so its length saturates instead of
    /// panicking in debug builds (or silently wrapping to `0` in
    /// release, which once made the widest possible range look empty):
    ///
    /// ```
    /// use peb_zorder::ZRange;
    ///
    /// assert_eq!(ZRange::new(10, 20).len(), 11);
    /// let full = ZRange::new(0, u64::MAX);
    /// assert_eq!(full.len(), u64::MAX, "saturated, not wrapped to 0");
    /// assert!(!full.is_empty());
    /// ```
    pub fn len(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }

    /// Always `false`: an inclusive interval covers at least one cell.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Decompose the inclusive grid rectangle `[x0,x1] × [y0,y1]` on a
/// `2^grid_bits`-wide grid into sorted, maximal, non-overlapping Z-value
/// intervals.
///
/// # Panics
/// Panics if the rectangle is reversed or exceeds the grid.
pub fn decompose(x0: u32, x1: u32, y0: u32, y1: u32, grid_bits: u32) -> Vec<ZRange> {
    assert!(x0 <= x1 && y0 <= y1, "reversed grid rect");
    let cells = 1u64 << grid_bits;
    assert!((x1 as u64) < cells && (y1 as u64) < cells, "rect exceeds grid");

    let mut out = Vec::new();
    recurse(0, 0, grid_bits, x0, x1, y0, y1, &mut out);
    merge_adjacent(&mut out);
    out
}

/// Visit the quad block whose lower-left corner is `(bx, by)` and whose side
/// is `2^level` cells.
#[allow(clippy::too_many_arguments)]
fn recurse(
    bx: u32,
    by: u32,
    level: u32,
    x0: u32,
    x1: u32,
    y0: u32,
    y1: u32,
    out: &mut Vec<ZRange>,
) {
    let side = 1u32 << level;
    let (bx1, by1) = (bx + side - 1, by + side - 1);

    // Disjoint from the query rect: prune.
    if bx > x1 || bx1 < x0 || by > y1 || by1 < y0 {
        return;
    }
    // Fully contained: the block is one run of 4^level consecutive Z-values.
    if bx >= x0 && bx1 <= x1 && by >= y0 && by1 <= y1 {
        let lo = encode(bx, by);
        out.push(ZRange::new(lo, lo + (1u64 << (2 * level)) - 1));
        return;
    }
    // Partial overlap: split into the four children in Z-order so that the
    // output is generated already sorted.
    let h = side / 2;
    recurse(bx, by, level - 1, x0, x1, y0, y1, out);
    recurse(bx + h, by, level - 1, x0, x1, y0, y1, out);
    recurse(bx, by + h, level - 1, x0, x1, y0, y1, out);
    recurse(bx + h, by + h, level - 1, x0, x1, y0, y1, out);
}

/// Merge runs that touch (`prev.hi + 1 == next.lo`); input must be sorted.
fn merge_adjacent(ranges: &mut Vec<ZRange>) {
    let mut w = 0usize;
    for i in 0..ranges.len() {
        if w > 0 && ranges[w - 1].hi + 1 == ranges[i].lo {
            ranges[w - 1].hi = ranges[i].hi;
        } else {
            ranges[w] = ranges[i];
            w += 1;
        }
    }
    ranges.truncate(w);
}

/// Coarsen a decomposition down to at most `max_ranges` intervals by gluing
/// the pairs with the smallest gaps together. The result still *covers* the
/// rectangle but may include extra cells (a standard over-approximation
/// trade-off: fewer B+-tree probes, more false positives to refine away).
pub fn coarsen(mut ranges: Vec<ZRange>, max_ranges: usize) -> Vec<ZRange> {
    assert!(max_ranges >= 1);
    while ranges.len() > max_ranges {
        // Find the adjacent pair with the smallest gap and merge it.
        let mut best = 0;
        let mut best_gap = u64::MAX;
        for i in 0..ranges.len() - 1 {
            let gap = ranges[i + 1].lo - ranges[i].hi;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        ranges[best].hi = ranges[best + 1].hi;
        ranges.remove(best + 1);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::decode;

    /// Oracle: the exact cell set of a grid rect.
    fn cells_of_rect(x0: u32, x1: u32, y0: u32, y1: u32) -> std::collections::BTreeSet<u64> {
        let mut s = std::collections::BTreeSet::new();
        for gx in x0..=x1 {
            for gy in y0..=y1 {
                s.insert(encode(gx, gy));
            }
        }
        s
    }

    fn cells_of_ranges(rs: &[ZRange]) -> std::collections::BTreeSet<u64> {
        rs.iter().flat_map(|r| r.lo..=r.hi).collect()
    }

    #[test]
    fn full_grid_is_one_range() {
        let rs = decompose(0, 7, 0, 7, 3);
        assert_eq!(rs, vec![ZRange::new(0, 63)]);
    }

    #[test]
    fn single_cell() {
        let rs = decompose(5, 5, 3, 3, 3);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].lo, rs[0].hi);
        assert_eq!(decode(rs[0].lo), (5, 3));
    }

    #[test]
    fn paper_example_8x8_space() {
        // Sec 5.3's worked example: R = ([2,2],[4,6]) on an 8x8 space is
        // converted into a small number of one-dimensional intervals
        // ("[13;16] and [25;28]" under the paper's coordinate/interleaving
        // convention). Our convention yields a different but equally exact
        // run structure; the invariant that matters for the query algorithms
        // is exact coverage with few maximal runs.
        let rs = decompose(2, 2, 4, 6, 3);
        assert!(rs.len() <= 3, "a 1x3 column decomposes into at most 3 runs: {rs:?}");
        assert_eq!(cells_of_ranges(&rs), cells_of_rect(2, 2, 4, 6));
    }

    #[test]
    fn decomposition_is_exact_on_various_rects() {
        for &(x0, x1, y0, y1) in
            &[(0, 0, 0, 0), (1, 6, 2, 5), (0, 7, 3, 3), (2, 3, 2, 3), (1, 2, 5, 7), (0, 3, 0, 1)]
        {
            let rs = decompose(x0, x1, y0, y1, 3);
            assert_eq!(
                cells_of_ranges(&rs),
                cells_of_rect(x0, x1, y0, y1),
                "rect {x0}..{x1} x {y0}..{y1}"
            );
            // Maximality: no two output ranges touch or overlap.
            for w in rs.windows(2) {
                assert!(w[0].hi + 1 < w[1].lo, "ranges not maximal: {rs:?}");
            }
        }
    }

    #[test]
    fn aligned_block_is_single_range() {
        // A 4x4 block aligned at (4,4) is exactly one Z run.
        let rs = decompose(4, 7, 4, 7, 3);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].len(), 16);
    }

    #[test]
    fn coarsen_respects_cap_and_coverage() {
        let rs = decompose(1, 6, 1, 6, 3);
        let exact = cells_of_ranges(&rs);
        for cap in 1..=rs.len() {
            let coarse = coarsen(rs.clone(), cap);
            assert!(coarse.len() <= cap);
            let cov = cells_of_ranges(&coarse);
            assert!(cov.is_superset(&exact), "coarsened ranges must still cover");
        }
    }

    #[test]
    fn zrange_basics() {
        let r = ZRange::new(10, 20);
        assert!(r.contains(10) && r.contains(20) && !r.contains(21));
        assert_eq!(r.len(), 11);
        assert!(!r.is_empty());
    }

    #[test]
    fn zrange_len_saturates_on_the_full_domain() {
        // Regression: `hi - lo + 1` overflowed for [0, u64::MAX] (panic in
        // debug, wrap-to-0 in release).
        assert_eq!(ZRange::new(0, u64::MAX).len(), u64::MAX);
        assert_eq!(ZRange::new(1, u64::MAX).len(), u64::MAX);
        assert_eq!(ZRange::new(u64::MAX, u64::MAX).len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn exact_cover_random_rects(
            bits in 2u32..7,
            xs in any::<(u16, u16)>(),
            ys in any::<(u16, u16)>(),
        ) {
            let m = (1u32 << bits) - 1;
            let (mut x0, mut x1) = (xs.0 as u32 & m, xs.1 as u32 & m);
            let (mut y0, mut y1) = (ys.0 as u32 & m, ys.1 as u32 & m);
            if x0 > x1 { std::mem::swap(&mut x0, &mut x1); }
            if y0 > y1 { std::mem::swap(&mut y0, &mut y1); }

            let rs = decompose(x0, x1, y0, y1, bits);
            // Exact coverage.
            let expected: u64 = (x1 - x0 + 1) as u64 * (y1 - y0 + 1) as u64;
            let total: u64 = rs.iter().map(|r| r.len()).sum();
            prop_assert_eq!(total, expected);
            // Sorted, disjoint, maximal.
            for w in rs.windows(2) {
                prop_assert!(w[0].hi + 1 < w[1].lo);
            }
            // Every covered z decodes inside the rect.
            for r in &rs {
                for z in [r.lo, r.hi, (r.lo + r.hi) / 2] {
                    let (gx, gy) = crate::morton::decode(z);
                    prop_assert!(gx >= x0 && gx <= x1 && gy >= y0 && gy <= y1);
                }
            }
        }
    }
}
