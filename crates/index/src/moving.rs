//! [`MovingIndex`]: the exclusive-access, single-tree moving-object index
//! core.
//!
//! All partitions live in one B+-tree and every update takes `&mut self`.
//! The engines run on the lock-per-partition [`crate::ShardedMovingIndex`]
//! instead; this core remains the simpler embedding and the unsharded
//! comparison point for the update-throughput benchmarks.

use std::collections::HashMap;
use std::sync::Arc;

use peb_btree::{BTree, TreeStats};
use peb_common::{MovingPoint, Rect, SpaceConfig, Timestamp, UserId};
use peb_storage::{BufferPool, IoStats};
use peb_zorder::encode;

use crate::layout::KeyLayout;
use crate::partition::TimePartitioning;
use crate::record::ObjectRecord;

/// A B+-tree based moving-object index, generic over the key layout.
///
/// Owns every piece of state the Bx-tree and the PEB-tree share: the
/// B+-tree handle (and through it the buffer pool doing the paper's I/O
/// accounting), the space/time configuration, the `current_key` map that
/// makes updates exact delete+insert pairs, and the label timestamp of each
/// live partition. Engine-specific query algorithms layer on top via
/// [`MovingIndex::scan_keys`] and [`MovingIndex::layout`].
pub struct MovingIndex<L: KeyLayout> {
    btree: BTree<ObjectRecord>,
    layout: L,
    space: SpaceConfig,
    part: TimePartitioning,
    max_speed: f64,
    /// Current index key of each live object, for exact update/delete.
    current_key: HashMap<UserId, u128>,
    /// Label timestamp of the data stored in each live partition.
    partition_labels: HashMap<u8, Timestamp>,
}

impl<L: KeyLayout> MovingIndex<L> {
    /// An empty index whose single B+-tree performs I/O through `pool`.
    pub fn new(
        pool: Arc<BufferPool>,
        layout: L,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
    ) -> Self {
        assert!(max_speed > 0.0);
        MovingIndex {
            btree: BTree::new(pool),
            layout,
            space,
            part,
            max_speed,
            current_key: HashMap::new(),
            partition_labels: HashMap::new(),
        }
    }

    /// Bulk-load an initial population (each user must appear once).
    /// Equivalent to upserting every user, but builds the B+-tree bottom-up
    /// at the given fill factor.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        layout: L,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        users: &[MovingPoint],
        fill: f64,
    ) -> Self {
        let mut shell = MovingIndex::new(Arc::clone(&pool), layout, space, part, max_speed);
        let mut entries: Vec<(u128, ObjectRecord)> = Vec::with_capacity(users.len());
        for m in users {
            let (key, tid, t_lab) = shell.placement(m);
            entries.push((key, ObjectRecord::from_moving_point(m)));
            shell.current_key.insert(m.uid, key);
            shell.partition_labels.insert(tid, t_lab);
        }
        entries.sort_unstable_by_key(|(k, _)| *k);
        shell.btree = BTree::bulk_load(pool, entries, fill);
        shell
    }

    /// The space configuration keys are quantized against.
    pub fn space(&self) -> &SpaceConfig {
        &self.space
    }

    /// The rotating time-partitioning parameters.
    pub fn partitioning(&self) -> &TimePartitioning {
        &self.part
    }

    /// The declared maximum object speed (drives query enlargement).
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// The key layout (the engine seam).
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Mutable access to the layout (e.g. to swap the PEB privacy
    /// context).
    pub fn layout_mut(&mut self) -> &mut L {
        &mut self.layout
    }

    /// Objects currently indexed.
    pub fn len(&self) -> usize {
        self.btree.len()
    }

    /// Whether no object is indexed.
    pub fn is_empty(&self) -> bool {
        self.btree.is_empty()
    }

    /// The buffer pool the index performs I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.btree.pool()
    }

    /// Physical/logical I/O counters of the underlying buffer pool — the
    /// paper's Sec 7.1 metric, identical for every engine built on this
    /// layer.
    pub fn io_stats(&self) -> IoStats {
        self.pool().stats()
    }

    /// Number of leaf pages, `Nl` in the paper's cost model.
    pub fn leaf_page_count(&self) -> usize {
        self.btree.leaf_page_count()
    }

    /// Total pages of the underlying B+-tree.
    pub fn page_count(&self) -> usize {
        self.btree.page_count()
    }

    /// The key an object updated at `m.t_update` is indexed under: the
    /// object's position is forwarded to the nearest later label timestamp
    /// (Fig 1), grid-quantized, Z-encoded, and packed by the layout.
    pub fn key_for(&self, m: &MovingPoint) -> u128 {
        self.placement(m).0
    }

    /// `(key, tid, t_lab)` for one object — the single derivation both
    /// `key_for` and the update path share, so the stored key and the
    /// partition-label bookkeeping can never disagree.
    fn placement(&self, m: &MovingPoint) -> (u128, u8, Timestamp) {
        let t_lab = self.part.label_timestamp(m.t_update);
        let tid = self.part.partition_of_label(t_lab);
        let pos_at_label = m.position_at(t_lab);
        let (gx, gy) = self.space.to_grid(&pos_at_label);
        let zv = self.layout.mask_zv(encode(gx, gy));
        (self.layout.key(tid, zv, m.uid.0), tid, t_lab)
    }

    /// Insert or update an object (an update is an exact delete of the old
    /// key followed by an insert, as in the Bx-tree).
    pub fn upsert(&mut self, m: MovingPoint) {
        debug_assert!(
            m.speed() <= self.max_speed + 1e-9,
            "object {} exceeds the declared max speed",
            m.uid
        );
        if let Some(old_key) = self.current_key.remove(&m.uid) {
            self.btree.delete(old_key);
        }
        let (key, tid, t_lab) = self.placement(&m);
        self.btree.insert(key, ObjectRecord::from_moving_point(&m));
        self.current_key.insert(m.uid, key);
        self.partition_labels.insert(tid, t_lab);
    }

    /// Remove an object entirely.
    pub fn remove(&mut self, uid: UserId) -> bool {
        match self.current_key.remove(&uid) {
            Some(key) => self.btree.delete(key).is_some(),
            None => false,
        }
    }

    /// Fetch an object's current record by id (point lookup through disk).
    pub fn get(&self, uid: UserId) -> Option<MovingPoint> {
        let key = self.current_key.get(&uid)?;
        self.btree.get(*key).map(|r| r.to_moving_point())
    }

    /// The current index key of a live object, if any.
    pub fn current_key_of(&self, uid: UserId) -> Option<u128> {
        self.current_key.get(&uid).copied()
    }

    /// The live `(tid, label timestamp)` pairs, sorted by tid.
    pub fn live_partitions(&self) -> Vec<(u8, Timestamp)> {
        let mut v: Vec<(u8, Timestamp)> =
            self.partition_labels.iter().map(|(a, b)| (*a, *b)).collect();
        v.sort_by_key(|a| a.0);
        v
    }

    /// Enlarge a query rectangle for one partition: every object stored as
    /// of `t_lab` that can reach `r` by `tq` lies within
    /// `max_speed · |t_lab − tq|` of it (Fig 2 of the paper). The enlarged
    /// rectangle is *not* clamped to the space bounds — objects may drift
    /// outside the domain between updates, and the grid quantization clamps
    /// cells on its own — so coverage of boundary-clamped stored cells is
    /// preserved.
    pub fn enlarge(&self, r: &Rect, t_lab: Timestamp, tq: Timestamp) -> Rect {
        let d = self.max_speed * (t_lab - tq).abs();
        Rect::new(r.xl - d, r.xu + d, r.yl - d, r.yu + d)
    }

    /// Scan the stored records with keys in `[lo, hi]`, in key order,
    /// stopping early if `visit` returns `false`. Returns `false` if the
    /// scan was stopped. This is the primitive engine-specific query
    /// algorithms build their interval probes from.
    pub fn scan_keys(
        &self,
        lo: u128,
        hi: u128,
        visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> bool {
        self.btree.range_scan(lo, hi, visit)
    }

    /// Garbage-collect expired partitions. An object must update at least
    /// once per `∆tmu`; entries still sitting in a partition whose label
    /// timestamp has passed (`t_lab < now`) belong to objects that broke
    /// that contract, and the partition is due for reuse. Removes them and
    /// returns how many objects were dropped.
    pub fn expire_stale(&mut self, now: Timestamp) -> usize {
        let stale: Vec<u8> = self
            .live_partitions()
            .into_iter()
            .filter(|(_, t_lab)| *t_lab < now)
            .map(|(tid, _)| tid)
            .collect();
        let mut dropped = 0usize;
        for tid in stale {
            let (lo, hi) = self.layout.partition_range(tid);
            let victims: Vec<(u128, u64)> = {
                let mut v = Vec::new();
                self.btree.range_scan(lo, hi, |k, rec| {
                    v.push((k, rec.uid));
                    true
                });
                v
            };
            for (key, uid) in victims {
                self.btree.delete(key);
                // Only unlink the object if this key is still its current one.
                if self.current_key.get(&UserId(uid)) == Some(&key) {
                    self.current_key.remove(&UserId(uid));
                }
                dropped += 1;
            }
            self.partition_labels.remove(&tid);
        }
        dropped
    }

    /// O(1) diagnostics: B+-tree shape, live partitions, object count.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            tree: self.btree.stats(),
            partitions: self.live_partitions(),
            objects: self.current_key.len(),
        }
    }
}

/// Operational summary of a [`MovingIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Underlying B+-tree structure.
    pub tree: TreeStats,
    /// Live `(partition id, label timestamp)` pairs.
    pub partitions: Vec<(u8, Timestamp)>,
    /// Objects currently indexed.
    pub objects: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::{Point, Vec2};

    /// A minimal layout for exercising the shared machinery in isolation:
    /// `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂` with a fixed 20-bit ZV.
    #[derive(Debug, Clone, Copy)]
    struct TestLayout;

    const ZV_BITS: u32 = 20;
    const UID_BITS: u32 = 32;

    impl KeyLayout for TestLayout {
        fn zv_bits(&self) -> u32 {
            ZV_BITS
        }

        fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
            ((tid as u128) << (ZV_BITS + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
        }

        fn partition_range(&self, tid: u8) -> (u128, u128) {
            (self.key(tid, 0, 0), self.key(tid, (1 << ZV_BITS) - 1, (1 << UID_BITS) - 1))
        }
    }

    fn index(cap: usize) -> MovingIndex<TestLayout> {
        MovingIndex::new(
            Arc::new(BufferPool::new(cap)),
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
        )
    }

    fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
    }

    #[test]
    fn upsert_get_remove_roundtrip() {
        let mut idx = index(64);
        idx.upsert(still(1, 100.0, 200.0, 0.0));
        idx.upsert(still(2, 300.0, 400.0, 0.0));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(UserId(1)).unwrap().pos, Point::new(100.0, 200.0));
        idx.upsert(still(1, 111.0, 222.0, 5.0));
        assert_eq!(idx.len(), 2, "update must not duplicate");
        assert!(idx.remove(UserId(1)));
        assert!(!idx.remove(UserId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn partition_migration_on_phase_rollover() {
        // ∆tmu = 120, n = 2: updates at t=10 land in the label-120
        // partition, updates at t=70 in label-180, updates at t=130 in
        // label-240. An object that keeps updating MIGRATES across
        // partitions: its old entry is deleted from the old partition and
        // re-inserted in the new one, and the old partition's label map
        // entry disappears once no object holds it live.
        let mut idx = index(64);
        idx.upsert(still(7, 100.0, 100.0, 10.0));
        let k1 = idx.current_key_of(UserId(7)).unwrap();
        let parts1 = idx.live_partitions();
        assert_eq!(parts1.len(), 1);
        assert_eq!(parts1[0].1, 120.0);

        // Next phase: the same object updates; key must move partitions.
        idx.upsert(still(7, 110.0, 110.0, 70.0));
        let k2 = idx.current_key_of(UserId(7)).unwrap();
        assert_ne!(k1, k2, "rollover must re-key the object");
        assert_eq!(idx.len(), 1, "migration is delete+insert, not copy");

        // The old partition still has a label entry (labels are dropped by
        // expiry, not by updates), but scanning its key range finds nothing.
        let (lo, hi) = idx.layout().partition_range(parts1[0].0);
        let mut leftovers = 0;
        idx.scan_keys(lo, hi, |_, _| {
            leftovers += 1;
            true
        });
        assert_eq!(leftovers, 0, "no ghost entry in the vacated partition");

        // Expiry at t=150 (label 120 passed, label 180 still ahead)
        // reclaims the vacated partition without touching the migrated
        // object.
        assert_eq!(idx.expire_stale(150.0), 0);
        assert_eq!(idx.live_partitions().len(), 1);
        assert!(idx.get(UserId(7)).is_some());
    }

    #[test]
    fn expire_stale_drops_objects_that_stopped_updating() {
        let mut idx = index(64);
        idx.upsert(still(1, 100.0, 100.0, 10.0)); // label 120
        idx.upsert(still(2, 200.0, 200.0, 130.0)); // label 240
        assert_eq!(idx.live_partitions().len(), 2);
        let dropped = idx.expire_stale(200.0);
        assert_eq!(dropped, 1);
        assert!(idx.get(UserId(1)).is_none());
        assert!(idx.get(UserId(2)).is_some());
        assert_eq!(idx.live_partitions().len(), 1);
        assert_eq!(idx.expire_stale(200.0), 0, "idempotent");
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let users: Vec<MovingPoint> = (0..300u64)
            .map(|i| still(i, (i % 50) as f64 * 20.0 + 3.0, (i / 50) as f64 * 150.0 + 3.0, 0.0))
            .collect();
        let bulk = MovingIndex::bulk_load(
            Arc::new(BufferPool::new(64)),
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
            &users,
            1.0,
        );
        let mut inc = index(64);
        for m in &users {
            inc.upsert(*m);
        }
        assert_eq!(bulk.len(), inc.len());
        for m in &users {
            assert_eq!(bulk.current_key_of(m.uid), inc.current_key_of(m.uid));
            assert_eq!(bulk.get(m.uid), inc.get(m.uid));
        }
        assert_eq!(bulk.live_partitions(), inc.live_partitions());
    }

    #[test]
    fn io_accounting_flows_through_the_pool() {
        let mut idx = index(8);
        for i in 0..2_000u64 {
            idx.upsert(still(i, (i % 100) as f64 * 10.0 + 5.0, (i / 100) as f64 * 45.0 + 5.0, 0.0));
        }
        let pool = Arc::clone(idx.pool());
        pool.clear();
        pool.reset_stats();
        let (lo, hi) = idx.layout().partition_range(idx.live_partitions()[0].0);
        let mut n = 0;
        idx.scan_keys(lo, hi, |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, 2_000);
        assert!(idx.io_stats().physical_reads > 0, "cold scan must do I/O");
        assert_eq!(idx.io_stats(), pool.stats(), "io_stats is the pool's counters");
    }
}
